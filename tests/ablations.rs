//! The Figure 9 coordination-interface ablations, as integration tests:
//! each disabled interface must cost something (reduced savings,
//! increased violations, or increased performance loss) relative to the
//! fully coordinated architecture.

use no_power_struggles::prelude::*;

fn run(mode: CoordinationMode) -> Comparison {
    let cfg = Scenario::paper(SystemKind::BladeA, Mix::All180, mode)
        .horizon(2_000)
        .seed(23)
        .build();
    run_experiment(&cfg).comparison
}

#[test]
fn all_figure9_modes_run_to_completion() {
    for mode in CoordinationMode::FIGURE9 {
        let c = run(mode);
        assert!(c.run.ticks == 2_000, "{mode}");
        assert!(c.power_savings_pct.is_finite(), "{mode}");
    }
}

#[test]
fn apparent_utilization_reduces_consolidation_savings() {
    // Paper §3.1: with apparent utilization a throttled server looks full,
    // so it is never recognized as a consolidation candidate.
    let coordinated = run(CoordinationMode::Coordinated);
    let apparent = run(CoordinationMode::CoordApparentUtil);
    assert!(
        apparent.power_savings_pct <= coordinated.power_savings_pct + 1.0,
        "apparent-util ({:.1}%) must not beat real-util ({:.1}%)",
        apparent.power_savings_pct,
        coordinated.power_savings_pct
    );
}

#[test]
fn every_ablation_has_a_drawback() {
    // Paper Figure 9: "each one of these alternative solutions suffers
    // from some drawbacks in terms of increased performance loss, reduced
    // power savings, or increased budget violations."
    let coord = run(CoordinationMode::Coordinated);
    for mode in [
        CoordinationMode::Uncoordinated,
        CoordinationMode::CoordApparentUtil,
        CoordinationMode::CoordNoFeedback,
        CoordinationMode::CoordNoBudgetLimits,
        CoordinationMode::UncoordMinPstates,
    ] {
        let c = run(mode);
        let worse_perf = c.perf_loss_pct > coord.perf_loss_pct + 0.3;
        let worse_savings = c.power_savings_pct < coord.power_savings_pct - 0.5;
        let worse_violations = c.violations_sm_pct + c.violations_em_pct + c.violations_gm_pct
            > coord.violations_sm_pct + coord.violations_em_pct + coord.violations_gm_pct + 0.5;
        let races = c.run.pstate_conflicts > 0;
        assert!(
            worse_perf || worse_savings || worse_violations || races,
            "{mode} shows no drawback: save {:.1}% (coord {:.1}%), perf {:.1}% \
             (coord {:.1}%), viol {:.1} (coord {:.1})",
            c.power_savings_pct,
            coord.power_savings_pct,
            c.perf_loss_pct,
            coord.perf_loss_pct,
            c.violations_sm_pct + c.violations_em_pct + c.violations_gm_pct,
            coord.violations_sm_pct + coord.violations_em_pct + coord.violations_gm_pct,
        );
    }
}

#[test]
fn min_pstate_merge_still_races_but_differently() {
    // The "naïve fix" still writes from two controllers; it trades
    // overwrite races for permanently pessimistic frequencies.
    let naive = run(CoordinationMode::UncoordMinPstates);
    let uncoord = run(CoordinationMode::Uncoordinated);
    // Both remain non-coordinated (violations or perf worse than the
    // coordinated base run elsewhere); the min-merge must at least not
    // *increase* the violation total versus plain uncoordinated.
    let total = |c: &Comparison| c.violations_sm_pct + c.violations_em_pct + c.violations_gm_pct;
    assert!(
        total(&naive) <= total(&uncoord) + 2.0,
        "min-merge {:.1} vs uncoordinated {:.1}",
        total(&naive),
        total(&uncoord)
    );
}

#[test]
fn policies_other_than_proportional_share_still_work() {
    for policy in PolicyKind::ALL {
        let cfg = Scenario::paper(SystemKind::ServerB, Mix::M60, CoordinationMode::Coordinated)
            .policy(policy)
            .horizon(1_200)
            .seed(29)
            .build();
        let r = run_experiment(&cfg);
        assert!(
            r.comparison.power_savings_pct > 0.0,
            "{}: {:.1}%",
            policy.name(),
            r.comparison.power_savings_pct
        );
    }
}

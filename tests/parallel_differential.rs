//! Differential property tests for rack-sharded parallel epoch
//! execution.
//!
//! The tentpole contract: `ExperimentConfig::threads` is purely a
//! throughput knob. Whatever the worker-thread count, a run must produce
//! **bit-identical** results — the same `RunStats`, the same telemetry
//! stream in the same order, and a byte-identical end-of-run checkpoint
//! (every float bit-packed). These tests sweep randomized multi-rack
//! topologies (uniform and lopsided — one rack dwarfing the rest, which
//! exercises the size-weighted shard cuts), coordination modes, fault
//! plans, bus delivery faults, and the electrical capper (its clamp now
//! runs sharded, like the EC/SM/EM epochs) through thread counts
//! {1, 2, 4, 7} in lockstep, and additionally prove checkpoints are
//! thread-count-agnostic: a snapshot taken at N threads resumes
//! bit-exactly at M threads.

use no_power_struggles::prelude::*;
use proptest::prelude::*;

/// Thread counts swept against the sequential reference (1 = the legacy
/// path; 7 deliberately exceeds the shard count of small topologies).
const SWEEP: [usize; 3] = [2, 4, 7];

/// Runs `cfg` to its horizon and captures a complete end-state
/// fingerprint: the bit-packed checkpoint JSON, the full telemetry
/// stream, and the raw stats.
fn fingerprint(cfg: &ExperimentConfig) -> (String, Vec<TelemetryEvent>, RunStats) {
    let mut runner = Runner::new(cfg);
    runner.enable_ring_telemetry(1 << 20);
    let stats = runner.run_to_horizon();
    let events: Vec<TelemetryEvent> = runner
        .ring_telemetry()
        .expect("ring recorder was installed")
        .events()
        .cloned()
        .collect();
    let snap = runner.snapshot();
    let json = serde_json::to_string(&snap).expect("snapshot serializes");
    (json, events, stats)
}

/// A randomized fault plan covering every family, including actuator
/// faults: their jam verdicts come from per-server counter streams
/// (order-free across shards), so every mode — even the uncoordinated
/// SM's conditional writes — takes the parallel path under faults.
fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        (0u64..1_000, 0.0f64..0.05, 0.0f64..0.03, 1u64..16),
        (0.0f64..0.03, 0.0f64..0.02, 1u64..10, 0.0f64..0.05),
        proptest::bool::ANY,
    )
        .prop_map(
            |((seed, noise, stuck_p, stuck_t), (drop, act_p, act_t, loss), outage)| {
                let mut plan = FaultPlan::disabled()
                    .with_seed(seed)
                    .with_sensor_noise(noise)
                    .with_stuck_sensors(stuck_p, stuck_t)
                    .with_dropped_samples(drop)
                    .with_stuck_actuators(act_p, act_t)
                    .with_message_loss(loss);
                if outage {
                    plan = plan.with_outage(ControllerLayer::Em, Some(0), 40, 90);
                }
                plan
            },
        )
}

/// A randomized control-plane bus: delays, drops, duplication,
/// reordering, leases, and bounded retransmission.
fn arb_bus() -> impl Strategy<Value = BusConfig> {
    (
        (0u64..100, 0u64..3, 0u64..3),
        (0.0f64..0.08, 0.0f64..0.05, 0.0f64..0.08),
        (0u64..40, 1u32..4),
    )
        .prop_map(
            |((seed, dmin, dspan), (drop, dup, reorder), (lease, attempts))| {
                BusConfig::default()
                    .with_seed(seed)
                    .with_delay(dmin, dmin + dspan)
                    .with_drop(drop)
                    .with_duplication(dup)
                    .with_reordering(reorder, 2)
                    .with_leases(lease)
                    .with_retry(RetryConfig {
                        max_attempts: attempts,
                        backoff_base_ticks: 2,
                        backoff_max_ticks: 8,
                        jitter_ticks: 1,
                    })
            },
        )
}

/// Sweeps `cfg` through every thread count in [`SWEEP`] and requires the
/// full fingerprint to match the sequential reference bit-for-bit.
fn assert_threads_invisible(cfg: &ExperimentConfig) -> Result<(), TestCaseError> {
    let reference = fingerprint(cfg);
    for &threads in &SWEEP {
        let mut c = cfg.clone();
        c.threads = threads;
        let got = fingerprint(&c);
        prop_assert_eq!(
            &got.2,
            &reference.2,
            "stats diverged at {} threads",
            threads
        );
        prop_assert_eq!(
            got.1.len(),
            reference.1.len(),
            "telemetry volume diverged at {} threads",
            threads
        );
        prop_assert_eq!(
            &got.1,
            &reference.1,
            "telemetry diverged at {} threads",
            threads
        );
        prop_assert_eq!(
            &got.0,
            &reference.0,
            "checkpoint diverged at {} threads",
            threads
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn thread_count_is_invisible(
        (racks, encs, blades) in (1usize..3, 1usize..3, 2usize..5),
        standalone in 1usize..4,
        mode_idx in 0usize..3,
        seed in 0u64..1_000,
        plan in arb_fault_plan(),
        bus in arb_bus(),
    ) {
        let mode = [
            CoordinationMode::Coordinated,
            CoordinationMode::Uncoordinated,
            CoordinationMode::UncoordMinPstates,
        ][mode_idx];
        // At least one standalone server guarantees >= 2 shards, so the
        // parallel path genuinely engages at threads > 1.
        let cfg = Scenario::multi_rack(SystemKind::BladeA, mode, racks, encs, blades, standalone)
            .horizon(160)
            .seed(seed)
            .faults(plan)
            .bus(bus)
            .build();
        assert_threads_invisible(&cfg)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Heterogeneous rack sizes: one rack dwarfing several small ones
    /// plus a standalone tail, with the electrical capper sometimes
    /// engaged. Exercises the size-weighted shard cuts (ideal-position
    /// cuts snapped to enclosure boundaries, not per-rack splits), the
    /// parallel EM epoch over unequal enclosure sizes, and the sharded
    /// electrical clamp.
    #[test]
    fn thread_count_is_invisible_on_lopsided_fleets(
        (big_encs, big_blades) in (2usize..5, 8usize..17),
        (small_racks, small_blades) in (1usize..4, 2usize..5),
        standalone in 1usize..4,
        (elec_on, elec_frac) in (proptest::bool::ANY, 0.85f64..0.98),
        mode_idx in 0usize..3,
        seed in 0u64..1_000,
        plan in arb_fault_plan(),
        bus in arb_bus(),
    ) {
        let mode = [
            CoordinationMode::Coordinated,
            CoordinationMode::Uncoordinated,
            CoordinationMode::UncoordMinPstates,
        ][mode_idx];
        let topo = Topology::builder()
            .rack(big_encs, big_blades)
            .racks(small_racks, 1, small_blades)
            .standalone(standalone)
            .build();
        let mut scenario = Scenario::paper(SystemKind::BladeA, Mix::All180, mode)
            .topology(topo)
            .horizon(160)
            .seed(seed)
            .faults(plan)
            .bus(bus);
        if elec_on {
            scenario = scenario.electrical_cap(elec_frac);
        }
        let cfg = scenario.build();
        assert_threads_invisible(&cfg)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// GM-heavy configurations: a tight `T_gm` against many enclosures,
    /// so GM epochs dominate the run and the fan-out window pass — now
    /// carrying per-child counter-stream sensor draws and the full
    /// hardening pipeline in-shard — fires constantly. The sequential
    /// ingest order (all enclosures, then all standalones) must survive
    /// the two-buffer telemetry replay at every thread count.
    #[test]
    fn thread_count_is_invisible_under_gm_pressure(
        (racks, encs, blades) in (2usize..4, 2usize..4, 2usize..5),
        standalone in 1usize..5,
        gm in 4u64..12,
        mode_idx in 0usize..3,
        seed in 0u64..1_000,
        plan in arb_fault_plan(),
        bus in arb_bus(),
    ) {
        let mode = [
            CoordinationMode::Coordinated,
            CoordinationMode::Uncoordinated,
            CoordinationMode::UncoordMinPstates,
        ][mode_idx];
        let cfg = Scenario::multi_rack(SystemKind::BladeA, mode, racks, encs, blades, standalone)
            .intervals(Intervals { ec: 1, sm: 2, em: gm.max(2) / 2, gm, vmc: 500 })
            .horizon(160)
            .seed(seed)
            .faults(plan)
            .bus(bus)
            .build();
        assert_threads_invisible(&cfg)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// VMC-active configurations: `T_vmc` well inside the horizon, so
    /// the sharded per-tick VM accumulators and the sharded demand-
    /// estimate pass feed real consolidation decisions (migrations,
    /// power-off) whose placement consequences would amplify any
    /// accumulator divergence for the rest of the run.
    #[test]
    fn thread_count_is_invisible_with_vmc_active(
        (racks, encs, blades) in (1usize..3, 1usize..3, 3usize..6),
        standalone in 1usize..4,
        vmc in 40u64..80,
        coordinated in proptest::bool::ANY,
        seed in 0u64..1_000,
        plan in arb_fault_plan(),
        bus in arb_bus(),
    ) {
        let mode = if coordinated {
            CoordinationMode::Coordinated
        } else {
            CoordinationMode::Uncoordinated
        };
        let cfg = Scenario::multi_rack(SystemKind::BladeA, mode, racks, encs, blades, standalone)
            .intervals(Intervals { ec: 1, sm: 5, em: 10, gm: 20, vmc })
            .horizon(170)
            .seed(seed)
            .faults(plan)
            .bus(bus)
            .build();
        assert_threads_invisible(&cfg)?;
    }
}

/// A checkpoint taken at one thread count must resume bit-exactly at any
/// other: the final checkpoint JSON of (snapshot at 4 threads, resume at
/// M) is byte-identical to an uninterrupted single-thread run.
#[test]
fn checkpoint_resumes_bit_exactly_across_thread_counts() {
    let bus = BusConfig::default()
        .with_seed(5)
        .with_delay(1, 2)
        .with_drop(0.03)
        .with_leases(25);
    let plan = FaultPlan::disabled()
        .with_seed(3)
        .with_sensor_noise(0.01)
        .with_dropped_samples(0.01)
        .with_stuck_actuators(0.004, 6);
    let cfg = Scenario::multi_rack(
        SystemKind::BladeA,
        CoordinationMode::Coordinated,
        2,
        2,
        4,
        2,
    )
    .horizon(300)
    .seed(41)
    .faults(plan)
    .bus(bus)
    .build();

    // Uninterrupted single-thread reference.
    let mut reference = Runner::new(&cfg);
    reference.run_to_horizon();
    let want = serde_json::to_string(&reference.snapshot()).expect("snapshot serializes");

    // Snapshot mid-run at 4 threads…
    let mut c4 = cfg.clone();
    c4.threads = 4;
    let mut first = Runner::new(&c4);
    while first.ticks_done() < 150 {
        first.tick();
    }
    let mid = first.snapshot();

    // …and resume at 1 and 7 threads.
    for threads in [1usize, 7] {
        let mut c = cfg.clone();
        c.threads = threads;
        let mut resumed = Runner::resume(&c, &mid).expect("checkpoint resumes");
        resumed.run_to_horizon();
        let got = serde_json::to_string(&resumed.snapshot()).expect("snapshot serializes");
        assert_eq!(
            got, want,
            "resume at {threads} threads diverged from the uninterrupted run"
        );
    }
}

//! Checkpoint/restore integration tests: a run interrupted at an
//! arbitrary tick and resumed from its serialized [`RunnerSnapshot`]
//! must reproduce the uninterrupted trajectory to `f64::to_bits`
//! equality — including under active sensor/actuator faults, bus
//! delivery faults, leases, and retries.

use no_power_struggles::prelude::*;

const HORIZON: u64 = 300;

/// A configuration that exercises every stateful subsystem at once:
/// plan-level faults (shared injector RNG), bus delivery faults (bus
/// RNG + in-flight queues + retry timers), leases, and the VMC.
fn stressed_config() -> ExperimentConfig {
    let plan = FaultPlan::disabled()
        .with_seed(99)
        .with_sensor_noise(0.02)
        .with_stuck_sensors(0.01, 12)
        .with_dropped_samples(0.01)
        .with_stuck_actuators(0.005, 8)
        .with_message_loss(0.02)
        .with_outage(ControllerLayer::Em, Some(0), 80, 140);
    let bus = BusConfig::default()
        .with_seed(4242)
        .with_delay(1, 1)
        .with_drop(0.05)
        .with_duplication(0.03)
        .with_reordering(0.05, 2)
        .with_leases(40)
        .with_retry(RetryConfig {
            max_attempts: 3,
            backoff_base_ticks: 2,
            backoff_max_ticks: 16,
            jitter_ticks: 1,
        });
    Scenario::paper(SystemKind::ServerB, Mix::H60, CoordinationMode::Coordinated)
        .horizon(HORIZON)
        .seed(17)
        .faults(plan)
        .bus(bus)
        .build()
}

/// A quieter configuration (no faults, passthrough bus) so resumption is
/// also proven on the default path.
fn quiet_config() -> ExperimentConfig {
    Scenario::paper(SystemKind::BladeA, Mix::M60, CoordinationMode::Coordinated)
        .horizon(HORIZON)
        .seed(5)
        .build()
}

/// Runs `cfg` uninterrupted and returns its final stats and a terminal
/// snapshot (full bit-packed state).
fn run_uninterrupted(cfg: &ExperimentConfig) -> (RunStats, RunnerSnapshot) {
    let mut runner = Runner::new(cfg);
    let stats = runner.run_to_horizon();
    let snap = runner.snapshot();
    (stats, snap)
}

/// Runs `cfg` to `split`, checkpoints through a JSON round-trip (the
/// same serialization `npsctl --checkpoint-every` writes to disk), then
/// resumes a *fresh* runner from the parsed snapshot and finishes the
/// horizon.
fn run_killed_and_resumed(cfg: &ExperimentConfig, split: u64) -> (RunStats, RunnerSnapshot) {
    let mut first = Runner::new(cfg);
    while first.ticks_done() < split {
        first.tick();
    }
    let snap = first.snapshot();
    let json = serde_json::to_string(&snap).expect("snapshot serializes");
    drop(first); // the "killed" process
    let parsed: RunnerSnapshot = serde_json::from_str(&json).expect("snapshot parses");
    let mut resumed = Runner::resume(cfg, &parsed).expect("snapshot restores");
    assert_eq!(
        resumed.ticks_done(),
        split,
        "resume lands on the split tick"
    );
    let stats = resumed.run_to_horizon();
    let snap = resumed.snapshot();
    (stats, snap)
}

#[test]
fn kill_and_resume_is_bit_exact_under_full_fault_load() {
    let cfg = stressed_config();
    let (base_stats, base_snap) = run_uninterrupted(&cfg);
    // Split points cover: immediately after the first tick, mid-outage
    // (EM down, leases expiring), and just before the horizon.
    for split in [1, 57, 100, 250, HORIZON - 1] {
        let (stats, snap) = run_killed_and_resumed(&cfg, split);
        assert_eq!(
            stats, base_stats,
            "stats diverged after resuming from tick {split}"
        );
        assert_eq!(
            snap, base_snap,
            "terminal state diverged after resuming from tick {split}"
        );
    }
}

#[test]
fn kill_and_resume_is_bit_exact_on_the_default_path() {
    let cfg = quiet_config();
    let (base_stats, base_snap) = run_uninterrupted(&cfg);
    for split in [1, 149, HORIZON / 2] {
        let (stats, snap) = run_killed_and_resumed(&cfg, split);
        assert_eq!(stats, base_stats);
        assert_eq!(snap, base_snap);
    }
}

#[test]
fn mid_gm_window_checkpoint_is_thread_count_agnostic() {
    // Checkpoint in the middle of a GM window (between the t=100 and
    // t=150 GM epochs) on a multi-rack fleet with a slow lossy bus, so
    // the snapshot carries in-flight heap messages, armed retry timers,
    // and nonzero per-slot sensor counters — then restore at different
    // thread counts. The terminal checkpoint JSON must be byte-identical
    // whichever worker count replays the remainder.
    let plan = FaultPlan::disabled()
        .with_seed(77)
        .with_sensor_noise(0.02)
        .with_stuck_sensors(0.01, 10)
        .with_dropped_samples(0.01)
        .with_stuck_actuators(0.004, 6)
        .with_message_loss(0.03);
    let bus = BusConfig::default()
        .with_seed(888)
        .with_delay(2, 3)
        .with_drop(0.05)
        .with_reordering(0.3, 4)
        .with_leases(35)
        .with_retry(RetryConfig {
            max_attempts: 3,
            backoff_base_ticks: 2,
            backoff_max_ticks: 16,
            jitter_ticks: 1,
        });
    let cfg = Scenario::multi_rack(
        SystemKind::BladeA,
        CoordinationMode::Coordinated,
        2,
        2,
        6,
        3,
    )
    .horizon(HORIZON)
    .seed(23)
    .faults(plan)
    .bus(bus)
    .build();

    // Uninterrupted single-thread reference.
    let mut reference = Runner::new(&cfg);
    reference.run_to_horizon();
    let want = serde_json::to_string(&reference.snapshot()).expect("snapshot serializes");

    // Checkpoint mid-GM-window at 4 threads; EM epochs fire at t=125 on
    // a 2–5-tick-delay bus, so grants are still in the expiry heap.
    let mut c4 = cfg.clone();
    c4.threads = 4;
    let mut first = Runner::new(&c4);
    while first.ticks_done() < 126 {
        first.tick();
    }
    let mid = first.snapshot();
    assert!(
        !mid.bus.queue.is_empty(),
        "split must catch grant copies in the in-flight heap"
    );
    assert!(
        mid.bus.links.iter().any(|l| l.pending.is_some()),
        "split must catch an armed retransmission timer"
    );
    assert!(
        mid.injector.sensor_ctr.iter().any(|&c| c > 0),
        "split must catch advanced sensor counter streams"
    );
    let json = serde_json::to_string(&mid).expect("snapshot serializes");
    drop(first);

    for threads in [1usize, 2, 7] {
        let parsed: RunnerSnapshot = serde_json::from_str(&json).expect("snapshot parses");
        let mut c = cfg.clone();
        c.threads = threads;
        let mut resumed = Runner::resume(&c, &parsed).expect("checkpoint restores");
        resumed.run_to_horizon();
        let got = serde_json::to_string(&resumed.snapshot()).expect("snapshot serializes");
        assert_eq!(
            got, want,
            "mid-GM-window resume at {threads} threads diverged"
        );
    }
}

#[test]
fn snapshot_json_roundtrip_is_identity() {
    let cfg = stressed_config();
    let mut runner = Runner::new(&cfg);
    for _ in 0..123 {
        runner.tick();
    }
    let snap = runner.snapshot();
    let json = serde_json::to_string_pretty(&snap).expect("serializes");
    let parsed: RunnerSnapshot = serde_json::from_str(&json).expect("parses");
    assert_eq!(parsed, snap, "JSON round-trip must preserve every bit");
}

#[test]
fn restore_rejects_foreign_and_future_checkpoints() {
    let cfg = stressed_config();
    let mut runner = Runner::new(&cfg);
    for _ in 0..10 {
        runner.tick();
    }
    let snap = runner.snapshot();

    // Wrong experiment: the label guard refuses the restore.
    let other = quiet_config();
    let err = Runner::resume(&other, &snap).expect_err("label mismatch must be rejected");
    assert!(
        err.to_string().contains("checkpoint"),
        "unexpected error: {err}"
    );

    // Future format version: refused rather than misinterpreted.
    let mut future = snap.clone();
    future.version += 1;
    let err = Runner::resume(&cfg, &future).expect_err("version mismatch must be rejected");
    assert!(
        err.to_string().contains("version"),
        "unexpected error: {err}"
    );
}

#[test]
fn checkpoint_emits_telemetry_markers() {
    let cfg = quiet_config();
    let mut runner = Runner::new(&cfg);
    runner.enable_ring_telemetry(1 << 16);
    for _ in 0..20 {
        runner.tick();
    }
    let snap = runner.snapshot();
    let mut resumed = Runner::new(&cfg);
    resumed.enable_ring_telemetry(1 << 16);
    resumed.restore(&snap).expect("restores");
    let saved = runner
        .ring_telemetry()
        .expect("ring installed")
        .events()
        .any(|e| {
            matches!(
                e,
                TelemetryEvent::Checkpoint {
                    restored: false,
                    ..
                }
            )
        });
    let restored = resumed
        .ring_telemetry()
        .expect("ring installed")
        .events()
        .any(|e| matches!(e, TelemetryEvent::Checkpoint { restored: true, .. }));
    assert!(saved, "snapshot() must emit a Checkpoint{{restored:false}}");
    assert!(
        restored,
        "restore() must emit a Checkpoint{{restored:true}}"
    );
}

//! End-to-end integration tests of the coordinated architecture across
//! all workspace crates (traces → sim → controllers → optimizer →
//! metrics).

use no_power_struggles::prelude::*;

fn scenario(sys: SystemKind, mix: Mix, mode: CoordinationMode) -> ExperimentResult {
    let cfg = Scenario::paper(sys, mix, mode)
        .horizon(1_500)
        .seed(11)
        .build();
    run_experiment(&cfg)
}

use no_power_struggles::core::ExperimentResult;

#[test]
fn coordinated_run_is_strictly_better_than_doing_nothing() {
    let r = scenario(SystemKind::BladeA, Mix::H60, CoordinationMode::Coordinated);
    assert!(
        r.comparison.power_savings_pct > 10.0,
        "{:?}",
        r.comparison.power_savings_pct
    );
    assert!(r.comparison.perf_loss_pct < 15.0);
}

#[test]
fn coordination_eliminates_actuator_races() {
    let coord = scenario(SystemKind::BladeA, Mix::H60, CoordinationMode::Coordinated);
    let uncoord = scenario(
        SystemKind::BladeA,
        Mix::H60,
        CoordinationMode::Uncoordinated,
    );
    assert_eq!(coord.comparison.run.pstate_conflicts, 0);
    assert!(uncoord.comparison.run.pstate_conflicts > 0);
}

#[test]
fn coordination_reduces_budget_violations_under_high_activity() {
    // Paper Figure 7, bottom rows: the contrast is "more pronounced ...
    // with high activity workloads".
    let coord = scenario(SystemKind::BladeA, Mix::Hh60, CoordinationMode::Coordinated);
    let uncoord = scenario(
        SystemKind::BladeA,
        Mix::Hh60,
        CoordinationMode::Uncoordinated,
    );
    let total = |c: &Comparison| c.violations_gm_pct + c.violations_em_pct + c.violations_sm_pct;
    assert!(
        total(&coord.comparison) < total(&uncoord.comparison),
        "coordinated {:.1} vs uncoordinated {:.1}",
        total(&coord.comparison),
        total(&uncoord.comparison)
    );
}

#[test]
fn experiments_are_deterministic() {
    let a = scenario(SystemKind::ServerB, Mix::M60, CoordinationMode::Coordinated);
    let b = scenario(SystemKind::ServerB, Mix::M60, CoordinationMode::Coordinated);
    assert_eq!(a.comparison, b.comparison);
    assert_eq!(a.baseline, b.baseline);
}

#[test]
fn controller_masks_compose_like_figure_8() {
    // NoVMC keeps every server on; VMCOnly migrates without touching
    // P-states.
    let base = Scenario::paper(SystemKind::BladeA, Mix::H60, CoordinationMode::Coordinated)
        .horizon(1_200)
        .seed(3);
    let no_vmc = run_experiment(&base.clone().mask(ControllerMask::NO_VMC).build());
    assert_eq!(no_vmc.comparison.run.migrations, 0);
    assert!(no_vmc.comparison.power_savings_pct > 0.0);

    let vmc_only = run_experiment(&base.clone().mask(ControllerMask::VMC_ONLY).build());
    assert!(vmc_only.comparison.run.migrations > 0);

    let all = run_experiment(&base.mask(ControllerMask::ALL).build());
    assert!(
        all.comparison.power_savings_pct >= no_vmc.comparison.power_savings_pct - 1.0,
        "full deployment {:.1}% must not trail NoVMC {:.1}% by much",
        all.comparison.power_savings_pct,
        no_vmc.comparison.power_savings_pct
    );
}

#[test]
fn vmc_epoch_count_scales_with_horizon() {
    // Two VMC epochs fit in 1 500 ticks at T_vmc = 500.
    let cfg = Scenario::paper(SystemKind::BladeA, Mix::L60, CoordinationMode::Coordinated)
        .horizon(1_500)
        .seed(5)
        .build();
    let mut runner = Runner::new(&cfg);
    let stats = runner.run_to_horizon();
    assert_eq!(stats.ticks, 1_500);
    // The light mix consolidates aggressively: some servers must be off.
    let n = runner.sim().topology().num_servers();
    let on = (0..n).filter(|&i| runner.sim().is_on(ServerId(i))).count();
    assert!(on < n, "expected consolidation to power servers off");
}

#[test]
fn electrical_capper_is_never_violated() {
    let frac = 0.8;
    let cfg = Scenario::paper(SystemKind::BladeA, Mix::Hh60, CoordinationMode::Coordinated)
        .electrical_cap(frac)
        .horizon(800)
        .seed(9)
        .build();
    let mut runner = Runner::new(&cfg);
    let budget = frac * ServerModel::blade_a().max_power();
    for _ in 0..800 {
        runner.tick();
        for i in 0..runner.sim().topology().num_servers() {
            let s = ServerId(i);
            assert!(
                runner.sim().server_power(s) <= budget + 1e-9,
                "tick {}: server {i} at {:.1} W exceeds the electrical cap {budget:.1} W",
                runner.ticks_done(),
                runner.sim().server_power(s)
            );
        }
    }
}

//! Differential property tests for the batched structure-of-arrays hot
//! path.
//!
//! The scalar per-object controllers ([`EfficiencyController`],
//! [`ServerManager`]) and per-object [`ServerModel`] lookups are the
//! seed implementation the paper experiments were validated against; the
//! batched [`ControllerBank`] / [`ModelTable`] are the refactored engine
//! the runner now drives. These tests run both in lockstep over
//! randomized fleets, gains, utilization sequences (including NaN
//! sensor garbage), interleaved `r_ref` retunes, grants, and resets, and
//! require **bit-identical** results (`f64::to_bits`), not approximate
//! ones — the same contract the golden-trace suite enforces end to end.

use no_power_struggles::prelude::*;
use proptest::prelude::*;

/// A randomized fleet member: base system, P-state subset, idle scaling.
fn arb_model() -> impl Strategy<Value = ServerModel> {
    (
        prop_oneof![Just(SystemKind::BladeA), Just(SystemKind::ServerB)],
        2usize..6,
        prop_oneof![Just(1.0f64), 0.5f64..1.5],
    )
        .prop_map(|(sys, keep, idle_scale)| {
            let base = sys.model();
            let keep = keep.min(base.num_pstates());
            let indices: Vec<usize> = (0..keep).collect();
            let sub = base.subset(&indices).expect("prefix subset is valid");
            sub.with_idle_scale(idle_scale).unwrap_or(sub)
        })
}

/// A measured utilization sample; `true` turns it into NaN (a faulty
/// sensor reading the EC must treat as idle).
fn arb_util() -> impl Strategy<Value = f64> {
    (-0.2f64..1.4, proptest::bool::ANY)
        .prop_map(|(u, nan)| if nan && u < 0.0 { f64::NAN } else { u })
}

proptest! {
    #[test]
    fn model_table_matches_per_object_models(
        models in proptest::collection::vec(arb_model(), 1..12),
        util in -0.3f64..1.3,
        freq_frac in 0.0f64..1.2,
    ) {
        let table = ModelTable::from_models(&models);
        prop_assert_eq!(table.num_servers(), models.len());
        for (i, m) in models.iter().enumerate() {
            prop_assert_eq!(table.num_pstates(i), m.num_pstates());
            prop_assert_eq!(table.deepest(i), m.deepest());
            prop_assert_eq!(table.max_power(i).to_bits(), m.max_power().to_bits());
            prop_assert_eq!(
                table.max_frequency_hz(i).to_bits(),
                m.max_frequency_hz().to_bits()
            );
            prop_assert_eq!(
                table.min_frequency_hz(i).to_bits(),
                m.min_frequency_hz().to_bits()
            );
            let f = freq_frac * m.max_frequency_hz();
            prop_assert_eq!(table.quantize(i, f), m.quantize(f));
            for p in 0..m.num_pstates() {
                prop_assert_eq!(table.power(i, p, util).to_bits(), m.power(p, util).to_bits());
                prop_assert_eq!(table.idle_power(i, p).to_bits(), m.idle_power(p).to_bits());
                prop_assert_eq!(table.perf(i, p, util).to_bits(), m.perf(p, util).to_bits());
                prop_assert_eq!(
                    table.capacity(i, p).to_bits(),
                    m.capacity(PState(p)).to_bits()
                );
                prop_assert_eq!(table.step_down(i, PState(p)), m.step_down(PState(p)));
                prop_assert_eq!(
                    table.frequency_hz(i, p).to_bits(),
                    m.state(PState(p)).frequency_hz.to_bits()
                );
            }
        }
    }

    #[test]
    fn bank_ec_matches_scalar_controllers_bitwise(
        models in proptest::collection::vec(arb_model(), 1..8),
        lambda in 0.05f64..1.5,
        r_ref0 in 0.7f64..1.6,
        utils in proptest::collection::vec(arb_util(), 1..120),
        retune in 0.7f64..1.6,
    ) {
        let caps: Vec<f64> = models.iter().map(|m| 0.9 * m.max_power()).collect();
        let mut bank = ControllerBank::new(
            ModelTable::from_models(&models), lambda, 1.0, r_ref0, &caps);
        let mut ecs: Vec<EfficiencyController> = models
            .iter()
            .map(|m| EfficiencyController::new(m, lambda, r_ref0))
            .collect();
        for (k, &u) in utils.iter().enumerate() {
            for i in 0..models.len() {
                // Interleave the operations the runner performs between
                // EC epochs: SM retunes, revival resets.
                if k % 11 == 3 {
                    ecs[i].set_r_ref(retune);
                    bank.set_r_ref(i, retune);
                }
                if k % 37 == 17 {
                    ecs[i].reset(&models[i]);
                    bank.ec_reset(i);
                }
                let p_scalar = ecs[i].step(&models[i], u);
                let p_batched = bank.ec_step(i, u);
                prop_assert_eq!(p_scalar, p_batched, "server {} tick {}", i, k);
                prop_assert_eq!(
                    ecs[i].frequency_hz().to_bits(),
                    bank.frequency_hz(i).to_bits(),
                    "server {} tick {}", i, k
                );
                prop_assert_eq!(ecs[i].r_ref().to_bits(), bank.r_ref(i).to_bits());
            }
        }
    }

    #[test]
    fn bank_sm_coordinated_matches_scalar_bitwise(
        models in proptest::collection::vec(arb_model(), 1..8),
        beta in 0.1f64..2.0,
        cap_frac in 0.4f64..1.1,
        powers in proptest::collection::vec(0.0f64..500.0, 1..60),
        grant in -50.0f64..400.0,
    ) {
        let caps: Vec<f64> = models.iter().map(|m| cap_frac * m.max_power()).collect();
        let mut bank = ControllerBank::new(
            ModelTable::from_models(&models), 0.8, beta, 0.75, &caps);
        let mut ecs: Vec<EfficiencyController> = models
            .iter()
            .map(|m| EfficiencyController::new(m, 0.8, 0.75))
            .collect();
        let mut sms: Vec<ServerManager> = models
            .iter()
            .zip(&caps)
            .map(|(m, &c)| ServerManager::new(m, c, beta))
            .collect();
        for (k, &w) in powers.iter().enumerate() {
            for i in 0..models.len() {
                if k % 7 == 2 {
                    // EM grants arrive between SM epochs, including the
                    // negative garbage `set_granted_cap` clamps to zero.
                    sms[i].set_granted_cap(grant);
                    bank.set_granted_cap(i, grant);
                }
                let d_scalar = sms[i].step_coordinated(w, &mut ecs[i]);
                let d_batched = bank.sm_step_coordinated(i, w);
                prop_assert_eq!(d_scalar.violated_static, d_batched.violated_static);
                prop_assert_eq!(d_scalar.violated_effective, d_batched.violated_effective);
                prop_assert_eq!(
                    d_scalar.new_r_ref.unwrap().to_bits(),
                    d_batched.new_r_ref.unwrap().to_bits(),
                    "server {} epoch {}", i, k
                );
                prop_assert_eq!(
                    sms[i].effective_cap_watts().to_bits(),
                    bank.effective_cap_watts(i).to_bits()
                );
                // Feed the retune through the scalar EC so both closed
                // loops stay synchronized.
                prop_assert_eq!(ecs[i].r_ref().to_bits(), bank.r_ref(i).to_bits());
            }
        }
    }

    #[test]
    fn bank_sm_uncoordinated_matches_scalar(
        models in proptest::collection::vec(arb_model(), 1..8),
        cap_frac in 0.3f64..1.0,
        powers in proptest::collection::vec(0.0f64..500.0, 1..40),
        pstate_idx in 0usize..5,
    ) {
        let caps: Vec<f64> = models.iter().map(|m| cap_frac * m.max_power()).collect();
        let mut bank = ControllerBank::new(
            ModelTable::from_models(&models), 0.8, 1.0, 0.75, &caps);
        let mut sms: Vec<ServerManager> = models
            .iter()
            .zip(&caps)
            .map(|(m, &c)| ServerManager::new(m, c, 1.0))
            .collect();
        for &w in &powers {
            for i in 0..models.len() {
                let current = PState(pstate_idx.min(models[i].num_pstates() - 1));
                let (d_scalar, f_scalar) =
                    sms[i].step_uncoordinated(w, current, &models[i]);
                let (d_batched, f_batched) = bank.sm_step_uncoordinated(i, w, current);
                prop_assert_eq!(d_scalar.violated_static, d_batched.violated_static);
                prop_assert_eq!(d_scalar.violated_effective, d_batched.violated_effective);
                prop_assert_eq!(f_scalar, f_batched);
            }
        }
    }
}

proptest! {
    // Full experiments are expensive; a handful of random multi-rack
    // configurations with faults enabled still exercises every epoch
    // path (EC/SM/EM/GM/VMC) through the batched engine.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn batched_runner_is_bit_deterministic_under_faults(
        sys in prop_oneof![Just(SystemKind::BladeA), Just(SystemKind::ServerB)],
        mode in prop_oneof![
            Just(CoordinationMode::Coordinated),
            Just(CoordinationMode::Uncoordinated),
        ],
        racks in 1usize..3,
        enclosures in 1usize..3,
        blades in 2usize..5,
        standalone in 0usize..5,
        seed in 0u64..1_000,
        fault_seed in 0u64..1_000,
        noise in 0.0f64..0.05,
        drop_prob in 0.0f64..0.3,
        loss_prob in 0.0f64..0.3,
    ) {
        let faults = FaultPlan::disabled()
            .with_seed(fault_seed)
            .with_sensor_noise(noise)
            .with_dropped_samples(drop_prob)
            .with_message_loss(loss_prob)
            .with_outage(ControllerLayer::Em, Some(0), 40, 80)
            .sanitized();
        let build = || {
            Scenario::multi_rack(sys, mode, racks, enclosures, blades, standalone)
                .horizon(120)
                .seed(seed)
                .faults(faults.clone())
                .build()
        };
        let a = run_experiment(&build());
        let b = run_experiment(&build());
        // Serialized comparison catches every f64 bit, not just the
        // fields PartialEq happens to visit.
        let ja = serde_json::to_string(&a).expect("results serialize");
        let jb = serde_json::to_string(&b).expect("results serialize");
        prop_assert_eq!(ja, jb, "same config + seed must be bit-identical");
        prop_assert!(a.comparison.run.energy >= 0.0);
    }
}

//! Integration tests for the paper's §6/§7 extensions: heterogeneous
//! fleets, boot delays, enclosure base power, energy-delay objectives,
//! and the event audit trail.

use no_power_struggles::prelude::*;
use no_power_struggles::sim::Event;

#[test]
fn heterogeneous_fleet_drains_high_idle_servers_first() {
    let cfg = Scenario::paper(
        SystemKind::BladeA,
        Mix::All180,
        CoordinationMode::Coordinated,
    )
    .heterogeneous()
    .horizon(1_500)
    .seed(31)
    .build();
    // models_override: blades = Blade A, standalone = Server B.
    let models = cfg.server_models();
    assert_eq!(models[0].name(), "Blade A");
    assert_eq!(models[179].name(), "Server B");
    let mut runner = Runner::new(&cfg);
    runner.run_to_horizon();
    let topo = runner.sim().topology().clone();
    let standalone_on = topo
        .standalone_servers()
        .iter()
        .filter(|&&s| runner.sim().is_on(s))
        .count();
    let blades_on = topo
        .servers()
        .filter(|&s| topo.enclosure_of(s).is_some() && runner.sim().is_on(s))
        .count();
    // The power-aware VMC parks load on efficient blades; most of the
    // idle-hungry standalone boxes go dark.
    assert!(
        standalone_on < 60 / 2,
        "expected most Server B boxes off, {standalone_on}/60 still on ({blades_on}/120 blades on)"
    );
}

#[test]
fn boot_delay_costs_energy_but_not_correctness() {
    let base = Scenario::paper(SystemKind::ServerB, Mix::M60, CoordinationMode::Coordinated)
        .horizon(1_500)
        .seed(37);
    let instant = run_experiment(&base.clone().build());
    let slow_boot = run_experiment(
        &base
            .sim(SimConfig {
                boot_delay_ticks: 50,
                ..SimConfig::default()
            })
            .build(),
    );
    // Boot burn shows up as slightly lower savings and/or delivered work,
    // never as budget chaos.
    assert!(slow_boot.comparison.power_savings_pct <= instant.comparison.power_savings_pct + 1.0);
    assert!(slow_boot.comparison.violations_sm_pct < 20.0);
}

#[test]
fn enclosure_base_power_reduces_relative_savings() {
    let base = Scenario::paper(SystemKind::BladeA, Mix::M60, CoordinationMode::Coordinated)
        .horizon(1_200)
        .seed(41);
    let without = run_experiment(&base.clone().build());
    let with_base = run_experiment(
        &base
            .sim(SimConfig::default().with_enclosure_base(200.0))
            .build(),
    );
    // The enclosure overhead is unmanageable (fans run regardless), so
    // the *relative* savings shrink.
    assert!(
        with_base.comparison.power_savings_pct < without.comparison.power_savings_pct,
        "base power {:.1}% vs none {:.1}%",
        with_base.comparison.power_savings_pct,
        without.comparison.power_savings_pct
    );
    // And absolute energy grows.
    assert!(with_base.baseline.energy > without.baseline.energy);
}

#[test]
fn energy_delay_objective_trades_savings_for_latency() {
    let base = Scenario::paper(
        SystemKind::BladeA,
        Mix::All180,
        CoordinationMode::Coordinated,
    )
    .horizon(1_500)
    .seed(43);
    let power = run_experiment(&base.clone().build());
    let vmc = VmcConfig {
        objective: Objective::EnergyDelay,
        ..Default::default()
    };
    let ed = run_experiment(&base.vmc(vmc).build());
    // The delay-aware objective must not *increase* the latency stretch.
    assert!(
        ed.comparison.latency_stretch <= power.comparison.latency_stretch + 0.05,
        "energy-delay {:.2} vs power {:.2}",
        ed.comparison.latency_stretch,
        power.comparison.latency_stretch
    );
}

#[test]
fn event_log_records_the_run_story() {
    let cfg = Scenario::paper(SystemKind::BladeA, Mix::M60, CoordinationMode::Coordinated)
        .horizon(1_200)
        .seed(47)
        .build();
    let mut runner = Runner::new(&cfg);
    runner.run_to_horizon();
    let events = runner.sim().events();
    assert!(events.total_events() > 0);
    let migrations = events.filter(|e| matches!(e.event, Event::MigrationStarted { .. }));
    assert_eq!(migrations.len() as u64, {
        // All migrations retained unless the ring overflowed.
        let total = runner.sim().migrations_started();
        total.min(migrations.len() as u64)
    });
    let off = events.filter(|e| matches!(e.event, Event::PoweredOff { .. }));
    assert!(
        !off.is_empty(),
        "consolidation must have powered servers off"
    );
    // Ticks are monotone oldest-first.
    let recent = events.recent();
    for w in recent.windows(2) {
        assert!(w[0].tick <= w[1].tick);
    }
}

#[test]
fn power_trace_records_bounded_trajectory() {
    let cfg = Scenario::paper(SystemKind::BladeA, Mix::L60, CoordinationMode::Coordinated)
        .horizon(2_000)
        .seed(53)
        .build();
    let mut runner = Runner::new(&cfg);
    runner.enable_power_trace(128);
    let stats = runner.run_to_horizon();
    let trace = runner.power_trace().expect("trace enabled");
    assert!(trace.len() <= 128);
    assert!(!trace.is_empty());
    // The trace's mean approximates the run's mean power.
    let rel_err = (trace.mean() - stats.mean_power()).abs() / stats.mean_power();
    assert!(rel_err < 0.05, "trace mean off by {:.1}%", 100.0 * rel_err);
    // Consolidation after the first VMC epoch shows as a power drop.
    let points = trace.points();
    let early = points.first().unwrap().1;
    let late = points.last().unwrap().1;
    assert!(
        late < early,
        "light mix should consolidate: {early} -> {late}"
    );
}

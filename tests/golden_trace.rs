//! Golden-trace regression suite.
//!
//! Each case runs a fixed-seed experiment and compares its full
//! [`ExperimentResult`] (fig7/fig8-style summary metrics) plus the first
//! and last ten telemetry events against a checked-in golden JSON file
//! under `tests/goldens/`. Any numeric drift — even in the last bit of an
//! f64 — fails the suite, which is what makes deep hot-path refactors
//! (the batched SoA engine) safe to land: identical seeds must produce
//! bit-identical trajectories.
//!
//! To refresh the goldens after an *intentional* behavior change:
//!
//! ```sh
//! NPS_UPDATE_GOLDENS=1 cargo test --test golden_trace
//! ```

use no_power_struggles::prelude::*;
use serde::{Deserialize, Serialize, Value};
use std::path::PathBuf;

/// Telemetry head/tail length kept in each golden.
const EVENT_WINDOW: usize = 10;

/// The checked-in shape of one golden case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenTrace {
    /// Case name (also the file stem).
    name: String,
    /// The baseline-normalized experiment outcome, bit-exact.
    result: ExperimentResult,
    /// Total telemetry events emitted over the run.
    telemetry_total: u64,
    /// The first `EVENT_WINDOW` telemetry events.
    telemetry_first: Vec<TelemetryEvent>,
    /// The last `EVENT_WINDOW` telemetry events.
    telemetry_last: Vec<TelemetryEvent>,
}

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("goldens")
}

fn update_requested() -> bool {
    std::env::var_os("NPS_UPDATE_GOLDENS").is_some_and(|v| v != "0" && !v.is_empty())
}

/// Runs one configuration and captures its golden shape: the experiment
/// result plus head/tail of the telemetry stream.
///
/// `NPS_THREADS` re-runs the whole suite with that worker-thread count;
/// parallel execution is bit-identical, so every golden must pass
/// *unregenerated* at any value (CI runs 1 and 4).
fn capture(name: &str, cfg: &ExperimentConfig) -> GoldenTrace {
    let mut cfg = cfg.clone();
    if let Some(threads) = std::env::var("NPS_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        cfg.threads = threads.max(1);
    }
    let cfg = &cfg;
    let result = run_experiment(cfg);
    // A second, telemetry-instrumented run of the same config; runs are
    // deterministic, so this replays the exact trajectory of `result`.
    let mut runner = Runner::new(cfg);
    runner.enable_ring_telemetry(1 << 22);
    runner.run_to_horizon();
    let ring = runner
        .ring_telemetry()
        .expect("ring recorder was installed");
    let events: Vec<TelemetryEvent> = ring.events().cloned().collect();
    let total: u64 = EventKind::ALL.iter().map(|&k| ring.count(k)).sum();
    assert_eq!(
        events.len() as u64,
        total,
        "ring capacity must exceed the event volume for golden capture"
    );
    let head = events.iter().take(EVENT_WINDOW).cloned().collect();
    let tail = events
        .iter()
        .skip(events.len().saturating_sub(EVENT_WINDOW))
        .cloned()
        .collect();
    GoldenTrace {
        name: name.to_string(),
        result,
        telemetry_total: total,
        telemetry_first: head,
        telemetry_last: tail,
    }
}

/// Recursively diffs two JSON values, collecting the paths (and values)
/// that differ so a mismatch names exactly what moved.
fn diff_values(path: &str, golden: &Value, fresh: &Value, out: &mut Vec<String>) {
    const MAX_REPORTED: usize = 12;
    if out.len() >= MAX_REPORTED {
        return;
    }
    match (golden, fresh) {
        (Value::Object(g), Value::Object(f)) => {
            for (key, gv) in g {
                let sub = format!("{path}.{key}");
                match f.iter().find(|(k, _)| k == key) {
                    Some((_, fv)) => diff_values(&sub, gv, fv, out),
                    None => out.push(format!("{sub}: missing in fresh output")),
                }
            }
            for (key, _) in f {
                if !g.iter().any(|(k, _)| k == key) {
                    out.push(format!("{path}.{key}: not present in golden"));
                }
            }
        }
        (Value::Array(g), Value::Array(f)) => {
            if g.len() != f.len() {
                out.push(format!(
                    "{path}: length changed, golden {} vs fresh {}",
                    g.len(),
                    f.len()
                ));
            }
            for (i, (gv, fv)) in g.iter().zip(f.iter()).enumerate() {
                diff_values(&format!("{path}[{i}]"), gv, fv, out);
            }
        }
        (g, f) if g != f => out.push(format!("{path}: golden {g:?} vs fresh {f:?}")),
        _ => {}
    }
}

/// Compares a freshly captured trace against the checked-in golden (or
/// rewrites the golden under `NPS_UPDATE_GOLDENS=1`).
fn check_golden(name: &str, cfg: &ExperimentConfig) {
    let fresh = capture(name, cfg);
    let path = goldens_dir().join(format!("{name}.json"));
    if update_requested() {
        std::fs::create_dir_all(goldens_dir()).expect("create goldens dir");
        let json = serde_json::to_string_pretty(&fresh).expect("golden serializes");
        std::fs::write(&path, json + "\n").expect("write golden");
        eprintln!("updated golden {}", path.display());
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\n\
             run `NPS_UPDATE_GOLDENS=1 cargo test --test golden_trace` to record it",
            path.display()
        )
    });
    let golden: GoldenTrace = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("golden {} does not parse: {e}", path.display()));
    if golden == fresh {
        // Typed equality is the strongest check; also guard the JSON form
        // so serializer regressions (field renames) surface here.
        return;
    }
    // Build a field-level diff for the failure message.
    let golden_v: Value = serde::parse(&text).expect("golden reparses as Value");
    let fresh_json = serde_json::to_string_pretty(&fresh).expect("fresh serializes");
    let fresh_v: Value = serde::parse(&fresh_json).expect("fresh reparses as Value");
    let mut diffs = Vec::new();
    diff_values("$", &golden_v, &fresh_v, &mut diffs);
    if diffs.is_empty() {
        diffs.push("typed values differ but JSON forms match (serializer drift?)".to_string());
    }
    panic!(
        "golden-trace mismatch for `{name}` ({} differing fields shown):\n  {}\n\
         If this change is intentional, refresh with \
         `NPS_UPDATE_GOLDENS=1 cargo test --test golden_trace`.",
        diffs.len(),
        diffs.join("\n  ")
    );
}

/// A moderately adversarial fault plan: every fault family enabled at
/// low rates plus one EM outage window, all seeded.
fn golden_fault_plan() -> FaultPlan {
    FaultPlan::disabled()
        .with_seed(99)
        .with_sensor_noise(0.02)
        .with_stuck_sensors(0.01, 12)
        .with_dropped_samples(0.01)
        .with_stuck_actuators(0.005, 8)
        .with_message_loss(0.02)
        .with_outage(ControllerLayer::Em, Some(0), 200, 320)
}

#[test]
fn golden_blade_a_180_coordinated() {
    let cfg = Scenario::paper(
        SystemKind::BladeA,
        Mix::All180,
        CoordinationMode::Coordinated,
    )
    .horizon(800)
    .seed(7)
    .build();
    check_golden("blade_a_180_coordinated", &cfg);
}

#[test]
fn golden_server_b_60hh_uncoordinated() {
    let cfg = Scenario::paper(
        SystemKind::ServerB,
        Mix::Hh60,
        CoordinationMode::Uncoordinated,
    )
    .horizon(800)
    .seed(11)
    .build();
    check_golden("server_b_60hh_uncoordinated", &cfg);
}

#[test]
fn golden_blade_a_60m_vmconly() {
    let cfg = Scenario::paper(SystemKind::BladeA, Mix::M60, CoordinationMode::Coordinated)
        .mask(ControllerMask::VMC_ONLY)
        .horizon(1_100)
        .seed(13)
        .build();
    check_golden("blade_a_60m_vmconly", &cfg);
}

#[test]
fn golden_server_b_60h_coordinated_faults() {
    let cfg = Scenario::paper(SystemKind::ServerB, Mix::H60, CoordinationMode::Coordinated)
        .horizon(700)
        .seed(17)
        .faults(golden_fault_plan())
        .build();
    check_golden("server_b_60h_coordinated_faults", &cfg);
}

#[test]
fn golden_multi_rack_bus_faults() {
    // Scale-out topology with the control-plane bus under delivery
    // faults: delayed/reordered/duplicated/dropped grants, leases, and
    // retransmission with backoff. Pins the bus fault model's RNG
    // stream and the lease state machine bit-exactly.
    let bus = BusConfig::default()
        .with_seed(31)
        .with_delay(1, 1)
        .with_drop(0.04)
        .with_duplication(0.02)
        .with_reordering(0.05, 2)
        .with_leases(30)
        .with_retry(RetryConfig {
            max_attempts: 2,
            backoff_base_ticks: 2,
            backoff_max_ticks: 16,
            jitter_ticks: 1,
        });
    let cfg = Scenario::multi_rack(
        SystemKind::BladeA,
        CoordinationMode::Coordinated,
        2,
        2,
        4,
        2,
    )
    .horizon(400)
    .seed(29)
    .bus(bus)
    .build();
    check_golden("multi_rack_bus_faults", &cfg);
}

#[test]
fn golden_lopsided_weighted_shards() {
    // One 4x rack (4 enclosures x 32 blades) towering over four small
    // racks (1 enclosure x 8 each) and a standalone tail: pins the
    // size-weighted shard assignment (cuts land at enclosure boundaries
    // near the ideal positions, not per-rack), the parallel EM epoch
    // over heterogeneous enclosure sizes, and the sharded electrical
    // clamp, under the full adversarial fault plan.
    let topo = Topology::builder()
        .rack(4, 32)
        .racks(4, 1, 8)
        .standalone(6)
        .build();
    let cfg = Scenario::paper(
        SystemKind::BladeA,
        Mix::All180,
        CoordinationMode::Coordinated,
    )
    .topology(topo)
    .electrical_cap(0.9)
    .horizon(400)
    .seed(43)
    .faults(golden_fault_plan())
    .build();
    check_golden("lopsided_weighted_shards", &cfg);
}

#[test]
fn golden_gm_vmc_parallel() {
    // Multi-rack fleet with every parallel control-plane path hot at
    // once: a tight GM period (many GM epochs, per-child counter-stream
    // sensor draws in the fan-out), the VMC inside the horizon (sharded
    // demand accumulators feeding real migrations), sensor + actuator
    // faults, and an electrical cap. Captured at `NPS_THREADS=1`; CI
    // asserts it unregenerated at 4 and 7.
    let cfg = Scenario::multi_rack(
        SystemKind::BladeA,
        CoordinationMode::Coordinated,
        2,
        2,
        8,
        4,
    )
    .intervals(Intervals {
        ec: 1,
        sm: 5,
        em: 10,
        gm: 20,
        vmc: 120,
    })
    .electrical_cap(0.9)
    .horizon(500)
    .seed(59)
    .faults(golden_fault_plan())
    .build();
    check_golden("gm_vmc_parallel", &cfg);
}

#[test]
fn golden_vmc_parallel_arbitration() {
    // The fixed-shape-reduction hot path end to end: a 68-server
    // multi-rack fleet (≥ 64 VMs, so the VMC demand pass, its
    // arbitration-telemetry reduction, and the per-tick latency-proxy
    // sum all take the pool-parallel tree driver when threads > 1), a
    // tight VMC period (8 arbitration epochs in the horizon), an
    // electrical cap, the full sensor/actuator/message fault plan, and
    // a lossy delaying bus with leases + retries. Captured at
    // `NPS_THREADS=1`; CI asserts it unregenerated at 4 and 7 — the
    // tree makes that bit-exact by construction.
    let bus = BusConfig::default()
        .with_seed(41)
        .with_delay(1, 1)
        .with_drop(0.04)
        .with_duplication(0.02)
        .with_reordering(0.05, 2)
        .with_leases(30)
        .with_retry(RetryConfig {
            max_attempts: 2,
            backoff_base_ticks: 2,
            backoff_max_ticks: 16,
            jitter_ticks: 1,
        });
    let cfg = Scenario::multi_rack(
        SystemKind::BladeA,
        CoordinationMode::Coordinated,
        2,
        2,
        8,
        4,
    )
    .intervals(Intervals {
        ec: 1,
        sm: 5,
        em: 10,
        gm: 20,
        vmc: 60,
    })
    .electrical_cap(0.9)
    .horizon(500)
    .seed(67)
    .faults(golden_fault_plan())
    .bus(bus)
    .build();
    check_golden("vmc_parallel_arbitration", &cfg);
}

#[test]
fn golden_failover_standby() {
    // Warm-standby failover under fire: a whole-layer GM outage and an
    // instance EM outage, both bridged by standbys, with the
    // safety-invariant monitor on. Pins the heartbeat/term protocol, the
    // sync-stream traffic on the bus, fencing of the returning
    // primaries, and the fact that coordinated capping never degrades
    // to static caps while a standby is healthy.
    let cfg = Scenario::paper(SystemKind::BladeA, Mix::Hh60, CoordinationMode::Coordinated)
        .horizon(700)
        .seed(47)
        .faults(
            FaultPlan::disabled()
                .with_seed(53)
                .with_outage(ControllerLayer::Gm, None, 150, 300)
                .with_outage(ControllerLayer::Em, Some(0), 350, 450),
        )
        .standbys()
        .invariants(true)
        .build();
    check_golden("failover_standby", &cfg);
}

#[test]
fn golden_hetero_electrical_coordinated() {
    let cfg = Scenario::paper(SystemKind::BladeA, Mix::L60, CoordinationMode::Coordinated)
        .heterogeneous()
        .electrical_cap(0.92)
        .horizon(600)
        .seed(23)
        .build();
    check_golden("hetero_electrical_coordinated", &cfg);
}

//! Controller-redundancy integration tests: warm-standby promotion,
//! term fencing, the lease/promotion same-tick race, and the
//! thread-invisibility of the whole protocol.
//!
//! The paper's architecture tolerates controller loss by degrading to
//! static caps; the redundancy subsystem upgrades that story — a GM/EM
//! outage is bridged by promoting a warm standby within the heartbeat
//! miss threshold, so coordinated capping never stops and the static-cap
//! fallback stays idle while a standby is healthy.

use no_power_struggles::prelude::*;
use proptest::prelude::*;

/// Thread counts swept against the sequential reference.
const SWEEP: [usize; 3] = [2, 4, 7];

/// End-state fingerprint: bit-packed checkpoint JSON, full telemetry
/// stream, and raw stats (same contract as `parallel_differential`).
fn fingerprint(cfg: &ExperimentConfig) -> (String, Vec<TelemetryEvent>, RunStats) {
    let mut runner = Runner::new(cfg);
    runner.enable_ring_telemetry(1 << 20);
    let stats = runner.run_to_horizon();
    let events: Vec<TelemetryEvent> = runner
        .ring_telemetry()
        .expect("ring recorder was installed")
        .events()
        .cloned()
        .collect();
    let snap = runner.snapshot();
    let json = serde_json::to_string(&snap).expect("snapshot serializes");
    (json, events, stats)
}

/// A paper scenario with a whole-layer outage window and standbys on.
fn standby_cfg(layer: ControllerLayer, start: u64, end: u64) -> ExperimentConfig {
    Scenario::paper(SystemKind::BladeA, Mix::Hh60, CoordinationMode::Coordinated)
        .horizon(600)
        .seed(37)
        .faults(
            FaultPlan::disabled()
                .with_seed(41)
                .with_outage(layer, None, start, end),
        )
        .standbys()
        .invariants(true)
        .build()
}

#[test]
fn gm_standby_promotes_within_miss_threshold_and_keeps_capping() {
    let cfg = standby_cfg(ControllerLayer::Gm, 150, 300);
    let rc = cfg.redundancy;
    let mut runner = Runner::new(&cfg);
    runner.enable_ring_telemetry(1 << 20);
    runner.run_to_horizon();
    let rstats = runner.redundancy_stats();
    let istats = runner.invariant_stats();
    let faults = runner.fault_stats();

    // One promotion across the outage, one fencing when the primary
    // returns, and the fence rides the existing stale-rejection path.
    assert_eq!(rstats.promotions, 1);
    assert_eq!(rstats.fenced, 1);
    assert!(
        faults.stale_rejected >= 1,
        "fencing counts as StaleRejected"
    );
    // Coordinated capping never fell back to static caps.
    assert_eq!(faults.degradations, 0);
    // Zero safety-invariant violations while failing over.
    assert!(istats.is_clean(), "invariant violations: {istats}");
    // The replica ends re-integrated as standby on the bumped term.
    let rep = runner.gm_replica().expect("GM standby configured");
    assert!(!rep.promoted);
    assert_eq!(rep.term, 2);

    // Promotion landed within the miss threshold of the outage start.
    let deadline = 150 + rc.heartbeat_interval_ticks * rc.miss_threshold as u64;
    let events: Vec<TelemetryEvent> = runner
        .ring_telemetry()
        .expect("ring recorder was installed")
        .events()
        .cloned()
        .collect();
    let promoted_at = events
        .iter()
        .find_map(|e| match e {
            TelemetryEvent::FailoverPromoted { tick, .. } => Some(*tick),
            _ => None,
        })
        .expect("a FailoverPromoted event was emitted");
    assert!(
        (150..=deadline).contains(&promoted_at),
        "promotion at {promoted_at}, outside [150, {deadline}]"
    );
    // The returning primary was re-integrated after the outage end.
    assert!(events.iter().any(|e| matches!(
        e,
        TelemetryEvent::StandbyReintegrated { tick, .. } if *tick >= 300
    )));
}

#[test]
fn em_standbys_bridge_a_whole_layer_outage() {
    let cfg = standby_cfg(ControllerLayer::Em, 150, 300);
    let mut runner = Runner::new(&cfg);
    runner.run_to_horizon();
    let rstats = runner.redundancy_stats();
    let faults = runner.fault_stats();
    let num_ems = cfg.topology.num_enclosures();
    assert!(num_ems >= 1);
    // Every enclosure's standby promoted once and was fenced once.
    assert_eq!(rstats.promotions, num_ems as u64);
    assert_eq!(rstats.fenced, num_ems as u64);
    assert_eq!(faults.degradations, 0);
    assert!(runner.invariant_stats().is_clean());
    // Sync traffic actually flowed (the shadows were not stillborn).
    assert!(rstats.syncs_applied > 0);
    for e in 0..num_ems {
        let rep = runner.em_replica(e).expect("EM standby configured");
        assert_eq!(rep.term, 2, "enclosure {e} term");
        assert!(!rep.promoted, "enclosure {e} re-integrated");
    }
}

#[test]
fn without_standby_the_same_outage_degrades_to_static_caps() {
    // Control experiment for the two tests above: the identical outage
    // with redundancy off must take the legacy static-cap fallback.
    let mut cfg = standby_cfg(ControllerLayer::Gm, 150, 300);
    cfg.redundancy = RedundancyConfig::default();
    let mut runner = Runner::new(&cfg);
    runner.run_to_horizon();
    assert_eq!(runner.redundancy_stats().promotions, 0);
    assert!(runner.fault_stats().degradations > 0);
    assert!(runner.fault_stats().outage_epochs > 0);
    assert!(runner.invariant_stats().is_clean());
}

#[test]
fn lease_expiry_races_same_tick_promotion() {
    // Engineered collision: with T_em = 10, leases of 20 ticks, and an
    // EM outage starting at t = 100, the last healthy member grants go
    // out at t = 90 with lease_until = 110 — exactly the tick the
    // failure detector (heartbeat 5, miss 3) promotes the standby. The
    // expiry sweep runs first in `act`, reverting members to static
    // caps; the promoted standby re-grants within the same tick's EM
    // epoch. Both events must happen, and the whole race must be
    // bit-identical at every thread count.
    let bus = BusConfig::default().with_seed(5).with_leases(20);
    let cfg = Scenario::paper(SystemKind::BladeA, Mix::Hh60, CoordinationMode::Coordinated)
        .intervals(Intervals {
            ec: 1,
            sm: 5,
            em: 10,
            gm: 20,
            vmc: 600,
        })
        .horizon(400)
        .seed(23)
        .faults(FaultPlan::disabled().with_seed(29).with_outage(
            ControllerLayer::Em,
            None,
            100,
            160,
        ))
        .bus(bus)
        .standbys()
        .invariants(true)
        .build();
    assert_eq!(cfg.redundancy.heartbeat_interval_ticks, 5);
    assert_eq!(cfg.redundancy.miss_threshold, 3);
    let mut runner = Runner::new(&cfg);
    runner.enable_ring_telemetry(1 << 20);
    runner.run_to_horizon();
    let events: Vec<TelemetryEvent> = runner
        .ring_telemetry()
        .expect("ring recorder was installed")
        .events()
        .cloned()
        .collect();
    let promo_tick = events
        .iter()
        .find_map(|e| match e {
            TelemetryEvent::FailoverPromoted { tick, .. } => Some(*tick),
            _ => None,
        })
        .expect("standby promoted");
    assert_eq!(promo_tick, 110, "promotion lands at outage + 2 heartbeats");
    assert!(
        events.iter().any(|e| matches!(
            e,
            TelemetryEvent::LeaseExpired { tick, .. } if *tick == promo_tick
        )),
        "a lease expires on the promotion tick itself"
    );
    assert!(runner.fault_stats().leases_expired > 0);
    assert!(runner.invariant_stats().is_clean());

    // The race resolves identically at every thread count.
    let reference = fingerprint(&cfg);
    for &threads in &SWEEP {
        let mut c = cfg.clone();
        c.threads = threads;
        let got = fingerprint(&c);
        assert_eq!(got.2, reference.2, "stats diverged at {threads} threads");
        assert_eq!(
            got.1, reference.1,
            "telemetry diverged at {threads} threads"
        );
        assert_eq!(
            got.0, reference.0,
            "checkpoint diverged at {threads} threads"
        );
    }
}

#[test]
fn snapshots_capture_replica_state_mid_outage() {
    // Checkpoint in the middle of the promoted window and resume: the
    // resumed run (including term numbers and in-flight syncs) must
    // finish byte-identical to the uninterrupted one.
    let cfg = standby_cfg(ControllerLayer::Gm, 150, 300);
    let mut reference = Runner::new(&cfg);
    reference.run_to_horizon();
    let want = serde_json::to_string(&reference.snapshot()).expect("snapshot serializes");

    let mut first = Runner::new(&cfg);
    while first.ticks_done() < 200 {
        first.tick();
    }
    let mid = first.snapshot();
    assert!(
        mid.gm_replica
            .as_ref()
            .expect("replica in snapshot")
            .promoted,
        "checkpoint taken while the standby leads"
    );
    let mut resumed = Runner::resume(&cfg, &mid).expect("checkpoint resumes");
    resumed.run_to_horizon();
    let got = serde_json::to_string(&resumed.snapshot()).expect("snapshot serializes");
    assert_eq!(got, want, "mid-failover resume diverged");
}

/// Randomized outage schedules with standbys + invariants on: the
/// protocol (heartbeats, promotions, fencing, sync traffic on the shared
/// bus) must be invisible to the thread count — bit-identical stats,
/// telemetry, and checkpoints across {1, 2, 4, 7} — and must never
/// trip the safety-invariant monitor.
fn arb_outage_plan() -> impl Strategy<Value = FaultPlan> {
    (
        0u64..1_000,
        0usize..3,
        20u64..70,
        30u64..90,
        proptest::bool::ANY,
        0.0f64..0.05,
    )
        .prop_map(|(seed, layer_idx, start, len, whole, loss)| {
            let layer = [
                ControllerLayer::Sm,
                ControllerLayer::Em,
                ControllerLayer::Gm,
            ][layer_idx];
            let instance = if whole { None } else { Some(0) };
            FaultPlan::disabled()
                .with_seed(seed)
                .with_message_loss(loss)
                .with_outage(layer, instance, start, start + len)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn failover_is_invisible_to_thread_count(
        (racks, encs, blades) in (1usize..3, 1usize..3, 2usize..5),
        standalone in 1usize..4,
        seed in 0u64..1_000,
        plan in arb_outage_plan(),
        lease in prop_oneof![Just(0u64), 15u64..40],
        (interval, miss) in (2u64..8, 1u32..4),
    ) {
        let bus = BusConfig::default().with_seed(seed).with_leases(lease);
        let cfg = Scenario::multi_rack(
            SystemKind::BladeA,
            CoordinationMode::Coordinated,
            racks,
            encs,
            blades,
            standalone,
        )
        .horizon(160)
        .seed(seed)
        .faults(plan)
        .bus(bus)
        .redundancy(RedundancyConfig::all_standbys().with_heartbeat(interval, miss))
        .invariants(true)
        .build();
        let reference = fingerprint(&cfg);
        for &threads in &SWEEP {
            let mut c = cfg.clone();
            c.threads = threads;
            let got = fingerprint(&c);
            prop_assert_eq!(&got.2, &reference.2, "stats diverged at {} threads", threads);
            prop_assert_eq!(&got.1, &reference.1, "telemetry diverged at {} threads", threads);
            prop_assert_eq!(&got.0, &reference.0, "checkpoint diverged at {} threads", threads);
        }
        let mut runner = Runner::new(&cfg);
        runner.run_to_horizon();
        prop_assert!(
            runner.invariant_stats().is_clean(),
            "invariant violations under failover: {}",
            runner.invariant_stats()
        );
    }
}

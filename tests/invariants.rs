//! Safety-invariant monitor sweep: re-runs the golden-suite
//! configurations (plus fault/bus/standby variants) with the runtime
//! monitor enabled and requires **zero violations** everywhere. The
//! golden traces pin trajectories bit-exactly; this suite pins the
//! *meaning* of those trajectories — electrical caps respected, server
//! caps above the deepest p-state floor, leases within bounds, and
//! budget conservation at every EM/GM epoch.

use no_power_struggles::prelude::*;

/// The golden fault plan from `golden_trace.rs`: every fault family at
/// low rates plus one EM outage window.
fn golden_fault_plan() -> FaultPlan {
    FaultPlan::disabled()
        .with_seed(99)
        .with_sensor_noise(0.02)
        .with_stuck_sensors(0.01, 12)
        .with_dropped_samples(0.01)
        .with_stuck_actuators(0.005, 8)
        .with_message_loss(0.02)
        .with_outage(ControllerLayer::Em, Some(0), 200, 320)
}

/// Runs `cfg` with the monitor forced on and asserts a clean audit with
/// a non-trivial number of checks.
fn assert_clean(name: &str, cfg: &ExperimentConfig) {
    let mut cfg = cfg.clone();
    cfg.invariants = true;
    let mut runner = Runner::new(&cfg);
    runner.run_to_horizon();
    let istats = runner.invariant_stats();
    assert!(
        istats.checks > 0,
        "{name}: the monitor ran but checked nothing"
    );
    assert!(istats.is_clean(), "{name}: invariant violations: {istats}");
}

#[test]
fn blade_a_180_coordinated_is_clean() {
    let cfg = Scenario::paper(
        SystemKind::BladeA,
        Mix::All180,
        CoordinationMode::Coordinated,
    )
    .horizon(800)
    .seed(7)
    .build();
    assert_clean("blade_a_180_coordinated", &cfg);
}

#[test]
fn server_b_60hh_uncoordinated_is_clean() {
    let cfg = Scenario::paper(
        SystemKind::ServerB,
        Mix::Hh60,
        CoordinationMode::Uncoordinated,
    )
    .horizon(800)
    .seed(11)
    .build();
    assert_clean("server_b_60hh_uncoordinated", &cfg);
}

#[test]
fn blade_a_60m_vmconly_is_clean() {
    let cfg = Scenario::paper(SystemKind::BladeA, Mix::M60, CoordinationMode::Coordinated)
        .mask(ControllerMask::VMC_ONLY)
        .horizon(1_100)
        .seed(13)
        .build();
    assert_clean("blade_a_60m_vmconly", &cfg);
}

#[test]
fn server_b_60h_coordinated_faults_is_clean() {
    let cfg = Scenario::paper(SystemKind::ServerB, Mix::H60, CoordinationMode::Coordinated)
        .horizon(700)
        .seed(17)
        .faults(golden_fault_plan())
        .build();
    assert_clean("server_b_60h_coordinated_faults", &cfg);
}

#[test]
fn multi_rack_bus_faults_is_clean() {
    let bus = BusConfig::default()
        .with_seed(31)
        .with_delay(1, 1)
        .with_drop(0.04)
        .with_duplication(0.02)
        .with_reordering(0.05, 2)
        .with_leases(30)
        .with_retry(RetryConfig {
            max_attempts: 2,
            backoff_base_ticks: 2,
            backoff_max_ticks: 16,
            jitter_ticks: 1,
        });
    let cfg = Scenario::multi_rack(
        SystemKind::BladeA,
        CoordinationMode::Coordinated,
        2,
        2,
        4,
        2,
    )
    .horizon(400)
    .seed(29)
    .bus(bus)
    .build();
    assert_clean("multi_rack_bus_faults", &cfg);
}

#[test]
fn lopsided_weighted_shards_is_clean() {
    let topo = Topology::builder()
        .rack(4, 32)
        .racks(4, 1, 8)
        .standalone(6)
        .build();
    let cfg = Scenario::paper(
        SystemKind::BladeA,
        Mix::All180,
        CoordinationMode::Coordinated,
    )
    .topology(topo)
    .electrical_cap(0.9)
    .horizon(400)
    .seed(43)
    .faults(golden_fault_plan())
    .build();
    assert_clean("lopsided_weighted_shards", &cfg);
}

#[test]
fn gm_vmc_parallel_is_clean() {
    let cfg = Scenario::multi_rack(
        SystemKind::BladeA,
        CoordinationMode::Coordinated,
        2,
        2,
        8,
        4,
    )
    .intervals(Intervals {
        ec: 1,
        sm: 5,
        em: 10,
        gm: 20,
        vmc: 120,
    })
    .electrical_cap(0.9)
    .horizon(500)
    .seed(59)
    .faults(golden_fault_plan())
    .build();
    assert_clean("gm_vmc_parallel", &cfg);
}

#[test]
fn hetero_electrical_coordinated_is_clean() {
    let cfg = Scenario::paper(SystemKind::BladeA, Mix::L60, CoordinationMode::Coordinated)
        .heterogeneous()
        .electrical_cap(0.92)
        .horizon(600)
        .seed(23)
        .build();
    assert_clean("hetero_electrical_coordinated", &cfg);
}

#[test]
fn failover_standby_is_clean() {
    let cfg = Scenario::paper(SystemKind::BladeA, Mix::Hh60, CoordinationMode::Coordinated)
        .horizon(700)
        .seed(47)
        .faults(
            FaultPlan::disabled()
                .with_seed(53)
                .with_outage(ControllerLayer::Gm, None, 150, 300)
                .with_outage(ControllerLayer::Em, Some(0), 350, 450),
        )
        .standbys()
        .invariants(true)
        .build();
    assert_clean("failover_standby", &cfg);
}

#[test]
fn monitor_off_by_default_and_free_when_off() {
    // With `invariants: false` (the default), the sweep never runs: the
    // audit counters stay zero and no `InvariantViolated` events can be
    // emitted.
    let cfg = Scenario::paper(
        SystemKind::BladeA,
        Mix::All180,
        CoordinationMode::Coordinated,
    )
    .horizon(200)
    .seed(7)
    .build();
    assert!(!cfg.invariants);
    let mut runner = Runner::new(&cfg);
    runner.run_to_horizon();
    let istats = runner.invariant_stats();
    assert_eq!(istats.checks, 0);
    assert!(istats.is_clean());
}

#[test]
fn monitor_does_not_perturb_the_trajectory() {
    // The monitor is read-only: enabling it must not change the
    // simulated trajectory, only add audit counters (and events on
    // violation). Compare full checkpoints minus the istats field.
    let base = Scenario::paper(SystemKind::ServerB, Mix::H60, CoordinationMode::Coordinated)
        .horizon(300)
        .seed(17)
        .faults(golden_fault_plan())
        .build();
    let mut on = base.clone();
    on.invariants = true;

    let mut r_off = Runner::new(&base);
    let stats_off = r_off.run_to_horizon();
    let mut r_on = Runner::new(&on);
    let stats_on = r_on.run_to_horizon();
    assert_eq!(stats_off, stats_on, "monitor perturbed the run stats");

    let mut snap_off = r_off.snapshot();
    let mut snap_on = r_on.snapshot();
    // Only the audit counters may differ between the two checkpoints.
    snap_off.istats = InvariantStats::default();
    snap_on.istats = InvariantStats::default();
    let off = serde_json::to_string(&snap_off).expect("snapshot serializes");
    let on = serde_json::to_string(&snap_on).expect("snapshot serializes");
    assert_eq!(off, on, "monitor perturbed the checkpoint");
}

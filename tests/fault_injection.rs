//! Fault-injection integration tests: the runner must degrade gracefully
//! under any `FaultPlan` (never panic, never emit non-finite metrics),
//! and a plan with every fault disabled must be bit-identical to a
//! fault-free run.

use no_power_struggles::prelude::*;
use proptest::prelude::*;

const HORIZON: u64 = 300;

fn scenario(mode: CoordinationMode) -> Scenario {
    Scenario::paper(SystemKind::BladeA, Mix::Hh60, mode)
        .horizon(HORIZON)
        .seed(7)
}

fn arb_layer() -> impl Strategy<Value = Option<ControllerLayer>> {
    prop_oneof![
        Just(None),
        Just(Some(ControllerLayer::Sm)),
        Just(Some(ControllerLayer::Em)),
        Just(Some(ControllerLayer::Gm)),
    ]
}

proptest! {
    // Each case is a full (small-horizon) experiment; a dozen random
    // plans sweep every fault family and their combinations.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_fault_plan_degrades_gracefully(
        noise in 0.0f64..0.3,
        stuck in 0.0f64..1.0,
        drop in 0.0f64..1.0,
        act_stuck in 0.0f64..1.0,
        msg_loss in 0.0f64..1.0,
        layer in arb_layer(),
        start in 0u64..HORIZON,
        seed in 0u64..1_000,
    ) {
        let mut plan = FaultPlan::disabled()
            .with_seed(seed)
            .with_sensor_noise(noise)
            .with_stuck_sensors(stuck, 20)
            .with_dropped_samples(drop)
            .with_stuck_actuators(act_stuck, 20)
            .with_message_loss(msg_loss);
        if let Some(layer) = layer {
            plan = plan.with_outage(layer, None, start, start + HORIZON / 4);
        }
        let cfg = scenario(CoordinationMode::Coordinated).faults(plan).build();
        let mut runner = Runner::new(&cfg);
        // Property 1: the runner never panics, whatever the plan.
        let stats = runner.run_to_horizon();
        // Property 2: the power series stays finite — faulty sensor values
        // are clamped at the ingestion boundary, so energy, mean power and
        // delivered work are always physical.
        prop_assert!(stats.energy.is_finite() && stats.energy >= 0.0);
        prop_assert!(stats.mean_power().is_finite() && stats.mean_power() >= 0.0);
        prop_assert!(stats.delivered_work.is_finite());
        prop_assert!(stats.delivered_work <= stats.demanded_work + 1e-6);
        // Property 3: violation metrics keep being reported under faults.
        prop_assert!(stats.violations.server.intervals() > 0);
    }

    #[test]
    fn zero_rate_plan_is_bit_identical_to_disabled(seed in 0u64..100) {
        // All fault *kinds* mentioned, all rates zero: must draw no random
        // numbers and leave every reading untouched.
        let zero_rate = FaultPlan::disabled()
            .with_seed(seed)
            .with_sensor_noise(0.0)
            .with_stuck_sensors(0.0, 25)
            .with_dropped_samples(0.0)
            .with_stuck_actuators(0.0, 25)
            .with_message_loss(0.0);
        prop_assert!(!zero_rate.is_enabled());
        let clean = scenario(CoordinationMode::Coordinated).build();
        let faulted = scenario(CoordinationMode::Coordinated)
            .faults(zero_rate)
            .build();
        let a = run_experiment(&clean);
        let b = run_experiment(&faulted);
        prop_assert_eq!(a.comparison, b.comparison);
        prop_assert_eq!(a.baseline, b.baseline);
    }
}

#[test]
fn all_controllers_offline_still_reports_violations() {
    // Every capping layer dark for the middle half of the run: the stack
    // must fall back to local static caps and keep the budget-violation
    // monitors running.
    let plan = FaultPlan::disabled()
        .with_outage(ControllerLayer::Sm, None, HORIZON / 4, 3 * HORIZON / 4)
        .with_outage(ControllerLayer::Em, None, HORIZON / 4, 3 * HORIZON / 4)
        .with_outage(ControllerLayer::Gm, None, HORIZON / 4, 3 * HORIZON / 4);
    let cfg = scenario(CoordinationMode::Coordinated).faults(plan).build();
    let mut runner = Runner::new(&cfg);
    let stats = runner.run_to_horizon();
    let faults = runner.fault_stats();
    assert!(faults.outage_epochs > 0, "outage windows must fire");
    assert!(
        stats.violations.server.intervals() > 0,
        "SM-level violation accounting must continue during outages"
    );
    assert!(
        stats.violations.enclosure.intervals() > 0,
        "EM-level violation accounting must continue during outages"
    );
    assert!(stats.energy.is_finite() && stats.energy > 0.0);
}

#[test]
fn total_message_loss_holds_last_good_budgets() {
    let plan = FaultPlan::disabled().with_message_loss(1.0);
    let cfg = scenario(CoordinationMode::Coordinated).faults(plan).build();
    let mut runner = Runner::new(&cfg);
    let stats = runner.run_to_horizon();
    let faults = runner.fault_stats();
    assert!(
        faults.messages_lost > 0,
        "every budget grant should have been dropped"
    );
    // Children hold their last-good (initial) budgets, so the run still
    // completes with physical metrics.
    assert!(stats.energy.is_finite() && stats.energy > 0.0);
    assert!(stats.mean_power().is_finite());
}

#[test]
fn fault_counters_are_deterministic_for_a_fixed_seed() {
    let plan = || {
        FaultPlan::disabled()
            .with_seed(99)
            .with_sensor_noise(0.1)
            .with_dropped_samples(0.05)
            .with_message_loss(0.2)
    };
    let run = || {
        let cfg = scenario(CoordinationMode::Coordinated)
            .faults(plan())
            .build();
        let mut runner = Runner::new(&cfg);
        let stats = runner.run_to_horizon();
        (stats, runner.fault_stats())
    };
    let (s1, f1) = run();
    let (s2, f2) = run();
    assert_eq!(s1, s2, "faulty runs must replay identically");
    assert_eq!(f1, f2);
    assert!(f1.total_faults() > 0);
}

#[test]
fn tick_zero_dropped_sample_degrades_to_idle_power_not_zero() {
    // Regression: the hold-last-good sensor stores used to start at 0.0,
    // so a sample dropped before the first clean reading handed the
    // controllers a phantom zero-watt observation. They are now seeded
    // at each server's idle operating point.
    let plan = FaultPlan::disabled().with_seed(3).with_dropped_samples(1.0);
    let cfg = scenario(CoordinationMode::Coordinated).faults(plan).build();
    let mut runner = Runner::new(&cfg);

    // The seeded stores are visible through the checkpoint, before any
    // tick has produced a clean reading.
    let snap = runner.snapshot();
    let idle = ServerModel::blade_a().idle_power(0);
    assert!(idle > 0.0, "blade A idles above zero watts");
    for &bits in &snap.last_power_sm_bits {
        let w = f64::from_bits(bits);
        assert!(
            w >= idle,
            "per-server last-good power seeded at {w} W, below idle {idle} W"
        );
    }
    for &bits in &snap
        .last_encpow_em_bits
        .iter()
        .chain(&snap.last_child_gm_bits)
        .collect::<Vec<_>>()
    {
        assert!(
            f64::from_bits(*bits) > 0.0,
            "enclosure/group last-good stores must not start at 0.0"
        );
    }

    // With every sample dropped from tick 0, the controllers only ever
    // see the seeded values — the run must still be physically sane.
    let stats = runner.run_to_horizon();
    let faults = runner.fault_stats();
    assert!(faults.sensor_dropped > 0);
    assert!(stats.energy.is_finite() && stats.energy > 0.0);
    let snap = runner.snapshot();
    for &bits in &snap.last_power_sm_bits {
        assert!(
            f64::from_bits(bits) >= idle,
            "dropped samples must degrade to the idle seed, not decay to 0.0"
        );
    }
}

//! Property tests for the control-plane bus (nps-sim::bus) and its
//! runner integration: sequence-number acceptance must be monotone under
//! arbitrary delay/reorder/duplicate/drop schedules, lease expiry must
//! never leave a grant dangling above the static cap, and a zero-fault
//! zero-delay bus must be bit-identical to the direct-write passthrough
//! path.

use no_power_struggles::prelude::*;
use proptest::prelude::*;

const NUM_LINKS: usize = 3;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under any fault schedule, each receiver's accepted sequence
    /// number only ever moves forward: `Delivered` events carry strictly
    /// increasing seqs per link, duplicates/stale arrivals are rejected,
    /// and the bus drains to idle once traffic stops.
    #[test]
    fn accepted_seq_never_moves_backward(
        delay in 0u64..3,
        jitter in 0u64..3,
        drop in 0.0f64..0.4,
        dup in 0.0f64..0.4,
        reorder in 0.0f64..0.5,
        extra in 0u64..4,
        attempts in 0u32..4,
        seed in 0u64..1_000,
        sends in 1u64..60,
    ) {
        let cfg = BusConfig::default()
            .with_seed(seed)
            .with_delay(delay, jitter)
            .with_drop(drop)
            .with_duplication(dup)
            .with_reordering(reorder, extra)
            .with_retry(RetryConfig {
                max_attempts: attempts,
                backoff_base_ticks: 1,
                backoff_max_ticks: 8,
                jitter_ticks: 1,
            });
        let mut bus = ControlBus::new(&cfg);
        let links: Vec<LinkId> = (0..NUM_LINKS).map(|_| bus.register_link()).collect();
        let mut last_delivered = vec![0u64; NUM_LINKS];
        let mut last_accepted = vec![0u64; NUM_LINKS];

        let check = |bus: &mut ControlBus, now: u64,
                         last_delivered: &mut Vec<u64>,
                         last_accepted: &mut Vec<u64>| {
            for ev in bus.poll(now) {
                match ev {
                    BusEvent::Delivered(m) => {
                        prop_assert!(
                            m.seq > last_delivered[m.link.0],
                            "link {} delivered seq {} after {}",
                            m.link.0, m.seq, last_delivered[m.link.0]
                        );
                        last_delivered[m.link.0] = m.seq;
                    }
                    BusEvent::Duplicate(m) => prop_assert!(
                        m.seq <= last_delivered[m.link.0],
                        "duplicate of a never-delivered seq"
                    ),
                    BusEvent::Stale { msg, accepted } => prop_assert!(
                        msg.seq < accepted,
                        "stale rejection of a non-overtaken seq"
                    ),
                    BusEvent::Retry { .. } | BusEvent::Exhausted(_) => {}
                }
            }
            for (k, link) in links.iter().enumerate() {
                let acc = bus.accepted_seq(*link);
                prop_assert!(acc >= last_accepted[k], "accepted seq regressed");
                prop_assert_eq!(acc, last_delivered[k],
                    "accepted seq must track delivered grants");
                last_accepted[k] = acc;
            }
            Ok(())
        };

        for t in 0..sends {
            let link = links[(t as usize) % NUM_LINKS];
            let watts = 100.0 + t as f64;
            bus.send(link, watts, t, false);
            check(&mut bus, t, &mut last_delivered, &mut last_accepted)?;
        }
        // Drain: enough ticks for any delayed/reordered/retried copy.
        for t in sends..sends + 200 {
            check(&mut bus, t, &mut last_delivered, &mut last_accepted)?;
        }
        prop_assert!(bus.is_idle(), "bus must drain once traffic stops");
    }

    /// Runner-level lease invariant: at every checkpointable boundary,
    /// an unleased grant slot is unlimited (the static cap binds) and a
    /// leased slot's effective cap never exceeds the local static cap —
    /// i.e. expiry never strands a cap above `min(lease, CAP_LOC)`.
    #[test]
    fn lease_expiry_never_strands_a_cap(
        drop in 0.0f64..0.5,
        delay in 0u64..3,
        lease in 5u64..40,
        seed in 0u64..100,
    ) {
        let bus = BusConfig::default()
            .with_seed(seed)
            .with_delay(delay, 1)
            .with_drop(drop)
            .with_reordering(0.2, 2)
            .with_leases(lease)
            .with_retry(RetryConfig {
                max_attempts: 2,
                backoff_base_ticks: 2,
                backoff_max_ticks: 8,
                jitter_ticks: 1,
            });
        let cfg = Scenario::paper(
            SystemKind::BladeA,
            Mix::Hh60,
            CoordinationMode::Coordinated,
        )
        .horizon(150)
        .seed(seed)
        .bus(bus)
        .build();
        let mut runner = Runner::new(&cfg);
        let inf = f64::INFINITY.to_bits();
        while runner.ticks_done() < 150 {
            for _ in 0..10 {
                runner.tick();
            }
            let snap = runner.snapshot();
            let now = runner.ticks_done();
            for (i, (&cap, &until)) in snap
                .bank
                .granted_cap_bits
                .iter()
                .zip(&snap.bank.lease_until)
                .enumerate()
            {
                if until == u64::MAX {
                    prop_assert_eq!(
                        cap, inf,
                        "server {} unleased but cap {} still granted at tick {}",
                        i, f64::from_bits(cap), now
                    );
                } else {
                    prop_assert!(
                        f64::from_bits(cap).is_finite(),
                        "server {} leased an unlimited grant", i
                    );
                }
            }
            for (e, em) in snap.ems.iter().enumerate() {
                if em.lease_until == u64::MAX {
                    prop_assert_eq!(
                        em.granted_cap_bits, inf,
                        "enclosure {} unleased but still capped", e
                    );
                }
            }
        }
        // The fault machinery actually engaged (leases only lapse when a
        // refresh is lost or late, so only require it under real drop).
        if drop > 0.2 {
            let f = runner.fault_stats();
            prop_assert!(
                f.messages_lost + f.grant_retries + f.leases_expired > 0,
                "fault schedule produced no bus activity"
            );
        }
    }

    /// Retry backoff cannot outlast a controller outage: when an EM
    /// outage window is longer than the worst-case retransmission
    /// horizon (`max_attempts * backoff_max_ticks` plus jitter) *and*
    /// the lease length, every member lease under that enclosure must
    /// lapse — retries buy latency tolerance, not liveness — and the
    /// static-cap fallback must engage. The whole interaction stays
    /// bit-deterministic.
    #[test]
    fn outage_outlives_max_backoff_and_lapses_leases(
        drop in 0.05f64..0.4,
        attempts in 1u32..4,
        backoff_max in 4u64..12,
        lease in 10u64..30,
        seed in 0u64..200,
    ) {
        // Worst-case retransmission horizon plus the lease, then slack:
        // the outage strictly outlives any retry schedule.
        let retry_horizon = attempts as u64 * (backoff_max + 1);
        let outage_len = lease + retry_horizon + 60;
        let start = 100u64;
        let bus = BusConfig::default()
            .with_seed(seed)
            .with_drop(drop)
            .with_leases(lease)
            .with_retry(RetryConfig {
                max_attempts: attempts,
                backoff_base_ticks: 1,
                backoff_max_ticks: backoff_max,
                jitter_ticks: 1,
            });
        let cfg = Scenario::paper(
            SystemKind::BladeA,
            Mix::Hh60,
            CoordinationMode::Coordinated,
        )
        .horizon(start + outage_len + 100)
        .seed(seed)
        .bus(bus)
        .faults(
            FaultPlan::disabled()
                .with_seed(seed ^ 0xb0f)
                .with_outage(ControllerLayer::Em, None, start, start + outage_len),
        )
        .build();
        let mut runner = Runner::new(&cfg);
        let stats = runner.run_to_horizon();
        let f = runner.fault_stats();
        prop_assert!(
            f.leases_expired > 0,
            "outage of {} ticks (retry horizon {}, lease {}) lapsed no lease",
            outage_len, retry_horizon, lease
        );
        prop_assert!(f.outage_epochs > 0, "the outage skipped no epochs");
        // With leases configured the static-cap latch stays out of the
        // way (it only fires lease-free); expiry itself is the fallback.
        prop_assert_eq!(f.degradations, 0, "lease path must own the fallback");
        // Mid-outage, past every possible retry and lease: every
        // *enclosure member* must be unleased again (reverted to its
        // static cap). Standalone servers are granted by the GM, which
        // is online, so their leases legitimately stay fresh.
        let mut probe = Runner::new(&cfg);
        while probe.ticks_done() < start + lease + retry_horizon + 30 {
            probe.tick();
        }
        let standalone: Vec<usize> = cfg
            .topology
            .standalone_servers()
            .iter()
            .map(|s| s.index())
            .collect();
        let snap = probe.snapshot();
        for (i, &until) in snap.bank.lease_until.iter().enumerate() {
            if standalone.contains(&i) {
                continue;
            }
            prop_assert!(
                until == u64::MAX,
                "member {} still holds a lease (until {}) at tick {} mid-outage",
                i, until, probe.ticks_done()
            );
        }
        // Determinism: an identical rerun reproduces the same bytes.
        let mut rerun = Runner::new(&cfg);
        let stats2 = rerun.run_to_horizon();
        prop_assert_eq!(stats, stats2);
        prop_assert_eq!(f, rerun.fault_stats());
    }

    /// A zero-fault zero-delay bus — even with retries armed and leases
    /// far beyond the horizon — is bit-identical to the passthrough
    /// direct-write path.
    #[test]
    fn zero_fault_bus_matches_passthrough_bit_exactly(seed in 0u64..50) {
        let base = Scenario::paper(
            SystemKind::ServerB,
            Mix::H60,
            CoordinationMode::Coordinated,
        )
        .horizon(200)
        .seed(seed);

        let passthrough = base.clone().build();
        let armed = base
            .bus(
                BusConfig::default()
                    .with_seed(seed ^ 0xdead)
                    .with_leases(100_000)
                    .with_retry(RetryConfig {
                        max_attempts: 3,
                        backoff_base_ticks: 1,
                        backoff_max_ticks: 8,
                        jitter_ticks: 0,
                    }),
            )
            .build();

        let mut a = Runner::new(&passthrough);
        let mut b = Runner::new(&armed);
        let sa = a.run_to_horizon();
        let sb = b.run_to_horizon();
        prop_assert_eq!(sa, sb, "armed-but-quiet bus diverged from passthrough");
        prop_assert_eq!(a.fault_stats(), b.fault_stats());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The expiry-heap bus must deliver a bit-identical accept / retry /
    /// lease schedule to the pre-heap linear scan: two buses built from
    /// the same config, fed the same send schedule, one polled through
    /// the heap path and one through the hidden linear reference, emit
    /// the exact same event stream at every tick and drain together.
    #[test]
    fn heap_bus_matches_linear_scan_bit_exactly(
        delay in 0u64..3,
        jitter in 0u64..3,
        drop in 0.0f64..0.4,
        dup in 0.0f64..0.3,
        reorder in 0.0f64..0.5,
        extra in 0u64..4,
        attempts in 0u32..4,
        lease in 0u64..30,
        seed in 0u64..1_000,
        sends in 1u64..60,
        plan_lost_mask in 0u64..u64::MAX,
    ) {
        let cfg = BusConfig::default()
            .with_seed(seed)
            .with_delay(delay, jitter)
            .with_drop(drop)
            .with_duplication(dup)
            .with_reordering(reorder, extra)
            .with_leases(lease)
            .with_retry(RetryConfig {
                max_attempts: attempts,
                backoff_base_ticks: 1,
                backoff_max_ticks: 8,
                jitter_ticks: 1,
            });
        let mut heap = ControlBus::new(&cfg);
        let mut linear = ControlBus::new(&cfg);
        for _ in 0..NUM_LINKS {
            heap.register_link();
            linear.register_link();
        }
        for t in 0..sends + 200 {
            if t < sends {
                let link = LinkId((t as usize) % NUM_LINKS);
                let watts = 100.0 + t as f64;
                // Same plan-level loss verdict on both sides (the owner
                // draws it from the fault plan, outside the bus).
                let plan_lost = (plan_lost_mask >> (t % 64)) & 1 == 1;
                let a = heap.send(link, watts, t, plan_lost);
                let b = linear.send(link, watts, t, plan_lost);
                prop_assert_eq!(a, b, "send verdicts diverged at tick {}", t);
            }
            let ea = heap.poll(t);
            let eb = linear.poll_reference(t);
            prop_assert_eq!(ea, eb, "event schedules diverged at tick {}", t);
            prop_assert_eq!(heap.is_idle(), linear.is_idle());
        }
        prop_assert!(heap.is_idle(), "bus must drain once traffic stops");
        // Same end state too: a checkpoint of either is interchangeable.
        prop_assert_eq!(heap.snapshot(), linear.snapshot());
    }
}

/// An idle tick is free: polling a bus with an empty message heap and no
/// armed retransmission timer examines zero links, no matter how many
/// links are registered. (The pre-heap drain walked every link every
/// tick; `link_scans` counts exactly those examinations.)
#[test]
fn empty_heap_tick_performs_zero_link_scans() {
    let cfg = BusConfig::default().with_seed(3).with_retry(RetryConfig {
        max_attempts: 3,
        backoff_base_ticks: 2,
        backoff_max_ticks: 8,
        jitter_ticks: 0,
    });
    let mut bus = ControlBus::new(&cfg);
    let links: Vec<LinkId> = (0..64).map(|_| bus.register_link()).collect();
    for t in 0..1_000 {
        assert!(bus.poll(t).is_empty());
    }
    assert_eq!(
        bus.link_scans(),
        0,
        "idle polling must not examine any link"
    );

    // One real send arms one timer; draining it may examine that link a
    // bounded number of times (once per retry firing), never all 64 per
    // tick like the linear scan.
    bus.send(links[0], 120.0, 1_000, false);
    for t in 1_000..1_100 {
        bus.poll(t);
    }
    assert!(bus.is_idle());
    let scans = bus.link_scans();
    assert!(
        scans <= 4,
        "draining one message must examine O(due) links, saw {scans}"
    );
}

/// Bus fault counters surface in `FaultStats` and telemetry under an
/// aggressive delivery-fault schedule.
#[test]
fn bus_faults_are_counted_and_observable() {
    let bus = BusConfig::default()
        .with_seed(7)
        .with_delay(1, 2)
        .with_drop(0.3)
        .with_duplication(0.2)
        .with_reordering(0.3, 3)
        .with_leases(12)
        .with_retry(RetryConfig {
            max_attempts: 2,
            backoff_base_ticks: 2,
            backoff_max_ticks: 8,
            jitter_ticks: 1,
        });
    let cfg = Scenario::paper(SystemKind::BladeA, Mix::Hh60, CoordinationMode::Coordinated)
        .horizon(400)
        .seed(11)
        .bus(bus)
        .build();
    let mut runner = Runner::new(&cfg);
    runner.enable_ring_telemetry(1 << 20);
    let stats = runner.run_to_horizon();
    assert!(stats.energy.is_finite() && stats.energy > 0.0);
    let f = runner.fault_stats();
    assert!(f.grant_retries > 0, "drops must trigger retransmissions");
    assert!(f.leases_expired > 0, "lost refreshes must lapse leases");
    let ring = runner.ring_telemetry().expect("ring installed");
    assert!(ring.count(EventKind::GrantRetry) > 0);
    assert!(ring.count(EventKind::LeaseExpired) > 0);
    assert_eq!(ring.count(EventKind::GrantRetry), f.grant_retries);
    assert_eq!(ring.count(EventKind::LeaseExpired), f.leases_expired);
}

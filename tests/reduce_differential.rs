//! Differential property tests for the fixed-shape tree reduction
//! (`nps-sim::reduce`), the combine framework behind the VMC
//! arbitration aggregates, the per-tick latency-proxy sum, and the
//! sharded power totals.
//!
//! The contract under test, on *adversarial* float inputs (subnormals,
//! ±inf, NaN payloads, catastrophic cancellation):
//!
//! 1. **Reference equality** — `tree_reduce` equals an independently
//!    written model of the tree (plain iterator left-folds over
//!    `LEAF_WIDTH` blocks, then textbook pairwise rounds), bit for bit.
//! 2. **Left-fold compatibility** — for `n <= LEAF_WIDTH` the tree *is*
//!    the classic sequential left-fold, bit for bit (why the arbiter's
//!    small-input unit expectations survived the migration unchanged).
//! 3. **Thread invariance** — `tree_reduce_pool` over worker pools of
//!    {1, 2, 4, 7} threads returns the sequential driver's exact bits,
//!    NaN payloads included.
//! 4. **Count-only shape dependence** — the combine schedule (which
//!    index ranges merge, in which order) is a pure function of element
//!    count: reducing two same-length inputs of wildly different values
//!    logs the identical schedule.

use nps_sim::reduce::{self, LEAF_WIDTH};
use nps_sim::WorkerPool;
use proptest::prelude::*;
use std::sync::Mutex;

/// Pool sizes swept against the sequential driver.
const SWEEP: [usize; 4] = [1, 2, 4, 7];

/// Adversarial f64s: ordinary magnitudes, near-cancelling pairs,
/// subnormals, infinities of both signs, signed zeros, and NaNs with
/// distinct payloads (quiet NaN bit patterns survive `to_bits`).
fn adversarial_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => -1e3f64..1e3,
        2 => prop_oneof![Just(1e16f64), Just(-1e16), Just(1e16 + 1.0), Just(-(1e16 + 1.0))],
        2 => prop_oneof![Just(f64::MIN_POSITIVE / 2.0), Just(-f64::MIN_POSITIVE / 4.0)],
        1 => prop_oneof![Just(f64::INFINITY), Just(f64::NEG_INFINITY)],
        1 => prop_oneof![Just(0.0f64), Just(-0.0f64)],
        1 => prop_oneof![
            Just(f64::from_bits(0x7ff8_0000_0000_0001)),
            Just(f64::from_bits(0xfff8_0000_0000_00ff)),
        ],
    ]
}

/// Independent model of the fixed tree: sequential left-fold per
/// `LEAF_WIDTH` block, then pairwise rounds where the odd trailing
/// partial is carried to the next round *unchanged*.
fn reference_tree(xs: &[f64]) -> f64 {
    let mut parts: Vec<f64> = xs
        .chunks(LEAF_WIDTH)
        .map(|c| c.iter().fold(0.0f64, |a, &b| a + b))
        .collect();
    if parts.is_empty() {
        return 0.0;
    }
    while parts.len() > 1 {
        parts = parts
            .chunks(2)
            .map(|p| if p.len() == 2 { p[0] + p[1] } else { p[0] })
            .collect();
    }
    parts[0]
}

/// The combine schedule of one `tree_reduce` run: every combine call's
/// `(left range, right range)`, recorded in call order. Ranges are
/// reconstructed by reducing over index intervals instead of values.
fn combine_schedule(n: usize) -> Vec<((usize, usize), (usize, usize))> {
    let log = Mutex::new(Vec::new());
    let result = reduce::tree_reduce(
        n,
        (usize::MAX, usize::MAX),
        |i| (i, i),
        |a, b| {
            if a == (usize::MAX, usize::MAX) {
                return b; // identity (only ever combined inside a leaf)
            }
            log.lock().unwrap().push((a, b));
            (a.0.min(b.0), a.1.max(b.1))
        },
    );
    if n > 0 {
        assert_eq!(result, (0, n - 1), "reduction must span every element");
    }
    log.into_inner().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// (1) + (3): the production tree matches the independent reference
    /// model bitwise, and every pool size returns those exact bits.
    #[test]
    fn tree_matches_reference_and_is_thread_invariant(
        xs in proptest::collection::vec(adversarial_f64(), 0..200),
    ) {
        let n = xs.len();
        let seq = reduce::tree_sum_by(n, |i| xs[i]);
        prop_assert_eq!(seq.to_bits(), reference_tree(&xs).to_bits());
        for threads in SWEEP {
            let pool = WorkerPool::new(threads);
            let par = reduce::tree_reduce_pool(&pool, n, 0.0f64, |i| xs[i], |a, b| a + b);
            prop_assert_eq!(
                par.to_bits(),
                seq.to_bits(),
                "pool of {} threads diverged on {} elements",
                threads,
                n
            );
        }
    }

    /// (2): at or below one leaf the tree *is* the sequential left-fold.
    #[test]
    fn small_inputs_are_exact_left_folds(
        xs in proptest::collection::vec(adversarial_f64(), 0..LEAF_WIDTH + 1),
    ) {
        let folded = xs.iter().fold(0.0f64, |a, &b| a + b);
        let tree = reduce::tree_sum_by(xs.len(), |i| xs[i]);
        prop_assert_eq!(tree.to_bits(), folded.to_bits());
    }

    /// (3) for struct reductions: the latency-proxy style `(f64, u64)`
    /// pair reduces to identical bits at every pool size.
    #[test]
    fn struct_reduction_is_thread_invariant(
        xs in proptest::collection::vec((adversarial_f64(), 0u64..3), 1..150),
    ) {
        let n = xs.len();
        let combine = |a: (f64, u64), b: (f64, u64)| (a.0 + b.0, a.1 + b.1);
        let seq = reduce::tree_reduce(n, (0.0f64, 0u64), |i| xs[i], combine);
        for threads in SWEEP {
            let pool = WorkerPool::new(threads);
            let par = reduce::tree_reduce_pool(&pool, n, (0.0f64, 0u64), |i| xs[i], combine);
            prop_assert_eq!(par.0.to_bits(), seq.0.to_bits());
            prop_assert_eq!(par.1, seq.1);
        }
    }

    /// Max-reductions (the arbiter's MaxDemand policy) are equally
    /// thread-invariant — `f64::max` is order-sensitive around NaNs and
    /// signed zeros, so the fixed shape matters there too.
    #[test]
    fn max_reduction_is_thread_invariant(
        xs in proptest::collection::vec(adversarial_f64(), 1..150),
    ) {
        let n = xs.len();
        let seq = reduce::tree_max_by(n, |i| xs[i]);
        for threads in SWEEP {
            let pool = WorkerPool::new(threads);
            let par = reduce::tree_reduce_pool(&pool, n, 0.0f64, |i| xs[i], f64::max);
            prop_assert_eq!(par.to_bits(), seq.to_bits());
        }
    }
}

/// (4): the combine schedule is a pure function of the element count —
/// and changing the count changes the schedule (no degenerate constant
/// schedule slipping through).
#[test]
fn combine_schedule_depends_only_on_count() {
    for n in [0, 1, 2, 31, 32, 33, 63, 64, 65, 97, 128, 200, 1000] {
        assert_eq!(
            combine_schedule(n),
            combine_schedule(n),
            "schedule for {n} elements must be deterministic"
        );
    }
    assert_ne!(combine_schedule(97), combine_schedule(96));
    // The documented shape at 97 elements: leaves [0,31][32,63][64,95]
    // [96,96]; round one merges (leaf0, leaf1) and (leaf2, leaf3); round
    // two merges the halves.
    let tail = &combine_schedule(97)[93..];
    assert_eq!(
        tail,
        &[
            ((0, 31), (32, 63)),
            ((64, 95), (96, 96)),
            ((0, 63), (64, 96)),
        ]
    );
}

/// Zero elements reduce to the identity — relied on by fleets with no
/// VMs and empty enclosures.
#[test]
fn empty_reduction_is_identity() {
    assert_eq!(reduce::tree_sum_by(0, |_| unreachable!()), 0.0);
    let pool = WorkerPool::new(4);
    let r = reduce::tree_reduce_pool(&pool, 0, (7.0f64, 7u64), |_| unreachable!(), |a, _| a);
    assert_eq!(r, (7.0, 7));
}

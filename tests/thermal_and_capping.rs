//! Integration tests for the thermal-failover behaviour (paper §5.1
//! prototype) and the budget hierarchy (Figure 10 directionality).

use no_power_struggles::core::ExperimentConfig;
use no_power_struggles::prelude::*;

fn single_hot_server(mode: CoordinationMode, horizon: u64) -> ExperimentConfig {
    let model = ServerModel::blade_a();
    let cap = 0.9 * model.max_power();
    let mut cfg = Scenario::paper(SystemKind::BladeA, Mix::All180, mode)
        .horizon(horizon)
        .build();
    cfg.topology = Topology::builder().standalone(1).build();
    cfg.traces = vec![UtilTrace::constant("hot", 0.98, horizon as usize).expect("valid trace")];
    cfg.mask = ControllerMask {
        ec: true,
        sm: true,
        em: false,
        gm: false,
        vmc: false,
    };
    cfg.sim = cfg
        .sim
        .with_thermal(ThermalConfig::for_budget(model.max_power(), cap));
    cfg
}

#[test]
fn uncoordinated_ec_sm_race_causes_thermal_failover() {
    // Paper §5.1: "even with one machine, over sustained high loads, the
    // uncoordinated solution went into thermal failover."
    let cfg = single_hot_server(CoordinationMode::Uncoordinated, 2_500);
    let mut runner = Runner::new(&cfg);
    let stats = runner.run_to_horizon();
    assert_eq!(stats.failovers, 1, "expected the race to cook the server");
    assert!(stats.pstate_conflicts > 0);
}

#[test]
fn coordinated_ec_sm_stays_below_critical_temperature() {
    let cfg = single_hot_server(CoordinationMode::Coordinated, 2_500);
    let mut runner = Runner::new(&cfg);
    let stats = runner.run_to_horizon();
    assert_eq!(stats.failovers, 0);
    assert_eq!(stats.pstate_conflicts, 0);
    let temp = runner.sim().temperature_c(ServerId(0));
    assert!(temp < 70.0, "settled at {temp} °C");
}

#[test]
fn tighter_budgets_reduce_average_power_savings() {
    // Figure 10's direction: from 20-15-10 to 30-25-20 the available
    // average-power savings shrink (the VMC consolidates more
    // conservatively) while the coordinated solution keeps responding.
    let run = |budgets: BudgetSpec| {
        let cfg = Scenario::paper(
            SystemKind::BladeA,
            Mix::All180,
            CoordinationMode::Coordinated,
        )
        .budgets(budgets)
        .horizon(1_500)
        .seed(21)
        .build();
        run_experiment(&cfg).comparison
    };
    let loose = run(BudgetSpec::PAPER_20_15_10);
    let tight = run(BudgetSpec::PAPER_30_25_20);
    assert!(
        tight.power_savings_pct <= loose.power_savings_pct + 1.0,
        "tight {:.1}% vs loose {:.1}%",
        tight.power_savings_pct,
        loose.power_savings_pct
    );
    // Both stay correct: single-digit violation rates.
    assert!(tight.violations_sm_pct < 15.0);
    assert!(loose.violations_sm_pct < 15.0);
}

#[test]
fn disabling_turn_off_shrinks_savings_but_adapts() {
    // Paper §5.4 "avoiding turning machines off": savings drop
    // significantly; the coordinated solution "automatically adapted ...
    // and moved to more aggressively controlling power at the local
    // levels".
    let base = Scenario::paper(
        SystemKind::BladeA,
        Mix::All180,
        CoordinationMode::Coordinated,
    )
    .horizon(1_500)
    .seed(13);
    let with_off = run_experiment(&base.clone().build());
    let vmc = VmcConfig {
        allow_turn_off: false,
        ..Default::default()
    };
    let no_off = run_experiment(&base.vmc(vmc).build());
    assert!(
        no_off.comparison.power_savings_pct < with_off.comparison.power_savings_pct,
        "no-off {:.1}% should trail with-off {:.1}%",
        no_off.comparison.power_savings_pct,
        with_off.comparison.power_savings_pct
    );
    // Still saves something via local power management (the adaptation).
    assert!(no_off.comparison.power_savings_pct > 5.0);
}

#[test]
fn migration_overhead_sensitivity_keeps_perf_loss_bounded() {
    // Paper §5.4: with 20% and 50% migration overheads "performance
    // degradations increased, but were still less than 10% in all cases
    // for the coordinated solution".
    for alpha_m in [0.1, 0.2, 0.5] {
        let cfg = Scenario::paper(
            SystemKind::BladeA,
            Mix::All180,
            CoordinationMode::Coordinated,
        )
        .sim(SimConfig::default().with_alpha_m(alpha_m))
        .horizon(1_500)
        .seed(17)
        .build();
        let r = run_experiment(&cfg);
        assert!(
            r.comparison.perf_loss_pct < 10.0,
            "α_M = {alpha_m}: perf loss {:.1}%",
            r.comparison.perf_loss_pct
        );
    }
}

#[test]
fn two_extreme_pstates_behave_close_to_full_table() {
    // Paper §5.3: "having the two extreme P-states can get behavior close
    // to that when all the P-states are considered."
    let full = run_experiment(
        &Scenario::paper(
            SystemKind::BladeA,
            Mix::All180,
            CoordinationMode::Coordinated,
        )
        .horizon(1_500)
        .seed(19)
        .build(),
    );
    let two = run_experiment(
        &Scenario::paper(
            SystemKind::BladeA,
            Mix::All180,
            CoordinationMode::Coordinated,
        )
        .pstate_subset(vec![0, 4])
        .horizon(1_500)
        .seed(19)
        .build(),
    );
    let gap = (full.comparison.power_savings_pct - two.comparison.power_savings_pct).abs();
    assert!(
        gap < 12.0,
        "two extreme P-states ({:.1}%) should be close to the full table ({:.1}%)",
        two.comparison.power_savings_pct,
        full.comparison.power_savings_pct
    );
}

#[test]
fn fleet_scale_thermal_failure_injection() {
    // Thermal tracking across the whole 60-server cluster under the hot
    // stacked mix: the uncoordinated EC/SM race must cook servers; the
    // coordinated architecture must keep the fleet alive.
    let run = |mode: CoordinationMode| {
        let model = ServerModel::blade_a();
        let cap = 0.9 * model.max_power();
        let mut cfg = Scenario::paper(SystemKind::BladeA, Mix::Hhh60, mode)
            .horizon(2_500)
            .seed(61)
            .build();
        cfg.sim = cfg
            .sim
            .with_thermal(ThermalConfig::for_budget(model.max_power(), cap));
        // No VMC: isolate the local capping story (migrations off a
        // failed server would muddy the count).
        cfg.mask = ControllerMask {
            vmc: false,
            ..ControllerMask::ALL
        };
        let mut runner = Runner::new(&cfg);
        runner.run_to_horizon()
    };
    let coordinated = run(CoordinationMode::Coordinated);
    let uncoordinated = run(CoordinationMode::Uncoordinated);
    assert_eq!(
        coordinated.failovers, 0,
        "coordinated fleet must stay thermally safe"
    );
    assert!(
        uncoordinated.failovers > 0,
        "uncoordinated race should cook at least one server under 60HHH"
    );
    // Dead servers deliver nothing: correctness failure shows up as work
    // loss too.
    assert!(uncoordinated.delivered_work < coordinated.delivered_work);
}

#[test]
fn failed_servers_never_recover_silently() {
    // Failure latching: once a server trips, it stays off and its VMs
    // starve until the end of the run (no hidden self-healing).
    let model = ServerModel::blade_a();
    let cap = 0.9 * model.max_power();
    let horizon = 2_000u64;
    let mut cfg = Scenario::paper(
        SystemKind::BladeA,
        Mix::All180,
        CoordinationMode::Uncoordinated,
    )
    .horizon(horizon)
    .build();
    cfg.topology = Topology::builder().standalone(1).build();
    cfg.traces = vec![UtilTrace::constant("hot", 0.99, horizon as usize).unwrap()];
    cfg.mask = ControllerMask {
        ec: true,
        sm: true,
        em: false,
        gm: false,
        vmc: false,
    };
    cfg.sim = cfg
        .sim
        .with_thermal(ThermalConfig::for_budget(model.max_power(), cap));
    let mut runner = Runner::new(&cfg);
    let mut failed_at = None;
    for t in 0..horizon {
        runner.tick();
        if failed_at.is_none() && runner.sim().failover_events() > 0 {
            failed_at = Some(t);
        }
        if failed_at.is_some() {
            assert!(
                !runner.sim().is_on(ServerId(0)),
                "tick {t}: server revived itself"
            );
        }
    }
    assert!(failed_at.is_some(), "expected a failover in this scenario");
}

#[test]
fn extreme_bursty_traces_do_not_break_invariants() {
    // Failure injection at the workload level: square-wave demand
    // slamming between idle and saturation every 10 ticks.
    let horizon = 1_000u64;
    let samples: Vec<f64> = (0..horizon as usize)
        .map(|t| if (t / 10) % 2 == 0 { 0.0 } else { 1.0 })
        .collect();
    let mut cfg = Scenario::paper(
        SystemKind::ServerB,
        Mix::All180,
        CoordinationMode::Coordinated,
    )
    .horizon(horizon)
    .build();
    cfg.topology = Topology::builder().enclosure(4).standalone(2).build();
    cfg.traces = (0..6)
        .map(|i| UtilTrace::new(format!("square-{i}"), samples.clone()).unwrap())
        .collect();
    let r = run_experiment(&cfg);
    assert!(r.comparison.run.energy.is_finite());
    assert!(r.comparison.run.delivered_work <= r.comparison.run.demanded_work + 1e-6);
    assert_eq!(r.comparison.run.pstate_conflicts, 0);
}

//! In-tree, offline shim for the `proptest` API subset this workspace
//! uses: the `proptest!`, `prop_assert!`, `prop_assert_eq!`, and
//! `prop_oneof!` macros, range/tuple/`Just`/`prop_map` strategies, and
//! `collection::vec`. Cases are generated from a seed derived from the
//! test's module path, so runs are deterministic; there is no shrinking —
//! a failure reports the case number and message instead of a minimized
//! input.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::Range;

/// A failed test case (what `prop_assert!` produces).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: String) -> Self {
        TestCaseError(reason)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!`-block configuration (subset of upstream `Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// Boxes a strategy (used by `prop_oneof!` to unify arm types).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(f64, f32, usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! tuple_strategy {
    ($(($($t:ident . $n:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Weighted union of same-valued strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

impl<T> Union<T> {
    /// A union over weighted boxed arms. Panics if empty or all-zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! requires a positive total weight");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.next_u64() % total;
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.new_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight bookkeeping above is exhaustive")
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// The result of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Boolean strategies (subset of `proptest::bool`).
pub mod bool {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// The strategy behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates both booleans uniformly.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;

        fn new_value(&self, rng: &mut StdRng) -> core::primitive::bool {
            rng.gen::<core::primitive::bool>()
        }
    }
}

/// `any::<T>()` support for a few primitives.
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;

    /// Returns that strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range strategy for primitives implementing [`Arbitrary`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

macro_rules! any_primitive {
    ($($t:ty => |$rng:ident| $body:expr),* $(,)?) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;

            fn new_value(&self, $rng: &mut StdRng) -> $t {
                $body
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyStrategy(std::marker::PhantomData)
            }
        }
    )*};
}
any_primitive! {
    bool => |rng| rng.gen::<bool>(),
    f64 => |rng| rng.gen::<f64>(),
    u64 => |rng| rng.gen::<u64>(),
    u32 => |rng| rng.gen::<u32>(),
    usize => |rng| rng.gen::<u64>() as usize,
}

/// The strategy generating any value of `T` (subset of upstream `any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Drives the generated test body for each case. Seeds derive from the
/// test name, so failures reproduce across runs.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let mut seed: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100000001b3);
    }
    for case in 0..config.cases {
        let mut rng =
            StdRng::seed_from_u64(seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(case as u64 + 1)));
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest {name} failed at case {case}/{}: {e}",
                config.cases
            );
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// The `prop` module alias (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(
                    &__config,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__rng| {
                        let ($($pat,)*) =
                            ($($crate::Strategy::new_value(&($strat), __rng),)*);
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {} ({}:{})", format!($($fmt)+), file!(), line!()),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let __a = $a;
        let __b = $b;
        if __a != __b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?}) ({}:{})",
                stringify!($a), stringify!($b), __a, __b, file!(), line!(),
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = $a;
        let __b = $b;
        if __a != __b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} vs {:?}: {} ({}:{})",
                __a, __b, format!($($fmt)+), file!(), line!(),
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let __a = $a;
        let __b = $b;
        if __a == __b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?}) ({}:{})",
                stringify!($a),
                stringify!($b),
                __a,
                file!(),
                line!(),
            )));
        }
    }};
}

/// Picks among strategies, optionally weighted: `prop_oneof![a, b]` or
/// `prop_oneof![2 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::boxed($strat))),+])
    };
}

//! In-tree, offline shim for the `serde_json` API subset this workspace
//! uses: `to_string[_pretty]`, `to_writer[_pretty]`, `from_str`,
//! `from_reader`, and [`Error`]. Floats round-trip exactly (Rust's
//! shortest-representation `Display` feeds the parser), which is what the
//! upstream `float_roundtrip` feature guaranteed.

use serde::{Deserialize, Serialize, Serializer};

pub use serde::{Error, Value};

/// `Result` alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut s = Serializer::new();
    value.serialize(&mut s);
    Ok(s.into_string())
}

/// Serializes `value` to a pretty-printed JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut s = Serializer::pretty();
    value.serialize(&mut s);
    Ok(s.into_string())
}

/// Serializes `value` as compact JSON into `writer`.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let text = to_string(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::msg(&format!("write failed: {e}")))
}

/// Serializes `value` as pretty JSON into `writer`.
pub fn to_writer_pretty<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    let text = to_string_pretty(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::msg(&format!("write failed: {e}")))
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = serde::parse(text)?;
    T::deserialize(&value)
}

/// Deserializes a `T` from a reader of JSON text.
pub fn from_reader<R: std::io::Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| Error::msg(&format!("read failed: {e}")))?;
    from_str(&text)
}

//! In-tree, offline shim for the `rand 0.8` API subset this workspace
//! uses: `StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`, and
//! `seq::SliceRandom::shuffle`. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic per seed (what the tests rely on), though
//! the streams differ from upstream `StdRng`'s ChaCha12.

use std::ops::Range;

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from a generator's full output (the
/// `Standard` distribution in upstream rand).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable uniformly from a half-open range.
pub trait UniformSample: Sized {
    /// Draws one value from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

impl UniformSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty gen_range");
        let u = f64::sample(rng);
        range.start + u * (range.end - range.start)
    }
}

impl UniformSample for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty gen_range");
        let u = f32::sample(rng);
        range.start + u * (range.end - range.start)
    }
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = range.end.abs_diff(range.start) as u64;
                // Modulo bias is negligible for the small spans used here.
                let offset = rng.next_u64() % span;
                (range.start as i128 + offset as i128) as $t
            }
        }
    )*};
}
uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// The user-facing generator interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from a half-open range.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for upstream
    /// `StdRng`; same role, different stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// Returns the raw xoshiro256++ state, for checkpointing.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured [`state`].
        ///
        /// The stream continues exactly where the captured generator
        /// left off, which is what makes RNG-bearing components
        /// bit-exactly resumable.
        ///
        /// [`state`]: StdRng::state
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    /// Stateless counter-based generator: every value is a pure function
    /// `mix(seed, stream, counter)` with no sequential state, so draws
    /// from distinct `(stream, counter)` pairs can be taken in **any
    /// order** — including concurrently from disjoint streams — and
    /// still reproduce bit-identically. The mixer is two rounds of the
    /// SplitMix64 finalizer over the golden-ratio-weighted inputs.
    ///
    /// This is the piece that makes conditional per-server random draws
    /// shardable: a caller that keeps one counter per stream (e.g. per
    /// server) replays the exact sequential draw sequence no matter
    /// which worker thread advances the counter.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct CounterRng {
        seed: u64,
    }

    /// One round of the SplitMix64 output finalizer (no state advance).
    fn mix64(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl CounterRng {
        /// Builds the generator for one 64-bit seed.
        pub fn new(seed: u64) -> Self {
            CounterRng { seed }
        }

        /// The seed this generator was built from.
        pub fn seed(&self) -> u64 {
            self.seed
        }

        /// The 64 bits at `(stream, counter)`.
        pub fn u64_at(&self, stream: u64, counter: u64) -> u64 {
            let z = self
                .seed
                .wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(stream.wrapping_add(1)))
                .wrapping_add(0xd1b54a32d192ed03u64.wrapping_mul(counter.wrapping_add(1)));
            mix64(mix64(z))
        }

        /// Uniform `[0, 1)` at `(stream, counter)` — the same 53-bit
        /// mantissa construction as [`StandardSample`] for `f64`, so
        /// probability comparisons behave identically to `gen_bool`.
        ///
        /// [`StandardSample`]: crate::StandardSample
        pub fn f64_at(&self, stream: u64, counter: u64) -> f64 {
            (self.u64_at(stream, counter) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// `true` with probability `p` at `(stream, counter)`.
        pub fn bool_at(&self, stream: u64, counter: u64, p: f64) -> bool {
            self.f64_at(stream, counter) < p
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice utilities (subset of `rand::seq`).
pub mod seq {
    use super::RngCore;

    /// Random slice operations (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&x));
            let n = r.gen_range(0usize..7);
            assert!(n < 7);
        }
    }

    #[test]
    fn unit_float_mean_is_centered() {
        let mut r = StdRng::seed_from_u64(2);
        let mean: f64 = (0..100_000).map(|_| r.gen::<f64>()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..5 {
            r.gen::<u64>();
        }
        let mut resumed = StdRng::from_state(r.state());
        let a: Vec<u64> = (0..8).map(|_| r.gen::<u64>()).collect();
        let b: Vec<u64> = (0..8).map(|_| resumed.gen::<u64>()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn counter_rng_is_order_free_and_seeded() {
        use super::rngs::CounterRng;
        let r = CounterRng::new(7);
        // Pure function of (stream, counter): any evaluation order gives
        // the same values.
        let forward: Vec<u64> = (0..64).map(|c| r.u64_at(3, c)).collect();
        let backward: Vec<u64> = (0..64).rev().map(|c| r.u64_at(3, c)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
        // Distinct seeds and distinct streams give distinct sequences.
        let other_seed: Vec<u64> = (0..64).map(|c| CounterRng::new(8).u64_at(3, c)).collect();
        let other_stream: Vec<u64> = (0..64).map(|c| r.u64_at(4, c)).collect();
        assert_ne!(forward, other_seed);
        assert_ne!(forward, other_stream);
    }

    #[test]
    fn counter_rng_unit_floats_are_uniformish() {
        use super::rngs::CounterRng;
        let r = CounterRng::new(11);
        let n = 100_000u64;
        let mean: f64 = (0..n).map(|c| r.f64_at(c % 97, c)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        for c in 0..10_000 {
            let x = r.f64_at(5, c);
            assert!((0.0..1.0).contains(&x));
        }
        // bool_at agrees with the f64 threshold construction.
        assert_eq!(r.bool_at(2, 9, 0.5), r.f64_at(2, 9) < 0.5);
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "20 elements virtually never shuffle to identity");
    }
}

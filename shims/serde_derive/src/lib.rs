//! Derive macros for the in-tree `serde` shim.
//!
//! Supports the subset this workspace actually uses: non-generic structs
//! (unit, tuple, named) and enums (unit, tuple, and struct variants),
//! with no `#[serde(...)]` attributes. The JSON shape matches upstream
//! serde's externally-tagged default so hand-authored fixtures keep
//! working.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skips outer attributes (`#[...]`, including expanded doc comments) and
/// visibility modifiers, returning the remaining tokens.
fn skip_attrs_and_vis(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                // The bracketed attribute body.
                tokens.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                // `pub(crate)` and friends carry a parenthesized scope.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Counts top-level (angle-bracket-aware) comma-separated segments in a
/// field list, i.e. the arity of a tuple struct / tuple variant.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut in_segment = false;
    for tt in group.stream() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                in_segment = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                in_segment = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if in_segment {
                    fields += 1;
                }
                in_segment = false;
            }
            _ => in_segment = true,
        }
    }
    if in_segment {
        fields += 1;
    }
    fields
}

/// Extracts field names from a named-field brace group.
fn named_field_names(group: &proc_macro::Group) -> Vec<String> {
    let mut names = Vec::new();
    let mut tokens = group.stream().into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(_) => continue,
            None => break,
        };
        // Expect `:`; then skip the type until a top-level comma.
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => continue,
        }
        names.push(name);
        let mut depth = 0i32;
        for tt in tokens.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    names
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = group.stream().into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(_) => continue,
            None => break,
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g);
                tokens.next();
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = named_field_names(g);
                tokens.next();
                VariantShape::Named(names)
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip an optional discriminant and the trailing comma.
        let mut depth = 0i32;
        while let Some(tt) = tokens.peek() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    tokens.next();
                    break;
                }
                _ => {}
            }
            tokens.next();
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Result<Parsed, String> {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    if kind != "struct" && kind != "enum" {
        return Err(format!("expected `struct` or `enum`, got `{kind}`"));
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "the serde shim derive does not support generic type `{name}`"
            ));
        }
    }
    let shape = if kind == "enum" {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(&g))
            }
            other => return Err(format!("expected enum body, got {other:?}")),
        }
    } else {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(named_field_names(&g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(&g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            None => Shape::UnitStruct,
            other => return Err(format!("expected struct body, got {other:?}")),
        }
    };
    Ok(Parsed { name, shape })
}

// ----- Serialize codegen -------------------------------------------------

fn gen_serialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::UnitStruct => "__s.null();".to_string(),
        Shape::TupleStruct(1) => "::serde::Serialize::serialize(&self.0, __s);".to_string(),
        Shape::TupleStruct(n) => {
            let mut out = String::from("__s.begin_array();\n");
            for i in 0..*n {
                out.push_str(&format!("::serde::Serialize::serialize(&self.{i}, __s);\n"));
            }
            out.push_str("__s.end_array();");
            out
        }
        Shape::NamedStruct(fields) => {
            let mut out = String::from("__s.begin_object();\n");
            for f in fields {
                out.push_str(&format!(
                    "__s.key({f:?}); ::serde::Serialize::serialize(&self.{f}, __s);\n"
                ));
            }
            out.push_str("__s.end_object();");
            out
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        arms.push_str(&format!("{name}::{vn} => __s.string({vn:?}),\n"));
                    }
                    VariantShape::Tuple(1) => {
                        arms.push_str(&format!(
                            "{name}::{vn}(__f0) => {{ __s.begin_object(); __s.key({vn:?}); \
                             ::serde::Serialize::serialize(__f0, __s); __s.end_object(); }}\n"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let mut arm = format!(
                            "{name}::{vn}({}) => {{ __s.begin_object(); __s.key({vn:?}); __s.begin_array();\n",
                            binds.join(", ")
                        );
                        for b in &binds {
                            arm.push_str(&format!("::serde::Serialize::serialize({b}, __s);\n"));
                        }
                        arm.push_str("__s.end_array(); __s.end_object(); }\n");
                        arms.push_str(&arm);
                    }
                    VariantShape::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| format!("{f}: __b_{f}")).collect();
                        let mut arm = format!(
                            "{name}::{vn} {{ {} }} => {{ __s.begin_object(); __s.key({vn:?}); __s.begin_object();\n",
                            binds.join(", ")
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "__s.key({f:?}); ::serde::Serialize::serialize(__b_{f}, __s);\n"
                            ));
                        }
                        arm.push_str("__s.end_object(); __s.end_object(); }\n");
                        arms.push_str(&arm);
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self, __s: &mut ::serde::Serializer) {{\n{body}\n}}\n\
         }}\n"
    )
}

// ----- Deserialize codegen ----------------------------------------------

fn gen_deserialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let mut fields = String::new();
            for i in 0..*n {
                fields.push_str(&format!("::serde::__private::index(__arr, {i})?,\n"));
            }
            format!(
                "let __arr = __v.as_array().ok_or_else(|| ::serde::Error::msg(\
                 \"expected array for tuple struct {name}\"))?;\n\
                 ::std::result::Result::Ok({name}(\n{fields}))"
            )
        }
        Shape::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!("{f}: ::serde::__private::field(__obj, {f:?})?,\n"));
            }
            format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::Error::msg(\
                 \"expected object for struct {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Shape::Enum(variants) => {
            let mut str_arms = String::new();
            for v in variants {
                if matches!(v.shape, VariantShape::Unit) {
                    let vn = &v.name;
                    str_arms.push_str(&format!(
                        "{vn:?} => return ::std::result::Result::Ok({name}::{vn}),\n"
                    ));
                }
            }
            let mut tag_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        tag_arms.push_str(&format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantShape::Tuple(1) => {
                        tag_arms.push_str(&format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::deserialize(__payload)?)),\n"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let mut fields = String::new();
                        for i in 0..*n {
                            fields.push_str(&format!("::serde::__private::index(__arr, {i})?,\n"));
                        }
                        tag_arms.push_str(&format!(
                            "{vn:?} => {{ let __arr = __payload.as_array().ok_or_else(|| \
                             ::serde::Error::msg(\"expected array for variant {name}::{vn}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn}(\n{fields})) }}\n"
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{f}: ::serde::__private::field(__o, {f:?})?,\n"
                            ));
                        }
                        tag_arms.push_str(&format!(
                            "{vn:?} => {{ let __o = __payload.as_object().ok_or_else(|| \
                             ::serde::Error::msg(\"expected object for variant {name}::{vn}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n{inits}}}) }}\n"
                        ));
                    }
                }
            }
            format!(
                "if let ::std::option::Option::Some(__tag) = __v.as_str() {{\n\
                     match __tag {{\n{str_arms}\
                         _ => return ::std::result::Result::Err(::serde::Error::msg(\
                             \"unknown variant for enum {name}\")),\n\
                     }}\n\
                 }}\n\
                 let __obj = __v.as_object().ok_or_else(|| ::serde::Error::msg(\
                     \"expected string or single-key object for enum {name}\"))?;\n\
                 if __obj.len() != 1 {{\n\
                     return ::std::result::Result::Err(::serde::Error::msg(\
                         \"expected single-key object for enum {name}\"));\n\
                 }}\n\
                 let (__tag, __payload) = &__obj[0];\n\
                 match __tag.as_str() {{\n{tag_arms}\
                     _ => ::std::result::Result::Err(::serde::Error::msg(\
                         \"unknown variant for enum {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(__v: &::serde::Value) \
               -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}\n"
    )
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(parsed) => gen_serialize(&parsed)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde shim codegen error: {e}"))),
        Err(e) => compile_error(&e),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(parsed) => gen_deserialize(&parsed)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde shim codegen error: {e}"))),
        Err(e) => compile_error(&e),
    }
}

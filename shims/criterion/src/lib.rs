//! In-tree, offline shim for the `criterion` API subset this workspace
//! uses. Benchmarks compile and run with `cargo bench`, printing a
//! median ns/iter per benchmark. There are no statistical reports or
//! HTML output — this is a timing harness, not a statistics package —
//! but relative comparisons (e.g. recorder on vs off) are meaningful.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifies a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter (named by the enclosing group).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times closures over adaptively chosen iteration counts.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<f64>,
}

/// Target wall-clock spent measuring one benchmark.
const TARGET: Duration = Duration::from_millis(120);
const SAMPLES: usize = 12;

impl Bencher {
    /// Benchmarks `routine`, timing batches sized so measurement stays
    /// fast even for multi-millisecond routines.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up & calibration.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_sample = TARGET / SAMPLES as u32;
        let batch = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        self.samples.clear();
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / batch as f64);
        }
    }

    /// Benchmarks `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_sample = TARGET / SAMPLES as u32;
        let batch = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        self.samples.clear();
        for _ in 0..SAMPLES {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / batch as f64);
        }
    }

    fn median_ns(&mut self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        self.samples[self.samples.len() / 2]
    }
}

fn report(name: &str, ns: f64) {
    let (value, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    println!("{name:<50} time: {value:10.3} {unit}/iter");
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        report(&id, b.median_ns());
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkIdOrString>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().0;
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.median_ns());
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), b.median_ns());
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Conversion target accepting `&str`, `String`, or [`BenchmarkId`].
pub struct BenchmarkIdOrString(String);

impl From<&str> for BenchmarkIdOrString {
    fn from(s: &str) -> Self {
        BenchmarkIdOrString(s.to_string())
    }
}

impl From<String> for BenchmarkIdOrString {
    fn from(s: String) -> Self {
        BenchmarkIdOrString(s)
    }
}

impl From<BenchmarkId> for BenchmarkIdOrString {
    fn from(id: BenchmarkId) -> Self {
        BenchmarkIdOrString(id.id)
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

//! Parsed JSON tree and recursive-descent parser for [`crate::Deserialize`].

use std::fmt;

/// A JSON parse or mapping error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with the given message.
    pub fn msg(m: &str) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A parsed JSON value. Objects preserve key order as a pair list, which
/// is all the derive-generated lookups need.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer written without sign, fraction, or exponent.
    UInt(u64),
    /// A negative integer written without fraction or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as an ordered `(key, value)` list.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The text, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric value as `f64` (any number representation).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(n) => Some(*n as f64),
            Value::Int(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric value as `u64` if it is a non-negative integer (integral
    /// floats are accepted, as serde_json does for `1.0`-style input).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Numeric value as `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::UInt(n) => i64::try_from(*n).ok(),
            Value::Int(n) => Some(*n),
            Value::Float(f)
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(&format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::msg(&format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::msg(&format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::msg("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::msg("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            // Surrogate pairs are not needed by our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(Error::msg("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<u64>() {
                    if let Ok(i) = i64::try_from(n) {
                        return Ok(Value::Int(-i));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(&format!("invalid number {text:?}")))
    }
}

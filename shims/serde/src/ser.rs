//! The JSON writer behind [`crate::Serialize`].

/// Streams JSON text. Tracks container nesting so commas and (in pretty
/// mode) indentation are inserted automatically; the derive-generated
/// code only calls `begin_*`/`key`/scalar methods in order.
#[derive(Debug)]
pub struct Serializer {
    out: String,
    pretty: bool,
    /// One frame per open container: `(is_array, items_written)`.
    stack: Vec<(bool, usize)>,
}

impl Serializer {
    /// A compact serializer.
    pub fn new() -> Self {
        Self {
            out: String::new(),
            pretty: false,
            stack: Vec::new(),
        }
    }

    /// A pretty-printing serializer (two-space indent).
    pub fn pretty() -> Self {
        Self {
            pretty: true,
            ..Self::new()
        }
    }

    /// The JSON text produced so far.
    pub fn into_string(self) -> String {
        self.out
    }

    fn newline_indent(&mut self, depth: usize) {
        self.out.push('\n');
        for _ in 0..depth {
            self.out.push_str("  ");
        }
    }

    /// Prepares for a value in the current container: separating comma for
    /// array elements, nothing for object values (the key wrote the
    /// separator) or the root.
    fn value_prelude(&mut self) {
        if let Some(&mut (is_array, ref mut items)) = self.stack.last_mut() {
            if is_array {
                let first = *items == 0;
                *items += 1;
                if !first {
                    self.out.push(',');
                }
                if self.pretty {
                    let depth = self.stack.len();
                    self.newline_indent(depth);
                }
            }
        }
    }

    /// Writes an object key (with its separator and colon).
    pub fn key(&mut self, name: &str) {
        let first = match self.stack.last_mut() {
            Some(&mut (false, ref mut items)) => {
                let first = *items == 0;
                *items += 1;
                first
            }
            _ => true,
        };
        if !first {
            self.out.push(',');
        }
        if self.pretty {
            let depth = self.stack.len();
            self.newline_indent(depth);
        }
        self.write_escaped(name);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
    }

    /// Opens a JSON object.
    pub fn begin_object(&mut self) {
        self.value_prelude();
        self.out.push('{');
        self.stack.push((false, 0));
    }

    /// Closes the innermost JSON object.
    pub fn end_object(&mut self) {
        let frame = self.stack.pop();
        if self.pretty && matches!(frame, Some((_, n)) if n > 0) {
            let depth = self.stack.len();
            self.newline_indent(depth);
        }
        self.out.push('}');
    }

    /// Opens a JSON array.
    pub fn begin_array(&mut self) {
        self.value_prelude();
        self.out.push('[');
        self.stack.push((true, 0));
    }

    /// Closes the innermost JSON array.
    pub fn end_array(&mut self) {
        let frame = self.stack.pop();
        if self.pretty && matches!(frame, Some((_, n)) if n > 0) {
            let depth = self.stack.len();
            self.newline_indent(depth);
        }
        self.out.push(']');
    }

    /// Writes `null`.
    pub fn null(&mut self) {
        self.value_prelude();
        self.out.push_str("null");
    }

    /// Writes a boolean.
    pub fn bool(&mut self, b: bool) {
        self.value_prelude();
        self.out.push_str(if b { "true" } else { "false" });
    }

    /// Writes an unsigned integer.
    pub fn uint(&mut self, n: u64) {
        self.value_prelude();
        self.out.push_str(&n.to_string());
    }

    /// Writes a signed integer.
    pub fn int(&mut self, n: i64) {
        self.value_prelude();
        self.out.push_str(&n.to_string());
    }

    /// Writes a float. Rust's shortest-round-trip `Display` keeps values
    /// exact across a serialize/parse cycle; non-finite values become
    /// `null` (serde_json's behavior).
    pub fn float(&mut self, f: f64) {
        self.value_prelude();
        if f.is_finite() {
            let mut text = f.to_string();
            // Keep a float-looking token so parsing stays type-faithful.
            if !text.contains(['.', 'e', 'E']) {
                text.push_str(".0");
            }
            self.out.push_str(&text);
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes a JSON string.
    pub fn string(&mut self, s: &str) {
        self.value_prelude();
        self.write_escaped(s);
    }

    fn write_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

impl Default for Serializer {
    fn default() -> Self {
        Self::new()
    }
}

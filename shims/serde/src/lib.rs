//! In-tree, offline shim for the `serde` API subset this workspace uses.
//!
//! The workspace builds in environments with no crates.io access, so
//! `serde`/`serde_json` are replaced by these shims (wired up as path
//! dependencies in the workspace `Cargo.toml`). The data model is JSON
//! only: [`Serialize`] writes straight into a JSON [`Serializer`], and
//! [`Deserialize`] reads from a parsed [`Value`] tree. Derive macros come
//! from the sibling `serde_derive` shim and produce the same externally
//! tagged JSON shapes as upstream serde's defaults, so files and inline
//! fixtures written against real serde parse identically.

pub use serde_derive::{Deserialize, Serialize};

mod ser;
mod value;

pub use ser::Serializer;
pub use value::{parse, Error, Value};

/// Serializes `self` into a JSON [`Serializer`].
pub trait Serialize {
    /// Writes `self` as the next JSON value.
    fn serialize(&self, s: &mut Serializer);
}

/// Constructs `Self` from a parsed JSON [`Value`].
pub trait Deserialize: Sized {
    /// Reads `Self` from `v`.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// ----- Serialize impls ---------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, s: &mut Serializer) {
        (**self).serialize(s);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self, s: &mut Serializer) {
        (**self).serialize(s);
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut Serializer) {
                s.uint(*self as u64);
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut Serializer) {
                s.int(*self as i64);
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self, s: &mut Serializer) {
        s.float(*self);
    }
}

impl Serialize for f32 {
    fn serialize(&self, s: &mut Serializer) {
        s.float(*self as f64);
    }
}

impl Serialize for bool {
    fn serialize(&self, s: &mut Serializer) {
        s.bool(*self);
    }
}

impl Serialize for str {
    fn serialize(&self, s: &mut Serializer) {
        s.string(self);
    }
}

impl Serialize for String {
    fn serialize(&self, s: &mut Serializer) {
        s.string(self);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, s: &mut Serializer) {
        match self {
            Some(v) => v.serialize(s),
            None => s.null(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, s: &mut Serializer) {
        s.begin_array();
        for item in self {
            item.serialize(s);
        }
        s.end_array();
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, s: &mut Serializer) {
        self.as_slice().serialize(s);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, s: &mut Serializer) {
        self.as_slice().serialize(s);
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self, s: &mut Serializer) {
                s.begin_array();
                $( self.$n.serialize(s); )+
                s.end_array();
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// ----- Deserialize impls -------------------------------------------------

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        // `null` round-trips non-finite floats, matching serde_json's
        // serialization of NaN/infinity.
        if matches!(v, Value::Null) {
            return Ok(f64::NAN);
        }
        v.as_f64().ok_or_else(|| Error::msg("expected number"))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::msg("expected array"))?;
        arr.iter().map(T::deserialize).collect()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

macro_rules! de_tuple {
    ($(($len:literal: $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::msg("expected array"))?;
                if arr.len() != $len {
                    return Err(Error::msg("tuple length mismatch"));
                }
                Ok(($($t::deserialize(&arr[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1: 0 A)
    (2: 0 A, 1 B)
    (3: 0 A, 1 B, 2 C)
    (4: 0 A, 1 B, 2 C, 3 D)
}

// ----- Derive support ----------------------------------------------------

/// Helpers used by the generated derive code. Not part of the public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Looks up `name` in an object's pairs; a missing field reads as
    /// `null` (so `Option` fields tolerate omission, like
    /// `#[serde(default)]` would upstream).
    pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
        match obj.iter().find(|(k, _)| k == name) {
            Some((_, v)) => {
                T::deserialize(v).map_err(|e| Error::msg(&format!("field `{name}`: {e}")))
            }
            None => T::deserialize(&Value::Null)
                .map_err(|_| Error::msg(&format!("missing field `{name}`"))),
        }
    }

    /// Reads element `i` of a JSON array (tuple structs and variants).
    pub fn index<T: Deserialize>(arr: &[Value], i: usize) -> Result<T, Error> {
        let v = arr
            .get(i)
            .ok_or_else(|| Error::msg(&format!("missing tuple element {i}")))?;
        T::deserialize(v)
    }
}

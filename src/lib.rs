//! # No "Power" Struggles
//!
//! A full Rust reproduction of *"No 'Power' Struggles: Coordinated
//! Multi-level Power Management for the Data Center"* (Raghavendra,
//! Ranganathan, Talwar, Wang, Zhu — ASPLOS 2008): a coordination
//! architecture that federates five power-management controllers —
//! per-server efficiency control (EC), server/enclosure/group thermal
//! power capping (SM/EM/GM), and VM consolidation (VMC) — so they stop
//! fighting over the same actuators.
//!
//! This crate is a facade re-exporting the workspace's public API:
//!
//! * [`models`] — P-state tables and calibrated linear power/performance
//!   models (paper Figure 5), including the two reference systems
//!   `Blade A` and `Server B`;
//! * [`traces`] — the synthetic 180-trace enterprise corpus and the
//!   paper's workload mixes (`180`, `60L/M/H`, `60HH/HHH`);
//! * [`sim`] — the trace-driven data-center simulator (topology, VMs,
//!   migration, power sensors, RC thermal model);
//! * [`control`] — the feedback controllers and Appendix-A stability
//!   bounds;
//! * [`opt`] — the VMC's constrained bin-packing optimizer;
//! * [`metrics`] — power savings / performance loss / per-level budget
//!   violations;
//! * [`core`] — the coordination architecture itself: coordination modes,
//!   paper scenarios, and the experiment runner.
//!
//! # Quickstart
//!
//! ```no_run
//! use no_power_struggles::prelude::*;
//!
//! // Blade A running the full 180-trace mix under the coordinated
//! // architecture with the paper's base parameters.
//! let cfg = Scenario::paper(SystemKind::BladeA, Mix::All180,
//!                           CoordinationMode::Coordinated)
//!     .build();
//! let result = run_experiment(&cfg);
//! println!(
//!     "power savings {:.1}% | perf loss {:.1}% | SM violations {:.1}%",
//!     result.comparison.power_savings_pct,
//!     result.comparison.perf_loss_pct,
//!     result.comparison.violations_sm_pct,
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nps_control as control;
pub use nps_core as core;
pub use nps_metrics as metrics;
pub use nps_models as models;
pub use nps_opt as opt;
pub use nps_sim as sim;
pub use nps_traces as traces;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use nps_control::{
        ArbitrationPolicy, ControllerBank, CracController, EfficiencyController, ElectricalCapper,
        FrequencyArbiter, GroupCapper, ServerManager,
    };
    pub use nps_core::{
        load_results, run_experiment, run_sweep, run_sweep_resumable, save_results, BudgetSpec,
        ControllerMask, CoordinationMode, ExperimentConfig, ExperimentResult, Intervals,
        PolicyKind, Runner, RunnerSnapshot, Scenario, SweepError, SystemKind,
    };
    pub use nps_metrics::{
        BudgetLevel, Comparison, ControllerKind, EventKind, FaultStats, InvariantKind,
        InvariantStats, NoopRecorder, Recorder, RingRecorder, RunStats, Table, TelemetryEvent,
        TelemetryLog, TelemetrySummary,
    };
    pub use nps_models::{ModelTable, PState, ServerModel};
    pub use nps_opt::{Objective, Vmc, VmcConfig};
    pub use nps_sim::{
        BusConfig, BusEvent, ControlBus, ControllerLayer, FaultPlan, GrantMsg, LinkId, Placement,
        RackId, RedundancyConfig, RedundancyStats, ReplicaState, RetryConfig, ServerId, SimConfig,
        Simulation, ThermalConfig, Topology, VmId,
    };
    pub use nps_traces::{Corpus, Mix, UtilTrace, WorkloadClass};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let model = ServerModel::blade_a();
        assert_eq!(model.num_pstates(), 5);
        let _ = Mix::All180;
        let _ = CoordinationMode::Coordinated;
    }
}

//! `npsctl` — command-line front end for the reproduction.
//!
//! ```text
//! npsctl run    --system blade-a --mix 180 --mode coordinated [options]
//! npsctl sweep  --out results.json [--horizon N] [--seed N]
//! npsctl corpus --out corpus.json [--csv corpus.csv] [--len N] [--seed N]
//! npsctl models
//! npsctl help
//! ```
//!
//! Argument parsing is hand-rolled (no CLI dependency); every subcommand
//! maps onto the library's public API.

use no_power_struggles::core::{load_results, run_sweep, run_sweep_resumable, save_results};
use no_power_struggles::prelude::*;
use no_power_struggles::traces::io as trace_io;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("corpus") => cmd_corpus(&args[1..]),
        Some("models") => cmd_models(),
        Some("help") | None => {
            print_help();
            0
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n");
            print_help();
            2
        }
    };
    std::process::exit(code);
}

fn print_help() {
    println!(
        "npsctl — coordinated multi-level power management (ASPLOS'08 reproduction)\n\
         \n\
         USAGE:\n\
         \x20 npsctl run    --system <blade-a|server-b> --mix <180|60l|60m|60h|60hh|60hhh>\n\
         \x20               --mode <coordinated|uncoordinated|appr-util|no-feedback|\n\
         \x20                       no-budget-limits|min-pstates>\n\
         \x20               [--budgets G-E-L] [--horizon N] [--seed N] [--threads N]\n\
         \x20               [--policy <proportional|fair|fifo|random|priority|history>]\n\
         \x20               [--mask <all|novmc|vmconly>] [--json FILE]\n\
         \x20               [--standby] [--invariants]\n\
         \x20               [--checkpoint FILE [--checkpoint-every N]] [--resume FILE]\n\
         \x20 npsctl sweep  --out FILE [--horizon N] [--seed N] [--threads N] [--resume FILE]\n\
         \x20 npsctl corpus --out FILE [--csv FILE] [--len N] [--seed N]\n\
         \x20 npsctl models                                       # print model tables"
    );
}

/// Looks up the value following `--key` in `args`.
fn flag<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// The flags `npsctl run` accepts (each takes one value).
const RUN_FLAGS: &[&str] = &[
    "--system",
    "--mix",
    "--mode",
    "--budgets",
    "--horizon",
    "--seed",
    "--threads",
    "--policy",
    "--mask",
    "--json",
    "--checkpoint",
    "--checkpoint-every",
    "--resume",
];

/// The boolean switches `npsctl run` accepts (no value follows).
const RUN_SWITCHES: &[&str] = &["--standby", "--invariants"];

/// The flags `npsctl sweep` accepts.
const SWEEP_FLAGS: &[&str] = &["--out", "--horizon", "--seed", "--threads", "--resume"];

/// The flags `npsctl corpus` accepts.
const CORPUS_FLAGS: &[&str] = &["--out", "--csv", "--len", "--seed"];

/// Rejects any `--flag` not in `valid`/`switches` and any stray
/// positional token. A typo like `--budgest` must fail loudly (exit 2),
/// not silently run the experiment with default budgets. Flags in
/// `valid` consume the following value; `switches` stand alone.
fn check_flags(args: &[String], valid: &[&str], switches: &[&str]) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if !a.starts_with("--") {
            return Err(format!(
                "unexpected argument `{a}`; valid flags: {}",
                valid.join(", ")
            ));
        }
        if switches.contains(&a.as_str()) {
            i += 1;
            continue;
        }
        if !valid.contains(&a.as_str()) {
            return Err(format!(
                "unrecognized flag `{a}`; valid flags: {}",
                valid.join(", ")
            ));
        }
        // Every non-switch flag takes exactly one value.
        i += 2;
    }
    Ok(())
}

/// Whether the standalone switch `key` is present.
fn switch(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

fn parse_system(s: &str) -> Result<SystemKind, String> {
    match s.to_ascii_lowercase().as_str() {
        "blade-a" | "bladea" | "a" => Ok(SystemKind::BladeA),
        "server-b" | "serverb" | "b" => Ok(SystemKind::ServerB),
        other => Err(format!("unknown system `{other}`")),
    }
}

fn parse_mix(s: &str) -> Result<Mix, String> {
    match s.to_ascii_lowercase().as_str() {
        "180" | "all180" => Ok(Mix::All180),
        "60l" => Ok(Mix::L60),
        "60m" => Ok(Mix::M60),
        "60h" => Ok(Mix::H60),
        "60hh" => Ok(Mix::Hh60),
        "60hhh" => Ok(Mix::Hhh60),
        other => Err(format!("unknown mix `{other}`")),
    }
}

fn parse_mode(s: &str) -> Result<CoordinationMode, String> {
    match s.to_ascii_lowercase().as_str() {
        "coordinated" | "coord" => Ok(CoordinationMode::Coordinated),
        "uncoordinated" | "uncoord" => Ok(CoordinationMode::Uncoordinated),
        "appr-util" => Ok(CoordinationMode::CoordApparentUtil),
        "no-feedback" => Ok(CoordinationMode::CoordNoFeedback),
        "no-budget-limits" => Ok(CoordinationMode::CoordNoBudgetLimits),
        "min-pstates" => Ok(CoordinationMode::UncoordMinPstates),
        other => Err(format!("unknown mode `{other}`")),
    }
}

fn parse_budgets(s: &str) -> Result<BudgetSpec, String> {
    let parts: Vec<&str> = s.split('-').collect();
    if parts.len() != 3 {
        return Err(format!("budgets must be G-E-L percentages, got `{s}`"));
    }
    let mut vals = [0.0f64; 3];
    for (i, p) in parts.iter().enumerate() {
        vals[i] = p
            .parse::<f64>()
            .map_err(|_| format!("bad budget component `{p}`"))?
            / 100.0;
        // Inclusive bounds: 100 (cap the level all the way off) and 0
        // (no cap) are both meaningful settings.
        if !(0.0..=1.0).contains(&vals[i]) {
            return Err(format!(
                "budget component `{p}` out of range (accepted: 0 to 100, percent off)"
            ));
        }
    }
    Ok(BudgetSpec {
        group_off: vals[0],
        enclosure_off: vals[1],
        local_off: vals[2],
    })
}

fn parse_policy(s: &str) -> Result<PolicyKind, String> {
    match s.to_ascii_lowercase().as_str() {
        "proportional" => Ok(PolicyKind::Proportional),
        "fair" => Ok(PolicyKind::Fair),
        "fifo" => Ok(PolicyKind::Fifo),
        "random" => Ok(PolicyKind::Random(42)),
        "priority" => Ok(PolicyKind::Priority),
        "history" => Ok(PolicyKind::History(0.3)),
        other => Err(format!("unknown policy `{other}`")),
    }
}

fn parse_mask(s: &str) -> Result<ControllerMask, String> {
    match s.to_ascii_lowercase().as_str() {
        "all" => Ok(ControllerMask::ALL),
        "novmc" => Ok(ControllerMask::NO_VMC),
        "vmconly" => Ok(ControllerMask::VMC_ONLY),
        other => Err(format!("unknown mask `{other}`")),
    }
}

fn fail(msg: String) -> i32 {
    eprintln!("error: {msg}");
    2
}

/// The rejection message for a bad `--threads` value. `--threads 0`
/// (a pool with no workers) and non-numeric values fail loudly with
/// the same exit-2 + valid-flag-list shape as an unknown flag, per the
/// strict-flag policy: a typo must never silently run sequentially.
fn threads_error(value: &str, valid: &[&str]) -> String {
    format!(
        "bad --threads `{value}` (need an integer >= 1); valid flags: {}",
        valid.join(", ")
    )
}

fn cmd_run(args: &[String]) -> i32 {
    if let Err(e) = check_flags(args, RUN_FLAGS, RUN_SWITCHES) {
        return fail(e);
    }
    let system = match parse_system(flag(args, "--system").unwrap_or("blade-a")) {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let mix = match parse_mix(flag(args, "--mix").unwrap_or("180")) {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let mode = match parse_mode(flag(args, "--mode").unwrap_or("coordinated")) {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let mut scenario = Scenario::paper(system, mix, mode);
    if let Some(b) = flag(args, "--budgets") {
        match parse_budgets(b) {
            Ok(v) => scenario = scenario.budgets(v),
            Err(e) => return fail(e),
        }
    }
    if let Some(h) = flag(args, "--horizon") {
        match h.parse() {
            Ok(v) => scenario = scenario.horizon(v),
            Err(_) => return fail(format!("bad horizon `{h}`")),
        }
    }
    if let Some(s) = flag(args, "--seed") {
        match s.parse() {
            Ok(v) => scenario = scenario.seed(v),
            Err(_) => return fail(format!("bad seed `{s}`")),
        }
    }
    if let Some(n) = flag(args, "--threads") {
        match n.parse::<usize>() {
            Ok(v) if v >= 1 => scenario = scenario.threads(v),
            _ => return fail(threads_error(n, RUN_FLAGS)),
        }
    }
    if let Some(p) = flag(args, "--policy") {
        match parse_policy(p) {
            Ok(v) => scenario = scenario.policy(v),
            Err(e) => return fail(e),
        }
    }
    if let Some(m) = flag(args, "--mask") {
        match parse_mask(m) {
            Ok(v) => scenario = scenario.mask(v),
            Err(e) => return fail(e),
        }
    }
    let standby = switch(args, "--standby");
    let invariants = switch(args, "--invariants");
    if standby {
        scenario = scenario.standbys();
    }
    scenario = scenario.invariants(invariants);
    let cfg = scenario.build();
    let checkpoint = flag(args, "--checkpoint");
    let every: u64 = match flag(args, "--checkpoint-every") {
        None => 0,
        Some(n) => match n.parse() {
            Ok(v) => v,
            Err(_) => return fail(format!("bad --checkpoint-every `{n}`")),
        },
    };
    if every > 0 && checkpoint.is_none() {
        return fail("--checkpoint-every requires --checkpoint FILE".to_string());
    }
    let resume = flag(args, "--resume");
    println!("running: {}", cfg.label);
    // The checkpointed path drives the runner directly, which is also
    // what exposes the redundancy/invariant counter blocks.
    let (result, rstats, istats) =
        if checkpoint.is_some() || resume.is_some() || standby || invariants {
            match run_checkpointed(&cfg, resume, checkpoint, every) {
                Ok(r) => r,
                Err(e) => return fail(e),
            }
        } else {
            let r = run_experiment(&cfg);
            (r, RedundancyStats::default(), InvariantStats::default())
        };
    if standby {
        println!("redundancy: {rstats}");
    }
    if invariants {
        println!("invariants: {istats}");
    }
    let c = &result.comparison;
    let mut table = Table::new(vec!["metric", "value"]);
    table.row(vec![
        "power savings %".into(),
        Table::fmt(c.power_savings_pct),
    ]);
    table.row(vec!["perf loss %".into(), Table::fmt(c.perf_loss_pct)]);
    table.row(vec![
        "violations GM %".into(),
        Table::fmt(c.violations_gm_pct),
    ]);
    table.row(vec![
        "violations EM %".into(),
        Table::fmt(c.violations_em_pct),
    ]);
    table.row(vec![
        "violations SM %".into(),
        Table::fmt(c.violations_sm_pct),
    ]);
    table.row(vec![
        "P-state races".into(),
        c.run.pstate_conflicts.to_string(),
    ]);
    table.row(vec!["migrations".into(), c.run.migrations.to_string()]);
    table.row(vec!["mean power W".into(), Table::fmt(c.run.mean_power())]);
    println!("{table}");
    if let Some(path) = flag(args, "--json") {
        if let Err(e) = save_results(&[result], path) {
            return fail(format!("writing {path}: {e}"));
        }
        println!("wrote {path}");
        // Round-trip sanity so a corrupted write is caught immediately.
        if load_results(path).is_err() {
            return fail(format!("verification read of {path} failed"));
        }
    }
    0
}

/// The crash-recoverable run path: resumes from a checkpoint file if
/// given, writes a checkpoint every `every` ticks (atomically, so a
/// SIGKILL mid-write can't corrupt it), and reproduces the exact result
/// an uninterrupted [`run_experiment`] would have produced — the
/// trajectory is bit-identical, and the fault-free baseline is re-run
/// deterministically at the end.
fn run_checkpointed(
    cfg: &ExperimentConfig,
    resume: Option<&str>,
    checkpoint: Option<&str>,
    every: u64,
) -> Result<(ExperimentResult, RedundancyStats, InvariantStats), String> {
    let mut runner = match resume {
        Some(path) => {
            let snap = RunnerSnapshot::load(path).map_err(|e| format!("reading {path}: {e}"))?;
            let runner = Runner::resume(cfg, &snap).map_err(|e| e.to_string())?;
            println!("resumed from {path} at tick {}", runner.ticks_done());
            runner
        }
        None => Runner::new(cfg),
    };
    while runner.ticks_done() < cfg.horizon {
        runner.tick();
        if let (Some(path), true) = (checkpoint, every > 0) {
            let t = runner.ticks_done();
            if t % every == 0 && t < cfg.horizon {
                runner
                    .snapshot()
                    .save(path)
                    .map_err(|e| format!("writing {path}: {e}"))?;
            }
        }
    }
    let rstats = runner.redundancy_stats();
    let istats = runner.invariant_stats();
    let run = runner.stats();
    let mut baseline_cfg = cfg.clone();
    baseline_cfg.mask = ControllerMask::NONE;
    baseline_cfg.label = format!("{} (baseline)", cfg.label);
    baseline_cfg.faults = FaultPlan::disabled();
    let baseline = Runner::new(&baseline_cfg).run_to_horizon();
    Ok((
        ExperimentResult {
            label: cfg.label.clone(),
            comparison: Comparison::against_baseline(run, &baseline),
            baseline,
        },
        rstats,
        istats,
    ))
}

fn cmd_sweep(args: &[String]) -> i32 {
    if let Err(e) = check_flags(args, SWEEP_FLAGS, &[]) {
        return fail(e);
    }
    let Some(out) = flag(args, "--out") else {
        return fail("sweep requires --out FILE".to_string());
    };
    let horizon: u64 = flag(args, "--horizon")
        .and_then(|h| h.parse().ok())
        .unwrap_or(4_000);
    let seed: u64 = flag(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    // Per-run worker threads (the rack-sharded parallel phase), distinct
    // from the sweep's own cross-configuration parallelism.
    let threads: usize = match flag(args, "--threads") {
        None => 1,
        Some(n) => match n.parse::<usize>() {
            Ok(v) if v >= 1 => v,
            _ => return fail(threads_error(n, SWEEP_FLAGS)),
        },
    };
    let mut cfgs = Vec::new();
    for sys in SystemKind::BOTH {
        for mix in [Mix::All180, Mix::Hh60] {
            for mode in [
                CoordinationMode::Coordinated,
                CoordinationMode::Uncoordinated,
            ] {
                cfgs.push(
                    Scenario::paper(sys, mix, mode)
                        .horizon(horizon)
                        .seed(seed)
                        .threads(threads)
                        .build(),
                );
            }
        }
    }
    println!("running {} configurations (Figure-7 grid)…", cfgs.len());
    let outcomes = match flag(args, "--resume") {
        Some(path) => {
            let completed = match load_results(path) {
                Ok(r) => r,
                Err(e) => return fail(format!("reading {path}: {e}")),
            };
            println!(
                "resuming: {} completed result(s) loaded from {path}",
                completed.len()
            );
            run_sweep_resumable(&cfgs, &completed, 0)
        }
        None => run_sweep(&cfgs, 0),
    };
    let mut results = Vec::with_capacity(outcomes.len());
    let mut failures = 0;
    for outcome in outcomes {
        match outcome {
            Ok(r) => {
                println!(
                    "  {:<55} save {:>5.1}%  perf {:>4.1}%  viol SM {:>4.1}%",
                    r.label,
                    r.comparison.power_savings_pct,
                    r.comparison.perf_loss_pct,
                    r.comparison.violations_sm_pct
                );
                results.push(r);
            }
            Err(e) => {
                eprintln!("  FAILED: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} configuration(s) failed; writing the rest");
    }
    match save_results(&results, out) {
        Ok(()) => {
            println!("wrote {out}");
            0
        }
        Err(e) => fail(format!("writing {out}: {e}")),
    }
}

fn cmd_corpus(args: &[String]) -> i32 {
    if let Err(e) = check_flags(args, CORPUS_FLAGS, &[]) {
        return fail(e);
    }
    let Some(out) = flag(args, "--out") else {
        return fail("corpus requires --out FILE".to_string());
    };
    let len: usize = flag(args, "--len")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000);
    let seed: u64 = flag(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let corpus = Corpus::enterprise(len, seed);
    if let Err(e) = trace_io::save_json(&corpus, out) {
        return fail(format!("writing {out}: {e}"));
    }
    println!(
        "wrote {out}: {} traces × {len} ticks (mean utilization {:.1}%)",
        corpus.len(),
        100.0 * corpus.mean_utilization()
    );
    if let Some(csv) = flag(args, "--csv") {
        if let Err(e) = trace_io::export_csv(&corpus, csv) {
            return fail(format!("writing {csv}: {e}"));
        }
        println!("wrote {csv}");
    }
    0
}

fn cmd_models() -> i32 {
    for model in [ServerModel::blade_a(), ServerModel::server_b()] {
        println!(
            "{} — {} P-states, max {:.0} W, idle floor {:.0} W",
            model.name(),
            model.num_pstates(),
            model.max_power(),
            model.min_active_power()
        );
        let mut t = Table::new(vec!["P-state", "MHz", "c_p W/util", "d_p W", "a_p"]);
        for (i, s) in model.states().iter().enumerate() {
            t.row(vec![
                format!("P{i}"),
                format!("{:.0}", s.frequency_hz / 1e6),
                Table::fmt(s.power.slope),
                Table::fmt(s.power.idle),
                format!("{:.3}", s.perf.scale),
            ]);
        }
        println!("{t}");
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_finds_values() {
        let a = args(&["--system", "blade-a", "--seed", "7"]);
        assert_eq!(flag(&a, "--system"), Some("blade-a"));
        assert_eq!(flag(&a, "--seed"), Some("7"));
        assert_eq!(flag(&a, "--mix"), None);
    }

    #[test]
    fn parsers_accept_documented_values() {
        assert_eq!(parse_system("server-b").unwrap(), SystemKind::ServerB);
        assert_eq!(parse_mix("60hh").unwrap(), Mix::Hh60);
        assert_eq!(
            parse_mode("min-pstates").unwrap(),
            CoordinationMode::UncoordMinPstates
        );
        assert_eq!(parse_mask("vmconly").unwrap(), ControllerMask::VMC_ONLY);
        assert!(matches!(
            parse_policy("history").unwrap(),
            PolicyKind::History(_)
        ));
    }

    #[test]
    fn budgets_parse_paper_notation() {
        let b = parse_budgets("20-15-10").unwrap();
        assert_eq!(b, BudgetSpec::PAPER_20_15_10);
        assert!(parse_budgets("20-15").is_err());
        assert!(parse_budgets("20-15-xx").is_err());
        assert!(parse_budgets("200-15-10").is_err());
        assert!(parse_budgets("20--5-10").is_err());
    }

    #[test]
    fn budgets_accept_the_full_inclusive_range() {
        // 100 and 0 are the boundary settings (level fully capped off /
        // uncapped); the old half-open check wrongly rejected 100.
        let b = parse_budgets("100-60-40").unwrap();
        assert_eq!(b.group_off, 1.0);
        assert_eq!(b.enclosure_off, 0.6);
        assert_eq!(b.local_off, 0.4);
        assert!(parse_budgets("0-0-0").is_ok());
        let err = parse_budgets("101-60-40").unwrap_err();
        assert!(
            err.contains("accepted: 0 to 100"),
            "error must state the accepted range, got: {err}"
        );
    }

    #[test]
    fn parsers_reject_unknown_values() {
        assert!(parse_system("toaster").is_err());
        assert!(parse_mix("90x").is_err());
        assert!(parse_mode("chaotic").is_err());
    }

    #[test]
    fn run_accepts_boundary_budgets_end_to_end() {
        // `npsctl run --budgets 100-60-40` must succeed (exit 0).
        let code = cmd_run(&args(&["--budgets", "100-60-40", "--horizon", "40"]));
        assert_eq!(code, 0);
    }

    #[test]
    fn misspelled_flags_are_rejected_with_exit_2() {
        // The historical failure mode: `--budgest` was silently ignored
        // and the run proceeded with default budgets.
        assert_eq!(cmd_run(&args(&["--budgest", "50-50-50"])), 2);
        assert_eq!(cmd_sweep(&args(&["--budgest", "50-50-50"])), 2);
        assert_eq!(cmd_corpus(&args(&["--length", "100"])), 2);
        assert_eq!(cmd_run(&args(&["stray"])), 2);
        let err =
            check_flags(&args(&["--budgest", "50-50-50"]), RUN_FLAGS, RUN_SWITCHES).unwrap_err();
        assert!(
            err.contains("--budgets") && err.contains("unrecognized"),
            "rejection must list the valid flags, got: {err}"
        );
    }

    #[test]
    fn zero_or_nonnumeric_threads_rejected_with_exit_2() {
        // `--threads 0` would build a pool with no workers; non-numeric
        // values are typos. Both must fail loudly (exit 2) and point at
        // the valid flags, like any other strict-flag rejection — never
        // silently fall back to a sequential run.
        assert_eq!(cmd_run(&args(&["--threads", "0", "--horizon", "40"])), 2);
        assert_eq!(cmd_run(&args(&["--threads", "four", "--horizon", "40"])), 2);
        assert_eq!(cmd_run(&args(&["--threads", "-1", "--horizon", "40"])), 2);
        assert_eq!(cmd_sweep(&args(&["--out", "x.json", "--threads", "0"])), 2);
        assert_eq!(
            cmd_sweep(&args(&["--out", "x.json", "--threads", "4.5"])),
            2
        );
        for (valid, all_of) in [
            (
                RUN_FLAGS,
                ["--threads", "--mask", "--checkpoint"].as_slice(),
            ),
            (SWEEP_FLAGS, ["--threads", "--out", "--resume"].as_slice()),
        ] {
            let msg = threads_error("0", valid);
            assert!(msg.contains("valid flags:"), "{msg}");
            for f in all_of {
                assert!(msg.contains(f), "`{f}` missing from: {msg}");
            }
        }
    }

    #[test]
    fn run_flags_cover_every_documented_option() {
        for key in ["--threads", "--checkpoint", "--json", "--mask"] {
            assert!(RUN_FLAGS.contains(&key));
        }
        assert!(check_flags(
            &args(&["--threads", "4", "--seed", "7"]),
            RUN_FLAGS,
            RUN_SWITCHES
        )
        .is_ok());
        assert!(check_flags(&[], RUN_FLAGS, RUN_SWITCHES).is_ok());
    }

    #[test]
    fn boolean_switches_do_not_consume_the_next_flag() {
        // `--standby` stands alone: the flag after it must still parse.
        let a = args(&["--standby", "--horizon", "40", "--invariants"]);
        assert!(check_flags(&a, RUN_FLAGS, RUN_SWITCHES).is_ok());
        assert!(switch(&a, "--standby"));
        assert!(switch(&a, "--invariants"));
        assert!(!switch(&a, "--chaos"));
        // A switch is not valid where a value flag is required.
        assert!(check_flags(&args(&["--standby", "stray"]), RUN_FLAGS, RUN_SWITCHES).is_err());
    }

    #[test]
    fn run_with_standby_and_invariants_end_to_end() {
        let code = cmd_run(&args(&["--standby", "--invariants", "--horizon", "60"]));
        assert_eq!(code, 0);
    }
}

#!/usr/bin/env bash
# Regenerates every paper artifact and extension study into results/.
# Usage: scripts/reproduce.sh [horizon] [seed]
set -euo pipefail
cd "$(dirname "$0")/.."
export NPS_HORIZON="${1:-4000}"
export NPS_SEED="${2:-42}"
mkdir -p results
BINS=(fig5_models fig7 fig8 fig9 fig10 pstates turnoff migration timeconst \
      policies failover stability heterogeneous idlepower extensions \
      algorithms cooling electrical)
cargo build --release -p nps-bench --bins
for bin in "${BINS[@]}"; do
  echo "=== $bin (horizon $NPS_HORIZON, seed $NPS_SEED)"
  "target/release/$bin" > "results/$bin.txt"
done
echo "done: results/*.txt"

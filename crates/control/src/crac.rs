//! Cooling-domain controller — the paper's §7 future-work direction
//! (*"coordination with the equivalent spectrum of solutions in the ...
//! cooling domains"*): a per-zone CRAC airflow controller, designed in
//! the same mold as the EC/SM loops so it can federate with them.
//!
//! The controller tracks the zone's hottest inlet temperature to a
//! setpoint by tuning airflow with an integral law, with a feed-forward
//! term from the measured zone power (the analogous "connect actuations
//! to inputs" principle: the IT-side power capping output — zone power —
//! *is* the cooling controller's disturbance input, so no global state
//! needs to be exchanged).

use serde::{Deserialize, Serialize};

/// Integral + feed-forward airflow controller for one CRAC.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CracController {
    /// Integral gain: airflow change per °C of inlet error.
    gain: f64,
    /// Feed-forward weight on the model-predicted airflow (0 = pure
    /// feedback, 1 = pure feed-forward).
    feed_forward: f64,
    /// Current airflow command.
    airflow: f64,
}

impl CracController {
    /// Creates a controller with the given gains, starting at `airflow`.
    pub fn new(gain: f64, feed_forward: f64, airflow: f64) -> Self {
        Self {
            gain,
            feed_forward: feed_forward.clamp(0.0, 1.0),
            airflow,
        }
    }

    /// A reasonable default: mostly feed-forward with gentle feedback
    /// trim.
    pub fn default_for(cfg: &nps_sim::cooling::CracConfig) -> Self {
        Self::new(0.02, 0.8, cfg.airflow_min)
    }

    /// Current airflow command.
    pub fn airflow(&self) -> f64 {
        self.airflow
    }

    /// One control interval: blends the model's feed-forward airflow for
    /// the measured zone power with integral feedback on the inlet error,
    /// returning the new airflow command.
    pub fn step(
        &mut self,
        cfg: &nps_sim::cooling::CracConfig,
        zone_watts: f64,
        inlet_c: f64,
    ) -> f64 {
        let ff = cfg.airflow_for(zone_watts);
        let error_c = inlet_c - cfg.setpoint_c;
        let fb = self.airflow + self.gain * error_c;
        self.airflow = (self.feed_forward * ff + (1.0 - self.feed_forward) * fb)
            .clamp(cfg.airflow_min, cfg.airflow_max);
        self.airflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nps_sim::cooling::{CoolingPlant, CracConfig};

    fn closed_loop(zone_watts: f64, ticks: usize) -> (CoolingPlant, CracController) {
        let cfg = CracConfig::for_zone(2_000.0);
        let mut plant = CoolingPlant::new(vec![cfg]);
        let mut ctl = CracController::default_for(&cfg);
        for _ in 0..ticks {
            let inlet = plant.config(0).inlet_c(zone_watts, plant.airflow(0));
            let a = ctl.step(plant.config(0), zone_watts, inlet);
            plant.set_airflow(0, a);
            plant.step(&[zone_watts]);
        }
        (plant, ctl)
    }

    #[test]
    fn settles_at_the_setpoint_under_constant_load() {
        let (plant, ctl) = closed_loop(1_200.0, 300);
        let inlet = plant.config(0).inlet_c(1_200.0, ctl.airflow());
        assert!(
            (inlet - plant.config(0).setpoint_c).abs() < 0.5,
            "settled inlet {inlet}"
        );
    }

    #[test]
    fn light_load_spins_fans_down() {
        let (_, light) = closed_loop(200.0, 300);
        let (_, heavy) = closed_loop(1_800.0, 300);
        assert!(light.airflow() < heavy.airflow());
    }

    #[test]
    fn overload_saturates_at_max_airflow() {
        let cfg = CracConfig::for_zone(1_000.0);
        let mut ctl = CracController::default_for(&cfg);
        for _ in 0..100 {
            let inlet = cfg.inlet_c(1_500.0, ctl.airflow());
            ctl.step(&cfg, 1_500.0, inlet);
        }
        assert!((ctl.airflow() - cfg.airflow_max).abs() < 1e-9);
    }

    #[test]
    fn tracking_avoids_overheating_for_in_range_loads() {
        let (plant, _) = closed_loop(1_500.0, 500);
        // A short transient is fine; sustained overheating is not.
        assert!(plant.overheated_fraction() < 0.1);
    }
}

//! Budget-division policies for the enclosure and group managers.
//!
//! Paper §3.1: *"The actual division of the total enclosure power budget
//! to individual blades is policy-driven and different policies (e.g.,
//! fair-share, FIFO, random, priority-based, history-based) can be
//! implemented."* The paper's base policy is **proportional share**
//! (Figure 6, equations `(EM)`/`(GMs)`); §5.4 finds results robust across
//! policy choices — a finding our `policies` bench reproduces.
//!
//! Every policy returns one budget per child, already taking
//! `min(static cap, dynamic share)` as the paper's `min` interface
//! requires; the shares themselves never exceed the level's total budget.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A strategy for dividing a level's power budget across its children.
pub trait BudgetPolicy: std::fmt::Debug + Send {
    /// Human-readable policy name (for reports).
    fn name(&self) -> &'static str;

    /// Divides `total_watts` among children given their last-interval
    /// `consumption_watts` and per-child `static_caps_watts`. Returns one
    /// effective cap per child.
    fn divide(
        &mut self,
        total_watts: f64,
        consumption_watts: &[f64],
        static_caps_watts: &[f64],
    ) -> Vec<f64>;

    /// The policy's mutable state as opaque `u64` words, for
    /// checkpointing (floats bit-packed via [`f64::to_bits`]). Stateless
    /// policies export nothing.
    fn export_state(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restores state captured by [`BudgetPolicy::export_state`]. The
    /// default is a no-op for stateless policies.
    fn import_state(&mut self, _state: &[u64]) {}
}

fn proportional(total: f64, weights: &[f64], static_caps: &[f64]) -> Vec<f64> {
    let sum: f64 = weights.iter().sum();
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    if sum <= 0.0 {
        // Nothing measured yet: fall back to fair share.
        return static_caps
            .iter()
            .map(|&c| c.min(total / n as f64))
            .collect();
    }
    weights
        .iter()
        .zip(static_caps)
        .map(|(&w, &c)| c.min(total * w / sum))
        .collect()
}

/// The paper's base policy: each child's share is proportional to its
/// consumption in the last interval
/// (`cap_i = min(CAP_i, total · pow_i / Σ pow)`).
#[derive(Debug, Default, Clone, Copy)]
pub struct ProportionalShare;

impl BudgetPolicy for ProportionalShare {
    fn name(&self) -> &'static str {
        "proportional-share"
    }

    fn divide(&mut self, total: f64, consumption: &[f64], static_caps: &[f64]) -> Vec<f64> {
        proportional(total, consumption, static_caps)
    }
}

/// Equal split of the budget regardless of demand.
#[derive(Debug, Default, Clone, Copy)]
pub struct FairShare;

impl BudgetPolicy for FairShare {
    fn name(&self) -> &'static str {
        "fair-share"
    }

    fn divide(&mut self, total: f64, consumption: &[f64], static_caps: &[f64]) -> Vec<f64> {
        // Equal shares among *active* consumers; powered-off children
        // would otherwise silently starve the live ones.
        let active: Vec<usize> = active_children(consumption);
        let n = active.len().max(1) as f64;
        let mut out = vec![0.0; consumption.len()];
        for i in active {
            out[i] = static_caps[i].min(total / n);
        }
        out
    }
}

/// Children that consumed measurable power last interval (all of them if
/// nothing was measured yet).
fn active_children(consumption: &[f64]) -> Vec<usize> {
    let active: Vec<usize> = (0..consumption.len())
        .filter(|&i| consumption[i] > 1e-9)
        .collect();
    if active.is_empty() {
        (0..consumption.len()).collect()
    } else {
        active
    }
}

/// First-come-first-served in child id order: each child receives up to
/// its static cap until the budget is exhausted.
#[derive(Debug, Default, Clone, Copy)]
pub struct Fifo;

impl BudgetPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn divide(&mut self, total: f64, consumption: &[f64], static_caps: &[f64]) -> Vec<f64> {
        sequential(
            total,
            consumption.len(),
            static_caps,
            (0..consumption.len()).collect(),
        )
    }
}

/// Like FIFO but in a freshly shuffled order each interval.
#[derive(Debug)]
pub struct RandomOrder {
    rng: StdRng,
}

impl RandomOrder {
    /// Creates the policy with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl BudgetPolicy for RandomOrder {
    fn name(&self) -> &'static str {
        "random-order"
    }

    fn divide(&mut self, total: f64, consumption: &[f64], static_caps: &[f64]) -> Vec<f64> {
        let mut order: Vec<usize> = (0..consumption.len()).collect();
        order.shuffle(&mut self.rng);
        sequential(total, consumption.len(), static_caps, order)
    }

    fn export_state(&self) -> Vec<u64> {
        self.rng.state().to_vec()
    }

    fn import_state(&mut self, state: &[u64]) {
        let mut s = [0u64; 4];
        for (w, &v) in s.iter_mut().zip(state) {
            *w = v;
        }
        self.rng = StdRng::from_state(s);
    }
}

/// Proportional to fixed per-child priority weights.
#[derive(Debug, Clone)]
pub struct PriorityWeighted {
    weights: Vec<f64>,
}

impl PriorityWeighted {
    /// Creates the policy with one non-negative weight per child.
    pub fn new(weights: Vec<f64>) -> Self {
        Self { weights }
    }
}

impl BudgetPolicy for PriorityWeighted {
    fn name(&self) -> &'static str {
        "priority-weighted"
    }

    fn divide(&mut self, total: f64, consumption: &[f64], static_caps: &[f64]) -> Vec<f64> {
        if self.weights.len() != consumption.len() {
            // Mis-sized weights degrade gracefully to fair share.
            return FairShare.divide(total, consumption, static_caps);
        }
        // Weights apply among active consumers only (an off child must
        // not absorb budget its weight would otherwise claim).
        let mut effective = vec![0.0; consumption.len()];
        for i in active_children(consumption) {
            effective[i] = self.weights[i];
        }
        proportional(total, &effective, static_caps)
    }
}

/// Proportional to an exponentially-weighted moving average of
/// consumption, smoothing out interval-to-interval churn.
#[derive(Debug, Clone)]
pub struct HistoryWeighted {
    alpha: f64,
    ewma: Vec<f64>,
}

impl HistoryWeighted {
    /// Creates the policy with smoothing factor `alpha ∈ (0, 1]` (1 =
    /// no smoothing, equivalent to proportional share).
    pub fn new(alpha: f64) -> Self {
        Self {
            alpha: alpha.clamp(f64::EPSILON, 1.0),
            ewma: Vec::new(),
        }
    }
}

impl BudgetPolicy for HistoryWeighted {
    fn name(&self) -> &'static str {
        "history-weighted"
    }

    fn divide(&mut self, total: f64, consumption: &[f64], static_caps: &[f64]) -> Vec<f64> {
        if self.ewma.len() != consumption.len() {
            self.ewma = consumption.to_vec();
        } else {
            for (e, &c) in self.ewma.iter_mut().zip(consumption) {
                *e = self.alpha * c + (1.0 - self.alpha) * *e;
            }
        }
        let ewma = self.ewma.clone();
        proportional(total, &ewma, static_caps)
    }

    fn export_state(&self) -> Vec<u64> {
        self.ewma.iter().map(|e| e.to_bits()).collect()
    }

    fn import_state(&mut self, state: &[u64]) {
        self.ewma = state.iter().map(|&b| f64::from_bits(b)).collect();
    }
}

/// Sequential allocation helper: children in `order` receive up to their
/// static cap while budget remains. Children beyond the budget receive a
/// proportional sliver of what is left rather than a hard zero (a zero
/// watt budget would be unactionable for a capper).
fn sequential(total: f64, n: usize, static_caps: &[f64], order: Vec<usize>) -> Vec<f64> {
    let mut out = vec![0.0; n];
    let mut remaining = total;
    for i in order {
        let grant = static_caps[i].min(remaining);
        out[i] = grant;
        remaining -= grant;
        if remaining <= 0.0 {
            break;
        }
    }
    out
}

/// All six built-in policies with their default parameters, for sweeps
/// (`n` = number of children, used to size priority weights).
pub fn default_policies(n: usize) -> Vec<Box<dyn BudgetPolicy>> {
    vec![
        Box::new(ProportionalShare),
        Box::new(FairShare),
        Box::new(Fifo),
        Box::new(RandomOrder::new(42)),
        Box::new(PriorityWeighted::new(
            (0..n).map(|i| 1.0 + (i % 3) as f64).collect(),
        )),
        Box::new(HistoryWeighted::new(0.3)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAPS: [f64; 3] = [108.0, 108.0, 108.0];

    fn total(v: &[f64]) -> f64 {
        v.iter().sum()
    }

    #[test]
    fn proportional_matches_paper_equation() {
        let mut p = ProportionalShare;
        let caps = p.divide(200.0, &[50.0, 100.0, 50.0], &CAPS);
        assert!((caps[0] - 50.0).abs() < 1e-9);
        assert!((caps[1] - 100.0).abs() < 1e-9);
        assert!((caps[2] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn proportional_respects_static_caps() {
        let mut p = ProportionalShare;
        let caps = p.divide(400.0, &[300.0, 10.0, 10.0], &CAPS);
        assert!(caps[0] <= 108.0);
    }

    #[test]
    fn proportional_zero_consumption_falls_back_to_fair() {
        let mut p = ProportionalShare;
        let caps = p.divide(90.0, &[0.0, 0.0, 0.0], &CAPS);
        for c in caps {
            assert!((c - 30.0).abs() < 1e-9);
        }
    }

    #[test]
    fn fair_share_is_equal() {
        let mut p = FairShare;
        let caps = p.divide(90.0, &[1.0, 99.0, 5.0], &CAPS);
        assert_eq!(caps, vec![30.0, 30.0, 30.0]);
    }

    #[test]
    fn fifo_exhausts_in_order() {
        let mut p = Fifo;
        let caps = p.divide(150.0, &[0.0; 3], &CAPS);
        assert_eq!(caps, vec![108.0, 42.0, 0.0]);
    }

    #[test]
    fn random_order_allocates_full_budget_deterministically() {
        let mut a = RandomOrder::new(7);
        let mut b = RandomOrder::new(7);
        let ca = a.divide(150.0, &[0.0; 3], &CAPS);
        let cb = b.divide(150.0, &[0.0; 3], &CAPS);
        assert_eq!(ca, cb);
        assert!((total(&ca) - 150.0).abs() < 1e-9);
    }

    #[test]
    fn priority_weights_bias_allocation() {
        let mut p = PriorityWeighted::new(vec![3.0, 1.0, 1.0]);
        let caps = p.divide(100.0, &[10.0; 3], &CAPS);
        assert!((caps[0] - 60.0).abs() < 1e-9);
        assert!((caps[1] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn priority_with_wrong_arity_degrades_to_fair() {
        let mut p = PriorityWeighted::new(vec![1.0]);
        let caps = p.divide(90.0, &[10.0; 3], &CAPS);
        assert_eq!(caps, vec![30.0, 30.0, 30.0]);
    }

    #[test]
    fn history_smooths_toward_consumption() {
        let mut p = HistoryWeighted::new(0.5);
        // First interval seeds the EWMA directly.
        let c1 = p.divide(100.0, &[80.0, 20.0], &[108.0, 108.0]);
        assert!((c1[0] - 80.0).abs() < 1e-9);
        // Consumption flips; allocation moves only halfway.
        let c2 = p.divide(100.0, &[20.0, 80.0], &[108.0, 108.0]);
        assert!(c2[0] > 20.0 && c2[0] < 80.0);
    }

    #[test]
    fn stateful_policies_roundtrip_exported_state() {
        // RandomOrder: resuming from exported state must reproduce the
        // exact shuffle stream of the original.
        let mut a = RandomOrder::new(3);
        for _ in 0..5 {
            a.divide(150.0, &[0.0; 3], &CAPS);
        }
        let mut b = RandomOrder::new(999);
        b.import_state(&a.export_state());
        for _ in 0..8 {
            assert_eq!(
                a.divide(150.0, &[0.0; 3], &CAPS),
                b.divide(150.0, &[0.0; 3], &CAPS)
            );
        }

        // HistoryWeighted: EWMA words roundtrip bit-exactly.
        let mut h = HistoryWeighted::new(0.3);
        h.divide(100.0, &[80.0, 20.0], &[108.0, 108.0]);
        h.divide(100.0, &[20.0, 80.0], &[108.0, 108.0]);
        let mut h2 = HistoryWeighted::new(0.3);
        h2.import_state(&h.export_state());
        assert_eq!(
            h.divide(100.0, &[50.0, 50.0], &[108.0, 108.0]),
            h2.divide(100.0, &[50.0, 50.0], &[108.0, 108.0])
        );

        // Stateless policies export nothing.
        assert!(ProportionalShare.export_state().is_empty());
        assert!(Fifo.export_state().is_empty());
    }

    #[test]
    fn every_policy_never_exceeds_total_or_static_caps() {
        for mut p in default_policies(3) {
            let caps = p.divide(150.0, &[60.0, 90.0, 30.0], &CAPS);
            assert_eq!(caps.len(), 3, "{}", p.name());
            assert!(
                total(&caps) <= 150.0 + 1e-9,
                "{} over-allocates: {caps:?}",
                p.name()
            );
            for (c, s) in caps.iter().zip(&CAPS) {
                assert!(c <= s, "{} exceeds a static cap", p.name());
                assert!(*c >= 0.0);
            }
        }
    }
}

//! The efficiency controller (EC) — paper Figure 6 equation `(EC)` and
//! Appendix A.

use nps_models::{PState, ServerModel};
use serde::{Deserialize, Serialize};

/// Per-server efficiency controller: treats the server as a container to
/// be kept at a target utilization `r_ref`, resizing it by walking the
/// clock frequency with an adaptive integral law:
///
/// ```text
/// f(k) = f(k−1) − λ · f_C(k−1) · (r_ref − r(k−1)) / r_ref
/// f_C(k−1) = r(k−1) · f_q(k−1)          (measured CPU consumption)
/// ```
///
/// The continuous `f(k)` is the controller state; actuation quantizes it
/// to the nearest P-state (`f_q`). Global stability requires
/// `0 < λ < 1/r_ref` (Appendix A, Proposition A); the base value is
/// `λ = 0.8`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyController {
    /// Continuous frequency state, Hz.
    freq_hz: f64,
    /// Quantized frequency actually applied last interval, Hz.
    applied_hz: f64,
    /// Utilization target.
    r_ref: f64,
    /// Scaling parameter λ of the self-tuning integral gain.
    lambda: f64,
    /// Floor for `r_ref` (paper: 75%, to keep servers reasonably utilized
    /// even when power is plentiful).
    r_ref_min: f64,
    /// Ceiling for `r_ref`. Values above 1.0 are deliberately allowed: a
    /// saturated server (r = 1) under a power cap needs `r_ref > 1` to
    /// keep the tracking error negative and the frequency falling.
    r_ref_max: f64,
}

impl EfficiencyController {
    /// Default `r_ref` floor (paper §4.1).
    pub const DEFAULT_R_REF_MIN: f64 = 0.75;
    /// Default `r_ref` ceiling.
    pub const DEFAULT_R_REF_MAX: f64 = 1.5;

    /// Creates an EC starting at the model's maximum frequency.
    ///
    /// `lambda` is the gain scaling parameter; `r_ref` the initial
    /// utilization target (clamped to `[0.75, 1.5]`).
    pub fn new(model: &ServerModel, lambda: f64, r_ref: f64) -> Self {
        let f0 = model.max_frequency_hz();
        Self {
            freq_hz: f0,
            applied_hz: f0,
            r_ref: r_ref.clamp(Self::DEFAULT_R_REF_MIN, Self::DEFAULT_R_REF_MAX),
            lambda,
            r_ref_min: Self::DEFAULT_R_REF_MIN,
            r_ref_max: Self::DEFAULT_R_REF_MAX,
        }
    }

    /// Current utilization target.
    pub fn r_ref(&self) -> f64 {
        self.r_ref
    }

    /// Sets the utilization target, clamped to the configured band. This
    /// is the coordination channel the server manager actuates
    /// (paper §3.1: "we use r_ref as the actuator rather than directly
    /// changing P-states").
    pub fn set_r_ref(&mut self, r_ref: f64) {
        self.r_ref = r_ref.clamp(self.r_ref_min, self.r_ref_max);
    }

    /// The gain scaling parameter λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Continuous frequency state, Hz.
    pub fn frequency_hz(&self) -> f64 {
        self.freq_hz
    }

    /// One *continuous* control update given the measured utilization of
    /// the last interval; returns the new (unquantized) frequency. Used
    /// directly in stability analysis; production actuation goes through
    /// [`EfficiencyController::step`].
    pub fn update_frequency(&mut self, measured_util: f64, f_min_hz: f64, f_max_hz: f64) -> f64 {
        let r = if measured_util.is_nan() {
            0.0
        } else {
            measured_util.clamp(0.0, 1.0)
        };
        // Measured consumption f_C = r · f_q.
        let f_c = r * self.applied_hz;
        let delta = self.lambda * f_c * (self.r_ref - r) / self.r_ref;
        self.freq_hz = (self.freq_hz - delta).clamp(f_min_hz, f_max_hz);
        // In continuous operation the new frequency is what gets applied;
        // [`Self::step`] overwrites this with the quantized value.
        self.applied_hz = self.freq_hz;
        self.freq_hz
    }

    /// One control step against `model`: updates the frequency from the
    /// measured utilization and returns the quantized P-state to apply.
    pub fn step(&mut self, model: &ServerModel, measured_util: f64) -> PState {
        self.update_frequency(
            measured_util,
            model.min_frequency_hz(),
            model.max_frequency_hz(),
        );
        let p = model.quantize(self.freq_hz);
        self.applied_hz = model.state(p).frequency_hz;
        p
    }

    /// Resets the controller to the model's maximum frequency (e.g. after
    /// a server power-on).
    pub fn reset(&mut self, model: &ServerModel) {
        self.freq_hz = model.max_frequency_hz();
        self.applied_hz = self.freq_hz;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A continuous plant matching Appendix A: r = min(1, f_D / f).
    fn closed_loop_continuous(ec: &mut EfficiencyController, demand_hz: f64, steps: usize) -> f64 {
        let mut f = ec.frequency_hz();
        let (fmin, fmax) = (1.0, 4.0e9);
        let mut r = (demand_hz / f).min(1.0);
        for _ in 0..steps {
            // In continuous analysis the applied frequency is f itself.
            ec.applied_hz = f;
            f = ec.update_frequency(r, fmin, fmax);
            r = (demand_hz / f).min(1.0);
        }
        r
    }

    #[test]
    fn converges_to_r_ref_for_stable_lambda() {
        // Proposition A: 0 < λ < 1/r_ref guarantees global convergence.
        let model = ServerModel::blade_a();
        for demand_frac in [0.1, 0.3, 0.5, 0.7] {
            let mut ec = EfficiencyController::new(&model, 0.8, 0.9);
            let r = closed_loop_continuous(&mut ec, demand_frac * 1.0e9, 400);
            assert!(
                (r - 0.9).abs() < 1e-6,
                "demand {demand_frac}: settled at r = {r}"
            );
        }
    }

    #[test]
    fn zero_tracking_error_at_fixed_point() {
        let model = ServerModel::blade_a();
        let mut ec = EfficiencyController::new(&model, 0.5, 0.8);
        closed_loop_continuous(&mut ec, 0.4e9, 500);
        // At the fixed point f = f_D / r_ref.
        assert!((ec.frequency_hz() - 0.4e9 / 0.8).abs() / 1e9 < 1e-6);
    }

    #[test]
    fn unstable_lambda_oscillates() {
        // λ well beyond the local bound 2/r_ref must not converge.
        let model = ServerModel::blade_a();
        let mut ec = EfficiencyController::new(&model, 3.0, 0.9);
        let demand = 0.5e9;
        let mut f = ec.frequency_hz();
        let mut rs = Vec::new();
        for _ in 0..200 {
            ec.applied_hz = f;
            let r = (demand / f).min(1.0);
            rs.push(r);
            f = ec.update_frequency(r, 1.0, 4.0e9);
        }
        // Late-window oscillation amplitude stays macroscopic.
        let tail = &rs[150..];
        let (min, max) = tail
            .iter()
            .fold((1.0f64, 0.0f64), |(lo, hi), &r| (lo.min(r), hi.max(r)));
        assert!(max - min > 0.05, "expected oscillation, got [{min}, {max}]");
    }

    #[test]
    fn quantized_step_tracks_within_one_pstate_gap() {
        // With real P-states the loop settles bouncing among neighbours of
        // the ideal frequency; tracking error is bounded by quantization.
        let model = ServerModel::blade_a();
        let mut ec = EfficiencyController::new(&model, 0.8, 0.9);
        let demand = 0.45; // fraction of max capacity
        let mut p = PState::P0;
        let mut r = demand / model.capacity(p);
        for _ in 0..200 {
            p = ec.step(&model, r);
            r = (demand / model.capacity(p)).min(1.0);
        }
        // Ideal capacity = 0.45/0.9 = 0.5; nearest states are 533/600 MHz.
        assert!(p.index() >= 3, "settled at {p}");
    }

    #[test]
    fn low_utilization_walks_frequency_down() {
        let model = ServerModel::blade_a();
        let mut ec = EfficiencyController::new(&model, 0.8, 0.75);
        let mut p = PState::P0;
        for _ in 0..50 {
            p = ec.step(&model, 0.10);
        }
        assert_eq!(p, model.deepest());
    }

    #[test]
    fn saturation_walks_frequency_up() {
        let model = ServerModel::blade_a();
        let mut ec = EfficiencyController::new(&model, 0.8, 0.75);
        for _ in 0..50 {
            ec.step(&model, 0.10);
        }
        assert_eq!(ec.step(&model, 0.1), model.deepest());
        // Demand spike: utilization saturates at 1 > r_ref.
        let mut p = model.deepest();
        for _ in 0..100 {
            p = ec.step(&model, 1.0);
        }
        assert_eq!(p, PState::P0);
    }

    #[test]
    fn r_ref_above_one_forces_deepest_state_under_saturation() {
        // The capping regime: SM pushed r_ref above 1; even a saturated
        // server must throttle down.
        let model = ServerModel::blade_a();
        let mut ec = EfficiencyController::new(&model, 0.8, 0.75);
        ec.set_r_ref(1.4);
        let mut p = PState::P0;
        for _ in 0..200 {
            p = ec.step(&model, 1.0);
        }
        assert_eq!(p, model.deepest());
    }

    #[test]
    fn r_ref_is_clamped() {
        let model = ServerModel::blade_a();
        let mut ec = EfficiencyController::new(&model, 0.8, 0.9);
        ec.set_r_ref(0.1);
        assert_eq!(ec.r_ref(), EfficiencyController::DEFAULT_R_REF_MIN);
        ec.set_r_ref(9.0);
        assert_eq!(ec.r_ref(), EfficiencyController::DEFAULT_R_REF_MAX);
    }

    #[test]
    fn nan_utilization_is_treated_as_idle() {
        let model = ServerModel::blade_a();
        let mut ec = EfficiencyController::new(&model, 0.8, 0.9);
        let p = ec.step(&model, f64::NAN);
        assert!(p.index() < model.num_pstates());
        assert!(ec.frequency_hz().is_finite());
    }

    #[test]
    fn reset_returns_to_max_frequency() {
        let model = ServerModel::blade_a();
        let mut ec = EfficiencyController::new(&model, 0.8, 0.75);
        for _ in 0..50 {
            ec.step(&model, 0.05);
        }
        assert!(ec.frequency_hz() < model.max_frequency_hz());
        ec.reset(&model);
        assert_eq!(ec.frequency_hz(), model.max_frequency_hz());
    }
}

//! Feedback controllers for multi-level data-center power management.
//!
//! Implements the five controller families of the ASPLOS'08 paper
//! (Figure 6), each as a *pure* control law over measurements — actuation
//! against the simulator and the coordination wiring live in `nps-core`:
//!
//! * [`EfficiencyController`] (EC) — per-server average-power *tracking*:
//!   an adaptive integral law that resizes capacity (P-states) so measured
//!   utilization tracks a target `r_ref`;
//! * [`ServerManager`] (SM) — per-server thermal power *capping*: in the
//!   coordinated design it actuates the EC's `r_ref` (never the P-state
//!   directly), in the uncoordinated design it forces P-states and races
//!   with the EC;
//! * [`ElectricalCapper`] (CAP) — the optional fuse-level capper that hard
//!   clamps P-states in parallel with the EC (no transient violations);
//! * [`GroupCapper`] — the shared machinery of the **enclosure manager**
//!   (EM) and **group manager** (GM): re-provisioning a level budget
//!   across children each epoch via a pluggable [`BudgetPolicy`];
//! * gain-bound helpers in [`stability`] implementing Appendix A
//!   (`0 < λ < 1/r_ref` for the EC, `0 < β_loc < 2/c_max` for the SM);
//! * the paper's §6 extensions: [`mimo`] (multi-component platform
//!   capping via a MIMO controller) and [`FrequencyArbiter`] (VM-level
//!   EC arbitration, the generalized `min` interface);
//! * the §7 cooling-domain extension: [`CracController`], a per-zone
//!   airflow controller built in the same mold as the EC/SM loops.
//!
//! The virtual machine controller (VMC) is the optimization problem of
//! Figure 6 and lives in `nps-opt`.
//!
//! ```
//! use nps_control::EfficiencyController;
//! use nps_models::ServerModel;
//!
//! let model = ServerModel::blade_a();
//! let mut ec = EfficiencyController::new(&model, 0.8, 0.75);
//! // Server stuck at 10% utilization: the EC walks the frequency down.
//! let mut p = ec.step(&model, 0.10);
//! for _ in 0..20 {
//!     p = ec.step(&model, 0.10);
//! }
//! assert_eq!(p, model.deepest());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arbiter;
mod bank;
mod cap;
mod crac;
mod ec;
mod group;
pub mod mimo;
mod policy;
mod sm;
pub mod stability;

pub use arbiter::{ArbitrationPolicy, FrequencyArbiter};
pub use bank::{BankShard, BankSnapshot, ControllerBank};
pub use cap::ElectricalCapper;
pub use crac::CracController;
pub use ec::EfficiencyController;
pub use group::{CapperLevel, CapperSnapshot, GroupCapper};
pub use policy::{
    default_policies, BudgetPolicy, FairShare, Fifo, HistoryWeighted, PriorityWeighted,
    ProportionalShare, RandomOrder,
};
pub use sm::{ServerManager, SmDecision};

//! The optional electrical power capper (CAP) — paper §3.1/§6: a capper
//! *"faster than the efficiency loop"* implemented *"in parallel to the
//! nested controller directly adjusting P-states"*.
//!
//! Electrical budgets (fuse ratings) admit **no** transient violations, so
//! this is not a feedback loop at all: it is a feed-forward clamp that
//! bounds the shallowest P-state the EC's output may reach, derived from
//! the power model's worst case at each state.

use nps_models::{PState, ServerModel};
use serde::{Deserialize, Serialize};

/// A hard per-server electrical power cap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElectricalCapper {
    budget_watts: f64,
    /// The shallowest state index guaranteed to stay under budget at any
    /// utilization, or `None` if even the deepest state can violate.
    min_index: Option<usize>,
}

impl ElectricalCapper {
    /// Creates a capper for servers of type `model` with the given fuse
    /// budget.
    pub fn new(model: &ServerModel, budget_watts: f64) -> Self {
        Self {
            budget_watts,
            min_index: model
                .pstate_for_power_budget(budget_watts)
                .map(PState::index),
        }
    }

    /// The electrical budget, watts.
    pub fn budget_watts(&self) -> f64 {
        self.budget_watts
    }

    /// Whether the budget is satisfiable at all (some P-state's maximum
    /// power fits under it).
    pub fn is_satisfiable(&self) -> bool {
        self.min_index.is_some()
    }

    /// Clamps a desired P-state so the electrical budget cannot be
    /// exceeded: states shallower than the safe bound are deepened to it.
    /// If no state is safe, returns the desired state unchanged (the
    /// budget is unsatisfiable with P-states alone; the deployment must
    /// shed load instead).
    pub fn clamp(&self, desired: PState) -> PState {
        match self.min_index {
            Some(min) => PState(desired.index().max(min)),
            None => desired,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_deepens_unsafe_states() {
        let model = ServerModel::blade_a(); // max powers 120, 108, 98, 86, 78
        let cap = ElectricalCapper::new(&model, 100.0); // safe from P2 down
        assert_eq!(cap.clamp(PState(0)), PState(2));
        assert_eq!(cap.clamp(PState(1)), PState(2));
        assert_eq!(cap.clamp(PState(2)), PState(2));
        assert_eq!(cap.clamp(PState(4)), PState(4));
    }

    #[test]
    fn generous_budget_never_clamps() {
        let model = ServerModel::blade_a();
        let cap = ElectricalCapper::new(&model, 500.0);
        for p in 0..model.num_pstates() {
            assert_eq!(cap.clamp(PState(p)), PState(p));
        }
    }

    #[test]
    fn clamped_states_always_respect_budget() {
        let model = ServerModel::server_b();
        for budget in [200.0, 230.0, 260.0, 300.0] {
            let cap = ElectricalCapper::new(&model, budget);
            if !cap.is_satisfiable() {
                continue;
            }
            for p in 0..model.num_pstates() {
                let clamped = cap.clamp(PState(p));
                assert!(
                    model.power(clamped.index(), 1.0) <= budget + 1e-9,
                    "budget {budget}: {clamped} worst case exceeds it"
                );
            }
        }
    }

    #[test]
    fn unsatisfiable_budget_is_flagged() {
        let model = ServerModel::blade_a();
        let cap = ElectricalCapper::new(&model, 10.0);
        assert!(!cap.is_satisfiable());
        assert_eq!(cap.clamp(PState(1)), PState(1));
    }
}

//! Batched EC + SM state for the per-epoch hot path.
//!
//! [`ControllerBank`] holds every server's efficiency-controller and
//! server-manager state in contiguous `Vec<f64>` arrays (one slot per
//! server) instead of one [`EfficiencyController`] / [`ServerManager`]
//! object each. An epoch that touches all N servers then walks flat
//! arrays plus a shared [`ModelTable`], which keeps the working set
//! cache-resident at multi-rack scale.
//!
//! Every update replicates the scalar controllers' floating-point
//! operations *in the same order*, so a runner switched from per-object
//! controllers to the bank is bit-identical — the differential tests in
//! this module and in `tests/soa_differential.rs` drive both
//! implementations in lockstep and assert exact equality.

use nps_models::{ModelTable, PState};

use crate::ec::EfficiencyController;
use crate::sm::{ServerManager, SmDecision};

/// Structure-of-arrays bank of per-server EC + SM controller state.
///
/// Server `i`'s controllers occupy slot `i` of every array; the model
/// data they evaluate against lives in the shared [`ModelTable`].
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerBank {
    table: ModelTable,
    /// Gain scaling parameter λ of the EC integral law (shared).
    lambda: f64,
    /// SM gain `β_loc` on normalized power (shared).
    beta: f64,
    /// SM guard band (fraction below the cap to regulate toward).
    guard: f64,
    /// EC continuous frequency state, Hz.
    freq_hz: Vec<f64>,
    /// EC quantized frequency applied last interval, Hz.
    applied_hz: Vec<f64>,
    /// EC utilization target.
    r_ref: Vec<f64>,
    /// SM static local budget `CAP_LOC`, watts.
    static_cap: Vec<f64>,
    /// SM budget granted by the EM/GM for the current epoch, watts.
    granted_cap: Vec<f64>,
    /// First tick each server's granted budget stops being authorized
    /// (`u64::MAX` = no lease: the grant holds until replaced).
    lease_until: Vec<u64>,
}

impl ControllerBank {
    /// Creates a bank over `table` with one EC (starting at the model's
    /// maximum frequency, target `initial_r_ref` clamped to the standard
    /// band) and one SM (static budget `static_caps[i]`, granted budget
    /// unbounded) per server.
    ///
    /// # Panics
    ///
    /// Panics if `static_caps.len() != table.num_servers()`.
    pub fn new(
        table: ModelTable,
        lambda: f64,
        beta: f64,
        initial_r_ref: f64,
        static_caps: &[f64],
    ) -> Self {
        let n = table.num_servers();
        assert_eq!(
            static_caps.len(),
            n,
            "one static cap per server ({} caps, {n} servers)",
            static_caps.len()
        );
        let freq_hz: Vec<f64> = (0..n).map(|i| table.max_frequency_hz(i)).collect();
        let r_ref = initial_r_ref.clamp(
            EfficiencyController::DEFAULT_R_REF_MIN,
            EfficiencyController::DEFAULT_R_REF_MAX,
        );
        Self {
            applied_hz: freq_hz.clone(),
            freq_hz,
            r_ref: vec![r_ref; n],
            static_cap: static_caps.to_vec(),
            granted_cap: vec![f64::INFINITY; n],
            lease_until: vec![u64::MAX; n],
            table,
            lambda,
            beta,
            guard: ServerManager::DEFAULT_GUARD,
        }
    }

    /// Overrides the SM guard band for every server.
    pub fn with_guard(mut self, guard: f64) -> Self {
        self.guard = guard.clamp(0.0, 0.5);
        self
    }

    /// Number of servers in the bank.
    pub fn len(&self) -> usize {
        self.r_ref.len()
    }

    /// True if the bank covers no servers.
    pub fn is_empty(&self) -> bool {
        self.r_ref.is_empty()
    }

    /// The shared model table the controllers evaluate against.
    pub fn table(&self) -> &ModelTable {
        &self.table
    }

    // ----- efficiency controller -----------------------------------------

    /// Server `i`'s current utilization target.
    pub fn r_ref(&self, i: usize) -> f64 {
        self.r_ref[i]
    }

    /// Sets server `i`'s utilization target, clamped to the standard band
    /// — identical to [`EfficiencyController::set_r_ref`].
    pub fn set_r_ref(&mut self, i: usize, r_ref: f64) {
        self.r_ref[i] = r_ref.clamp(
            EfficiencyController::DEFAULT_R_REF_MIN,
            EfficiencyController::DEFAULT_R_REF_MAX,
        );
    }

    /// Server `i`'s continuous EC frequency state, Hz.
    pub fn frequency_hz(&self, i: usize) -> f64 {
        self.freq_hz[i]
    }

    /// One EC control step for server `i` — the same update as
    /// [`EfficiencyController::step`]: adaptive integral law on the
    /// continuous frequency, quantized to the nearest P-state.
    pub fn ec_step(&mut self, i: usize, measured_util: f64) -> PState {
        let r = if measured_util.is_nan() {
            0.0
        } else {
            measured_util.clamp(0.0, 1.0)
        };
        // Measured consumption f_C = r · f_q.
        let f_c = r * self.applied_hz[i];
        let delta = self.lambda * f_c * (self.r_ref[i] - r) / self.r_ref[i];
        self.freq_hz[i] = (self.freq_hz[i] - delta).clamp(
            self.table.min_frequency_hz(i),
            self.table.max_frequency_hz(i),
        );
        let p = self.table.quantize(i, self.freq_hz[i]);
        self.applied_hz[i] = self.table.frequency_hz(i, p.index());
        p
    }

    /// Resets server `i`'s EC to its maximum frequency (e.g. after a
    /// power-on) — identical to [`EfficiencyController::reset`].
    pub fn ec_reset(&mut self, i: usize) {
        self.freq_hz[i] = self.table.max_frequency_hz(i);
        self.applied_hz[i] = self.freq_hz[i];
    }

    // ----- server manager -------------------------------------------------

    /// Server `i`'s static local budget `CAP_LOC`, watts.
    pub fn static_cap_watts(&self, i: usize) -> f64 {
        self.static_cap[i]
    }

    /// Grants server `i` a dynamic budget from the enclosure/group
    /// manager — identical to [`ServerManager::set_granted_cap`]. The
    /// grant carries no lease (it holds until replaced).
    pub fn set_granted_cap(&mut self, i: usize, watts: f64) {
        self.granted_cap[i] = watts.max(0.0);
        self.lease_until[i] = u64::MAX;
    }

    /// Grants server `i` a *leased* dynamic budget: the grant authorizes
    /// the cap until tick `lease_until`, after which
    /// [`ControllerBank::expire_lease`] reverts the server to its static
    /// cap.
    pub fn set_granted_cap_leased(&mut self, i: usize, watts: f64, lease_until: u64) {
        self.granted_cap[i] = watts.max(0.0);
        self.lease_until[i] = lease_until;
    }

    /// First tick server `i`'s grant stops being authorized
    /// (`u64::MAX` = unleased).
    pub fn lease_until(&self, i: usize) -> u64 {
        self.lease_until[i]
    }

    /// Expires server `i`'s lease if it has lapsed at `now`: the granted
    /// cap reverts to unlimited (so the effective cap falls back to
    /// `CAP_LOC`) and the lease clears. Returns whether an expiry
    /// happened.
    pub fn expire_lease(&mut self, i: usize, now: u64) -> bool {
        if now < self.lease_until[i] {
            return false;
        }
        self.granted_cap[i] = f64::INFINITY;
        self.lease_until[i] = u64::MAX;
        true
    }

    /// Resets server `i`'s grant to unlimited and clears any lease (e.g.
    /// after a power-on revival).
    pub fn reset_grant(&mut self, i: usize) {
        self.granted_cap[i] = f64::INFINITY;
        self.lease_until[i] = u64::MAX;
    }

    /// The budget server `i`'s SM enforces this epoch:
    /// `min(CAP_LOC, granted)`.
    pub fn effective_cap_watts(&self, i: usize) -> f64 {
        self.static_cap[i].min(self.granted_cap[i])
    }

    /// One **coordinated** SM interval for server `i` — the same update
    /// as [`ServerManager::step_coordinated`], retuning the bank's own
    /// EC `r_ref` slot.
    pub fn sm_step_coordinated(&mut self, i: usize, measured_power_watts: f64) -> SmDecision {
        let max_power = self.table.max_power(i);
        let cap_norm = (1.0 - self.guard) * self.effective_cap_watts(i) / max_power;
        let pow_norm = measured_power_watts / max_power;
        // r_ref(k̂) = r_ref(k̂−1) − β·(cap − pow)  [normalized]
        let new_r_ref = self.r_ref[i] - self.beta * (cap_norm - pow_norm);
        self.set_r_ref(i, new_r_ref);
        SmDecision {
            violated_static: measured_power_watts > self.static_cap[i],
            violated_effective: measured_power_watts > self.effective_cap_watts(i),
            new_r_ref: Some(self.r_ref[i]),
        }
    }

    /// One **uncoordinated** SM interval for server `i` — the same update
    /// as [`ServerManager::step_uncoordinated`].
    pub fn sm_step_uncoordinated(
        &mut self,
        i: usize,
        measured_power_watts: f64,
        current: PState,
    ) -> (SmDecision, Option<PState>) {
        let violated_effective = measured_power_watts > self.effective_cap_watts(i);
        let decision = SmDecision {
            violated_static: measured_power_watts > self.static_cap[i],
            violated_effective,
            new_r_ref: None,
        };
        let forced = if violated_effective {
            Some(self.table.step_down(i, current))
        } else {
            None
        };
        (decision, forced)
    }

    // ----- checkpointing --------------------------------------------------

    /// Captures the bank's mutable state (EC frequencies, targets, grants,
    /// leases) for checkpointing. Floats are bit-packed so infinite grants
    /// survive the JSON roundtrip exactly.
    pub fn snapshot(&self) -> BankSnapshot {
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect();
        BankSnapshot {
            freq_hz_bits: bits(&self.freq_hz),
            applied_hz_bits: bits(&self.applied_hz),
            r_ref_bits: bits(&self.r_ref),
            granted_cap_bits: bits(&self.granted_cap),
            lease_until: self.lease_until.clone(),
        }
    }

    /// Restores state captured by [`ControllerBank::snapshot`]. The bank
    /// must have been built over the same fleet.
    pub fn restore(&mut self, snap: &BankSnapshot) {
        let floats = |v: &[u64]| v.iter().map(|&b| f64::from_bits(b)).collect();
        self.freq_hz = floats(&snap.freq_hz_bits);
        self.applied_hz = floats(&snap.applied_hz_bits);
        self.r_ref = floats(&snap.r_ref_bits);
        self.granted_cap = floats(&snap.granted_cap_bits);
        self.lease_until = snap.lease_until.clone();
    }
}

/// The bank's mutable state (checkpoint section); one slot per server,
/// floats as IEEE-754 bit patterns.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BankSnapshot {
    /// EC continuous frequency state.
    pub freq_hz_bits: Vec<u64>,
    /// EC quantized applied frequency.
    pub applied_hz_bits: Vec<u64>,
    /// EC utilization targets.
    pub r_ref_bits: Vec<u64>,
    /// SM granted budgets (possibly infinite).
    pub granted_cap_bits: Vec<u64>,
    /// Grant lease deadlines (`u64::MAX` = unleased).
    pub lease_until: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use nps_models::ServerModel;

    fn fleet() -> Vec<ServerModel> {
        vec![
            ServerModel::blade_a(),
            ServerModel::server_b(),
            ServerModel::blade_a().extremes(),
        ]
    }

    fn scalar_pair(
        models: &[ServerModel],
        lambda: f64,
        beta: f64,
        caps: &[f64],
    ) -> (Vec<EfficiencyController>, Vec<ServerManager>) {
        let ecs = models
            .iter()
            .map(|m| EfficiencyController::new(m, lambda, 0.75))
            .collect();
        let sms = models
            .iter()
            .zip(caps)
            .map(|(m, &c)| ServerManager::new(m, c, beta))
            .collect();
        (ecs, sms)
    }

    #[test]
    fn ec_steps_match_scalar_bitwise() {
        let models = fleet();
        let caps: Vec<f64> = models.iter().map(|m| 0.8 * m.max_power()).collect();
        let mut bank = ControllerBank::new(ModelTable::from_models(&models), 0.8, 1.0, 0.75, &caps);
        let (mut ecs, _) = scalar_pair(&models, 0.8, 1.0, &caps);
        let utils = [0.1, 0.9, 1.0, 0.0, f64::NAN, 0.55, -0.2, 1.7, 0.33];
        for (k, &u) in utils.iter().cycle().take(200).enumerate() {
            for i in 0..models.len() {
                let u = u * (1.0 + 0.01 * i as f64);
                assert_eq!(bank.ec_step(i, u), ecs[i].step(&models[i], u), "step {k}");
                assert_eq!(bank.frequency_hz(i), ecs[i].frequency_hz());
                assert_eq!(bank.r_ref(i), ecs[i].r_ref());
            }
            if k % 7 == 0 {
                for (i, ec) in ecs.iter_mut().enumerate() {
                    let target = 0.6 + 0.3 * (k % 5) as f64;
                    bank.set_r_ref(i, target);
                    ec.set_r_ref(target);
                }
            }
            if k % 31 == 0 {
                bank.ec_reset(1);
                ecs[1].reset(&models[1]);
            }
        }
    }

    #[test]
    fn sm_coordinated_matches_scalar_bitwise() {
        let models = fleet();
        let caps: Vec<f64> = models.iter().map(|m| 0.78 * m.max_power()).collect();
        let mut bank = ControllerBank::new(ModelTable::from_models(&models), 0.8, 1.0, 0.75, &caps);
        let (mut ecs, mut sms) = scalar_pair(&models, 0.8, 1.0, &caps);
        for k in 0..150 {
            for i in 0..models.len() {
                let pow = 40.0 + 7.0 * ((k * (i + 3)) % 13) as f64;
                let want = sms[i].step_coordinated(pow, &mut ecs[i]);
                assert_eq!(bank.sm_step_coordinated(i, pow), want, "step {k}");
                assert_eq!(bank.r_ref(i), ecs[i].r_ref());
                // The retuned r_ref must feed back into the next EC step.
                let u = 0.5 + 0.04 * (k % 9) as f64;
                assert_eq!(bank.ec_step(i, u), ecs[i].step(&models[i], u));
            }
            if k % 11 == 0 {
                for (i, sm) in sms.iter_mut().enumerate() {
                    let grant = if k % 22 == 0 { 60.0 } else { f64::INFINITY };
                    bank.set_granted_cap(i, grant);
                    sm.set_granted_cap(grant);
                    assert_eq!(bank.effective_cap_watts(i), sm.effective_cap_watts());
                }
            }
        }
    }

    #[test]
    fn sm_uncoordinated_matches_scalar_bitwise() {
        let models = fleet();
        let caps: Vec<f64> = models.iter().map(|m| 0.7 * m.max_power()).collect();
        let mut bank = ControllerBank::new(ModelTable::from_models(&models), 0.8, 1.0, 0.75, &caps);
        let (_, mut sms) = scalar_pair(&models, 0.8, 1.0, &caps);
        for k in 0..60 {
            for i in 0..models.len() {
                let p = PState(k % models[i].num_pstates());
                let pow = 30.0 + 9.0 * ((k * 5 + i) % 11) as f64;
                let want = sms[i].step_uncoordinated(pow, p, &models[i]);
                assert_eq!(bank.sm_step_uncoordinated(i, pow, p), want, "step {k}");
            }
        }
    }

    #[test]
    fn negative_grant_clamps_to_zero() {
        let models = fleet();
        let caps = vec![100.0; 3];
        let mut bank = ControllerBank::new(ModelTable::from_models(&models), 0.8, 1.0, 0.75, &caps);
        bank.set_granted_cap(0, -5.0);
        assert_eq!(bank.effective_cap_watts(0), 0.0);
        assert_eq!(bank.static_cap_watts(0), 100.0);
    }

    #[test]
    fn leased_grant_expires_back_to_static_cap() {
        let models = fleet();
        let caps = vec![100.0; 3];
        let mut bank = ControllerBank::new(ModelTable::from_models(&models), 0.8, 1.0, 0.75, &caps);
        bank.set_granted_cap_leased(0, 60.0, 50);
        assert_eq!(bank.effective_cap_watts(0), 60.0);
        assert_eq!(bank.lease_until(0), 50);
        assert!(!bank.expire_lease(0, 49), "lease still live");
        assert_eq!(bank.effective_cap_watts(0), 60.0);
        assert!(bank.expire_lease(0, 50), "lease lapses at its deadline");
        assert_eq!(bank.effective_cap_watts(0), 100.0);
        assert_eq!(bank.lease_until(0), u64::MAX);
        assert!(!bank.expire_lease(0, 1000), "expiry fires once");
        // An unleased grant never expires.
        bank.set_granted_cap(1, 70.0);
        assert!(!bank.expire_lease(1, u64::MAX - 1));
        assert_eq!(bank.effective_cap_watts(1), 70.0);
        // Renewal pushes the deadline out.
        bank.set_granted_cap_leased(2, 40.0, 10);
        bank.set_granted_cap_leased(2, 45.0, 20);
        assert!(!bank.expire_lease(2, 15));
        assert_eq!(bank.effective_cap_watts(2), 45.0);
    }

    #[test]
    fn snapshot_roundtrips_state_bit_exactly() {
        let models = fleet();
        let caps = vec![100.0, 250.0, 90.0];
        let mut bank = ControllerBank::new(ModelTable::from_models(&models), 0.8, 1.0, 0.75, &caps);
        for k in 0..40 {
            for i in 0..3 {
                bank.ec_step(i, 0.3 + 0.02 * ((k + i) % 7) as f64);
                bank.sm_step_coordinated(i, 50.0 + k as f64);
            }
        }
        bank.set_granted_cap_leased(0, 55.0, 99);
        // Slot 1 keeps its infinite default grant — the roundtrip must
        // preserve it exactly (JSON has no infinity literal).
        let json = serde_json::to_string(&bank.snapshot()).unwrap();
        let snap: BankSnapshot = serde_json::from_str(&json).unwrap();
        let mut restored =
            ControllerBank::new(ModelTable::from_models(&models), 0.8, 1.0, 0.75, &caps);
        restored.restore(&snap);
        assert_eq!(bank, restored);
        assert_eq!(restored.effective_cap_watts(1), 250.0);
        assert_eq!(restored.lease_until(0), 99);
    }

    #[test]
    #[should_panic(expected = "one static cap per server")]
    fn cap_count_mismatch_panics() {
        let models = fleet();
        ControllerBank::new(ModelTable::from_models(&models), 0.8, 1.0, 0.75, &[1.0]);
    }
}

//! Batched EC + SM state for the per-epoch hot path.
//!
//! [`ControllerBank`] holds every server's efficiency-controller and
//! server-manager state in contiguous `Vec<f64>` arrays (one slot per
//! server) instead of one [`EfficiencyController`] / [`ServerManager`]
//! object each. An epoch that touches all N servers then walks flat
//! arrays plus a shared [`ModelTable`], which keeps the working set
//! cache-resident at multi-rack scale.
//!
//! Every update replicates the scalar controllers' floating-point
//! operations *in the same order*, so a runner switched from per-object
//! controllers to the bank is bit-identical — the differential tests in
//! this module and in `tests/soa_differential.rs` drive both
//! implementations in lockstep and assert exact equality.

use std::ops::Range;

use nps_models::{ModelTable, PState};

use crate::ec::EfficiencyController;
use crate::sm::{ServerManager, SmDecision};

/// Clamps a utilization target to the standard band — the single
/// definition shared by the bank and its shard views.
#[inline]
fn clamp_r_ref(r_ref: f64) -> f64 {
    r_ref.clamp(
        EfficiencyController::DEFAULT_R_REF_MIN,
        EfficiencyController::DEFAULT_R_REF_MAX,
    )
}

/// The EC integral-law update on one server's slots. Shared by
/// [`ControllerBank::ec_step`] and [`BankShard::ec_step`] so the two
/// paths cannot drift: bit-identical results are a structural property,
/// not a testing accident.
#[inline]
fn ec_step_core(
    table: &ModelTable,
    lambda: f64,
    i: usize,
    freq_hz: &mut f64,
    applied_hz: &mut f64,
    r_ref: f64,
    measured_util: f64,
) -> PState {
    let r = if measured_util.is_nan() {
        0.0
    } else {
        measured_util.clamp(0.0, 1.0)
    };
    // Measured consumption f_C = r · f_q.
    let f_c = r * *applied_hz;
    let delta = lambda * f_c * (r_ref - r) / r_ref;
    *freq_hz = (*freq_hz - delta).clamp(table.min_frequency_hz(i), table.max_frequency_hz(i));
    let p = table.quantize(i, *freq_hz);
    *applied_hz = table.frequency_hz(i, p.index());
    p
}

/// The coordinated SM update on one server's slots (shared by bank and
/// shard paths).
#[inline]
#[allow(clippy::too_many_arguments)]
fn sm_step_coordinated_core(
    table: &ModelTable,
    beta: f64,
    guard: f64,
    i: usize,
    r_ref: &mut f64,
    static_cap: f64,
    granted_cap: f64,
    measured_power_watts: f64,
) -> SmDecision {
    let effective_cap = static_cap.min(granted_cap);
    let max_power = table.max_power(i);
    let cap_norm = (1.0 - guard) * effective_cap / max_power;
    let pow_norm = measured_power_watts / max_power;
    // r_ref(k̂) = r_ref(k̂−1) − β·(cap − pow)  [normalized]
    let new_r_ref = *r_ref - beta * (cap_norm - pow_norm);
    *r_ref = clamp_r_ref(new_r_ref);
    SmDecision {
        violated_static: measured_power_watts > static_cap,
        violated_effective: measured_power_watts > effective_cap,
        new_r_ref: Some(*r_ref),
    }
}

/// The uncoordinated SM decision for one server (shared by bank and
/// shard paths).
#[inline]
fn sm_step_uncoordinated_core(
    table: &ModelTable,
    i: usize,
    static_cap: f64,
    granted_cap: f64,
    measured_power_watts: f64,
    current: PState,
) -> (SmDecision, Option<PState>) {
    let violated_effective = measured_power_watts > static_cap.min(granted_cap);
    let decision = SmDecision {
        violated_static: measured_power_watts > static_cap,
        violated_effective,
        new_r_ref: None,
    };
    let forced = if violated_effective {
        Some(table.step_down(i, current))
    } else {
        None
    };
    (decision, forced)
}

/// Structure-of-arrays bank of per-server EC + SM controller state.
///
/// Server `i`'s controllers occupy slot `i` of every array; the model
/// data they evaluate against lives in the shared [`ModelTable`].
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerBank {
    table: ModelTable,
    /// Gain scaling parameter λ of the EC integral law (shared).
    lambda: f64,
    /// SM gain `β_loc` on normalized power (shared).
    beta: f64,
    /// SM guard band (fraction below the cap to regulate toward).
    guard: f64,
    /// EC continuous frequency state, Hz.
    freq_hz: Vec<f64>,
    /// EC quantized frequency applied last interval, Hz.
    applied_hz: Vec<f64>,
    /// EC utilization target.
    r_ref: Vec<f64>,
    /// SM static local budget `CAP_LOC`, watts.
    static_cap: Vec<f64>,
    /// SM budget granted by the EM/GM for the current epoch, watts.
    granted_cap: Vec<f64>,
    /// First tick each server's granted budget stops being authorized
    /// (`u64::MAX` = no lease: the grant holds until replaced).
    lease_until: Vec<u64>,
}

impl ControllerBank {
    /// Creates a bank over `table` with one EC (starting at the model's
    /// maximum frequency, target `initial_r_ref` clamped to the standard
    /// band) and one SM (static budget `static_caps[i]`, granted budget
    /// unbounded) per server.
    ///
    /// # Panics
    ///
    /// Panics if `static_caps.len() != table.num_servers()`.
    pub fn new(
        table: ModelTable,
        lambda: f64,
        beta: f64,
        initial_r_ref: f64,
        static_caps: &[f64],
    ) -> Self {
        let n = table.num_servers();
        assert_eq!(
            static_caps.len(),
            n,
            "one static cap per server ({} caps, {n} servers)",
            static_caps.len()
        );
        let freq_hz: Vec<f64> = (0..n).map(|i| table.max_frequency_hz(i)).collect();
        let r_ref = initial_r_ref.clamp(
            EfficiencyController::DEFAULT_R_REF_MIN,
            EfficiencyController::DEFAULT_R_REF_MAX,
        );
        Self {
            applied_hz: freq_hz.clone(),
            freq_hz,
            r_ref: vec![r_ref; n],
            static_cap: static_caps.to_vec(),
            granted_cap: vec![f64::INFINITY; n],
            lease_until: vec![u64::MAX; n],
            table,
            lambda,
            beta,
            guard: ServerManager::DEFAULT_GUARD,
        }
    }

    /// Overrides the SM guard band for every server.
    pub fn with_guard(mut self, guard: f64) -> Self {
        self.guard = guard.clamp(0.0, 0.5);
        self
    }

    /// Number of servers in the bank.
    pub fn len(&self) -> usize {
        self.r_ref.len()
    }

    /// True if the bank covers no servers.
    pub fn is_empty(&self) -> bool {
        self.r_ref.is_empty()
    }

    /// The shared model table the controllers evaluate against.
    pub fn table(&self) -> &ModelTable {
        &self.table
    }

    // ----- efficiency controller -----------------------------------------

    /// Server `i`'s current utilization target.
    pub fn r_ref(&self, i: usize) -> f64 {
        self.r_ref[i]
    }

    /// Sets server `i`'s utilization target, clamped to the standard band
    /// — identical to [`EfficiencyController::set_r_ref`].
    pub fn set_r_ref(&mut self, i: usize, r_ref: f64) {
        self.r_ref[i] = clamp_r_ref(r_ref);
    }

    /// Server `i`'s continuous EC frequency state, Hz.
    pub fn frequency_hz(&self, i: usize) -> f64 {
        self.freq_hz[i]
    }

    /// One EC control step for server `i` — the same update as
    /// [`EfficiencyController::step`]: adaptive integral law on the
    /// continuous frequency, quantized to the nearest P-state.
    pub fn ec_step(&mut self, i: usize, measured_util: f64) -> PState {
        ec_step_core(
            &self.table,
            self.lambda,
            i,
            &mut self.freq_hz[i],
            &mut self.applied_hz[i],
            self.r_ref[i],
            measured_util,
        )
    }

    /// Resets server `i`'s EC to its maximum frequency (e.g. after a
    /// power-on) — identical to [`EfficiencyController::reset`].
    pub fn ec_reset(&mut self, i: usize) {
        self.freq_hz[i] = self.table.max_frequency_hz(i);
        self.applied_hz[i] = self.freq_hz[i];
    }

    // ----- server manager -------------------------------------------------

    /// Server `i`'s static local budget `CAP_LOC`, watts.
    pub fn static_cap_watts(&self, i: usize) -> f64 {
        self.static_cap[i]
    }

    /// Grants server `i` a dynamic budget from the enclosure/group
    /// manager — identical to [`ServerManager::set_granted_cap`]. The
    /// grant carries no lease (it holds until replaced).
    pub fn set_granted_cap(&mut self, i: usize, watts: f64) {
        self.granted_cap[i] = watts.max(0.0);
        self.lease_until[i] = u64::MAX;
    }

    /// Grants server `i` a *leased* dynamic budget: the grant authorizes
    /// the cap until tick `lease_until`, after which
    /// [`ControllerBank::expire_lease`] reverts the server to its static
    /// cap.
    pub fn set_granted_cap_leased(&mut self, i: usize, watts: f64, lease_until: u64) {
        self.granted_cap[i] = watts.max(0.0);
        self.lease_until[i] = lease_until;
    }

    /// First tick server `i`'s grant stops being authorized
    /// (`u64::MAX` = unleased).
    pub fn lease_until(&self, i: usize) -> u64 {
        self.lease_until[i]
    }

    /// Expires server `i`'s lease if it has lapsed at `now`: the granted
    /// cap reverts to unlimited (so the effective cap falls back to
    /// `CAP_LOC`) and the lease clears. Returns whether an expiry
    /// happened.
    pub fn expire_lease(&mut self, i: usize, now: u64) -> bool {
        if now < self.lease_until[i] {
            return false;
        }
        self.granted_cap[i] = f64::INFINITY;
        self.lease_until[i] = u64::MAX;
        true
    }

    /// Resets server `i`'s grant to unlimited and clears any lease (e.g.
    /// after a power-on revival).
    pub fn reset_grant(&mut self, i: usize) {
        self.granted_cap[i] = f64::INFINITY;
        self.lease_until[i] = u64::MAX;
    }

    /// The budget server `i`'s SM enforces this epoch:
    /// `min(CAP_LOC, granted)`.
    pub fn effective_cap_watts(&self, i: usize) -> f64 {
        self.static_cap[i].min(self.granted_cap[i])
    }

    /// One **coordinated** SM interval for server `i` — the same update
    /// as [`ServerManager::step_coordinated`], retuning the bank's own
    /// EC `r_ref` slot.
    pub fn sm_step_coordinated(&mut self, i: usize, measured_power_watts: f64) -> SmDecision {
        sm_step_coordinated_core(
            &self.table,
            self.beta,
            self.guard,
            i,
            &mut self.r_ref[i],
            self.static_cap[i],
            self.granted_cap[i],
            measured_power_watts,
        )
    }

    /// One **uncoordinated** SM interval for server `i` — the same update
    /// as [`ServerManager::step_uncoordinated`].
    pub fn sm_step_uncoordinated(
        &mut self,
        i: usize,
        measured_power_watts: f64,
        current: PState,
    ) -> (SmDecision, Option<PState>) {
        sm_step_uncoordinated_core(
            &self.table,
            i,
            self.static_cap[i],
            self.granted_cap[i],
            measured_power_watts,
            current,
        )
    }

    // ----- rack sharding --------------------------------------------------

    /// Carves the bank into disjoint per-shard views for the parallel
    /// per-rack phase. `ranges` must be an ascending, dense partition of
    /// the server range (see `Topology::shard_ranges` in `nps-sim`).
    /// Each [`BankShard`] mutates only its own servers' slots through
    /// the *same* core update functions the sequential methods use, so
    /// results are bit-identical by construction.
    ///
    /// # Panics
    ///
    /// Panics if `ranges` is not an ascending dense partition of
    /// `0..len()`.
    pub fn shards(&mut self, ranges: &[Range<usize>]) -> Vec<BankShard<'_>> {
        let n = self.len();
        let mut out = Vec::with_capacity(ranges.len());
        let mut freq_hz = self.freq_hz.as_mut_slice();
        let mut applied_hz = self.applied_hz.as_mut_slice();
        let mut r_ref = self.r_ref.as_mut_slice();
        let mut static_cap = self.static_cap.as_slice();
        let mut granted_cap = self.granted_cap.as_mut_slice();
        let mut lease_until = self.lease_until.as_mut_slice();
        let mut cursor = 0usize;
        for range in ranges {
            assert_eq!(range.start, cursor, "shards must be dense and ascending");
            let len = range.len();
            let (f, rest) = freq_hz.split_at_mut(len);
            freq_hz = rest;
            let (a, rest) = applied_hz.split_at_mut(len);
            applied_hz = rest;
            let (r, rest) = r_ref.split_at_mut(len);
            r_ref = rest;
            let (s, rest) = static_cap.split_at(len);
            static_cap = rest;
            let (g, rest) = granted_cap.split_at_mut(len);
            granted_cap = rest;
            let (l, rest) = lease_until.split_at_mut(len);
            lease_until = rest;
            out.push(BankShard {
                table: &self.table,
                lambda: self.lambda,
                beta: self.beta,
                guard: self.guard,
                lo: range.start,
                freq_hz: f,
                applied_hz: a,
                r_ref: r,
                static_cap: s,
                granted_cap: g,
                lease_until: l,
            });
            cursor = range.end;
        }
        assert_eq!(cursor, n, "shards must cover every server");
        out
    }

    // ----- checkpointing --------------------------------------------------

    /// Captures the bank's mutable state (EC frequencies, targets, grants,
    /// leases) for checkpointing. Floats are bit-packed so infinite grants
    /// survive the JSON roundtrip exactly.
    pub fn snapshot(&self) -> BankSnapshot {
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect();
        BankSnapshot {
            freq_hz_bits: bits(&self.freq_hz),
            applied_hz_bits: bits(&self.applied_hz),
            r_ref_bits: bits(&self.r_ref),
            granted_cap_bits: bits(&self.granted_cap),
            lease_until: self.lease_until.clone(),
        }
    }

    /// Restores state captured by [`ControllerBank::snapshot`]. The bank
    /// must have been built over the same fleet.
    pub fn restore(&mut self, snap: &BankSnapshot) {
        let floats = |v: &[u64]| v.iter().map(|&b| f64::from_bits(b)).collect();
        self.freq_hz = floats(&snap.freq_hz_bits);
        self.applied_hz = floats(&snap.applied_hz_bits);
        self.r_ref = floats(&snap.r_ref_bits);
        self.granted_cap = floats(&snap.granted_cap_bits);
        self.lease_until = snap.lease_until.clone();
    }
}

/// A disjoint slice of the bank owned by one worker during the parallel
/// per-rack phase. Indices are *global* server ids (the shard subtracts
/// its own offset), so call sites read identically to the sequential
/// bank methods. All updates go through the same `#[inline]` core
/// functions as [`ControllerBank`]'s own methods.
#[derive(Debug)]
pub struct BankShard<'a> {
    table: &'a ModelTable,
    lambda: f64,
    beta: f64,
    guard: f64,
    /// First global server id of this shard.
    lo: usize,
    freq_hz: &'a mut [f64],
    applied_hz: &'a mut [f64],
    r_ref: &'a mut [f64],
    static_cap: &'a [f64],
    granted_cap: &'a mut [f64],
    lease_until: &'a mut [u64],
}

impl BankShard<'_> {
    /// Server `i`'s current utilization target (`i` is global; must lie
    /// in this shard).
    pub fn r_ref(&self, i: usize) -> f64 {
        self.r_ref[i - self.lo]
    }

    /// The budget server `i`'s SM enforces this epoch —
    /// identical to [`ControllerBank::effective_cap_watts`].
    pub fn effective_cap_watts(&self, i: usize) -> f64 {
        self.static_cap[i - self.lo].min(self.granted_cap[i - self.lo])
    }

    /// Grants server `i` an unleased dynamic budget — identical to
    /// [`ControllerBank::set_granted_cap`]. Lets a shard apply the
    /// enclosure-outage local-cap fallback to its own servers.
    pub fn set_granted_cap(&mut self, i: usize, watts: f64) {
        let k = i - self.lo;
        self.granted_cap[k] = watts.max(0.0);
        self.lease_until[k] = u64::MAX;
    }

    /// One EC control step for server `i` — bit-identical to
    /// [`ControllerBank::ec_step`] (same core function).
    pub fn ec_step(&mut self, i: usize, measured_util: f64) -> PState {
        let k = i - self.lo;
        ec_step_core(
            self.table,
            self.lambda,
            i,
            &mut self.freq_hz[k],
            &mut self.applied_hz[k],
            self.r_ref[k],
            measured_util,
        )
    }

    /// One coordinated SM interval for server `i` — bit-identical to
    /// [`ControllerBank::sm_step_coordinated`].
    pub fn sm_step_coordinated(&mut self, i: usize, measured_power_watts: f64) -> SmDecision {
        let k = i - self.lo;
        sm_step_coordinated_core(
            self.table,
            self.beta,
            self.guard,
            i,
            &mut self.r_ref[k],
            self.static_cap[k],
            self.granted_cap[k],
            measured_power_watts,
        )
    }

    /// One uncoordinated SM interval for server `i` — bit-identical to
    /// [`ControllerBank::sm_step_uncoordinated`].
    pub fn sm_step_uncoordinated(
        &mut self,
        i: usize,
        measured_power_watts: f64,
        current: PState,
    ) -> (SmDecision, Option<PState>) {
        let k = i - self.lo;
        sm_step_uncoordinated_core(
            self.table,
            i,
            self.static_cap[k],
            self.granted_cap[k],
            measured_power_watts,
            current,
        )
    }
}

/// The bank's mutable state (checkpoint section); one slot per server,
/// floats as IEEE-754 bit patterns.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BankSnapshot {
    /// EC continuous frequency state.
    pub freq_hz_bits: Vec<u64>,
    /// EC quantized applied frequency.
    pub applied_hz_bits: Vec<u64>,
    /// EC utilization targets.
    pub r_ref_bits: Vec<u64>,
    /// SM granted budgets (possibly infinite).
    pub granted_cap_bits: Vec<u64>,
    /// Grant lease deadlines (`u64::MAX` = unleased).
    pub lease_until: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use nps_models::ServerModel;

    fn fleet() -> Vec<ServerModel> {
        vec![
            ServerModel::blade_a(),
            ServerModel::server_b(),
            ServerModel::blade_a().extremes(),
        ]
    }

    fn scalar_pair(
        models: &[ServerModel],
        lambda: f64,
        beta: f64,
        caps: &[f64],
    ) -> (Vec<EfficiencyController>, Vec<ServerManager>) {
        let ecs = models
            .iter()
            .map(|m| EfficiencyController::new(m, lambda, 0.75))
            .collect();
        let sms = models
            .iter()
            .zip(caps)
            .map(|(m, &c)| ServerManager::new(m, c, beta))
            .collect();
        (ecs, sms)
    }

    #[test]
    fn ec_steps_match_scalar_bitwise() {
        let models = fleet();
        let caps: Vec<f64> = models.iter().map(|m| 0.8 * m.max_power()).collect();
        let mut bank = ControllerBank::new(ModelTable::from_models(&models), 0.8, 1.0, 0.75, &caps);
        let (mut ecs, _) = scalar_pair(&models, 0.8, 1.0, &caps);
        let utils = [0.1, 0.9, 1.0, 0.0, f64::NAN, 0.55, -0.2, 1.7, 0.33];
        for (k, &u) in utils.iter().cycle().take(200).enumerate() {
            for i in 0..models.len() {
                let u = u * (1.0 + 0.01 * i as f64);
                assert_eq!(bank.ec_step(i, u), ecs[i].step(&models[i], u), "step {k}");
                assert_eq!(bank.frequency_hz(i), ecs[i].frequency_hz());
                assert_eq!(bank.r_ref(i), ecs[i].r_ref());
            }
            if k % 7 == 0 {
                for (i, ec) in ecs.iter_mut().enumerate() {
                    let target = 0.6 + 0.3 * (k % 5) as f64;
                    bank.set_r_ref(i, target);
                    ec.set_r_ref(target);
                }
            }
            if k % 31 == 0 {
                bank.ec_reset(1);
                ecs[1].reset(&models[1]);
            }
        }
    }

    #[test]
    fn sm_coordinated_matches_scalar_bitwise() {
        let models = fleet();
        let caps: Vec<f64> = models.iter().map(|m| 0.78 * m.max_power()).collect();
        let mut bank = ControllerBank::new(ModelTable::from_models(&models), 0.8, 1.0, 0.75, &caps);
        let (mut ecs, mut sms) = scalar_pair(&models, 0.8, 1.0, &caps);
        for k in 0..150 {
            for i in 0..models.len() {
                let pow = 40.0 + 7.0 * ((k * (i + 3)) % 13) as f64;
                let want = sms[i].step_coordinated(pow, &mut ecs[i]);
                assert_eq!(bank.sm_step_coordinated(i, pow), want, "step {k}");
                assert_eq!(bank.r_ref(i), ecs[i].r_ref());
                // The retuned r_ref must feed back into the next EC step.
                let u = 0.5 + 0.04 * (k % 9) as f64;
                assert_eq!(bank.ec_step(i, u), ecs[i].step(&models[i], u));
            }
            if k % 11 == 0 {
                for (i, sm) in sms.iter_mut().enumerate() {
                    let grant = if k % 22 == 0 { 60.0 } else { f64::INFINITY };
                    bank.set_granted_cap(i, grant);
                    sm.set_granted_cap(grant);
                    assert_eq!(bank.effective_cap_watts(i), sm.effective_cap_watts());
                }
            }
        }
    }

    #[test]
    fn sm_uncoordinated_matches_scalar_bitwise() {
        let models = fleet();
        let caps: Vec<f64> = models.iter().map(|m| 0.7 * m.max_power()).collect();
        let mut bank = ControllerBank::new(ModelTable::from_models(&models), 0.8, 1.0, 0.75, &caps);
        let (_, mut sms) = scalar_pair(&models, 0.8, 1.0, &caps);
        for k in 0..60 {
            for i in 0..models.len() {
                let p = PState(k % models[i].num_pstates());
                let pow = 30.0 + 9.0 * ((k * 5 + i) % 11) as f64;
                let want = sms[i].step_uncoordinated(pow, p, &models[i]);
                assert_eq!(bank.sm_step_uncoordinated(i, pow, p), want, "step {k}");
            }
        }
    }

    #[test]
    fn negative_grant_clamps_to_zero() {
        let models = fleet();
        let caps = vec![100.0; 3];
        let mut bank = ControllerBank::new(ModelTable::from_models(&models), 0.8, 1.0, 0.75, &caps);
        bank.set_granted_cap(0, -5.0);
        assert_eq!(bank.effective_cap_watts(0), 0.0);
        assert_eq!(bank.static_cap_watts(0), 100.0);
    }

    #[test]
    fn leased_grant_expires_back_to_static_cap() {
        let models = fleet();
        let caps = vec![100.0; 3];
        let mut bank = ControllerBank::new(ModelTable::from_models(&models), 0.8, 1.0, 0.75, &caps);
        bank.set_granted_cap_leased(0, 60.0, 50);
        assert_eq!(bank.effective_cap_watts(0), 60.0);
        assert_eq!(bank.lease_until(0), 50);
        assert!(!bank.expire_lease(0, 49), "lease still live");
        assert_eq!(bank.effective_cap_watts(0), 60.0);
        assert!(bank.expire_lease(0, 50), "lease lapses at its deadline");
        assert_eq!(bank.effective_cap_watts(0), 100.0);
        assert_eq!(bank.lease_until(0), u64::MAX);
        assert!(!bank.expire_lease(0, 1000), "expiry fires once");
        // An unleased grant never expires.
        bank.set_granted_cap(1, 70.0);
        assert!(!bank.expire_lease(1, u64::MAX - 1));
        assert_eq!(bank.effective_cap_watts(1), 70.0);
        // Renewal pushes the deadline out.
        bank.set_granted_cap_leased(2, 40.0, 10);
        bank.set_granted_cap_leased(2, 45.0, 20);
        assert!(!bank.expire_lease(2, 15));
        assert_eq!(bank.effective_cap_watts(2), 45.0);
    }

    #[test]
    fn snapshot_roundtrips_state_bit_exactly() {
        let models = fleet();
        let caps = vec![100.0, 250.0, 90.0];
        let mut bank = ControllerBank::new(ModelTable::from_models(&models), 0.8, 1.0, 0.75, &caps);
        for k in 0..40 {
            for i in 0..3 {
                bank.ec_step(i, 0.3 + 0.02 * ((k + i) % 7) as f64);
                bank.sm_step_coordinated(i, 50.0 + k as f64);
            }
        }
        bank.set_granted_cap_leased(0, 55.0, 99);
        // Slot 1 keeps its infinite default grant — the roundtrip must
        // preserve it exactly (JSON has no infinity literal).
        let json = serde_json::to_string(&bank.snapshot()).unwrap();
        let snap: BankSnapshot = serde_json::from_str(&json).unwrap();
        let mut restored =
            ControllerBank::new(ModelTable::from_models(&models), 0.8, 1.0, 0.75, &caps);
        restored.restore(&snap);
        assert_eq!(bank, restored);
        assert_eq!(restored.effective_cap_watts(1), 250.0);
        assert_eq!(restored.lease_until(0), 99);
    }

    #[test]
    fn shard_steps_match_whole_bank_bitwise() {
        let models: Vec<ServerModel> = (0..7)
            .map(|i| {
                if i % 2 == 0 {
                    ServerModel::blade_a()
                } else {
                    ServerModel::server_b()
                }
            })
            .collect();
        let caps: Vec<f64> = models.iter().map(|m| 0.8 * m.max_power()).collect();
        let mut whole =
            ControllerBank::new(ModelTable::from_models(&models), 0.8, 1.0, 0.75, &caps);
        let mut sharded =
            ControllerBank::new(ModelTable::from_models(&models), 0.8, 1.0, 0.75, &caps);
        sharded.set_granted_cap_leased(2, 55.0, 10);
        whole.set_granted_cap_leased(2, 55.0, 10);
        let ranges = [0..3, 3..5, 5..7];
        for k in 0..80 {
            let mut shards = sharded.shards(&ranges);
            for (shard, range) in shards.iter_mut().zip(&ranges) {
                for i in range.clone() {
                    let u = 0.2 + 0.07 * ((k + i) % 9) as f64;
                    let pow = 30.0 + 6.0 * ((k * 3 + i) % 11) as f64;
                    assert_eq!(shard.ec_step(i, u), whole.ec_step(i, u), "ec step {k}");
                    assert_eq!(
                        shard.sm_step_coordinated(i, pow),
                        whole.sm_step_coordinated(i, pow),
                        "sm step {k}"
                    );
                    let p = PState(k % 3);
                    assert_eq!(
                        shard.sm_step_uncoordinated(i, pow, p),
                        whole.sm_step_uncoordinated(i, pow, p)
                    );
                    assert_eq!(shard.r_ref(i), whole.r_ref(i));
                    assert_eq!(shard.effective_cap_watts(i), whole.effective_cap_watts(i));
                }
            }
            drop(shards);
            assert_eq!(sharded, whole);
        }
    }

    #[test]
    #[should_panic(expected = "one static cap per server")]
    fn cap_count_mismatch_panics() {
        let models = fleet();
        ControllerBank::new(ModelTable::from_models(&models), 0.8, 1.0, 0.75, &[1.0]);
    }
}

//! The enclosure manager (EM) and group manager (GM) — paper Figure 6
//! equations `(EM)` and `(GMs)`.
//!
//! Both levels run the same algorithm at different scopes and time
//! constants: each epoch, compare the level's measured power with its
//! budget and re-provision per-child budgets for the next epoch via a
//! [`BudgetPolicy`]. Children take `min(own static cap, granted share)`
//! — the paper's `<min>` coordination interface. A [`GroupCapper`] at the
//! group level can itself be granted a budget by a higher-level manager,
//! nesting arbitrarily.

use serde::{Deserialize, Serialize};

use crate::policy::BudgetPolicy;

/// Which level a [`GroupCapper`] operates at (affects only reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CapperLevel {
    /// Blade enclosure (the paper's EM).
    Enclosure,
    /// Rack / data center (the paper's GM).
    Group,
}

impl std::fmt::Display for CapperLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CapperLevel::Enclosure => f.write_str("EM"),
            CapperLevel::Group => f.write_str("GM"),
        }
    }
}

/// A multi-server power capper re-provisioning a level budget across its
/// children each epoch.
///
/// ```
/// use nps_control::{CapperLevel, GroupCapper, ProportionalShare};
///
/// let mut em = GroupCapper::new(CapperLevel::Enclosure, 300.0,
///                               Box::new(ProportionalShare));
/// // Two blades consumed 100 W and 50 W; the hotter blade gets the
/// // bigger share, capped by its static budget.
/// let caps = em.reallocate(&[100.0, 50.0], &[180.0, 180.0]);
/// assert!(caps[0] > caps[1]);
/// assert!(caps.iter().sum::<f64>() <= 300.0);
/// ```
#[derive(Debug)]
pub struct GroupCapper {
    level: CapperLevel,
    static_cap_watts: f64,
    granted_cap_watts: f64,
    /// First tick the granted budget stops being authorized
    /// (`u64::MAX` = no lease).
    lease_until: u64,
    policy: Box<dyn BudgetPolicy>,
}

impl GroupCapper {
    /// Creates a capper with a static budget and a division policy.
    pub fn new(level: CapperLevel, static_cap_watts: f64, policy: Box<dyn BudgetPolicy>) -> Self {
        Self {
            level,
            static_cap_watts,
            granted_cap_watts: f64::INFINITY,
            lease_until: u64::MAX,
            policy,
        }
    }

    /// The level this capper operates at.
    pub fn level(&self) -> CapperLevel {
        self.level
    }

    /// The static budget (`CAP_ENC` / `CAP_GRP`), watts.
    pub fn static_cap_watts(&self) -> f64 {
        self.static_cap_watts
    }

    /// Grants a dynamic budget from the parent level (the GM tuning an
    /// EM's budget). The effective budget is the `min` of both. The grant
    /// carries no lease (it holds until replaced).
    pub fn set_granted_cap(&mut self, watts: f64) {
        self.granted_cap_watts = watts.max(0.0);
        self.lease_until = u64::MAX;
    }

    /// Grants a *leased* dynamic budget, authorized until tick
    /// `lease_until`; once [`GroupCapper::expire_lease`] fires, the capper
    /// falls back to its static budget.
    pub fn set_granted_cap_leased(&mut self, watts: f64, lease_until: u64) {
        self.granted_cap_watts = watts.max(0.0);
        self.lease_until = lease_until;
    }

    /// First tick the grant stops being authorized (`u64::MAX` =
    /// unleased).
    pub fn lease_until(&self) -> u64 {
        self.lease_until
    }

    /// Expires a lapsed lease at `now`: the granted budget reverts to
    /// unlimited (so the static budget binds) and the lease clears.
    /// Returns whether an expiry happened.
    pub fn expire_lease(&mut self, now: u64) -> bool {
        if now < self.lease_until {
            return false;
        }
        self.granted_cap_watts = f64::INFINITY;
        self.lease_until = u64::MAX;
        true
    }

    /// The budget enforced this epoch: `min(static, granted)`.
    pub fn effective_cap_watts(&self) -> f64 {
        self.static_cap_watts.min(self.granted_cap_watts)
    }

    /// Whether `measured_watts` violates the static budget (the violation
    /// signal exposed to the VMC, paper Figure 4).
    pub fn violates_static(&self, measured_watts: f64) -> bool {
        measured_watts > self.static_cap_watts
    }

    /// One epoch: re-provisions the effective budget across children given
    /// their last-epoch consumptions and static caps. Returns each child's
    /// budget for the next epoch (already `min`-ed with its static cap).
    pub fn reallocate(
        &mut self,
        consumption_watts: &[f64],
        child_static_caps_watts: &[f64],
    ) -> Vec<f64> {
        debug_assert_eq!(consumption_watts.len(), child_static_caps_watts.len());
        self.policy.divide(
            self.effective_cap_watts(),
            consumption_watts,
            child_static_caps_watts,
        )
    }

    /// Name of the active division policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    // ----- checkpointing --------------------------------------------------

    /// Captures the capper's mutable state (grant, lease, policy state)
    /// for checkpointing.
    pub fn snapshot(&self) -> CapperSnapshot {
        CapperSnapshot {
            granted_cap_bits: self.granted_cap_watts.to_bits(),
            lease_until: self.lease_until,
            policy_state: self.policy.export_state(),
        }
    }

    /// Restores state captured by [`GroupCapper::snapshot`]. The capper
    /// must have been built with the same static budget and policy kind.
    pub fn restore(&mut self, snap: &CapperSnapshot) {
        self.granted_cap_watts = f64::from_bits(snap.granted_cap_bits);
        self.lease_until = snap.lease_until;
        self.policy.import_state(&snap.policy_state);
    }
}

/// A [`GroupCapper`]'s mutable state (checkpoint section).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapperSnapshot {
    /// Granted budget (possibly infinite), as IEEE-754 bits.
    pub granted_cap_bits: u64,
    /// Grant lease deadline (`u64::MAX` = unleased).
    pub lease_until: u64,
    /// Opaque division-policy state
    /// ([`BudgetPolicy::export_state`](crate::BudgetPolicy::export_state)).
    pub policy_state: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ProportionalShare;

    fn capper(cap: f64) -> GroupCapper {
        GroupCapper::new(CapperLevel::Enclosure, cap, Box::new(ProportionalShare))
    }

    #[test]
    fn reallocation_is_proportional_and_bounded() {
        let mut em = capper(300.0);
        let caps = em.reallocate(&[100.0, 50.0, 50.0], &[108.0, 108.0, 108.0]);
        // 300·(100/200)=150 → min with 108.
        assert!((caps[0] - 108.0).abs() < 1e-9);
        assert!((caps[1] - 75.0).abs() < 1e-9);
        assert!((caps[2] - 75.0).abs() < 1e-9);
    }

    #[test]
    fn granted_budget_tightens_reallocation() {
        let mut em = capper(300.0);
        em.set_granted_cap(200.0);
        assert_eq!(em.effective_cap_watts(), 200.0);
        let caps = em.reallocate(&[50.0, 50.0], &[108.0, 108.0]);
        assert!((caps[0] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn generous_grant_leaves_static_binding() {
        let mut em = capper(300.0);
        em.set_granted_cap(9_000.0);
        assert_eq!(em.effective_cap_watts(), 300.0);
    }

    #[test]
    fn static_violation_detection() {
        let em = capper(300.0);
        assert!(em.violates_static(301.0));
        assert!(!em.violates_static(300.0));
    }

    #[test]
    fn levels_render_paper_names() {
        assert_eq!(CapperLevel::Enclosure.to_string(), "EM");
        assert_eq!(CapperLevel::Group.to_string(), "GM");
    }

    #[test]
    fn nested_em_under_gm_respects_both_budgets() {
        // GM divides 500 W across two enclosures proportionally; each EM
        // then divides its grant across two blades. No blade total may
        // exceed any level's budget.
        let mut gm = GroupCapper::new(CapperLevel::Group, 500.0, Box::new(ProportionalShare));
        let enc_power = [300.0, 200.0];
        let enc_static = [400.0, 400.0];
        let enc_caps = gm.reallocate(&enc_power, &enc_static);
        assert!(enc_caps.iter().sum::<f64>() <= 500.0 + 1e-9);
        let mut em0 = capper(400.0);
        em0.set_granted_cap(enc_caps[0]);
        let blade_caps = em0.reallocate(&[150.0, 150.0], &[200.0, 200.0]);
        assert!(blade_caps.iter().sum::<f64>() <= enc_caps[0] + 1e-9);
    }
}

//! VM–platform actuation arbitration — paper §6.1 extension (4):
//! *"VM-platform level coordination (e.g., multiple ECs implemented at
//! the VM level): this can be addressed with an arbitration interface
//! similar to the `<min>` interface used for SM/EM/GM interactions,
//! though likely more generalized."*
//!
//! When every VM runs its own efficiency controller, each demands a
//! frequency for "its" share of the platform; a single physical P-state
//! must serve all of them. The [`FrequencyArbiter`] generalizes the
//! budget `min` interface to this setting with pluggable policies.

use nps_models::{PState, ServerModel};
use nps_sim::reduce::{tree_max_by, tree_sum_by};
use serde::{Deserialize, Serialize};

/// How concurrent frequency demands combine into one platform setting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ArbitrationPolicy {
    /// Serve the most demanding VM: the platform never runs slower than
    /// any VM-level controller requested. Preserves every VM's tracking
    /// goal at the cost of power (the analogue of the `min` budget rule,
    /// which likewise takes the *safe* side).
    MaxDemand,
    /// Run at the *sum* of demands (each VM's requested frequency is its
    /// share of the platform), saturating at the platform maximum. The
    /// natural rule when VM controllers size their own slices.
    SumDemand,
    /// Weighted mean of the demands — a compromise arbiter that trades
    /// some tracking error for power when demands diverge.
    WeightedMean,
}

/// Arbitrates per-VM frequency demands into one platform P-state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrequencyArbiter {
    policy: ArbitrationPolicy,
}

impl FrequencyArbiter {
    /// Creates an arbiter with the given policy.
    pub fn new(policy: ArbitrationPolicy) -> Self {
        Self { policy }
    }

    /// The active policy.
    pub fn policy(&self) -> ArbitrationPolicy {
        self.policy
    }

    /// Combines per-VM frequency demands (Hz) with optional weights into
    /// a platform P-state for `model`. Empty demands park the platform at
    /// its deepest state. A missing weight (shorter `weights` slice, or an
    /// empty one) defaults to 1; non-finite demands are ignored.
    pub fn arbitrate(&self, model: &ServerModel, demands_hz: &[f64], weights: &[f64]) -> PState {
        // NaN or infinite demands would poison every aggregate below and
        // reach `quantize` even through `clamp` (NaN propagates).
        let w_of = |i: usize| weights.get(i).copied().unwrap_or(1.0).max(0.0);
        let finite: Vec<(f64, f64)> = demands_hz
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_finite())
            .map(|(i, &d)| (d, w_of(i)))
            .collect();
        if finite.is_empty() {
            return model.deepest();
        }
        // All aggregates run through the fixed-shape reduction tree
        // (`nps_sim::reduce`), so arbitration keeps the same bits no
        // matter how the caller sharded the demand vector; for at most
        // `LEAF_WIDTH` demands the tree *is* the old left-fold.
        let n = finite.len();
        let target = match self.policy {
            ArbitrationPolicy::MaxDemand => tree_max_by(n, |i| finite[i].0),
            ArbitrationPolicy::SumDemand => tree_sum_by(n, |i| finite[i].0),
            ArbitrationPolicy::WeightedMean => {
                let total_w = tree_sum_by(n, |i| finite[i].1);
                if total_w <= 0.0 || !total_w.is_finite() {
                    tree_sum_by(n, |i| finite[i].0) / n as f64
                } else {
                    tree_sum_by(n, |i| finite[i].1 * finite[i].0) / total_w
                }
            }
        };
        model.quantize(target.clamp(model.min_frequency_hz(), model.max_frequency_hz()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_demands_park_deep() {
        let model = ServerModel::blade_a();
        let arb = FrequencyArbiter::new(ArbitrationPolicy::MaxDemand);
        assert_eq!(arb.arbitrate(&model, &[], &[]), model.deepest());
    }

    #[test]
    fn max_demand_serves_the_hungriest_vm() {
        let model = ServerModel::blade_a();
        let arb = FrequencyArbiter::new(ArbitrationPolicy::MaxDemand);
        let p = arb.arbitrate(&model, &[550e6, 980e6, 600e6], &[]);
        assert_eq!(p, PState(0));
    }

    #[test]
    fn sum_demand_adds_slices() {
        let model = ServerModel::blade_a();
        let arb = FrequencyArbiter::new(ArbitrationPolicy::SumDemand);
        // Three light VMs of 0.2 GHz each → 0.6 GHz platform.
        let p = arb.arbitrate(&model, &[200e6, 200e6, 200e6], &[]);
        assert_eq!(p, model.quantize(600e6));
        // Saturates at the platform maximum.
        let p = arb.arbitrate(&model, &[900e6, 900e6], &[]);
        assert_eq!(p, PState(0));
    }

    #[test]
    fn weighted_mean_respects_weights() {
        let model = ServerModel::blade_a();
        let arb = FrequencyArbiter::new(ArbitrationPolicy::WeightedMean);
        // Heavy weight on the fast VM pulls the mean up.
        let fast_biased = arb.arbitrate(&model, &[1.0e9, 533e6], &[10.0, 1.0]);
        let slow_biased = arb.arbitrate(&model, &[1.0e9, 533e6], &[1.0, 10.0]);
        assert!(fast_biased.index() < slow_biased.index());
    }

    #[test]
    fn max_demand_never_underserves_any_vm() {
        let model = ServerModel::server_b();
        let arb = FrequencyArbiter::new(ArbitrationPolicy::MaxDemand);
        let demands = [1.3e9, 2.1e9, 1.9e9];
        let p = arb.arbitrate(&model, &demands, &[]);
        let granted = model.state(p).frequency_hz;
        // Quantization may round to the nearest state; the granted
        // frequency is within one state of every demand.
        let max_demand = 2.1e9;
        let next_deeper = model.state(model.step_down(p)).frequency_hz;
        assert!(granted >= next_deeper && granted >= max_demand - (granted - next_deeper));
    }

    #[test]
    fn weighted_mean_tolerates_fewer_weights_than_demands() {
        let model = ServerModel::blade_a();
        let arb = FrequencyArbiter::new(ArbitrationPolicy::WeightedMean);
        // Regression: this used to index weights[2] out of bounds. The
        // two missing weights default to 1.
        let short = arb.arbitrate(&model, &[1.0e9, 533e6, 800e6], &[2.0]);
        let explicit = arb.arbitrate(&model, &[1.0e9, 533e6, 800e6], &[2.0, 1.0, 1.0]);
        assert_eq!(short, explicit);
    }

    #[test]
    fn non_finite_demands_are_ignored() {
        let model = ServerModel::blade_a();
        for policy in [
            ArbitrationPolicy::MaxDemand,
            ArbitrationPolicy::SumDemand,
            ArbitrationPolicy::WeightedMean,
        ] {
            let arb = FrequencyArbiter::new(policy);
            let clean = arb.arbitrate(&model, &[600e6, 700e6], &[]);
            let dirty = arb.arbitrate(
                &model,
                &[600e6, f64::NAN, 700e6, f64::INFINITY, f64::NEG_INFINITY],
                &[1.0, 9.0, 1.0, 9.0, 9.0],
            );
            assert_eq!(clean, dirty, "{policy:?}");
        }
        // All-non-finite demands behave like no demands at all.
        let arb = FrequencyArbiter::new(ArbitrationPolicy::WeightedMean);
        assert_eq!(
            arb.arbitrate(&model, &[f64::NAN, f64::INFINITY], &[]),
            model.deepest()
        );
    }

    #[test]
    fn serde_roundtrip() {
        let arb = FrequencyArbiter::new(ArbitrationPolicy::SumDemand);
        let json = serde_json::to_string(&arb).unwrap();
        let back: FrequencyArbiter = serde_json::from_str(&json).unwrap();
        assert_eq!(arb, back);
    }
}

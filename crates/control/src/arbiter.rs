//! VM–platform actuation arbitration — paper §6.1 extension (4):
//! *"VM-platform level coordination (e.g., multiple ECs implemented at
//! the VM level): this can be addressed with an arbitration interface
//! similar to the `<min>` interface used for SM/EM/GM interactions,
//! though likely more generalized."*
//!
//! When every VM runs its own efficiency controller, each demands a
//! frequency for "its" share of the platform; a single physical P-state
//! must serve all of them. The [`FrequencyArbiter`] generalizes the
//! budget `min` interface to this setting with pluggable policies.

use nps_models::{PState, ServerModel};
use serde::{Deserialize, Serialize};

/// How concurrent frequency demands combine into one platform setting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ArbitrationPolicy {
    /// Serve the most demanding VM: the platform never runs slower than
    /// any VM-level controller requested. Preserves every VM's tracking
    /// goal at the cost of power (the analogue of the `min` budget rule,
    /// which likewise takes the *safe* side).
    MaxDemand,
    /// Run at the *sum* of demands (each VM's requested frequency is its
    /// share of the platform), saturating at the platform maximum. The
    /// natural rule when VM controllers size their own slices.
    SumDemand,
    /// Weighted mean of the demands — a compromise arbiter that trades
    /// some tracking error for power when demands diverge.
    WeightedMean,
}

/// Arbitrates per-VM frequency demands into one platform P-state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrequencyArbiter {
    policy: ArbitrationPolicy,
}

impl FrequencyArbiter {
    /// Creates an arbiter with the given policy.
    pub fn new(policy: ArbitrationPolicy) -> Self {
        Self { policy }
    }

    /// The active policy.
    pub fn policy(&self) -> ArbitrationPolicy {
        self.policy
    }

    /// Combines per-VM frequency demands (Hz) with optional weights into
    /// a platform P-state for `model`. Empty demands park the platform at
    /// its deepest state. Weights default to 1 when empty.
    pub fn arbitrate(&self, model: &ServerModel, demands_hz: &[f64], weights: &[f64]) -> PState {
        if demands_hz.is_empty() {
            return model.deepest();
        }
        let target = match self.policy {
            ArbitrationPolicy::MaxDemand => {
                demands_hz.iter().cloned().fold(0.0f64, f64::max)
            }
            ArbitrationPolicy::SumDemand => demands_hz.iter().sum(),
            ArbitrationPolicy::WeightedMean => {
                let w = |i: usize| {
                    if weights.is_empty() {
                        1.0
                    } else {
                        weights[i].max(0.0)
                    }
                };
                let total_w: f64 = (0..demands_hz.len()).map(w).sum();
                if total_w <= 0.0 {
                    demands_hz.iter().sum::<f64>() / demands_hz.len() as f64
                } else {
                    demands_hz
                        .iter()
                        .enumerate()
                        .map(|(i, &d)| w(i) * d)
                        .sum::<f64>()
                        / total_w
                }
            }
        };
        model.quantize(target.clamp(model.min_frequency_hz(), model.max_frequency_hz()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_demands_park_deep() {
        let model = ServerModel::blade_a();
        let arb = FrequencyArbiter::new(ArbitrationPolicy::MaxDemand);
        assert_eq!(arb.arbitrate(&model, &[], &[]), model.deepest());
    }

    #[test]
    fn max_demand_serves_the_hungriest_vm() {
        let model = ServerModel::blade_a();
        let arb = FrequencyArbiter::new(ArbitrationPolicy::MaxDemand);
        let p = arb.arbitrate(&model, &[550e6, 980e6, 600e6], &[]);
        assert_eq!(p, PState(0));
    }

    #[test]
    fn sum_demand_adds_slices() {
        let model = ServerModel::blade_a();
        let arb = FrequencyArbiter::new(ArbitrationPolicy::SumDemand);
        // Three light VMs of 0.2 GHz each → 0.6 GHz platform.
        let p = arb.arbitrate(&model, &[200e6, 200e6, 200e6], &[]);
        assert_eq!(p, model.quantize(600e6));
        // Saturates at the platform maximum.
        let p = arb.arbitrate(&model, &[900e6, 900e6], &[]);
        assert_eq!(p, PState(0));
    }

    #[test]
    fn weighted_mean_respects_weights() {
        let model = ServerModel::blade_a();
        let arb = FrequencyArbiter::new(ArbitrationPolicy::WeightedMean);
        // Heavy weight on the fast VM pulls the mean up.
        let fast_biased = arb.arbitrate(&model, &[1.0e9, 533e6], &[10.0, 1.0]);
        let slow_biased = arb.arbitrate(&model, &[1.0e9, 533e6], &[1.0, 10.0]);
        assert!(fast_biased.index() < slow_biased.index());
    }

    #[test]
    fn max_demand_never_underserves_any_vm() {
        let model = ServerModel::server_b();
        let arb = FrequencyArbiter::new(ArbitrationPolicy::MaxDemand);
        let demands = [1.3e9, 2.1e9, 1.9e9];
        let p = arb.arbitrate(&model, &demands, &[]);
        let granted = model.state(p).frequency_hz;
        // Quantization may round to the nearest state; the granted
        // frequency is within one state of every demand.
        let max_demand = 2.1e9;
        let next_deeper = model.state(model.step_down(p)).frequency_hz;
        assert!(granted >= next_deeper && granted >= max_demand - (granted - next_deeper));
    }

    #[test]
    fn serde_roundtrip() {
        let arb = FrequencyArbiter::new(ArbitrationPolicy::SumDemand);
        let json = serde_json::to_string(&arb).unwrap();
        let back: FrequencyArbiter = serde_json::from_str(&json).unwrap();
        assert_eq!(arb, back);
    }
}

//! The server manager (SM) — per-server thermal power capping, paper
//! Figure 6 equation `(SM)` and Appendix A.

use nps_models::{PState, ServerModel};
use serde::{Deserialize, Serialize};

use crate::ec::EfficiencyController;

/// Outcome of one server-manager interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmDecision {
    /// Whether the measured power exceeded the *static* local budget
    /// (`CAP_LOC`) this interval — the quantity reported to the VMC via
    /// the coordination interface (paper Figure 4).
    pub violated_static: bool,
    /// Whether the measured power exceeded the currently *effective*
    /// budget (`min(CAP_LOC, cap from EM/GM)`).
    pub violated_effective: bool,
    /// The utilization target handed to the efficiency controller
    /// (coordinated mode only; `None` in uncoordinated mode).
    pub new_r_ref: Option<f64>,
}

/// Per-server thermal power capper.
///
/// **Coordinated** design (paper §3.1): the SM's actuator is the EC's
/// utilization reference:
///
/// ```text
/// r_ref(k̂) = r_ref(k̂−1) − β_loc · (cap_loc − pow(k̂−1))
/// ```
///
/// on power *normalized by the server's maximum power*, so the base gain
/// `β_loc = 1` is meaningful across server types. Stability requires
/// `0 < β_loc < 2/c_max` (Appendix A), with `c_max` the worst-case slope
/// of normalized power versus `r_ref`.
///
/// **Uncoordinated** design (paper §2.2): the SM *"monitors the per-server
/// power consumption and reduces the P-state if a given power budget is
/// violated"* — writing the same actuator as the EC and racing with it.
///
/// ```
/// use nps_control::{EfficiencyController, ServerManager};
/// use nps_models::ServerModel;
///
/// let model = ServerModel::blade_a();
/// let mut sm = ServerManager::new(&model, 100.0, 1.0);
/// let mut ec = EfficiencyController::new(&model, 0.8, 0.75);
/// // Measured power above the cap: the SM raises the EC's r_ref.
/// let before = ec.r_ref();
/// let decision = sm.step_coordinated(115.0, &mut ec);
/// assert!(decision.violated_effective);
/// assert!(ec.r_ref() > before);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerManager {
    /// Static local budget `CAP_LOC`, watts.
    static_cap_watts: f64,
    /// Budget granted by the EM/GM for the current epoch, watts.
    granted_cap_watts: f64,
    /// Gain `β_loc` on normalized power.
    beta: f64,
    /// Server max power for normalization, watts.
    max_power_watts: f64,
    /// Guard band: the controller regulates toward `(1 − guard)·cap` so
    /// the quantization limit cycle straddles a point *below* the budget
    /// instead of the budget itself.
    guard: f64,
}

impl ServerManager {
    /// Default guard band (3% below the cap).
    pub const DEFAULT_GUARD: f64 = 0.03;

    /// Creates a server manager for a server of type `model` with the
    /// given static budget and gain `β_loc` (paper base: 1.0).
    pub fn new(model: &ServerModel, static_cap_watts: f64, beta: f64) -> Self {
        Self {
            static_cap_watts,
            granted_cap_watts: f64::INFINITY,
            beta,
            max_power_watts: model.max_power(),
            guard: Self::DEFAULT_GUARD,
        }
    }

    /// Overrides the guard band (fraction below the cap the controller
    /// regulates toward; 0 = regulate exactly at the cap).
    pub fn with_guard(mut self, guard: f64) -> Self {
        self.guard = guard.clamp(0.0, 0.5);
        self
    }

    /// The static local budget `CAP_LOC`, watts.
    pub fn static_cap_watts(&self) -> f64 {
        self.static_cap_watts
    }

    /// Grants a dynamic budget from the enclosure/group manager; the SM
    /// uses *"the minimum of the power budget recommended by the EM and
    /// its own local power budget"* (paper §3.1).
    pub fn set_granted_cap(&mut self, watts: f64) {
        self.granted_cap_watts = watts.max(0.0);
    }

    /// The budget the SM enforces this epoch:
    /// `min(CAP_LOC, granted)`.
    pub fn effective_cap_watts(&self) -> f64 {
        self.static_cap_watts.min(self.granted_cap_watts)
    }

    /// One **coordinated** SM interval: compares measured power with the
    /// effective budget and retunes the EC's `r_ref`.
    pub fn step_coordinated(
        &mut self,
        measured_power_watts: f64,
        ec: &mut EfficiencyController,
    ) -> SmDecision {
        let cap_norm = (1.0 - self.guard) * self.effective_cap_watts() / self.max_power_watts;
        let pow_norm = measured_power_watts / self.max_power_watts;
        // r_ref(k̂) = r_ref(k̂−1) − β·(cap − pow)  [normalized]
        let new_r_ref = ec.r_ref() - self.beta * (cap_norm - pow_norm);
        ec.set_r_ref(new_r_ref);
        SmDecision {
            violated_static: measured_power_watts > self.static_cap_watts,
            violated_effective: measured_power_watts > self.effective_cap_watts(),
            new_r_ref: Some(ec.r_ref()),
        }
    }

    /// One **uncoordinated** SM interval: if the budget is violated, force
    /// the P-state one step deeper (the conventional design the paper's
    /// EC races with). Returns the P-state to write, if any.
    pub fn step_uncoordinated(
        &mut self,
        measured_power_watts: f64,
        current: PState,
        model: &ServerModel,
    ) -> (SmDecision, Option<PState>) {
        let violated_effective = measured_power_watts > self.effective_cap_watts();
        let decision = SmDecision {
            violated_static: measured_power_watts > self.static_cap_watts,
            violated_effective,
            new_r_ref: None,
        };
        let forced = if violated_effective {
            Some(model.step_down(current))
        } else {
            None
        };
        (decision, forced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Closed-loop plant for SM tests: given `r_ref`, run the EC to
    /// convergence against a constant demand, then report power.
    fn settle_power(model: &ServerModel, ec: &mut EfficiencyController, demand_frac: f64) -> f64 {
        let mut p = model.quantize(ec.frequency_hz());
        let mut r = (demand_frac / model.capacity(p)).min(1.0);
        for _ in 0..50 {
            p = ec.step(model, r);
            r = (demand_frac / model.capacity(p)).min(1.0);
        }
        model.power(p.index(), r)
    }

    #[test]
    fn violation_raises_r_ref_and_power_falls_under_cap() {
        let model = ServerModel::blade_a();
        let cap = 0.75 * model.max_power(); // 90 W: P0 at high load violates
        let mut sm = ServerManager::new(&model, cap, 1.0);
        let mut ec = EfficiencyController::new(&model, 0.8, 0.75);
        let demand = 0.85;
        let mut pow = settle_power(&model, &mut ec, demand);
        assert!(pow > cap, "initial power {pow} should violate cap {cap}");
        let initial_r_ref = ec.r_ref();
        // With a binding cap and saturating demand the quantized loop
        // limit-cycles around the budget; assert on the settled average.
        let mut tail = Vec::new();
        for k in 0..60 {
            let d = sm.step_coordinated(pow, &mut ec);
            assert!(d.new_r_ref.is_some());
            pow = settle_power(&model, &mut ec, demand);
            if k >= 30 {
                tail.push(pow);
            }
        }
        assert!(ec.r_ref() > initial_r_ref || pow <= cap + 1e-9);
        let avg: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(
            avg <= cap * 1.05,
            "capped average power {avg} should settle near/under {cap}"
        );
    }

    #[test]
    fn under_budget_relaxes_r_ref_back_to_floor() {
        let model = ServerModel::blade_a();
        let cap = model.max_power(); // never violated
        let mut sm = ServerManager::new(&model, cap, 1.0);
        let mut ec = EfficiencyController::new(&model, 0.8, 0.75);
        ec.set_r_ref(1.3); // as if previously capped
        for _ in 0..50 {
            let pow = settle_power(&model, &mut ec, 0.3);
            sm.step_coordinated(pow, &mut ec);
        }
        assert!(
            (ec.r_ref() - EfficiencyController::DEFAULT_R_REF_MIN).abs() < 1e-9,
            "r_ref should relax to the floor, got {}",
            ec.r_ref()
        );
    }

    #[test]
    fn effective_cap_is_min_of_static_and_granted() {
        let model = ServerModel::blade_a();
        let mut sm = ServerManager::new(&model, 108.0, 1.0);
        assert_eq!(sm.effective_cap_watts(), 108.0);
        sm.set_granted_cap(90.0);
        assert_eq!(sm.effective_cap_watts(), 90.0);
        sm.set_granted_cap(500.0);
        assert_eq!(sm.effective_cap_watts(), 108.0);
    }

    #[test]
    fn decision_distinguishes_static_and_effective_violation() {
        let model = ServerModel::blade_a();
        let mut sm = ServerManager::new(&model, 108.0, 1.0);
        sm.set_granted_cap(90.0);
        let mut ec = EfficiencyController::new(&model, 0.8, 0.75);
        let d = sm.step_coordinated(100.0, &mut ec);
        assert!(d.violated_effective);
        assert!(!d.violated_static);
        let d = sm.step_coordinated(120.0, &mut ec);
        assert!(d.violated_effective && d.violated_static);
    }

    #[test]
    fn uncoordinated_forces_deeper_state_on_violation() {
        let model = ServerModel::blade_a();
        let mut sm = ServerManager::new(&model, 90.0, 1.0);
        let (d, forced) = sm.step_uncoordinated(110.0, PState(0), &model);
        assert!(d.violated_effective);
        assert_eq!(forced, Some(PState(1)));
        let (d, forced) = sm.step_uncoordinated(80.0, PState(1), &model);
        assert!(!d.violated_effective);
        assert_eq!(forced, None);
    }

    #[test]
    fn uncoordinated_saturates_at_deepest_state() {
        let model = ServerModel::blade_a();
        let mut sm = ServerManager::new(&model, 10.0, 1.0); // impossible cap
        let (_, forced) = sm.step_uncoordinated(60.0, model.deepest(), &model);
        assert_eq!(forced, Some(model.deepest()));
    }

    /// Continuous-envelope plant (Appendix A ignores quantization): the EC
    /// tracks r_ref exactly, so frequency fraction φ = demand / r_ref and
    /// power follows the interpolated model.
    fn continuous_power(model: &ServerModel, r_ref: f64, demand: f64) -> f64 {
        let phi_min = model.min_frequency_hz() / model.max_frequency_hz();
        let phi = (demand / r_ref).clamp(phi_min, 1.0);
        let r = (demand / phi).min(1.0);
        model.interp_power(phi, r)
    }

    #[test]
    fn gain_within_appendix_bound_converges_on_continuous_plant() {
        // Appendix A: β < 2/c_max ⇒ the SM loop converges with zero
        // tracking error (power → cap) on the continuous plant. The cap
        // must be reachable within the r_ref band (Server B's narrow
        // power range needs a slightly looser cap).
        for (model, frac) in [
            (ServerModel::blade_a(), 0.8),
            (ServerModel::server_b(), 0.87),
        ] {
            let beta = 0.9 * crate::stability::sm_gain_bound(&model);
            let cap = frac * model.max_power();
            let demand = 0.9;
            let mut r_ref = 0.75f64;
            let mut pow = continuous_power(&model, r_ref, demand);
            assert!(pow > cap, "{}: cap must start binding", model.name());
            for _ in 0..400 {
                // SM law on normalized power, clamped like the real SM.
                r_ref = (r_ref + beta * (pow - cap) / model.max_power()).clamp(0.75, 1.5);
                pow = continuous_power(&model, r_ref, demand);
            }
            assert!(
                (pow - cap).abs() < 0.5,
                "{}: settled at {pow} for cap {cap}",
                model.name()
            );
        }
    }

    #[test]
    fn quantized_loop_keeps_average_under_cap_with_bounded_transients() {
        // With real P-states the loop limit-cycles around the cap. The
        // thermal-capping contract (paper §2.1) is that violations are
        // *transient and bounded*: the time-average respects the budget
        // and no violation persists for many consecutive intervals.
        for model in [ServerModel::blade_a(), ServerModel::server_b()] {
            let cap = 0.8 * model.max_power();
            let mut sm = ServerManager::new(&model, cap, 1.0);
            let mut ec = EfficiencyController::new(&model, 0.8, 0.75);
            let mut tail = Vec::new();
            let mut consecutive = 0usize;
            let mut max_consecutive = 0usize;
            for k in 0..150 {
                let pow = settle_power(&model, &mut ec, 0.9);
                if k >= 50 {
                    tail.push(pow);
                    if pow > cap {
                        consecutive += 1;
                        max_consecutive = max_consecutive.max(consecutive);
                    } else {
                        consecutive = 0;
                    }
                }
                sm.step_coordinated(pow, &mut ec);
            }
            let avg: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
            assert!(
                avg <= cap * 1.05,
                "{}: settled average {avg} exceeds cap {cap}",
                model.name()
            );
            assert!(
                max_consecutive <= 4,
                "{}: violation persisted {max_consecutive} intervals",
                model.name()
            );
        }
    }
}

//! Multi-input platform capping — paper §6.1 extension (3): *"multiple
//! actuators at a given level (e.g., CPU, memory, and disk power
//! controllers interacting at the platform level): this may be addressed
//! with the use of multi-input-multi-output controllers."*
//!
//! A [`MimoCapper`] holds one platform power budget and jointly selects a
//! power level for every component (CPU P-state, memory low-power mode,
//! disk spin state, …) to maximize weighted performance under the budget
//! — the MIMO analogue of the single-knob server manager.

use serde::{Deserialize, Serialize};

/// One selectable operating point of a platform component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentLevel {
    /// Worst-case power at this level, watts.
    pub power_watts: f64,
    /// Relative performance delivered at this level, in `(0, 1]`.
    pub perf: f64,
}

/// A platform component with an independent power knob.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// Component name (`"cpu"`, `"memory"`, `"disk"`, …).
    pub name: String,
    /// Operating levels, fastest (most power) first. Must be non-empty
    /// with strictly decreasing power and non-increasing performance.
    pub levels: Vec<ComponentLevel>,
}

impl Component {
    /// Builds a component, validating level ordering.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty or not ordered by strictly decreasing
    /// power and non-increasing performance.
    pub fn new(name: impl Into<String>, levels: Vec<ComponentLevel>) -> Self {
        assert!(!levels.is_empty(), "component needs at least one level");
        for w in levels.windows(2) {
            assert!(
                w[1].power_watts < w[0].power_watts,
                "levels must strictly decrease in power"
            );
            assert!(
                w[1].perf <= w[0].perf,
                "a lower-power level cannot deliver more performance"
            );
        }
        Self {
            name: name.into(),
            levels,
        }
    }

    /// A stereotypical CPU (reusing the platform's P-state economics).
    pub fn typical_cpu() -> Self {
        Self::new(
            "cpu",
            vec![
                ComponentLevel {
                    power_watts: 95.0,
                    perf: 1.0,
                },
                ComponentLevel {
                    power_watts: 72.0,
                    perf: 0.83,
                },
                ComponentLevel {
                    power_watts: 55.0,
                    perf: 0.70,
                },
                ComponentLevel {
                    power_watts: 42.0,
                    perf: 0.53,
                },
            ],
        )
    }

    /// A stereotypical memory subsystem (self-refresh modes).
    pub fn typical_memory() -> Self {
        Self::new(
            "memory",
            vec![
                ComponentLevel {
                    power_watts: 30.0,
                    perf: 1.0,
                },
                ComponentLevel {
                    power_watts: 18.0,
                    perf: 0.80,
                },
                ComponentLevel {
                    power_watts: 8.0,
                    perf: 0.45,
                },
            ],
        )
    }

    /// A stereotypical disk (spin-down states).
    pub fn typical_disk() -> Self {
        Self::new(
            "disk",
            vec![
                ComponentLevel {
                    power_watts: 12.0,
                    perf: 1.0,
                },
                ComponentLevel {
                    power_watts: 7.0,
                    perf: 0.6,
                },
                ComponentLevel {
                    power_watts: 2.0,
                    perf: 0.2,
                },
            ],
        )
    }
}

/// Joint level selection across all components of a platform under one
/// power budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MimoCapper {
    budget_watts: f64,
}

/// The outcome of one MIMO allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MimoAllocation {
    /// Selected level index per component (same order as the input).
    pub levels: Vec<usize>,
    /// Worst-case platform power of the selection, watts.
    pub power_watts: f64,
    /// Weighted performance of the selection.
    pub weighted_perf: f64,
    /// Whether the budget could be met at all (if `false`, the deepest
    /// level of every component was chosen and the budget is still
    /// exceeded).
    pub feasible: bool,
}

impl MimoCapper {
    /// Creates a capper with the given platform budget.
    pub fn new(budget_watts: f64) -> Self {
        Self { budget_watts }
    }

    /// The platform budget, watts.
    pub fn budget_watts(&self) -> f64 {
        self.budget_watts
    }

    /// Selects one level per component maximizing
    /// `Σ weight_i · perf_i` subject to `Σ power_i ≤ budget`.
    ///
    /// Starts from the fastest levels and greedily deepens the component
    /// with the best power-saved-per-weighted-performance-lost ratio
    /// until the budget holds — the classic marginal-utility heuristic
    /// for separable knapsack-like problems, optimal here whenever the
    /// level curves are convex.
    ///
    /// `weights` defaults to all-ones when empty; otherwise one
    /// non-negative weight per component.
    pub fn allocate(&self, components: &[Component], weights: &[f64]) -> MimoAllocation {
        let n = components.len();
        let w = |i: usize| -> f64 {
            if weights.is_empty() {
                1.0
            } else {
                weights[i].max(0.0)
            }
        };
        let mut levels = vec![0usize; n];
        let power = |levels: &[usize]| -> f64 {
            components
                .iter()
                .zip(levels)
                .map(|(c, &l)| c.levels[l].power_watts)
                .sum()
        };
        let mut current = power(&levels);
        while current > self.budget_watts {
            // Deepen the component with the cheapest perf cost per watt
            // saved.
            let mut best: Option<(f64, usize)> = None;
            for i in 0..n {
                let l = levels[i];
                if l + 1 >= components[i].levels.len() {
                    continue;
                }
                let saved =
                    components[i].levels[l].power_watts - components[i].levels[l + 1].power_watts;
                let lost = w(i) * (components[i].levels[l].perf - components[i].levels[l + 1].perf);
                let ratio = lost / saved.max(f64::EPSILON);
                if best.map(|(r, _)| ratio < r).unwrap_or(true) {
                    best = Some((ratio, i));
                }
            }
            match best {
                Some((_, i)) => {
                    levels[i] += 1;
                    current = power(&levels);
                }
                None => break, // every component already at its deepest level
            }
        }
        let weighted_perf = components
            .iter()
            .zip(&levels)
            .enumerate()
            .map(|(i, (c, &l))| w(i) * c.levels[l].perf)
            .sum();
        MimoAllocation {
            power_watts: current,
            weighted_perf,
            feasible: current <= self.budget_watts,
            levels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> Vec<Component> {
        vec![
            Component::typical_cpu(),
            Component::typical_memory(),
            Component::typical_disk(),
        ]
    }

    #[test]
    fn generous_budget_selects_fastest_levels() {
        let alloc = MimoCapper::new(500.0).allocate(&platform(), &[]);
        assert_eq!(alloc.levels, vec![0, 0, 0]);
        assert!(alloc.feasible);
        assert!((alloc.weighted_perf - 3.0).abs() < 1e-12);
    }

    #[test]
    fn binding_budget_is_respected() {
        let budget = 100.0; // full platform needs 137 W
        let alloc = MimoCapper::new(budget).allocate(&platform(), &[]);
        assert!(alloc.feasible);
        assert!(alloc.power_watts <= budget);
        // Some component must have been deepened.
        assert!(alloc.levels.iter().any(|&l| l > 0));
    }

    #[test]
    fn allocation_is_monotone_in_budget() {
        let comps = platform();
        let mut last_perf = 0.0;
        for budget in [60.0, 80.0, 100.0, 120.0, 140.0] {
            let alloc = MimoCapper::new(budget).allocate(&comps, &[]);
            assert!(
                alloc.weighted_perf >= last_perf - 1e-12,
                "budget {budget}: perf regressed"
            );
            last_perf = alloc.weighted_perf;
        }
    }

    #[test]
    fn weights_steer_the_throttling_order() {
        let comps = platform();
        // CPU-heavy workload: memory/disk should be throttled first.
        let cpu_heavy = MimoCapper::new(110.0).allocate(&comps, &[10.0, 1.0, 1.0]);
        // Memory-heavy workload: CPU gives way first.
        let mem_heavy = MimoCapper::new(110.0).allocate(&comps, &[1.0, 10.0, 1.0]);
        assert!(cpu_heavy.levels[0] <= mem_heavy.levels[0]);
        assert!(cpu_heavy.levels[1] >= mem_heavy.levels[1]);
    }

    #[test]
    fn impossible_budget_is_flagged_infeasible() {
        let alloc = MimoCapper::new(10.0).allocate(&platform(), &[]);
        assert!(!alloc.feasible);
        // Everything at the deepest level.
        let deepest: Vec<usize> = platform().iter().map(|c| c.levels.len() - 1).collect();
        assert_eq!(alloc.levels, deepest);
    }

    #[test]
    #[should_panic(expected = "strictly decrease")]
    fn component_rejects_unordered_levels() {
        Component::new(
            "bad",
            vec![
                ComponentLevel {
                    power_watts: 10.0,
                    perf: 1.0,
                },
                ComponentLevel {
                    power_watts: 20.0,
                    perf: 0.5,
                },
            ],
        );
    }
}

//! Appendix-A stability bounds.
//!
//! The paper proves (Appendix A):
//!
//! * **Proposition A** — the EC converges globally for
//!   `0 < λ < 1/r_ref` (and locally for `0 < λ < 2/r_ref`, citing Wang,
//!   Zhu & Singhal 2005);
//! * the SM loop `pow(k̂) = (1 − β·c)·pow(k̂−1) + β·c·cap_loc` is stable
//!   iff `|1 − β·c| < 1`, i.e. `0 < β_loc < 2/c_max` where `c_max` bounds
//!   the slope of (normalized) server power versus `r_ref`.
//!
//! These helpers compute the bounds so deployments can *"tune and bound
//! the gain parameters of the individual controller equations"* (§3.2).

use nps_models::ServerModel;

/// Global-stability upper bound on the EC's λ for a given utilization
/// target: `λ < 1/r_ref` (Appendix A, Proposition A).
pub fn ec_gain_bound_global(r_ref: f64) -> f64 {
    assert!(r_ref > 0.0, "r_ref must be positive");
    1.0 / r_ref
}

/// Local-stability upper bound on the EC's λ: `λ < 2/r_ref`.
pub fn ec_gain_bound_local(r_ref: f64) -> f64 {
    assert!(r_ref > 0.0, "r_ref must be positive");
    2.0 / r_ref
}

/// Upper bound on the SM's `β_loc` for a server type: `β < 2/c_max`,
/// with `c_max` the worst-case magnitude of ∂(pow/max_pow)/∂r_ref
/// evaluated numerically from the power model
/// ([`ServerModel::max_capping_slope_normalized`]).
pub fn sm_gain_bound(model: &ServerModel) -> f64 {
    2.0 / model.max_capping_slope_normalized()
}

/// Checks a full parameterization against all Appendix-A bounds.
/// Returns the list of violated constraints (empty = provably stable
/// under the appendix's assumptions).
pub fn check_gains(model: &ServerModel, lambda: f64, r_ref: f64, beta: f64) -> Vec<String> {
    let mut violations = Vec::new();
    if lambda <= 0.0 {
        violations.push(format!("λ = {lambda} must be positive"));
    } else if lambda >= ec_gain_bound_global(r_ref) {
        violations.push(format!(
            "λ = {lambda} ≥ 1/r_ref = {} (global EC stability bound)",
            ec_gain_bound_global(r_ref)
        ));
    }
    if beta <= 0.0 {
        violations.push(format!("β_loc = {beta} must be positive"));
    } else if beta >= sm_gain_bound(model) {
        violations.push(format!(
            "β_loc = {beta} ≥ 2/c_max = {} (SM stability bound)",
            sm_gain_bound(model)
        ));
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ec_bounds_match_appendix() {
        assert!((ec_gain_bound_global(0.75) - 4.0 / 3.0).abs() < 1e-12);
        assert!((ec_gain_bound_local(0.75) - 8.0 / 3.0).abs() < 1e-12);
        // The paper's base λ = 0.8 is inside the global bound for the base
        // r_ref floor 0.75.
        assert!(0.8 < ec_gain_bound_global(0.75));
    }

    #[test]
    fn paper_base_gains_are_provably_stable() {
        for model in [ServerModel::blade_a(), ServerModel::server_b()] {
            let violations = check_gains(&model, 0.8, 0.75, 1.0);
            assert!(violations.is_empty(), "{}: {violations:?}", model.name());
        }
    }

    #[test]
    fn bad_gains_are_reported() {
        let model = ServerModel::blade_a();
        let violations = check_gains(&model, 2.0, 0.75, 1e9);
        assert_eq!(violations.len(), 2);
        assert!(violations[0].contains("global EC stability bound"));
        assert!(violations[1].contains("SM stability bound"));
    }

    #[test]
    fn nonpositive_gains_are_rejected() {
        let model = ServerModel::blade_a();
        assert_eq!(check_gains(&model, -1.0, 0.75, 0.0).len(), 2);
    }

    #[test]
    fn sm_bound_is_positive_for_reference_models() {
        for model in [ServerModel::blade_a(), ServerModel::server_b()] {
            let b = sm_gain_bound(&model);
            assert!(b.is_finite() && b > 0.0, "{}: bound {b}", model.name());
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_r_ref_panics() {
        ec_gain_bound_global(0.0);
    }
}

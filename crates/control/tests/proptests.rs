//! Property-based tests: controller laws under randomized demands, gains
//! within Appendix-A bounds, and budget-policy conservation laws.

use nps_control::{
    stability, BudgetPolicy, EfficiencyController, FairShare, Fifo, HistoryWeighted,
    ProportionalShare, RandomOrder, ServerManager,
};
use nps_models::ServerModel;
use proptest::prelude::*;

proptest! {
    #[test]
    fn ec_converges_for_any_stable_gain_and_demand(
        lambda_frac in 0.05f64..0.95,
        r_ref in 0.76f64..0.99,
        demand_frac in 0.05f64..0.9,
    ) {
        // λ anywhere inside (0, 1/r_ref) must converge on the continuous
        // plant (Proposition A), for any slowly-varying demand.
        let model = ServerModel::blade_a();
        let lambda = lambda_frac * stability::ec_gain_bound_global(r_ref);
        let mut ec = EfficiencyController::new(&model, lambda, r_ref);
        ec.set_r_ref(r_ref);
        let demand_hz = demand_frac * model.max_frequency_hz();
        let mut f = ec.frequency_hz();
        let mut r = (demand_hz / f).min(1.0);
        for _ in 0..3_000 {
            f = ec.update_frequency(r, 1.0, 4.0 * model.max_frequency_hz());
            r = (demand_hz / f).min(1.0);
        }
        prop_assert!((r - r_ref).abs() < 1e-3, "settled at {r} (target {r_ref})");
    }

    #[test]
    fn ec_frequency_always_within_actuation_range(
        utils in proptest::collection::vec(0.0f64..1.0, 1..200),
        lambda in 0.01f64..2.0,
    ) {
        let model = ServerModel::server_b();
        let mut ec = EfficiencyController::new(&model, lambda, 0.9);
        for u in utils {
            let p = ec.step(&model, u);
            prop_assert!(p.index() < model.num_pstates());
            prop_assert!(ec.frequency_hz() >= model.min_frequency_hz() - 1.0);
            prop_assert!(ec.frequency_hz() <= model.max_frequency_hz() + 1.0);
        }
    }

    #[test]
    fn sm_r_ref_stays_in_band_for_any_power_sequence(
        powers in proptest::collection::vec(0.0f64..400.0, 1..100),
        cap_frac in 0.5f64..1.0,
        beta in 0.1f64..2.0,
    ) {
        let model = ServerModel::blade_a();
        let mut sm = ServerManager::new(&model, cap_frac * model.max_power(), beta);
        let mut ec = EfficiencyController::new(&model, 0.8, 0.75);
        for p in powers {
            let d = sm.step_coordinated(p, &mut ec);
            let r = d.new_r_ref.unwrap();
            prop_assert!((0.75..=1.5).contains(&r), "r_ref {r} out of band");
        }
    }

    #[test]
    fn sm_effective_cap_never_exceeds_either_budget(
        static_cap in 10.0f64..200.0,
        grants in proptest::collection::vec(0.0f64..400.0, 0..20),
    ) {
        let model = ServerModel::blade_a();
        let mut sm = ServerManager::new(&model, static_cap, 1.0);
        for g in grants {
            sm.set_granted_cap(g);
            prop_assert!(sm.effective_cap_watts() <= static_cap + 1e-12);
            prop_assert!(sm.effective_cap_watts() <= g + 1e-12);
        }
    }

    #[test]
    fn policies_conserve_budget_and_caps(
        total in 1.0f64..2_000.0,
        consumption in proptest::collection::vec(0.0f64..300.0, 1..30),
        cap_each in 10.0f64..200.0,
        seed in 0u64..100,
        alpha in 0.01f64..1.0,
    ) {
        let n = consumption.len();
        let static_caps = vec![cap_each; n];
        let policies: Vec<Box<dyn BudgetPolicy>> = vec![
            Box::new(ProportionalShare),
            Box::new(FairShare),
            Box::new(Fifo),
            Box::new(RandomOrder::new(seed)),
            Box::new(HistoryWeighted::new(alpha)),
        ];
        for mut p in policies {
            let out = p.divide(total, &consumption, &static_caps);
            prop_assert_eq!(out.len(), n, "{}", p.name());
            let sum: f64 = out.iter().sum();
            prop_assert!(sum <= total + 1e-6, "{} allocated {sum} > {total}", p.name());
            for (o, s) in out.iter().zip(&static_caps) {
                prop_assert!(*o <= *s + 1e-9, "{} exceeded a static cap", p.name());
                prop_assert!(*o >= 0.0);
            }
        }
    }

    #[test]
    fn history_weighted_is_stateful_but_bounded(
        rounds in proptest::collection::vec(
            proptest::collection::vec(0.0f64..300.0, 4..5), 1..20),
        alpha in 0.05f64..1.0,
    ) {
        let mut p = HistoryWeighted::new(alpha);
        let caps = vec![150.0; 4];
        for c in rounds {
            let out = p.divide(400.0, &c, &caps);
            prop_assert!(out.iter().sum::<f64>() <= 400.0 + 1e-6);
        }
    }
}

mod extension_props {
    use nps_control::mimo::{Component, ComponentLevel, MimoCapper};
    use nps_control::{ArbitrationPolicy, FrequencyArbiter};
    use nps_models::ServerModel;
    use proptest::prelude::*;

    fn arb_component() -> impl Strategy<Value = Component> {
        (2usize..5, 5.0f64..100.0, 0.05f64..0.5).prop_map(|(n, top_power, power_step_frac)| {
            let mut levels = Vec::new();
            let mut power = top_power;
            let mut perf = 1.0;
            for _ in 0..n {
                levels.push(ComponentLevel {
                    power_watts: power,
                    perf,
                });
                power *= 1.0 - power_step_frac;
                perf *= 0.8;
            }
            Component::new("c", levels)
        })
    }

    proptest! {
        #[test]
        fn mimo_allocation_is_valid_and_budget_safe(
            comps in proptest::collection::vec(arb_component(), 1..5),
            budget in 1.0f64..400.0,
        ) {
            let alloc = MimoCapper::new(budget).allocate(&comps, &[]);
            prop_assert_eq!(alloc.levels.len(), comps.len());
            for (c, &l) in comps.iter().zip(&alloc.levels) {
                prop_assert!(l < c.levels.len());
            }
            let power: f64 = comps
                .iter()
                .zip(&alloc.levels)
                .map(|(c, &l)| c.levels[l].power_watts)
                .sum();
            prop_assert!((power - alloc.power_watts).abs() < 1e-9);
            if alloc.feasible {
                prop_assert!(alloc.power_watts <= budget + 1e-9);
            } else {
                // Deepest everywhere and still over budget.
                for (c, &l) in comps.iter().zip(&alloc.levels) {
                    prop_assert_eq!(l, c.levels.len() - 1);
                }
                prop_assert!(alloc.power_watts > budget);
            }
        }

        #[test]
        fn mimo_perf_is_monotone_in_budget(
            comps in proptest::collection::vec(arb_component(), 1..4),
            b1 in 1.0f64..300.0,
            b2 in 1.0f64..300.0,
        ) {
            let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
            let a_lo = MimoCapper::new(lo).allocate(&comps, &[]);
            let a_hi = MimoCapper::new(hi).allocate(&comps, &[]);
            prop_assert!(a_hi.weighted_perf >= a_lo.weighted_perf - 1e-9);
        }

        #[test]
        fn arbitration_always_returns_valid_state(
            demands in proptest::collection::vec(0.0f64..4.0e9, 0..8),
            policy_idx in 0usize..3,
        ) {
            let model = ServerModel::server_b();
            let policy = [
                ArbitrationPolicy::MaxDemand,
                ArbitrationPolicy::SumDemand,
                ArbitrationPolicy::WeightedMean,
            ][policy_idx];
            let p = FrequencyArbiter::new(policy).arbitrate(&model, &demands, &[]);
            prop_assert!(p.index() < model.num_pstates());
        }

        #[test]
        fn sum_demand_never_slower_than_mean(
            demands in proptest::collection::vec(1.0e8f64..1.5e9, 1..6),
        ) {
            let model = ServerModel::server_b();
            let sum = FrequencyArbiter::new(ArbitrationPolicy::SumDemand)
                .arbitrate(&model, &demands, &[]);
            let mean = FrequencyArbiter::new(ArbitrationPolicy::WeightedMean)
                .arbitrate(&model, &demands, &[]);
            // Sum of demands ≥ mean of demands ⇒ shallower (or equal) state.
            prop_assert!(sum.index() <= mean.index());
        }

        #[test]
        fn arbitration_never_panics_for_any_lengths_or_values(
            demands in proptest::collection::vec(prop_oneof![
                6 => -1.0e10f64..4.0e9,
                1 => Just(f64::NAN),
                1 => Just(f64::INFINITY),
                1 => Just(f64::NEG_INFINITY),
            ], 0..12),
            weights in proptest::collection::vec(prop_oneof![
                6 => -5.0f64..20.0,
                1 => Just(f64::NAN),
                1 => Just(f64::INFINITY),
            ], 0..12),
            policy_idx in 0usize..3,
        ) {
            // Regression: WeightedMean indexed `weights[i]` and panicked
            // whenever the weight slice was shorter than the demand slice;
            // NaN demands reached `quantize` through `clamp`.
            let model = ServerModel::blade_a();
            let policy = [
                ArbitrationPolicy::MaxDemand,
                ArbitrationPolicy::SumDemand,
                ArbitrationPolicy::WeightedMean,
            ][policy_idx];
            let p = FrequencyArbiter::new(policy).arbitrate(&model, &demands, &weights);
            prop_assert!(p.index() < model.num_pstates());
        }
    }
}

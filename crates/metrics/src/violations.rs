//! Budget-violation accounting.

use serde::{Deserialize, Serialize};

/// Counts budget violations over capping intervals. One counter typically
/// aggregates every controller instance at a level (all SMs, all EMs, the
/// GM), following the paper's per-level violation bars in Figure 7.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViolationCounter {
    intervals: u64,
    violated: u64,
}

impl ViolationCounter {
    /// A fresh counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one capping interval; `violated` marks whether the budget
    /// was exceeded in it.
    pub fn record(&mut self, violated: bool) {
        self.intervals += 1;
        if violated {
            self.violated += 1;
        }
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: ViolationCounter) {
        self.intervals += other.intervals;
        self.violated += other.violated;
    }

    /// Number of intervals observed.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }

    /// Number of violated intervals.
    pub fn violated(&self) -> u64 {
        self.violated
    }

    /// Violation rate in `[0, 1]` (0 when nothing was observed).
    pub fn rate(&self) -> f64 {
        if self.intervals == 0 {
            0.0
        } else {
            self.violated as f64 / self.intervals as f64
        }
    }

    /// Violation rate as a percentage.
    pub fn percent(&self) -> f64 {
        100.0 * self.rate()
    }
}

/// The three per-level violation counters of the paper's evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelViolations {
    /// Group-manager level (`Violates(GM)`).
    pub group: ViolationCounter,
    /// Enclosure-manager level (`Violates(EM)`).
    pub enclosure: ViolationCounter,
    /// Server-manager level (`Violates(SM)`).
    pub server: ViolationCounter,
}

impl LevelViolations {
    /// A fresh set of counters.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_counts_violations() {
        let mut c = ViolationCounter::new();
        for i in 0..10 {
            c.record(i % 4 == 0);
        }
        assert_eq!(c.intervals(), 10);
        assert_eq!(c.violated(), 3);
        assert!((c.rate() - 0.3).abs() < 1e-12);
        assert!((c.percent() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn empty_counter_rates_zero() {
        assert_eq!(ViolationCounter::new().rate(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ViolationCounter::new();
        a.record(true);
        let mut b = ViolationCounter::new();
        b.record(false);
        b.record(true);
        a.merge(b);
        assert_eq!(a.intervals(), 3);
        assert_eq!(a.violated(), 2);
    }

    #[test]
    fn serde_roundtrip() {
        let mut v = LevelViolations::new();
        v.server.record(true);
        let json = serde_json::to_string(&v).unwrap();
        let back: LevelViolations = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}

//! Event-level controller telemetry.
//!
//! The paper's evaluation (§5, Figures 7–10) is an argument about *what
//! each controller decided every interval*: P-state writes, `r_ref`
//! retunes, budget grants flowing down the EM/GM hierarchy, violations,
//! and VMC consolidation plans. This module gives the runner a structured
//! window into those decisions: a [`TelemetryEvent`] per coordination
//! action, a [`Recorder`] sink trait, a zero-overhead [`NoopRecorder`],
//! and a bounded [`RingRecorder`] with per-event-type counters, JSON
//! export, and a [`TelemetrySummary`] reporter.
//!
//! The overhead contract: a runner with *no* recorder installed pays one
//! `Option` discriminant test per potential event; a [`NoopRecorder`]
//! pays one virtual call on an empty body. Both are verified by the
//! `telemetry` criterion bench in `nps-bench`.

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Which controller produced an event (the five paper controllers plus
/// the electrical fuse capper extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ControllerKind {
    /// Efficiency controller (per server, every tick).
    Ec,
    /// Server manager (per server).
    Sm,
    /// Enclosure manager.
    Em,
    /// Group manager.
    Gm,
    /// Virtual machine controller.
    Vmc,
    /// Electrical fuse capper (extension).
    Electrical,
}

impl ControllerKind {
    /// All controllers, report order.
    pub const ALL: [ControllerKind; 6] = [
        ControllerKind::Ec,
        ControllerKind::Sm,
        ControllerKind::Em,
        ControllerKind::Gm,
        ControllerKind::Vmc,
        ControllerKind::Electrical,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ControllerKind::Ec => "EC",
            ControllerKind::Sm => "SM",
            ControllerKind::Em => "EM",
            ControllerKind::Gm => "GM",
            ControllerKind::Vmc => "VMC",
            ControllerKind::Electrical => "ELEC",
        }
    }
}

/// A budget level in the capping hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BudgetLevel {
    /// Server-manager level.
    Server,
    /// Enclosure-manager level.
    Enclosure,
    /// Group-manager level.
    Group,
}

impl BudgetLevel {
    /// All levels, innermost first.
    pub const ALL: [BudgetLevel; 3] = [
        BudgetLevel::Server,
        BudgetLevel::Enclosure,
        BudgetLevel::Group,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            BudgetLevel::Server => "server",
            BudgetLevel::Enclosure => "enclosure",
            BudgetLevel::Group => "group",
        }
    }
}

/// How an injected sensor fault manifested at the ingestion boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensorFaultKind {
    /// The reading was perturbed by Gaussian noise.
    Noise,
    /// The sensor is frozen at a stale value.
    Stuck,
    /// The sample was lost entirely.
    Dropped,
}

impl SensorFaultKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SensorFaultKind::Noise => "noise",
            SensorFaultKind::Stuck => "stuck",
            SensorFaultKind::Dropped => "dropped",
        }
    }
}

/// Which graceful-degradation policy a controller applied when its inputs
/// went bad (DESIGN.md §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DegradationPolicy {
    /// A dropped sample was replaced by the last good reading.
    HoldLastGood,
    /// A child lost its parent manager and fell back to its local static
    /// cap (granted budget reset to unlimited).
    LocalCapFallback,
    /// A non-finite or negative sensor value was clamped/rejected at the
    /// ingestion boundary.
    ClampNonFinite,
}

impl DegradationPolicy {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            DegradationPolicy::HoldLastGood => "hold_last_good",
            DegradationPolicy::LocalCapFallback => "local_cap_fallback",
            DegradationPolicy::ClampNonFinite => "clamp_non_finite",
        }
    }
}

/// One controller decision, observed at the coordination surface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TelemetryEvent {
    /// A controller moved a server's P-state actuator.
    PStateChange {
        /// Tick of the write.
        tick: u64,
        /// Server whose actuator moved.
        server: usize,
        /// P-state index before the write.
        from: usize,
        /// P-state index after the write.
        to: usize,
        /// Which controller wrote it.
        source: ControllerKind,
    },
    /// The SM retuned an EC's utilization target `r_ref` (the paper's
    /// coordinated actuation channel).
    RRefUpdate {
        /// Tick of the retune.
        tick: u64,
        /// Server whose EC was retuned.
        server: usize,
        /// The new reference utilization.
        r_ref: f64,
    },
    /// A capping level granted a child its dynamic budget share.
    BudgetGrant {
        /// Tick of the grant.
        tick: u64,
        /// The *granting* level (`Enclosure` → grants to servers,
        /// `Group` → grants to enclosures and standalone servers).
        level: BudgetLevel,
        /// Child index in the grantor's child ordering.
        child: usize,
        /// Granted watts.
        watts: f64,
    },
    /// A measurement window exceeded a budget.
    Violation {
        /// Tick the window closed.
        tick: u64,
        /// Violated level.
        level: BudgetLevel,
        /// Window-average power observed (watts).
        observed_watts: f64,
        /// The budget it exceeded (watts).
        cap_watts: f64,
        /// `false`: the *static* cap (the paper's reported metric, in
        /// lockstep with `RunStats`); `true`: the dynamically granted
        /// effective cap.
        effective: bool,
    },
    /// The VMC moved a VM.
    Migration {
        /// Tick of the move.
        tick: u64,
        /// The VM moved.
        vm: usize,
        /// Source server.
        from: usize,
        /// Destination server.
        to: usize,
    },
    /// The VMC revived a server.
    PowerOn {
        /// Tick of the transition.
        tick: u64,
        /// The server powered on.
        server: usize,
    },
    /// The VMC turned a drained server off.
    PowerOff {
        /// Tick of the transition.
        tick: u64,
        /// The server powered off.
        server: usize,
    },
    /// One VMC planning epoch (replaces the old `NPS_DEBUG_VMC` stderr
    /// dump with structured data).
    VmcPlan {
        /// Tick of the planning epoch.
        tick: u64,
        /// Mean of per-VM demand estimates fed to the packer.
        demand_mean: f64,
        /// Max of per-VM demand estimates.
        demand_max: f64,
        /// Servers used by the produced placement.
        used_servers: usize,
        /// Migrations the plan requests.
        migrations: usize,
        /// Servers the plan powers on.
        power_on: usize,
        /// Servers the plan powers off.
        power_off: usize,
        /// Placements forced despite violated buffers.
        forced_placements: usize,
    },
    /// An injected sensor fault fired at a controller's ingestion
    /// boundary.
    SensorFault {
        /// Tick of the faulty reading.
        tick: u64,
        /// The controller whose input was corrupted.
        controller: ControllerKind,
        /// Sensor index within that controller's input vector (server,
        /// enclosure, or child index).
        index: usize,
        /// How the fault manifested.
        fault: SensorFaultKind,
    },
    /// A P-state write was discarded by a jammed actuator.
    ActuatorFault {
        /// Tick of the discarded write.
        tick: u64,
        /// Server whose actuator is jammed.
        server: usize,
        /// The controller whose write was lost.
        source: ControllerKind,
    },
    /// A budget-grant message (GM→EM or EM→SM) was lost in transit; the
    /// child holds its last granted budget.
    MessageLoss {
        /// Tick of the lost grant.
        tick: u64,
        /// The *granting* level whose message was lost.
        level: BudgetLevel,
        /// Child index in the grantor's child ordering.
        child: usize,
    },
    /// A controller epoch was skipped because the controller is offline.
    ControllerOutage {
        /// Tick of the skipped epoch.
        tick: u64,
        /// The offline controller.
        controller: ControllerKind,
        /// Instance index (server index for SMs, enclosure index for EMs,
        /// 0 for the GM).
        index: usize,
    },
    /// A controller applied a graceful-degradation policy.
    Degradation {
        /// Tick of the decision.
        tick: u64,
        /// The degrading controller.
        controller: ControllerKind,
        /// Instance index (same convention as `ControllerOutage`).
        index: usize,
        /// The policy applied.
        policy: DegradationPolicy,
    },
    /// A bus sender re-sent an unacknowledged grant (exponential backoff
    /// expired before the ack arrived).
    GrantRetry {
        /// Tick of the retransmission.
        tick: u64,
        /// The *granting* level whose message is being retried.
        level: BudgetLevel,
        /// Child index in the grantor's child ordering.
        child: usize,
        /// Sequence number of the retried grant.
        seq: u64,
        /// Retransmission attempt (1 = first retry).
        attempt: u32,
    },
    /// A receiver dropped a duplicated grant delivery (same sequence
    /// number as the one already accepted).
    DuplicateDropped {
        /// Tick of the duplicate delivery.
        tick: u64,
        /// The *granting* level of the duplicated message.
        level: BudgetLevel,
        /// Child index in the grantor's child ordering.
        child: usize,
        /// The duplicated sequence number.
        seq: u64,
    },
    /// A receiver rejected a stale grant (sequence number below the one
    /// already accepted — a reordered or late retransmission).
    StaleRejected {
        /// Tick of the stale delivery.
        tick: u64,
        /// The *granting* level of the stale message.
        level: BudgetLevel,
        /// Child index in the grantor's child ordering.
        child: usize,
        /// The rejected (stale) sequence number.
        seq: u64,
        /// The sequence number the receiver has already accepted.
        accepted: u64,
    },
    /// A receiver's budget lease expired without renewal; its granted cap
    /// reverted to the local static cap (`CAP_LOC`).
    LeaseExpired {
        /// Tick of the expiry.
        tick: u64,
        /// The *granting* level whose lease lapsed.
        level: BudgetLevel,
        /// Child index in the grantor's child ordering.
        child: usize,
        /// The sequence number of the lease that lapsed.
        seq: u64,
    },
    /// The runner wrote (or restored) a checkpoint of its full dynamic
    /// state.
    Checkpoint {
        /// Tick the snapshot captures.
        tick: u64,
        /// `true` when restoring from a snapshot, `false` when taking one.
        restored: bool,
    },
    /// The failure detector observed a missed heartbeat from a primary
    /// controller that has a warm standby configured.
    HeartbeatMissed {
        /// Tick of the heartbeat check.
        tick: u64,
        /// The protected controller (EM or GM).
        controller: ControllerKind,
        /// Instance index (enclosure index for EMs, 0 for the GM).
        index: usize,
        /// Consecutive misses so far, including this one.
        missed: u32,
    },
    /// A warm standby was promoted to primary after the miss threshold,
    /// bumping the leadership term.
    FailoverPromoted {
        /// Tick of the promotion.
        tick: u64,
        /// The controller whose standby took over (EM or GM).
        controller: ControllerKind,
        /// Instance index (enclosure index for EMs, 0 for the GM).
        index: usize,
        /// The new leadership term.
        term: u64,
    },
    /// A returning primary was fenced on its stale term and re-integrated
    /// as the new standby.
    StandbyReintegrated {
        /// Tick of the re-integration.
        tick: u64,
        /// The controller whose old primary returned (EM or GM).
        controller: ControllerKind,
        /// Instance index (enclosure index for EMs, 0 for the GM).
        index: usize,
        /// The serving term the returner was fenced against.
        term: u64,
    },
    /// The runtime safety-invariant monitor observed a violation of the
    /// paper's safety contract (see `InvariantKind`). Healthy runs —
    /// including fault-injected ones — never emit this; it flags a
    /// controller bug, not an injected fault.
    InvariantViolated {
        /// Tick of the violation.
        tick: u64,
        /// Which invariant failed.
        invariant: crate::invariants::InvariantKind,
        /// Offending instance (server/enclosure/child index; 0 when the
        /// invariant is group-global).
        index: usize,
    },
}

/// Event type tags for counters and filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// [`TelemetryEvent::PStateChange`].
    PStateChange,
    /// [`TelemetryEvent::RRefUpdate`].
    RRefUpdate,
    /// [`TelemetryEvent::BudgetGrant`].
    BudgetGrant,
    /// [`TelemetryEvent::Violation`].
    Violation,
    /// [`TelemetryEvent::Migration`].
    Migration,
    /// [`TelemetryEvent::PowerOn`].
    PowerOn,
    /// [`TelemetryEvent::PowerOff`].
    PowerOff,
    /// [`TelemetryEvent::VmcPlan`].
    VmcPlan,
    /// [`TelemetryEvent::SensorFault`].
    SensorFault,
    /// [`TelemetryEvent::ActuatorFault`].
    ActuatorFault,
    /// [`TelemetryEvent::MessageLoss`].
    MessageLoss,
    /// [`TelemetryEvent::ControllerOutage`].
    ControllerOutage,
    /// [`TelemetryEvent::Degradation`].
    Degradation,
    /// [`TelemetryEvent::GrantRetry`].
    GrantRetry,
    /// [`TelemetryEvent::DuplicateDropped`].
    DuplicateDropped,
    /// [`TelemetryEvent::StaleRejected`].
    StaleRejected,
    /// [`TelemetryEvent::LeaseExpired`].
    LeaseExpired,
    /// [`TelemetryEvent::Checkpoint`].
    Checkpoint,
    /// [`TelemetryEvent::HeartbeatMissed`].
    HeartbeatMissed,
    /// [`TelemetryEvent::FailoverPromoted`].
    FailoverPromoted,
    /// [`TelemetryEvent::StandbyReintegrated`].
    StandbyReintegrated,
    /// [`TelemetryEvent::InvariantViolated`].
    InvariantViolated,
}

impl EventKind {
    /// All kinds, declaration order (indexes the counter array).
    pub const ALL: [EventKind; 22] = [
        EventKind::PStateChange,
        EventKind::RRefUpdate,
        EventKind::BudgetGrant,
        EventKind::Violation,
        EventKind::Migration,
        EventKind::PowerOn,
        EventKind::PowerOff,
        EventKind::VmcPlan,
        EventKind::SensorFault,
        EventKind::ActuatorFault,
        EventKind::MessageLoss,
        EventKind::ControllerOutage,
        EventKind::Degradation,
        EventKind::GrantRetry,
        EventKind::DuplicateDropped,
        EventKind::StaleRejected,
        EventKind::LeaseExpired,
        EventKind::Checkpoint,
        EventKind::HeartbeatMissed,
        EventKind::FailoverPromoted,
        EventKind::StandbyReintegrated,
        EventKind::InvariantViolated,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::PStateChange => "pstate_change",
            EventKind::RRefUpdate => "r_ref_update",
            EventKind::BudgetGrant => "budget_grant",
            EventKind::Violation => "violation",
            EventKind::Migration => "migration",
            EventKind::PowerOn => "power_on",
            EventKind::PowerOff => "power_off",
            EventKind::VmcPlan => "vmc_plan",
            EventKind::SensorFault => "sensor_fault",
            EventKind::ActuatorFault => "actuator_fault",
            EventKind::MessageLoss => "message_loss",
            EventKind::ControllerOutage => "controller_outage",
            EventKind::Degradation => "degradation",
            EventKind::GrantRetry => "grant_retry",
            EventKind::DuplicateDropped => "duplicate_dropped",
            EventKind::StaleRejected => "stale_rejected",
            EventKind::LeaseExpired => "lease_expired",
            EventKind::Checkpoint => "checkpoint",
            EventKind::HeartbeatMissed => "heartbeat_missed",
            EventKind::FailoverPromoted => "failover_promoted",
            EventKind::StandbyReintegrated => "standby_reintegrated",
            EventKind::InvariantViolated => "invariant_violated",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

impl TelemetryEvent {
    /// The event's type tag.
    pub fn kind(&self) -> EventKind {
        match self {
            TelemetryEvent::PStateChange { .. } => EventKind::PStateChange,
            TelemetryEvent::RRefUpdate { .. } => EventKind::RRefUpdate,
            TelemetryEvent::BudgetGrant { .. } => EventKind::BudgetGrant,
            TelemetryEvent::Violation { .. } => EventKind::Violation,
            TelemetryEvent::Migration { .. } => EventKind::Migration,
            TelemetryEvent::PowerOn { .. } => EventKind::PowerOn,
            TelemetryEvent::PowerOff { .. } => EventKind::PowerOff,
            TelemetryEvent::VmcPlan { .. } => EventKind::VmcPlan,
            TelemetryEvent::SensorFault { .. } => EventKind::SensorFault,
            TelemetryEvent::ActuatorFault { .. } => EventKind::ActuatorFault,
            TelemetryEvent::MessageLoss { .. } => EventKind::MessageLoss,
            TelemetryEvent::ControllerOutage { .. } => EventKind::ControllerOutage,
            TelemetryEvent::Degradation { .. } => EventKind::Degradation,
            TelemetryEvent::GrantRetry { .. } => EventKind::GrantRetry,
            TelemetryEvent::DuplicateDropped { .. } => EventKind::DuplicateDropped,
            TelemetryEvent::StaleRejected { .. } => EventKind::StaleRejected,
            TelemetryEvent::LeaseExpired { .. } => EventKind::LeaseExpired,
            TelemetryEvent::Checkpoint { .. } => EventKind::Checkpoint,
            TelemetryEvent::HeartbeatMissed { .. } => EventKind::HeartbeatMissed,
            TelemetryEvent::FailoverPromoted { .. } => EventKind::FailoverPromoted,
            TelemetryEvent::StandbyReintegrated { .. } => EventKind::StandbyReintegrated,
            TelemetryEvent::InvariantViolated { .. } => EventKind::InvariantViolated,
        }
    }

    /// Tick the event happened at.
    pub fn tick(&self) -> u64 {
        match self {
            TelemetryEvent::PStateChange { tick, .. }
            | TelemetryEvent::RRefUpdate { tick, .. }
            | TelemetryEvent::BudgetGrant { tick, .. }
            | TelemetryEvent::Violation { tick, .. }
            | TelemetryEvent::Migration { tick, .. }
            | TelemetryEvent::PowerOn { tick, .. }
            | TelemetryEvent::PowerOff { tick, .. }
            | TelemetryEvent::VmcPlan { tick, .. }
            | TelemetryEvent::SensorFault { tick, .. }
            | TelemetryEvent::ActuatorFault { tick, .. }
            | TelemetryEvent::MessageLoss { tick, .. }
            | TelemetryEvent::ControllerOutage { tick, .. }
            | TelemetryEvent::Degradation { tick, .. }
            | TelemetryEvent::GrantRetry { tick, .. }
            | TelemetryEvent::DuplicateDropped { tick, .. }
            | TelemetryEvent::StaleRejected { tick, .. }
            | TelemetryEvent::LeaseExpired { tick, .. }
            | TelemetryEvent::Checkpoint { tick, .. }
            | TelemetryEvent::HeartbeatMissed { tick, .. }
            | TelemetryEvent::FailoverPromoted { tick, .. }
            | TelemetryEvent::StandbyReintegrated { tick, .. }
            | TelemetryEvent::InvariantViolated { tick, .. } => *tick,
        }
    }

    /// The controller responsible for the event.
    pub fn source(&self) -> ControllerKind {
        match self {
            TelemetryEvent::PStateChange { source, .. } => *source,
            TelemetryEvent::RRefUpdate { .. } => ControllerKind::Sm,
            TelemetryEvent::BudgetGrant {
                level: BudgetLevel::Enclosure,
                ..
            } => ControllerKind::Em,
            TelemetryEvent::BudgetGrant { .. } => ControllerKind::Gm,
            TelemetryEvent::Violation { level, .. } => match level {
                BudgetLevel::Server => ControllerKind::Sm,
                BudgetLevel::Enclosure => ControllerKind::Em,
                BudgetLevel::Group => ControllerKind::Gm,
            },
            TelemetryEvent::Migration { .. }
            | TelemetryEvent::PowerOn { .. }
            | TelemetryEvent::PowerOff { .. }
            | TelemetryEvent::VmcPlan { .. } => ControllerKind::Vmc,
            TelemetryEvent::SensorFault { controller, .. }
            | TelemetryEvent::ControllerOutage { controller, .. }
            | TelemetryEvent::Degradation { controller, .. } => *controller,
            TelemetryEvent::ActuatorFault { source, .. } => *source,
            TelemetryEvent::MessageLoss {
                level: BudgetLevel::Enclosure,
                ..
            }
            | TelemetryEvent::GrantRetry {
                level: BudgetLevel::Enclosure,
                ..
            }
            | TelemetryEvent::DuplicateDropped {
                level: BudgetLevel::Enclosure,
                ..
            }
            | TelemetryEvent::StaleRejected {
                level: BudgetLevel::Enclosure,
                ..
            }
            | TelemetryEvent::LeaseExpired {
                level: BudgetLevel::Enclosure,
                ..
            } => ControllerKind::Em,
            TelemetryEvent::MessageLoss { .. }
            | TelemetryEvent::GrantRetry { .. }
            | TelemetryEvent::DuplicateDropped { .. }
            | TelemetryEvent::StaleRejected { .. }
            | TelemetryEvent::LeaseExpired { .. } => ControllerKind::Gm,
            // Checkpoints capture the whole coordination stack; the GM is
            // the hierarchy root, so attribute them there.
            TelemetryEvent::Checkpoint { .. } => ControllerKind::Gm,
            TelemetryEvent::HeartbeatMissed { controller, .. }
            | TelemetryEvent::FailoverPromoted { controller, .. }
            | TelemetryEvent::StandbyReintegrated { controller, .. } => *controller,
            // The invariant monitor audits the whole tree from the root.
            TelemetryEvent::InvariantViolated { .. } => ControllerKind::Gm,
        }
    }
}

/// A sink for controller telemetry.
///
/// Implementations must keep `record` cheap: it runs inside the
/// controller epochs of the hot simulation loop.
pub trait Recorder: fmt::Debug {
    /// Accepts one event.
    fn record(&mut self, event: TelemetryEvent);

    /// Whether events are actually retained. Emitters may (but need not)
    /// skip expensive event construction when this is `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Downcasting hook so callers can recover a concrete recorder from a
    /// `Box<dyn Recorder>` (e.g. [`RingRecorder::to_json`]).
    fn as_any(&self) -> &dyn std::any::Any;
}

/// Discards every event. Exists so telemetry plumbing can stay installed
/// while costing (nearly) nothing — one virtual call with an empty body.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn record(&mut self, _event: TelemetryEvent) {}

    fn enabled(&self) -> bool {
        false
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Bounded in-memory recorder: keeps the most recent `capacity` events in
/// a ring, counts *all* events per type (counts are exact even after the
/// ring wraps), and exports to JSON.
#[derive(Debug, Clone)]
pub struct RingRecorder {
    capacity: usize,
    events: VecDeque<TelemetryEvent>,
    counts: [u64; EventKind::ALL.len()],
    dropped: u64,
}

impl RingRecorder {
    /// A recorder retaining at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            events: VecDeque::with_capacity(capacity.min(4096)),
            counts: [0; EventKind::ALL.len()],
            dropped: 0,
        }
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained (oldest first).
    pub fn events(&self) -> impl Iterator<Item = &TelemetryEvent> {
        self.events.iter()
    }

    /// Number of retained events (≤ capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events recorded (retained + dropped).
    pub fn total_recorded(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Exact count of events of `kind`, including evicted ones.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind.index()]
    }

    /// The exportable log (owned snapshot).
    pub fn export(&self) -> TelemetryLog {
        TelemetryLog {
            capacity: self.capacity,
            dropped: self.dropped,
            counts: EventKind::ALL
                .iter()
                .map(|&k| KindCount {
                    kind: k,
                    count: self.count(k),
                })
                .collect(),
            events: self.events.iter().cloned().collect(),
        }
    }

    /// The log as a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.export()).expect("telemetry log serialization is infallible")
    }

    /// Summarizes the recorded run.
    pub fn summary(&self) -> TelemetrySummary {
        TelemetrySummary::from_log(&self.export())
    }
}

impl Recorder for RingRecorder {
    fn record(&mut self, event: TelemetryEvent) {
        self.counts[event.kind().index()] += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Exact per-kind event count (JSON export entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindCount {
    /// The event type.
    pub kind: EventKind,
    /// How many were recorded (including evicted ones).
    pub count: u64,
}

/// A serializable snapshot of a [`RingRecorder`]: exact counters plus the
/// retained event window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryLog {
    /// The ring bound the recorder ran with.
    pub capacity: usize,
    /// Events evicted by that bound.
    pub dropped: u64,
    /// Exact per-type counts over the whole run.
    pub counts: Vec<KindCount>,
    /// Retained events, oldest first.
    pub events: Vec<TelemetryEvent>,
}

impl TelemetryLog {
    /// Parses a log previously produced by [`RingRecorder::to_json`].
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Exact count of `kind` over the whole run.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts
            .iter()
            .find(|c| c.kind == kind)
            .map_or(0, |c| c.count)
    }

    /// Retained events of one kind, oldest first.
    pub fn events_of(&self, kind: EventKind) -> impl Iterator<Item = &TelemetryEvent> {
        self.events.iter().filter(move |e| e.kind() == kind)
    }

    /// Ticks at which `level`'s *static* budget was violated (from the
    /// retained window).
    pub fn violation_timeline(&self, level: BudgetLevel) -> Vec<u64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::Violation {
                    tick,
                    level: l,
                    effective: false,
                    ..
                } if *l == level => Some(*tick),
                _ => None,
            })
            .collect()
    }

    /// Retained static-budget violations at `level`, including evicted
    /// ones *not* — use [`TelemetryLog::count`] for exact totals.
    pub fn retained_violations(&self, level: BudgetLevel) -> usize {
        self.violation_timeline(level).len()
    }

    /// The budget-flow trace: every retained grant as
    /// `(tick, granting level, child, watts)`, oldest first.
    pub fn budget_flow(&self) -> Vec<(u64, BudgetLevel, usize, f64)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::BudgetGrant {
                    tick,
                    level,
                    child,
                    watts,
                } => Some((*tick, *level, *child, *watts)),
                _ => None,
            })
            .collect()
    }
}

/// Per-controller activity over one recorded run, for reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySummary {
    /// Total events recorded (exact).
    pub total: u64,
    /// Events evicted by the ring bound.
    pub dropped: u64,
    /// Exact per-type counts.
    pub by_kind: Vec<KindCount>,
    /// Events attributed to each controller (from the retained window).
    pub by_controller: Vec<(ControllerKind, u64)>,
    /// Retained static-violation ticks per level, innermost first.
    pub violation_ticks: Vec<(BudgetLevel, Vec<u64>)>,
    /// Total watts granted per level (retained window).
    pub granted_watts: Vec<(BudgetLevel, f64)>,
    /// Ticks spanned by the retained window (first, last).
    pub window: Option<(u64, u64)>,
}

impl TelemetrySummary {
    /// Builds the summary from an exported log.
    pub fn from_log(log: &TelemetryLog) -> Self {
        let mut by_controller: Vec<(ControllerKind, u64)> =
            ControllerKind::ALL.iter().map(|&c| (c, 0)).collect();
        for e in &log.events {
            let src = e.source();
            if let Some(slot) = by_controller.iter_mut().find(|(c, _)| *c == src) {
                slot.1 += 1;
            }
        }
        let violation_ticks = BudgetLevel::ALL
            .iter()
            .map(|&l| (l, log.violation_timeline(l)))
            .collect();
        let mut granted_watts: Vec<(BudgetLevel, f64)> =
            BudgetLevel::ALL.iter().map(|&l| (l, 0.0)).collect();
        for (_, level, _, watts) in log.budget_flow() {
            if let Some(slot) = granted_watts.iter_mut().find(|(l, _)| *l == level) {
                slot.1 += watts;
            }
        }
        let window = match (log.events.first(), log.events.last()) {
            (Some(first), Some(last)) => Some((first.tick(), last.tick())),
            _ => None,
        };
        TelemetrySummary {
            total: log.counts.iter().map(|c| c.count).sum(),
            dropped: log.dropped,
            by_kind: log.counts.clone(),
            by_controller,
            violation_ticks,
            granted_watts,
            window,
        }
    }
}

impl fmt::Display for TelemetrySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "telemetry: {} events ({} dropped by ring bound)",
            self.total, self.dropped
        )?;
        if let Some((first, last)) = self.window {
            writeln!(f, "  retained window: ticks {first}..={last}")?;
        }
        write!(f, "  by kind:")?;
        for c in &self.by_kind {
            if c.count > 0 {
                write!(f, " {}={}", c.kind.label(), c.count)?;
            }
        }
        writeln!(f)?;
        write!(f, "  by controller (retained):")?;
        for (c, n) in &self.by_controller {
            if *n > 0 {
                write!(f, " {}={}", c.label(), n)?;
            }
        }
        writeln!(f)?;
        for (level, ticks) in &self.violation_ticks {
            if !ticks.is_empty() {
                writeln!(
                    f,
                    "  {} static violations (retained): {} (first t={}, last t={})",
                    level.label(),
                    ticks.len(),
                    ticks[0],
                    ticks[ticks.len() - 1]
                )?;
            }
        }
        for (level, watts) in &self.granted_watts {
            if *watts > 0.0 {
                writeln!(
                    f,
                    "  {} grants (retained): {:.1} W total",
                    level.label(),
                    watts
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(tick: u64) -> TelemetryEvent {
        TelemetryEvent::Violation {
            tick,
            level: BudgetLevel::Server,
            observed_watts: 300.0,
            cap_watts: 250.0,
            effective: false,
        }
    }

    #[test]
    fn ring_respects_bound_and_counts_everything() {
        let mut r = RingRecorder::new(4);
        for t in 0..10 {
            r.record(violation(t));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.capacity(), 4);
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.count(EventKind::Violation), 10);
        assert_eq!(r.total_recorded(), 10);
        // The retained window holds the most recent events.
        let ticks: Vec<u64> = r.events().map(TelemetryEvent::tick).collect();
        assert_eq!(ticks, vec![6, 7, 8, 9]);
    }

    #[test]
    fn json_roundtrip_preserves_log() {
        let mut r = RingRecorder::new(16);
        r.record(violation(5));
        r.record(TelemetryEvent::PStateChange {
            tick: 6,
            server: 3,
            from: 0,
            to: 2,
            source: ControllerKind::Ec,
        });
        r.record(TelemetryEvent::BudgetGrant {
            tick: 25,
            level: BudgetLevel::Enclosure,
            child: 1,
            watts: 212.5,
        });
        r.record(TelemetryEvent::VmcPlan {
            tick: 500,
            demand_mean: 0.31,
            demand_max: 0.9,
            used_servers: 12,
            migrations: 4,
            power_on: 0,
            power_off: 3,
            forced_placements: 0,
        });
        let json = r.to_json();
        let back = TelemetryLog::from_json(&json).unwrap();
        assert_eq!(back, r.export());
        assert_eq!(back.count(EventKind::Violation), 1);
        assert_eq!(back.violation_timeline(BudgetLevel::Server), vec![5]);
        assert_eq!(
            back.budget_flow(),
            vec![(25, BudgetLevel::Enclosure, 1, 212.5)]
        );
    }

    #[test]
    fn noop_recorder_is_disabled_and_silent() {
        let mut n = NoopRecorder;
        assert!(!n.enabled());
        n.record(violation(1));
        assert!(n.as_any().downcast_ref::<NoopRecorder>().is_some());
    }

    #[test]
    fn summary_attributes_events_to_controllers() {
        let mut r = RingRecorder::new(64);
        r.record(violation(5));
        r.record(TelemetryEvent::Migration {
            tick: 500,
            vm: 2,
            from: 0,
            to: 1,
        });
        r.record(TelemetryEvent::RRefUpdate {
            tick: 10,
            server: 0,
            r_ref: 0.71,
        });
        let s = r.summary();
        assert_eq!(s.total, 3);
        let get = |c: ControllerKind| {
            s.by_controller
                .iter()
                .find(|(k, _)| *k == c)
                .map(|(_, n)| *n)
                .unwrap()
        };
        // Violation at server level and the r_ref retune are SM activity.
        assert_eq!(get(ControllerKind::Sm), 2);
        assert_eq!(get(ControllerKind::Vmc), 1);
        let text = s.to_string();
        assert!(text.contains("3 events"));
        assert!(text.contains("SM=2"));
    }

    #[test]
    fn capacity_minimum_is_one() {
        let mut r = RingRecorder::new(0);
        r.record(violation(1));
        r.record(violation(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.total_recorded(), 2);
    }
}

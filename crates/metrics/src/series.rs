//! Bounded time-series recording.
//!
//! Long experiments produce millions of per-tick samples; plotting and
//! post-hoc analysis need trajectories, not firehoses. [`TimeSeries`] is
//! an RRD-style recorder: when full it halves its resolution by averaging
//! adjacent buckets, so memory stays bounded while the full time range is
//! preserved.

use serde::{Deserialize, Serialize};

/// A bounded, auto-decimating time series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    max_points: usize,
    /// Ticks covered per stored point (doubles on each compaction).
    stride: u64,
    /// First tick of the series.
    start_tick: u64,
    points: Vec<f64>,
    /// Accumulator for the in-progress bucket.
    pending_sum: f64,
    pending_count: u64,
}

impl TimeSeries {
    /// Creates a series keeping at most `max_points` stored points
    /// (minimum 2).
    pub fn new(name: impl Into<String>, max_points: usize) -> Self {
        Self {
            name: name.into(),
            max_points: max_points.max(2),
            stride: 1,
            start_tick: 0,
            points: Vec::new(),
            pending_sum: 0.0,
            pending_count: 0,
        }
    }

    /// Series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends one per-tick sample. Samples are assumed consecutive; the
    /// first call sets the series origin.
    pub fn push(&mut self, tick: u64, value: f64) {
        if self.points.is_empty() && self.pending_count == 0 {
            self.start_tick = tick;
        }
        self.pending_sum += value;
        self.pending_count += 1;
        if self.pending_count >= self.stride {
            self.points
                .push(self.pending_sum / self.pending_count as f64);
            self.pending_sum = 0.0;
            self.pending_count = 0;
            if self.points.len() >= self.max_points {
                self.compact();
            }
        }
    }

    /// Halves resolution by averaging adjacent points.
    fn compact(&mut self) {
        let mut out = Vec::with_capacity(self.points.len() / 2 + 1);
        for pair in self.points.chunks(2) {
            out.push(pair.iter().sum::<f64>() / pair.len() as f64);
        }
        self.points = out;
        self.stride *= 2;
    }

    /// Ticks represented by each stored point.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// The stored `(tick, mean value)` points, oldest first.
    pub fn points(&self) -> Vec<(u64, f64)> {
        self.points
            .iter()
            .enumerate()
            .map(|(i, &v)| (self.start_tick + i as u64 * self.stride, v))
            .collect()
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of the stored points (equals the mean of all pushed samples
    /// up to bucket-boundary effects).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().sum::<f64>() / self.points.len() as f64
        }
    }

    /// Minimum and maximum stored point values.
    pub fn min_max(&self) -> (f64, f64) {
        self.points
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_until_capacity_then_compacts() {
        let mut ts = TimeSeries::new("power", 4);
        for t in 0..4 {
            ts.push(t, t as f64);
        }
        // Hit capacity → compacted to 2 points of stride 2.
        assert_eq!(ts.stride(), 2);
        assert_eq!(ts.len(), 2);
        let pts = ts.points();
        assert_eq!(pts[0], (0, 0.5));
        assert_eq!(pts[1], (2, 2.5));
    }

    #[test]
    fn memory_stays_bounded_for_long_runs() {
        let mut ts = TimeSeries::new("power", 64);
        for t in 0..1_000_000u64 {
            ts.push(t, 1.0);
        }
        assert!(ts.len() <= 64);
        assert!(ts.stride() >= 1_000_000 / 64);
        assert!((ts.mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_is_preserved_through_compaction() {
        let mut ts = TimeSeries::new("ramp", 8);
        let n = 1024u64;
        for t in 0..n {
            ts.push(t, t as f64);
        }
        let true_mean = (n - 1) as f64 / 2.0;
        assert!((ts.mean() - true_mean).abs() / true_mean < 0.02);
    }

    #[test]
    fn min_max_track_envelope() {
        let mut ts = TimeSeries::new("wave", 64);
        for t in 0..16 {
            ts.push(t, if t % 2 == 0 { 0.0 } else { 10.0 });
        }
        let (lo, hi) = ts.min_max();
        assert_eq!((lo, hi), (0.0, 10.0));
        // After compaction the alternating wave averages out — min/max
        // reflect stored (bucketed) values, not raw samples.
        let mut dense = TimeSeries::new("wave", 4);
        for t in 0..16 {
            dense.push(t, if t % 2 == 0 { 0.0 } else { 10.0 });
        }
        let (lo, hi) = dense.min_max();
        assert!(lo <= hi && lo >= 0.0 && hi <= 10.0);
    }

    #[test]
    fn origin_tick_respected() {
        let mut ts = TimeSeries::new("late", 8);
        ts.push(100, 5.0);
        ts.push(101, 7.0);
        let pts = ts.points();
        assert_eq!(pts[0], (100, 5.0));
        assert_eq!(pts[1], (101, 7.0));
    }

    #[test]
    fn serde_roundtrip() {
        let mut ts = TimeSeries::new("s", 4);
        ts.push(0, 1.0);
        let json = serde_json::to_string(&ts).unwrap();
        let back: TimeSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(ts, back);
    }
}

//! Aggregate counters for fault injection and graceful degradation.
//!
//! [`RunStats`](crate::RunStats) keeps the paper's reported metrics;
//! fault accounting lives here so fault-free result files stay
//! byte-compatible with earlier builds. The experiment runner increments
//! these counters alongside the corresponding
//! [`TelemetryEvent`](crate::TelemetryEvent) emissions, so they are exact
//! even when no recorder (or a ring-bounded one) is installed.

use serde::{Deserialize, Serialize};

/// Exact counts of injected faults and degradation decisions over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultStats {
    /// Sensor readings perturbed by Gaussian noise.
    pub sensor_noise: u64,
    /// Sensor readings served from a frozen (stuck) sensor.
    pub sensor_stuck: u64,
    /// Sensor samples dropped entirely.
    pub sensor_dropped: u64,
    /// P-state writes discarded by jammed actuators.
    pub actuator_blocked: u64,
    /// Budget-grant messages lost on the GM→EM→SM channel.
    pub messages_lost: u64,
    /// Controller epochs skipped because the controller was offline.
    pub outage_epochs: u64,
    /// Graceful-degradation decisions taken (hold-last-good, local-cap
    /// fallback).
    pub degradations: u64,
    /// Non-finite or negative sensor values clamped at the ingestion
    /// boundary (always-on hardening; nonzero even without a fault plan
    /// if a model misbehaves).
    pub clamped_inputs: u64,
    /// Unacked budget grants re-sent by the control-plane bus after
    /// backoff.
    pub grant_retries: u64,
    /// Duplicated grant deliveries dropped by receivers (same sequence
    /// number as the accepted one).
    pub duplicates_dropped: u64,
    /// Stale grant deliveries rejected by receivers (sequence number
    /// below the accepted one).
    pub stale_rejected: u64,
    /// Budget leases that expired without renewal, reverting the child to
    /// its local static cap.
    pub leases_expired: u64,
}

impl FaultStats {
    /// Total injected faults (excluding degradation bookkeeping).
    pub fn total_faults(&self) -> u64 {
        self.sensor_noise
            + self.sensor_stuck
            + self.sensor_dropped
            + self.actuator_blocked
            + self.messages_lost
            + self.outage_epochs
    }

    /// True when the run saw no faults and no degradation at all.
    pub fn is_clean(&self) -> bool {
        *self == FaultStats::default()
    }

    /// Element-wise sum, for aggregating across runs.
    pub fn merge(&mut self, other: &FaultStats) {
        self.sensor_noise += other.sensor_noise;
        self.sensor_stuck += other.sensor_stuck;
        self.sensor_dropped += other.sensor_dropped;
        self.actuator_blocked += other.actuator_blocked;
        self.messages_lost += other.messages_lost;
        self.outage_epochs += other.outage_epochs;
        self.degradations += other.degradations;
        self.clamped_inputs += other.clamped_inputs;
        self.grant_retries += other.grant_retries;
        self.duplicates_dropped += other.duplicates_dropped;
        self.stale_rejected += other.stale_rejected;
        self.leases_expired += other.leases_expired;
    }
}

impl std::fmt::Display for FaultStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "faults: noise={} stuck={} dropped={} blocked_writes={} lost_msgs={} \
             outage_epochs={} degradations={} clamped={} retries={} dups={} stale={} \
             lease_exp={}",
            self.sensor_noise,
            self.sensor_stuck,
            self.sensor_dropped,
            self.actuator_blocked,
            self.messages_lost,
            self.outage_epochs,
            self.degradations,
            self.clamped_inputs,
            self.grant_retries,
            self.duplicates_dropped,
            self.stale_rejected,
            self.leases_expired,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_clean() {
        let s = FaultStats::default();
        assert!(s.is_clean());
        assert_eq!(s.total_faults(), 0);
    }

    #[test]
    fn merge_sums_every_field() {
        let mut a = FaultStats {
            sensor_noise: 1,
            sensor_stuck: 2,
            sensor_dropped: 3,
            actuator_blocked: 4,
            messages_lost: 5,
            outage_epochs: 6,
            degradations: 7,
            clamped_inputs: 8,
            grant_retries: 9,
            duplicates_dropped: 10,
            stale_rejected: 11,
            leases_expired: 12,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.sensor_noise, 2);
        assert_eq!(a.clamped_inputs, 16);
        assert_eq!(a.total_faults(), 2 * b.total_faults());
        assert!(!a.is_clean());
    }

    #[test]
    fn json_roundtrip() {
        let s = FaultStats {
            messages_lost: 9,
            ..FaultStats::default()
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: FaultStats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        let text = s.to_string();
        assert!(text.contains("lost_msgs=9"));
    }
}

//! Metrics for power-management experiments.
//!
//! The paper reports three families of metrics (§4.2): *"aggregate power
//! savings, performance loss, and power budget violations at the server,
//! enclosure and group levels"*, all normalized against a baseline *"where
//! no controllers for power management are turned on"*. This crate
//! provides exactly those: [`ViolationCounter`]s per level, the raw
//! [`RunStats`] a run produces, the baseline-normalized [`Comparison`],
//! and a plain-text [`Table`] builder for the figure-regeneration
//! binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compare;
mod faults;
pub mod invariants;
mod report;
mod series;
pub mod telemetry;
mod violations;

pub use compare::{Comparison, RunStats};
pub use faults::FaultStats;
pub use invariants::{InvariantKind, InvariantStats};
pub use report::Table;
pub use series::TimeSeries;
pub use telemetry::{
    BudgetLevel, ControllerKind, DegradationPolicy, EventKind, NoopRecorder, Recorder,
    RingRecorder, SensorFaultKind, TelemetryEvent, TelemetryLog, TelemetrySummary,
};
pub use violations::{LevelViolations, ViolationCounter};

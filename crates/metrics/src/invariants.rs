//! Runtime safety-invariant monitor: the paper's safety contract as a
//! per-tick checker.
//!
//! The coordination architecture (paper §3) is sold on a safety story:
//! whatever the controllers negotiate, power never exceeds the
//! protection limits, servers always retain a reachable operating point,
//! and budgets are conserved down the GM→EM→SM tree. This module defines
//! the *catalog* of those invariants and the counter block the runner
//! fills in; the checks themselves live in the runner (they need the
//! live controller state) and are side-effect-free observations — the
//! monitor never steers the system, it only reports.
//!
//! Violations are surfaced two ways, mirroring fault accounting: an
//! `InvariantViolated` telemetry event per incident, and the exact
//! [`InvariantStats`] counters (independent of any recorder). A healthy
//! run — including every fault-injected golden scenario — reports zero
//! violations; a nonzero counter means a controller bug, not an injected
//! fault.

use serde::{Deserialize, Serialize};

/// One invariant in the safety catalog (see `DESIGN.md` §12 for the
/// precise statements and their rationale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InvariantKind {
    /// A powered-on server whose P-state actuator is not jammed never
    /// runs at a P-state the electrical (fuse-level) cap would clamp.
    ElectricalCap,
    /// Every server's static local cap admits its deepest P-state at
    /// full utilization — the floor operating point is always reachable.
    ServerCapFloor,
    /// Leases never strand a grant: with leases enabled, an unleased
    /// child holds no finite grant (its cap is the static `CAP_LOC` /
    /// `CAP_ENC`), and every finite grant carries an unexpired lease.
    LeaseBound,
    /// Budget conservation at every reallocation: the children's grants
    /// sum to at most the parent's effective cap (plus float tolerance).
    BudgetConservation,
}

impl InvariantKind {
    /// Every invariant in the catalog, in declaration order.
    pub const ALL: [InvariantKind; 4] = [
        InvariantKind::ElectricalCap,
        InvariantKind::ServerCapFloor,
        InvariantKind::LeaseBound,
        InvariantKind::BudgetConservation,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            InvariantKind::ElectricalCap => "electrical-cap",
            InvariantKind::ServerCapFloor => "server-cap-floor",
            InvariantKind::LeaseBound => "lease-bound",
            InvariantKind::BudgetConservation => "budget-conservation",
        }
    }
}

/// Exact counts of invariant checks and violations over a run, in the
/// style of [`FaultStats`](crate::FaultStats): the runner increments
/// these alongside the matching telemetry events, so they are exact even
/// when no recorder is installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct InvariantStats {
    /// Individual invariant evaluations performed (all kinds).
    pub checks: u64,
    /// [`InvariantKind::ElectricalCap`] violations.
    pub electrical_cap: u64,
    /// [`InvariantKind::ServerCapFloor`] violations.
    pub server_cap_floor: u64,
    /// [`InvariantKind::LeaseBound`] violations.
    pub lease_bound: u64,
    /// [`InvariantKind::BudgetConservation`] violations.
    pub budget_conservation: u64,
}

impl InvariantStats {
    /// Records one violation of `kind` (the `checks` counter is bumped
    /// separately, per evaluation).
    pub fn record(&mut self, kind: InvariantKind) {
        match kind {
            InvariantKind::ElectricalCap => self.electrical_cap += 1,
            InvariantKind::ServerCapFloor => self.server_cap_floor += 1,
            InvariantKind::LeaseBound => self.lease_bound += 1,
            InvariantKind::BudgetConservation => self.budget_conservation += 1,
        }
    }

    /// Violations across every kind.
    pub fn total_violations(&self) -> u64 {
        self.electrical_cap + self.server_cap_floor + self.lease_bound + self.budget_conservation
    }

    /// True when checks ran and none failed. (Also true for a run with
    /// the monitor disabled — pair with `checks > 0` to assert coverage.)
    pub fn is_clean(&self) -> bool {
        self.total_violations() == 0
    }

    /// Element-wise sum, for aggregating across runs.
    pub fn merge(&mut self, other: &InvariantStats) {
        self.checks += other.checks;
        self.electrical_cap += other.electrical_cap;
        self.server_cap_floor += other.server_cap_floor;
        self.lease_bound += other.lease_bound;
        self.budget_conservation += other.budget_conservation;
    }
}

impl std::fmt::Display for InvariantStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} checks, {} violations (electrical-cap {}, server-cap-floor {}, \
             lease-bound {}, budget-conservation {})",
            self.checks,
            self.total_violations(),
            self.electrical_cap,
            self.server_cap_floor,
            self.lease_bound,
            self.budget_conservation,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_routes_to_the_right_counter() {
        let mut s = InvariantStats::default();
        for kind in InvariantKind::ALL {
            s.record(kind);
        }
        assert_eq!(s.electrical_cap, 1);
        assert_eq!(s.server_cap_floor, 1);
        assert_eq!(s.lease_bound, 1);
        assert_eq!(s.budget_conservation, 1);
        assert_eq!(s.total_violations(), 4);
        assert!(!s.is_clean());
    }

    #[test]
    fn clean_is_clean_even_with_checks() {
        let s = InvariantStats {
            checks: 1_000,
            ..InvariantStats::default()
        };
        assert!(s.is_clean());
        assert_eq!(s.total_violations(), 0);
    }

    #[test]
    fn merge_sums_elementwise() {
        let mut a = InvariantStats {
            checks: 10,
            lease_bound: 1,
            ..InvariantStats::default()
        };
        let b = InvariantStats {
            checks: 5,
            electrical_cap: 2,
            ..InvariantStats::default()
        };
        a.merge(&b);
        assert_eq!(a.checks, 15);
        assert_eq!(a.electrical_cap, 2);
        assert_eq!(a.lease_bound, 1);
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = InvariantKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), InvariantKind::ALL.len());
    }

    #[test]
    fn stats_roundtrip_through_json() {
        let s = InvariantStats {
            checks: 42,
            budget_conservation: 3,
            ..InvariantStats::default()
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: InvariantStats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}

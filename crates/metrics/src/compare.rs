//! Raw per-run statistics and baseline-normalized comparisons.

use serde::{Deserialize, Serialize};

use crate::violations::LevelViolations;

/// Raw outputs of one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Total energy consumed by the group (W·ticks).
    pub energy: f64,
    /// Total useful work delivered across all VMs (capacity·ticks).
    pub delivered_work: f64,
    /// Total work demanded across all VMs (capacity·ticks).
    pub demanded_work: f64,
    /// Violation counters per capping level.
    pub violations: LevelViolations,
    /// Same-tick conflicting P-state writes (the "power struggle"
    /// signature; 0 under the coordinated architecture).
    pub pstate_conflicts: u64,
    /// VM migrations performed.
    pub migrations: u64,
    /// Thermal failover events.
    pub failovers: usize,
    /// Mean queueing-latency proxy across powered-on servers
    /// (`1/(1 − util)`, capped): a first-order delay signal for
    /// energy-delay tradeoffs (paper §6 extension (6)). 1.0 = idle fleet.
    pub mean_latency_proxy: f64,
    /// Simulated ticks.
    pub ticks: u64,
}

impl RunStats {
    /// Mean group power over the run, watts.
    pub fn mean_power(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.energy / self.ticks as f64
        }
    }

    /// Fraction of demanded work that was delivered in this run alone
    /// (not baseline-normalized).
    pub fn delivery_ratio(&self) -> f64 {
        if self.demanded_work <= 0.0 {
            1.0
        } else {
            self.delivered_work / self.demanded_work
        }
    }
}

/// A run normalized against the no-controller baseline — the form in
/// which the paper reports every result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Power saved relative to baseline energy, in percent
    /// (`100·(1 − E_run/E_base)`).
    pub power_savings_pct: f64,
    /// Performance lost relative to baseline delivered work, in percent
    /// (`100·(1 − W_run/W_base)`).
    pub perf_loss_pct: f64,
    /// Latency stretch relative to baseline (`run latency proxy /
    /// baseline latency proxy`); > 1 means consolidation/capping made
    /// servers busier.
    pub latency_stretch: f64,
    /// Violation percentages per level (GM, EM, SM).
    pub violations_gm_pct: f64,
    /// See [`Comparison::violations_gm_pct`].
    pub violations_em_pct: f64,
    /// See [`Comparison::violations_gm_pct`].
    pub violations_sm_pct: f64,
    /// The run's raw stats.
    pub run: RunStats,
}

impl Comparison {
    /// Normalizes `run` against `baseline`.
    pub fn against_baseline(run: RunStats, baseline: &RunStats) -> Self {
        let power_savings_pct = if baseline.energy > 0.0 {
            100.0 * (1.0 - run.energy / baseline.energy)
        } else {
            0.0
        };
        let perf_loss_pct = if baseline.delivered_work > 0.0 {
            100.0 * (1.0 - run.delivered_work / baseline.delivered_work)
        } else {
            0.0
        };
        let latency_stretch = if baseline.mean_latency_proxy > 0.0 {
            run.mean_latency_proxy / baseline.mean_latency_proxy
        } else {
            1.0
        };
        Self {
            power_savings_pct,
            perf_loss_pct,
            latency_stretch,
            violations_gm_pct: run.violations.group.percent(),
            violations_em_pct: run.violations.enclosure.percent(),
            violations_sm_pct: run.violations.server.percent(),
            run,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(energy: f64, delivered: f64) -> RunStats {
        RunStats {
            energy,
            delivered_work: delivered,
            demanded_work: delivered,
            violations: LevelViolations::new(),
            pstate_conflicts: 0,
            migrations: 0,
            failovers: 0,
            mean_latency_proxy: 1.5,
            ticks: 100,
        }
    }

    #[test]
    fn baseline_against_itself_is_zero() {
        let base = stats(1_000.0, 500.0);
        let c = Comparison::against_baseline(base.clone(), &base);
        assert_eq!(c.power_savings_pct, 0.0);
        assert_eq!(c.perf_loss_pct, 0.0);
    }

    #[test]
    fn savings_and_loss_are_percentages() {
        let base = stats(1_000.0, 500.0);
        let run = stats(400.0, 475.0);
        let c = Comparison::against_baseline(run, &base);
        assert!((c.power_savings_pct - 60.0).abs() < 1e-9);
        assert!((c.perf_loss_pct - 5.0).abs() < 1e-9);
    }

    #[test]
    fn negative_savings_possible_for_worse_runs() {
        let base = stats(1_000.0, 500.0);
        let run = stats(1_200.0, 500.0);
        let c = Comparison::against_baseline(run, &base);
        assert!(c.power_savings_pct < 0.0);
    }

    #[test]
    fn mean_power_and_delivery_ratio() {
        let s = stats(1_000.0, 500.0);
        assert!((s.mean_power() - 10.0).abs() < 1e-12);
        assert_eq!(s.delivery_ratio(), 1.0);
        let zero = RunStats {
            ticks: 0,
            ..stats(0.0, 0.0)
        };
        assert_eq!(zero.mean_power(), 0.0);
        assert_eq!(zero.delivery_ratio(), 1.0);
    }

    #[test]
    fn latency_stretch_is_relative_to_baseline() {
        let base = stats(1_000.0, 500.0);
        let mut run = stats(700.0, 500.0);
        run.mean_latency_proxy = 3.0;
        let c = Comparison::against_baseline(run, &base);
        assert!((c.latency_stretch - 2.0).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let base = stats(1_000.0, 500.0);
        let c = Comparison::against_baseline(stats(400.0, 470.0), &base);
        let json = serde_json::to_string(&c).unwrap();
        let back: Comparison = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}

//! Plain-text table rendering for the figure-regeneration binaries.

use std::fmt::Write as _;

/// A simple aligned-column text table (no external dependencies).
///
/// ```
/// use nps_metrics::Table;
///
/// let mut t = Table::new(vec!["System", "pwr save"]);
/// t.row(vec!["Blade A".to_string(), "64.0".to_string()]);
/// let text = t.to_string();
/// assert!(text.contains("Blade A"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells, long rows
    /// are truncated to the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Convenience: formats a float cell with one decimal.
    pub fn fmt(value: f64) -> String {
        format!("{value:.1}")
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:<w$}  ", h, w = widths[i]);
        }
        writeln!(f, "{}", line.trim_end())?;
        let total: usize = widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate().take(cols) {
                let _ = write!(line, "{:<w$}  ", cell, w = widths[i]);
            }
            writeln!(f, "{}", line.trim_end())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["yyyyy".into(), "22".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a      long-header"));
        assert!(lines[1].starts_with("---"));
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
        t.row(vec!["1".into(), "2".into(), "extra".into()]);
        let s = t.to_string();
        assert!(!s.contains("extra"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn fmt_renders_one_decimal() {
        assert_eq!(Table::fmt(63.96), "64.0");
        assert_eq!(Table::fmt(-3.15), "-3.1");
    }
}

//! Controller time constants.

use serde::{Deserialize, Serialize};

/// Control intervals in ticks for the five controllers (paper Figure 5
/// base values: EC/SM/EM/GM/VMC = 1/5/25/50/500).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Intervals {
    /// Efficiency controller interval `T_ec`.
    pub ec: u64,
    /// Server manager interval `T_sm`.
    pub sm: u64,
    /// Enclosure manager interval `T_em`.
    pub em: u64,
    /// Group manager interval `T_gm`.
    pub gm: u64,
    /// VM controller interval `T_vmc`.
    pub vmc: u64,
}

impl Default for Intervals {
    fn default() -> Self {
        Self {
            ec: 1,
            sm: 5,
            em: 25,
            gm: 50,
            vmc: 500,
        }
    }
}

impl Intervals {
    /// Returns the intervals with every field clamped to at least 1.
    pub fn sanitized(self) -> Self {
        Self {
            ec: self.ec.max(1),
            sm: self.sm.max(1),
            em: self.em.max(1),
            gm: self.gm.max(1),
            vmc: self.vmc.max(1),
        }
    }

    /// Whether the hierarchy is ordered slowest-outermost, as the paper's
    /// federation principle expects (EC ≤ SM ≤ EM ≤ GM ≤ VMC).
    pub fn is_nested(&self) -> bool {
        self.ec <= self.sm && self.sm <= self.em && self.em <= self.gm && self.gm <= self.vmc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_figure_5() {
        let i = Intervals::default();
        assert_eq!((i.ec, i.sm, i.em, i.gm, i.vmc), (1, 5, 25, 50, 500));
        assert!(i.is_nested());
    }

    #[test]
    fn sanitized_clamps_zeroes() {
        let i = Intervals {
            ec: 0,
            sm: 0,
            em: 3,
            gm: 4,
            vmc: 5,
        }
        .sanitized();
        assert_eq!(i.ec, 1);
        assert_eq!(i.sm, 1);
    }

    #[test]
    fn inversion_detected() {
        let i = Intervals {
            vmc: 10,
            ..Intervals::default()
        };
        assert!(!i.is_nested());
    }
}

//! Coordination modes and controller masks.

use serde::{Deserialize, Serialize};

/// How the five controllers interact — the architectural axis of the
/// paper's evaluation (Figures 7 and 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum CoordinationMode {
    /// The paper's coordinated architecture (Figure 2): SM → EC via
    /// `r_ref`; EM/GM → SM/EM via granted budgets (`min` interface); VMC
    /// uses real utilization, budget constraints, and violation feedback.
    Coordinated,
    /// All five solutions deployed independently (§2.2/§2.3): SM forces
    /// P-states and races with the EC; EM/GM throttle servers directly on
    /// violation; VMC uses apparent utilization with no budget awareness
    /// or feedback.
    Uncoordinated,
    /// Figure 9 "Coordinated, appr util": coordination everywhere except
    /// the VMC reads *apparent* utilization.
    CoordApparentUtil,
    /// Figure 9 "Coordinated, no feedback": violation feedback to the VMC
    /// buffers disabled.
    CoordNoFeedback,
    /// Figure 9 "Coordinated, no budget limits": the VMC ignores the
    /// budget constraints (3)–(5).
    CoordNoBudgetLimits,
    /// Figure 9 "Uncoordinated, min P-states": uncoordinated, but the
    /// P-state actuator merges concurrent writes by taking the *lowest
    /// frequency* — a piecemeal "naïve coordination policy".
    UncoordMinPstates,
}

impl CoordinationMode {
    /// The six modes of the Figure 9 study, in table order.
    pub const FIGURE9: [CoordinationMode; 6] = [
        CoordinationMode::Coordinated,
        CoordinationMode::Uncoordinated,
        CoordinationMode::CoordApparentUtil,
        CoordinationMode::CoordNoFeedback,
        CoordinationMode::CoordNoBudgetLimits,
        CoordinationMode::UncoordMinPstates,
    ];

    /// The paper's label for this mode.
    pub fn label(self) -> &'static str {
        match self {
            CoordinationMode::Coordinated => "Coordinated",
            CoordinationMode::Uncoordinated => "Uncoordinated",
            CoordinationMode::CoordApparentUtil => "Coordinated, appr util",
            CoordinationMode::CoordNoFeedback => "Coordinated, no feedback",
            CoordinationMode::CoordNoBudgetLimits => "Coordinated, no budget limits",
            CoordinationMode::UncoordMinPstates => "Uncoordinated, min Pstates",
        }
    }

    /// Whether the SM actuates the EC's `r_ref` (coordinated) rather than
    /// writing P-states directly.
    pub fn sm_actuates_r_ref(self) -> bool {
        !matches!(
            self,
            CoordinationMode::Uncoordinated | CoordinationMode::UncoordMinPstates
        )
    }

    /// Whether budgets flow down through the `min` interfaces
    /// (GM → EM → SM).
    pub fn budgets_flow_down(self) -> bool {
        self.sm_actuates_r_ref()
    }

    /// Whether EM/GM directly force P-states on violation (the
    /// uncoordinated enclosure/group cappers).
    pub fn cappers_throttle_directly(self) -> bool {
        !self.budgets_flow_down()
    }

    /// Whether the VMC reads *real* (max-capacity-normalized, MHz-style)
    /// utilization rather than apparent (host-relative) utilization.
    ///
    /// Conventional consolidation managers already work in MHz terms, so
    /// even the uncoordinated VMC uses real readings — which is exactly
    /// what exposes it to the paper's vicious cycle: capped servers
    /// deliver less, the readings shrink, and the unaware VMC packs even
    /// harder. Only the Figure 9 "appr util" ablation flips this switch.
    pub fn vmc_uses_real_util(self) -> bool {
        !matches!(self, CoordinationMode::CoordApparentUtil)
    }

    /// Whether the VMC enforces the budget constraints (3)–(5).
    pub fn vmc_uses_budget_constraints(self) -> bool {
        !matches!(
            self,
            CoordinationMode::Uncoordinated
                | CoordinationMode::UncoordMinPstates
                | CoordinationMode::CoordNoBudgetLimits
        )
    }

    /// Whether violation feedback reaches the VMC's buffers.
    pub fn vmc_uses_feedback(self) -> bool {
        !matches!(
            self,
            CoordinationMode::Uncoordinated
                | CoordinationMode::UncoordMinPstates
                | CoordinationMode::CoordNoFeedback
        )
    }

    /// Whether concurrent P-state writes merge by minimum frequency
    /// (the `UncoordMinPstates` naïve fix) instead of last-writer-wins.
    pub fn merges_min_pstate(self) -> bool {
        matches!(self, CoordinationMode::UncoordMinPstates)
    }
}

impl std::fmt::Display for CoordinationMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which of the five controllers are deployed (Figure 8's
/// Coordinated / NoVMC / VMCOnly study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ControllerMask {
    /// Efficiency controller per server.
    pub ec: bool,
    /// Server manager per server.
    pub sm: bool,
    /// Enclosure manager per enclosure.
    pub em: bool,
    /// Group manager.
    pub gm: bool,
    /// Virtual machine controller.
    pub vmc: bool,
}

impl ControllerMask {
    /// All five controllers on (the paper's default deployment).
    pub const ALL: ControllerMask = ControllerMask {
        ec: true,
        sm: true,
        em: true,
        gm: true,
        vmc: true,
    };

    /// Everything except the VMC (Figure 8's "NoVMC").
    pub const NO_VMC: ControllerMask = ControllerMask {
        vmc: false,
        ..ControllerMask::ALL
    };

    /// Only the VMC (Figure 8's "VMCOnly").
    pub const VMC_ONLY: ControllerMask = ControllerMask {
        ec: false,
        sm: false,
        em: false,
        gm: false,
        vmc: true,
    };

    /// No controllers at all — the baseline.
    pub const NONE: ControllerMask = ControllerMask {
        ec: false,
        sm: false,
        em: false,
        gm: false,
        vmc: false,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinated_enables_every_interface() {
        let m = CoordinationMode::Coordinated;
        assert!(m.sm_actuates_r_ref());
        assert!(m.budgets_flow_down());
        assert!(m.vmc_uses_real_util());
        assert!(m.vmc_uses_budget_constraints());
        assert!(m.vmc_uses_feedback());
        assert!(!m.merges_min_pstate());
        assert!(!m.cappers_throttle_directly());
    }

    #[test]
    fn uncoordinated_disables_every_coordination_interface() {
        let m = CoordinationMode::Uncoordinated;
        assert!(!m.sm_actuates_r_ref());
        assert!(!m.budgets_flow_down());
        // Conventional consolidation already reads MHz-normalized
        // utilization; what it lacks is budget awareness and feedback.
        assert!(m.vmc_uses_real_util());
        assert!(!m.vmc_uses_budget_constraints());
        assert!(!m.vmc_uses_feedback());
        assert!(m.cappers_throttle_directly());
    }

    #[test]
    fn ablations_disable_exactly_one_interface() {
        assert!(!CoordinationMode::CoordApparentUtil.vmc_uses_real_util());
        assert!(CoordinationMode::CoordApparentUtil.vmc_uses_budget_constraints());
        assert!(!CoordinationMode::CoordNoFeedback.vmc_uses_feedback());
        assert!(CoordinationMode::CoordNoFeedback.vmc_uses_real_util());
        assert!(!CoordinationMode::CoordNoBudgetLimits.vmc_uses_budget_constraints());
        assert!(CoordinationMode::CoordNoBudgetLimits.vmc_uses_feedback());
    }

    #[test]
    fn min_pstate_mode_is_uncoordinated_with_merge() {
        let m = CoordinationMode::UncoordMinPstates;
        assert!(!m.sm_actuates_r_ref());
        assert!(m.merges_min_pstate());
    }

    #[test]
    fn figure9_covers_six_distinct_modes() {
        let mut labels: Vec<&str> = CoordinationMode::FIGURE9
            .iter()
            .map(|m| m.label())
            .collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn masks_match_figure8_legends() {
        assert!(ControllerMask::NO_VMC.ec && !ControllerMask::NO_VMC.vmc);
        assert!(!ControllerMask::VMC_ONLY.sm && ControllerMask::VMC_ONLY.vmc);
        assert!(!ControllerMask::NONE.ec && !ControllerMask::NONE.vmc);
    }
}

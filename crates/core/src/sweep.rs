//! Parallel experiment sweeps and result persistence.
//!
//! The paper's evaluation spans *"more than 800 individual
//! configurations"* (§5.1); this module provides the workflow for that
//! scale: [`run_sweep`] fans configurations out over worker threads
//! (every run is deterministic, so parallelism cannot change results),
//! and [`save_results`] / [`load_results`] persist the outcomes as JSON.

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::config::ExperimentConfig;
use crate::runner::{run_experiment, ExperimentResult};

/// Runs every configuration (plus its baseline) across `threads` worker
/// threads, returning results in input order. `threads = 0` picks the
/// available parallelism.
pub fn run_sweep(configs: &[ExperimentConfig], threads: usize) -> Vec<ExperimentResult> {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .min(configs.len().max(1));

    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<ExperimentResult>>> =
        (0..configs.len()).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= configs.len() {
                    break;
                }
                let result = run_experiment(&configs[i]);
                *results[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot filled by the sweep")
        })
        .collect()
}

/// Persists sweep results as JSON.
pub fn save_results(results: &[ExperimentResult], path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), results)
        .map_err(std::io::Error::other)
}

/// Loads previously saved sweep results.
pub fn load_results(path: impl AsRef<Path>) -> std::io::Result<Vec<ExperimentResult>> {
    let file = std::fs::File::open(path)?;
    serde_json::from_reader(std::io::BufReader::new(file)).map_err(std::io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::CoordinationMode;
    use crate::scenarios::{Scenario, SystemKind};
    use nps_traces::Mix;

    fn tiny(seed: u64) -> ExperimentConfig {
        Scenario::paper(SystemKind::BladeA, Mix::L60, CoordinationMode::Coordinated)
            .horizon(200)
            .seed(seed)
            .build()
    }

    #[test]
    fn sweep_preserves_order_and_matches_serial() {
        let configs: Vec<ExperimentConfig> = (0..4).map(tiny).collect();
        let parallel = run_sweep(&configs, 4);
        for (cfg, result) in configs.iter().zip(&parallel) {
            let serial = run_experiment(cfg);
            assert_eq!(&serial, result, "{}", cfg.label);
        }
    }

    #[test]
    fn single_thread_sweep_works() {
        let configs = vec![tiny(1)];
        let results = run_sweep(&configs, 1);
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn zero_threads_means_auto() {
        let configs = vec![tiny(1), tiny(2)];
        assert_eq!(run_sweep(&configs, 0).len(), 2);
    }

    #[test]
    fn results_roundtrip_through_json() {
        let results = run_sweep(&[tiny(9)], 1);
        let mut path = std::env::temp_dir();
        path.push(format!("nps-sweep-test-{}.json", std::process::id()));
        save_results(&results, &path).unwrap();
        let back = load_results(&path).unwrap();
        assert_eq!(results, back);
        std::fs::remove_file(path).ok();
    }
}

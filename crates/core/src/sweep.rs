//! Parallel experiment sweeps and result persistence.
//!
//! The paper's evaluation spans *"more than 800 individual
//! configurations"* (§5.1); this module provides the workflow for that
//! scale: [`run_sweep`] fans configurations out over worker threads
//! (every run is deterministic, so parallelism cannot change results),
//! and [`save_results`] / [`load_results`] persist the outcomes as JSON.
//!
//! Each configuration runs under panic isolation: a panicking run (or a
//! worker that dies before filling its slot) yields a [`SweepError`]
//! naming the failed configuration instead of aborting the whole sweep.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::config::ExperimentConfig;
use crate::runner::{run_experiment, ExperimentResult};

/// One configuration's failure inside a sweep.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepError {
    /// Index of the failed configuration in the sweep's input order.
    pub index: usize,
    /// The configuration's label.
    pub label: String,
    /// The panic payload (or a generic message when the worker died
    /// without one).
    pub message: String,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sweep config #{} ({:?}) failed: {}",
            self.index, self.label, self.message
        )
    }
}

impl std::error::Error for SweepError {}

/// Renders a caught panic payload as text.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panicked with a non-string payload".to_string()
    }
}

/// Runs every configuration (plus its baseline) across `threads` worker
/// threads, returning per-configuration outcomes in input order.
/// `threads = 0` picks the available parallelism.
///
/// A configuration that panics produces an `Err(SweepError)` naming it;
/// the remaining configurations still run to completion.
pub fn run_sweep(
    configs: &[ExperimentConfig],
    threads: usize,
) -> Vec<Result<ExperimentResult, SweepError>> {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .min(configs.len().max(1));

    let next = AtomicUsize::new(0);
    let results: Vec<Slot> = (0..configs.len()).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= configs.len() {
                    break;
                }
                let outcome = catch_unwind(AssertUnwindSafe(|| run_experiment(&configs[i])))
                    .map_err(|payload| SweepError {
                        index: i,
                        label: configs[i].label.clone(),
                        message: panic_message(payload),
                    });
                // A slot poisoned by a panicking sibling holds `None`
                // anyway; recover the guard and overwrite.
                let mut slot = match results[i].lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                *slot = Some(outcome);
            });
        }
    });

    finalize_outcomes(configs, results)
}

/// Crash-resumable sweep: results for configurations whose label already
/// appears in `completed` (e.g. loaded from a partially-written results
/// file via [`load_results`]) are reused verbatim; only the missing
/// configurations run. Outcomes come back in input order, exactly as
/// [`run_sweep`] would produce them — so `resume(run_sweep(a..b)) ==
/// run_sweep(all)` for deterministic configurations.
///
/// Matching is by label, and each completed result is reused at most
/// once (in input order): scenario labels encode system, mix, mode, and
/// budgets, so a sweep should give every configuration a distinct label
/// — with duplicates, completed results are handed out first-come
/// first-served and the remainder re-run.
pub fn run_sweep_resumable(
    configs: &[ExperimentConfig],
    completed: &[ExperimentResult],
    threads: usize,
) -> Vec<Result<ExperimentResult, SweepError>> {
    // First pass: hand out completed results (each at most once) and
    // collect the configurations that still need to run.
    let mut pool: Vec<Option<&ExperimentResult>> = completed.iter().map(Some).collect();
    let reused: Vec<Option<ExperimentResult>> = configs
        .iter()
        .map(|cfg| {
            pool.iter_mut()
                .find(|slot| slot.is_some_and(|r| r.label == cfg.label))
                .and_then(|slot| slot.take())
                .cloned()
        })
        .collect();
    let missing_cfgs: Vec<ExperimentConfig> = configs
        .iter()
        .zip(&reused)
        .filter(|(_, done)| done.is_none())
        .map(|(cfg, _)| cfg.clone())
        .collect();
    let mut fresh_iter = run_sweep(&missing_cfgs, threads).into_iter();
    reused
        .into_iter()
        .enumerate()
        .map(|(i, done)| match done {
            Some(result) => Ok(result),
            // Re-index the fresh outcome to the full sweep's input order
            // so error slots name the right configuration.
            None => fresh_iter
                .next()
                .expect("one fresh outcome per missing config")
                .map_err(|e| SweepError { index: i, ..e }),
        })
        .collect()
}

/// One sweep slot: `None` until a worker stores the configuration's
/// outcome.
type Slot = Mutex<Option<Result<ExperimentResult, SweepError>>>;

/// Drains the per-configuration slots into input order, converting any
/// slot a worker never filled (the worker died mid-sweep) into a
/// [`SweepError`] naming that configuration.
fn finalize_outcomes(
    configs: &[ExperimentConfig],
    results: Vec<Slot>,
) -> Vec<Result<ExperimentResult, SweepError>> {
    results
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            let inner = match slot.into_inner() {
                Ok(inner) => inner,
                Err(poisoned) => poisoned.into_inner(),
            };
            inner.unwrap_or_else(|| {
                Err(SweepError {
                    index: i,
                    label: configs[i].label.clone(),
                    message: "worker died before completing this configuration".to_string(),
                })
            })
        })
        .collect()
}

/// Distinguishes concurrent temp files within one process.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Persists sweep results as JSON, atomically: the JSON is written to a
/// temp file in the destination directory and renamed into place, so a
/// panic or crash mid-write can never leave a truncated artifact at
/// `path` (any previous file there survives intact).
pub fn save_results(results: &[ExperimentResult], path: impl AsRef<Path>) -> std::io::Result<()> {
    let path = path.as_ref();
    let dir: PathBuf = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let stem = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "results.json".to_string());
    let tmp = dir.join(format!(
        ".{stem}.tmp.{}.{}",
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let write = (|| -> std::io::Result<()> {
        let file = std::fs::File::create(&tmp)?;
        let mut writer = std::io::BufWriter::new(file);
        serde_json::to_writer_pretty(&mut writer, results).map_err(std::io::Error::other)?;
        use std::io::Write as _;
        writer.flush()?;
        writer
            .into_inner()
            .map_err(|e| e.into_error())?
            .sync_all()?;
        Ok(())
    })();
    match write {
        Ok(()) => std::fs::rename(&tmp, path),
        Err(e) => {
            std::fs::remove_file(&tmp).ok();
            Err(e)
        }
    }
}

/// Loads previously saved sweep results.
pub fn load_results(path: impl AsRef<Path>) -> std::io::Result<Vec<ExperimentResult>> {
    let file = std::fs::File::open(path)?;
    serde_json::from_reader(std::io::BufReader::new(file)).map_err(std::io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::CoordinationMode;
    use crate::scenarios::{Scenario, SystemKind};
    use nps_traces::Mix;

    fn tiny(seed: u64) -> ExperimentConfig {
        Scenario::paper(SystemKind::BladeA, Mix::L60, CoordinationMode::Coordinated)
            .horizon(200)
            .seed(seed)
            .build()
    }

    fn unwrap_all(outcomes: Vec<Result<ExperimentResult, SweepError>>) -> Vec<ExperimentResult> {
        outcomes
            .into_iter()
            .map(|r| r.expect("sweep config must succeed"))
            .collect()
    }

    #[test]
    fn sweep_preserves_order_and_matches_serial() {
        let configs: Vec<ExperimentConfig> = (0..4).map(tiny).collect();
        let parallel = unwrap_all(run_sweep(&configs, 4));
        for (cfg, result) in configs.iter().zip(&parallel) {
            let serial = run_experiment(cfg);
            assert_eq!(&serial, result, "{}", cfg.label);
        }
    }

    #[test]
    fn single_thread_sweep_works() {
        let configs = vec![tiny(1)];
        let results = unwrap_all(run_sweep(&configs, 1));
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn zero_threads_means_auto() {
        let configs = vec![tiny(1), tiny(2)];
        assert_eq!(run_sweep(&configs, 0).len(), 2);
    }

    #[test]
    fn results_roundtrip_through_json() {
        let results = unwrap_all(run_sweep(&[tiny(9)], 1));
        let mut path = std::env::temp_dir();
        path.push(format!("nps-sweep-test-{}.json", std::process::id()));
        save_results(&results, &path).unwrap();
        let back = load_results(&path).unwrap();
        assert_eq!(results, back);
        std::fs::remove_file(path).ok();
    }

    /// Like `tiny` but with the seed in the label, as real sweeps label
    /// their entries distinctly.
    fn tiny_labeled(seed: u64) -> ExperimentConfig {
        Scenario::paper(SystemKind::BladeA, Mix::L60, CoordinationMode::Coordinated)
            .horizon(200)
            .seed(seed)
            .label(format!("seed {seed}"))
            .build()
    }

    #[test]
    fn resumable_sweep_skips_completed_and_matches_full_run() {
        let configs: Vec<ExperimentConfig> = (0..4).map(tiny_labeled).collect();
        let full = unwrap_all(run_sweep(&configs, 2));
        // Simulate a crash after two configs: persist a partial results
        // file, reload it, and resume.
        let partial = vec![full[0].clone(), full[2].clone()];
        let mut path = std::env::temp_dir();
        path.push(format!("nps-resume-test-{}.json", std::process::id()));
        save_results(&partial, &path).unwrap();
        let loaded = load_results(&path).unwrap();
        let resumed = unwrap_all(run_sweep_resumable(&configs, &loaded, 2));
        assert_eq!(resumed, full);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn resumable_sweep_with_all_done_runs_nothing() {
        let configs = vec![tiny(1)];
        let full = unwrap_all(run_sweep(&configs, 1));
        let resumed = unwrap_all(run_sweep_resumable(&configs, &full, 1));
        assert_eq!(resumed, full);
    }

    #[test]
    fn resumable_sweep_reindexes_errors_to_input_order() {
        let mut bad = tiny(2);
        bad.lambda = -1.0;
        bad.label = "poisoned resume config".to_string();
        let configs = vec![tiny(1), tiny(3), bad];
        let done = unwrap_all(run_sweep(&configs[..2], 1));
        let outcomes = run_sweep_resumable(&configs, &done, 1);
        assert!(outcomes[0].is_ok() && outcomes[1].is_ok());
        let err = outcomes[2].as_ref().expect_err("bad config must fail");
        assert_eq!(err.index, 2, "error must name the full-sweep index");
        assert_eq!(err.label, "poisoned resume config");
    }

    #[test]
    fn panicking_config_is_isolated_and_named() {
        // An invalid gain makes `Runner::new` panic inside the worker; the
        // sweep must report it as an error slot and still complete the
        // healthy configurations around it.
        let mut bad = tiny(2);
        bad.lambda = -1.0;
        bad.label = "poisoned config".to_string();
        let configs = vec![tiny(1), bad, tiny(3)];
        let outcomes = run_sweep(&configs, 2);
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].is_ok());
        assert!(outcomes[2].is_ok());
        let err = outcomes[1].as_ref().expect_err("bad config must fail");
        assert_eq!(err.index, 1);
        assert_eq!(err.label, "poisoned config");
        assert!(
            err.message.contains("consistent"),
            "panic payload should surface: {}",
            err.message
        );
        let text = err.to_string();
        assert!(text.contains("#1") && text.contains("poisoned config"));
    }

    #[test]
    fn oversubscribed_sweep_matches_serial() {
        // More threads than configurations: the pool clamps to the config
        // count, every slot is filled exactly once, order is preserved.
        let configs: Vec<ExperimentConfig> = vec![tiny(4), tiny(5)];
        let parallel = unwrap_all(run_sweep(&configs, 16));
        assert_eq!(parallel.len(), 2);
        for (cfg, result) in configs.iter().zip(&parallel) {
            assert_eq!(&run_experiment(cfg), result, "{}", cfg.label);
        }
    }

    #[test]
    fn empty_sweep_is_empty() {
        assert!(run_sweep(&[], 8).is_empty());
    }

    #[test]
    fn unfilled_slot_reports_worker_death() {
        // A worker that dies between claiming an index and storing its
        // outcome leaves the slot `None`; finalization must convert that
        // into a SweepError naming the orphaned configuration.
        let configs = vec![tiny(1), tiny(2)];
        let ok = run_experiment(&configs[0]);
        let slots: Vec<Slot> = vec![Mutex::new(Some(Ok(ok.clone()))), Mutex::new(None)];
        let outcomes = finalize_outcomes(&configs, slots);
        assert_eq!(outcomes[0].as_ref().unwrap(), &ok);
        let err = outcomes[1].as_ref().expect_err("empty slot must error");
        assert_eq!(err.index, 1);
        assert_eq!(err.label, configs[1].label);
        assert!(
            err.message.contains("worker died"),
            "unexpected message: {}",
            err.message
        );
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_files() {
        let results = unwrap_all(run_sweep(&[tiny(9)], 1));
        let dir = std::env::temp_dir().join(format!("nps-atomic-save-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.json");
        // Pre-existing garbage at the destination must be replaced whole,
        // never truncated-then-rewritten.
        std::fs::write(&path, "{ not json").unwrap();
        save_results(&results, &path).unwrap();
        assert_eq!(load_results(&path).unwrap(), results);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_save_preserves_existing_file() {
        let results = unwrap_all(run_sweep(&[tiny(9)], 1));
        let dir = std::env::temp_dir().join(format!("nps-atomic-keep-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // The destination exists and is valid; a save whose temp file
        // cannot even be created (the "directory" component is a plain
        // file) must fail without touching the existing artifact.
        let good = dir.join("good.json");
        save_results(&results, &good).unwrap();
        let blocker = dir.join("blocker");
        std::fs::write(&blocker, "x").unwrap();
        let bad_path = blocker.join("sweep.json");
        assert!(save_results(&results, &bad_path).is_err());
        assert_eq!(load_results(&good).unwrap(), results);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_with_bare_filename_works() {
        // A path with no parent directory component writes via "./".
        let results = unwrap_all(run_sweep(&[tiny(9)], 1));
        let cwd = std::env::temp_dir().join(format!("nps-bare-name-{}", std::process::id()));
        std::fs::create_dir_all(&cwd).unwrap();
        let path = cwd.join("bare.json");
        save_results(&results, &path).unwrap();
        assert_eq!(load_results(&path).unwrap(), results);
        std::fs::remove_dir_all(&cwd).ok();
    }

    #[test]
    fn sweep_error_serializes() {
        let err = SweepError {
            index: 7,
            label: "x".to_string(),
            message: "boom".to_string(),
        };
        let json = serde_json::to_string(&err).unwrap();
        let back: SweepError = serde_json::from_str(&json).unwrap();
        assert_eq!(err, back);
    }
}

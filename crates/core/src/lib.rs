//! The coordinated multi-level power-management architecture — the
//! primary contribution of the ASPLOS'08 paper, assembled from the
//! substrate crates.
//!
//! Five controller families (EC, SM, EM, GM, VMC — see `nps-control` and
//! `nps-opt`) are wired over the trace-driven simulator (`nps-sim`)
//! according to a [`CoordinationMode`]:
//!
//! * [`CoordinationMode::Coordinated`] — the paper's architecture
//!   (Figure 2): the SM actuates the EC's `r_ref`, budgets flow down
//!   through `min` interfaces, the VMC uses real utilization with budget
//!   constraints and violation-feedback buffers;
//! * [`CoordinationMode::Uncoordinated`] — the state of the art the paper
//!   argues against (§2.3): all five solutions deployed independently,
//!   racing on the P-state actuator;
//! * the Figure-9 ablations (apparent utilization, no feedback, no budget
//!   limits, naïve min-P-state merging).
//!
//! [`run_experiment`] executes a configuration and its no-controller
//! baseline, returning the paper's metrics (power savings, performance
//! loss, per-level budget violations).
//!
//! ```no_run
//! use nps_core::{run_experiment, CoordinationMode, Scenario, SystemKind};
//! use nps_traces::Mix;
//!
//! let cfg = Scenario::paper(SystemKind::BladeA, Mix::All180,
//!                           CoordinationMode::Coordinated)
//!     .horizon(2_000)
//!     .build();
//! let result = run_experiment(&cfg);
//! println!("power savings: {:.1}%", result.comparison.power_savings_pct);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
mod budgets;
mod config;
mod error;
mod intervals;
mod runner;
mod scenarios;
mod sweep;

pub use arch::{ControllerMask, CoordinationMode};
pub use budgets::BudgetSpec;
pub use config::{ExperimentConfig, PolicyKind};
pub use error::CoreError;
pub use intervals::Intervals;
pub use runner::{run_experiment, ExperimentResult, Runner, RunnerSnapshot};
pub use scenarios::{Scenario, SystemKind};
pub use sweep::{load_results, run_sweep, run_sweep_resumable, save_results, SweepError};

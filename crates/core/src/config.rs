//! Full experiment configuration.

use nps_control::{
    BudgetPolicy, FairShare, Fifo, HistoryWeighted, PriorityWeighted, ProportionalShare,
    RandomOrder,
};
use nps_models::ServerModel;
use nps_opt::VmcConfig;
use nps_sim::{BusConfig, FaultPlan, RedundancyConfig, SimConfig, Topology};
use nps_traces::UtilTrace;
use serde::{Deserialize, Serialize};

use crate::arch::{ControllerMask, CoordinationMode};
use crate::budgets::BudgetSpec;
use crate::intervals::Intervals;

/// Which budget-division policy the EM/GM use (paper §5.4's policy
/// study). Constructs fresh [`BudgetPolicy`] instances per capper so
/// stateful policies don't share state across levels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PolicyKind {
    /// The paper's base proportional-share policy.
    Proportional,
    /// Equal split.
    Fair,
    /// First-come-first-served by child id.
    Fifo,
    /// Shuffled FIFO with the given seed.
    Random(u64),
    /// Weighted by a repeating 1/2/3 priority pattern.
    Priority,
    /// EWMA-smoothed proportional share with the given alpha.
    History(f64),
}

impl PolicyKind {
    /// All six policies with default parameters (paper §5.4 sweep).
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::Proportional,
        PolicyKind::Fair,
        PolicyKind::Fifo,
        PolicyKind::Random(42),
        PolicyKind::Priority,
        PolicyKind::History(0.3),
    ];

    /// Instantiates the policy for a capper with `n` children.
    pub fn make(&self, n: usize) -> Box<dyn BudgetPolicy> {
        match *self {
            PolicyKind::Proportional => Box::new(ProportionalShare),
            PolicyKind::Fair => Box::new(FairShare),
            PolicyKind::Fifo => Box::new(Fifo),
            PolicyKind::Random(seed) => Box::new(RandomOrder::new(seed)),
            PolicyKind::Priority => Box::new(PriorityWeighted::new(
                (0..n).map(|i| 1.0 + (i % 3) as f64).collect(),
            )),
            PolicyKind::History(alpha) => Box::new(HistoryWeighted::new(alpha)),
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Proportional => "proportional",
            PolicyKind::Fair => "fair",
            PolicyKind::Fifo => "fifo",
            PolicyKind::Random(_) => "random",
            PolicyKind::Priority => "priority",
            PolicyKind::History(_) => "history",
        }
    }
}

/// Everything needed to run one experiment (one bar/row of a paper
/// figure). Build via [`crate::Scenario`] for the paper's standard
/// configurations. Fully serializable, so configurations can be
/// archived or shipped alongside results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Human-readable label for reports.
    pub label: String,
    /// Server model for a homogeneous fleet (per-server overrides via
    /// [`ExperimentConfig::models_override`]).
    pub model: ServerModel,
    /// Optional heterogeneous fleet: one model per server.
    pub models_override: Option<Vec<ServerModel>>,
    /// Physical topology.
    pub topology: Topology,
    /// One utilization trace per workload/VM.
    pub traces: Vec<UtilTrace>,
    /// Static budget derating at the three levels.
    pub budgets: BudgetSpec,
    /// Controller time constants.
    pub intervals: Intervals,
    /// EC gain scaling parameter λ (paper base 0.8).
    pub lambda: f64,
    /// SM gain `β_loc` (paper base 1.0, on normalized power).
    pub beta: f64,
    /// VMC configuration (headroom, overheads, buffers). The
    /// coordination-mode flags override `use_budget_constraints` /
    /// `use_feedback` and the utilization source.
    pub vmc: VmcConfig,
    /// Simulator configuration (overheads, migration window, thermal).
    pub sim: SimConfig,
    /// How the controllers interact.
    pub mode: CoordinationMode,
    /// Which controllers are deployed.
    pub mask: ControllerMask,
    /// Budget-division policy for EM/GM.
    pub policy: PolicyKind,
    /// Simulation length in ticks.
    pub horizon: u64,
    /// Worker threads for the parallel per-rack phase of each tick
    /// (`1` = the fully sequential legacy path). Results are
    /// bit-identical at every value, so this is purely a throughput
    /// knob; it never appears in labels or checkpoints.
    pub threads: usize,
    /// Optional per-server electrical cap as a fraction of max power
    /// (enables the CAP hard clamp).
    pub electrical_cap_frac: Option<f64>,
    /// Fault-injection plan ([`FaultPlan::disabled`] for clean runs).
    pub faults: FaultPlan,
    /// Control-plane bus configuration (delivery delay/faults, retries,
    /// leases). The default is a zero-delay, zero-fault passthrough that
    /// reproduces direct grant writes bit-exactly.
    pub bus: BusConfig,
    /// Warm-standby controller redundancy (GM/EM replicas, heartbeat
    /// failure detector). Disabled by default.
    pub redundancy: RedundancyConfig,
    /// Whether the runner checks the paper's safety invariants every
    /// tick (the `nps-metrics::invariants` catalog). Monitoring only;
    /// violations are reported, never corrected.
    pub invariants: bool,
}

impl ExperimentConfig {
    /// The effective per-server models (homogeneous replication unless
    /// overridden).
    pub fn server_models(&self) -> Vec<ServerModel> {
        match &self.models_override {
            Some(models) => models.clone(),
            None => vec![self.model.clone(); self.topology.num_servers()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_kinds_instantiate() {
        for kind in PolicyKind::ALL {
            let mut p = kind.make(4);
            let caps = p.divide(100.0, &[10.0; 4], &[50.0; 4]);
            assert_eq!(caps.len(), 4, "{}", kind.name());
        }
    }

    #[test]
    fn experiment_config_roundtrips_through_json() {
        use crate::{CoordinationMode, Scenario, SystemKind};
        let cfg = Scenario::paper(
            SystemKind::ServerB,
            nps_traces::Mix::L60,
            CoordinationMode::CoordNoFeedback,
        )
        .horizon(50)
        .build();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn policy_names_are_distinct() {
        let mut names: Vec<&str> = PolicyKind::ALL.iter().map(|p| p.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 6);
    }
}

//! Builders for the paper's experimental configurations.

use nps_models::ServerModel;
use nps_opt::VmcConfig;
use nps_sim::{BusConfig, FaultPlan, RedundancyConfig, SimConfig, Topology};
use nps_traces::{Corpus, EnterpriseProfile, Mix, UtilTrace};
use serde::{Deserialize, Serialize};

use crate::arch::{ControllerMask, CoordinationMode};
use crate::budgets::BudgetSpec;
use crate::config::{ExperimentConfig, PolicyKind};
use crate::intervals::Intervals;

/// The two reference systems of the paper's evaluation (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// The low-power blade (wide power range, 5 P-states).
    BladeA,
    /// The entry-level 2U server (high idle power, 6 P-states).
    ServerB,
}

impl SystemKind {
    /// Both systems, in the paper's plotting order.
    pub const BOTH: [SystemKind; 2] = [SystemKind::BladeA, SystemKind::ServerB];

    /// The model for this system.
    pub fn model(self) -> ServerModel {
        match self {
            SystemKind::BladeA => ServerModel::blade_a(),
            SystemKind::ServerB => ServerModel::server_b(),
        }
    }

    /// The paper's name for this system.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::BladeA => "Blade A",
            SystemKind::ServerB => "Server B",
        }
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Fluent builder for paper-standard [`ExperimentConfig`]s.
///
/// Defaults follow Figure 5: budgets `20-15-10`, intervals 1/5/25/50/500,
/// `λ = 0.8`, `β = 1.0`, `α_V = α_M = 10%`, proportional-share policy,
/// all controllers on. The topology follows the mix: 180 workloads on the
/// 180-server cluster (6×20 blades + 60 standalone), 60 workloads on the
/// 60-server cluster (2×20 + 20).
#[derive(Debug, Clone)]
pub struct Scenario {
    system: SystemKind,
    mix: Mix,
    mode: CoordinationMode,
    budgets: BudgetSpec,
    intervals: Intervals,
    mask: ControllerMask,
    policy: PolicyKind,
    lambda: f64,
    beta: f64,
    vmc: VmcConfig,
    sim: SimConfig,
    horizon: u64,
    seed: u64,
    diurnal_period: usize,
    pstate_subset: Option<Vec<usize>>,
    electrical_cap_frac: Option<f64>,
    idle_scale: Option<f64>,
    heterogeneous: bool,
    faults: FaultPlan,
    bus: BusConfig,
    redundancy: RedundancyConfig,
    invariants: bool,
    label_suffix: String,
    /// Explicit topology (e.g. multi-rack); when set, one trace is
    /// generated per server instead of sizing by the mix.
    topology_override: Option<Topology>,
    /// Worker threads for the parallel per-rack phase (default 1).
    /// Deliberately excluded from the generated label: results are
    /// bit-identical at every thread count.
    threads: usize,
}

impl Scenario {
    /// Starts a paper-standard scenario.
    pub fn paper(system: SystemKind, mix: Mix, mode: CoordinationMode) -> Self {
        Self {
            system,
            mix,
            mode,
            budgets: BudgetSpec::PAPER_20_15_10,
            intervals: Intervals::default(),
            mask: ControllerMask::ALL,
            policy: PolicyKind::Proportional,
            lambda: 0.8,
            beta: 1.0,
            vmc: VmcConfig::default(),
            sim: SimConfig::default(),
            horizon: 4_000,
            seed: 42,
            diurnal_period: 1_000,
            pstate_subset: None,
            electrical_cap_frac: None,
            idle_scale: None,
            heterogeneous: false,
            faults: FaultPlan::disabled(),
            bus: BusConfig::default(),
            redundancy: RedundancyConfig::default(),
            invariants: false,
            label_suffix: String::new(),
            topology_override: None,
            threads: 1,
        }
    }

    /// A scaled-out data center: `racks` racks of `enclosures_per_rack`
    /// enclosures × `blades` blades, plus `standalone` individual
    /// servers, with one synthetic enterprise workload per server. The
    /// GM federates one EM per enclosure across every rack — the paper's
    /// architecture at data-center scale rather than single-group scale.
    pub fn multi_rack(
        system: SystemKind,
        mode: CoordinationMode,
        racks: usize,
        enclosures_per_rack: usize,
        blades: usize,
        standalone: usize,
    ) -> Self {
        let topo = Topology::multi_rack(racks, enclosures_per_rack, blades, standalone);
        Self::paper(system, Mix::All180, mode)
            .topology(topo)
            .label(format!(
                "scale {racks}r x {enclosures_per_rack}e x {blades}b + {standalone}"
            ))
    }

    /// Overrides the topology. Trace generation then produces one
    /// workload per server (cycling the enterprise site profiles) instead
    /// of sizing by the mix.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology_override = Some(topology);
        self
    }

    /// Overrides the budget specification (Figure 10 sweep).
    pub fn budgets(mut self, budgets: BudgetSpec) -> Self {
        self.budgets = budgets;
        self
    }

    /// Overrides the controller intervals (§5.4 time-constant sweep).
    pub fn intervals(mut self, intervals: Intervals) -> Self {
        self.intervals = intervals;
        self
    }

    /// Overrides the controller mask (Figure 8's NoVMC / VMCOnly).
    pub fn mask(mut self, mask: ControllerMask) -> Self {
        self.mask = mask;
        self
    }

    /// Overrides the EM/GM budget-division policy (§5.4).
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the VMC configuration (migration weight, turn-off, …).
    pub fn vmc(mut self, vmc: VmcConfig) -> Self {
        self.vmc = vmc;
        self
    }

    /// Overrides the simulator configuration (α_M, migration window, …).
    pub fn sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Sets the simulation horizon in ticks.
    pub fn horizon(mut self, ticks: u64) -> Self {
        self.horizon = ticks.max(1);
        self
    }

    /// Sets the trace-generation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Restricts the server model to a subset of its P-states
    /// (§5.3's P-state count study). Indices must be valid for the
    /// system's model.
    pub fn pstate_subset(mut self, indices: Vec<usize>) -> Self {
        self.pstate_subset = Some(indices);
        self
    }

    /// Enables the per-server electrical capper at `frac · max_power`.
    pub fn electrical_cap(mut self, frac: f64) -> Self {
        self.electrical_cap_frac = Some(frac);
        self
    }

    /// Scales the model's idle power (the paper's "different idle power"
    /// sensitivity discussion).
    pub fn idle_scale(mut self, factor: f64) -> Self {
        self.idle_scale = Some(factor);
        self
    }

    /// Builds a *heterogeneous* fleet (paper §6 extension (5)): enclosure
    /// blades use Blade A, standalone servers use Server B — "easily
    /// addressed by including a range of different models in the
    /// controllers". P-state subsetting and idle scaling apply to both
    /// models.
    pub fn heterogeneous(mut self) -> Self {
        self.heterogeneous = true;
        self
    }

    /// Installs a fault-injection plan (sensor/actuator faults and
    /// controller outages; see [`FaultPlan`]).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Configures the control-plane bus (delivery delay/faults, retries,
    /// leases; see [`BusConfig`]).
    pub fn bus(mut self, bus: BusConfig) -> Self {
        self.bus = bus;
        self
    }

    /// Configures warm-standby controller redundancy (GM/EM replicas
    /// and the heartbeat failure detector; see [`RedundancyConfig`]).
    pub fn redundancy(mut self, redundancy: RedundancyConfig) -> Self {
        self.redundancy = redundancy;
        self
    }

    /// Pairs the GM and every EM with a warm standby using the default
    /// detector timing — shorthand for
    /// `.redundancy(RedundancyConfig::all_standbys())`.
    pub fn standbys(mut self) -> Self {
        self.redundancy = RedundancyConfig::all_standbys();
        self
    }

    /// Enables the per-tick safety-invariant monitor
    /// (`nps-metrics::invariants`). Monitoring only, never corrective.
    pub fn invariants(mut self, on: bool) -> Self {
        self.invariants = on;
        self
    }

    /// Appends a suffix to the generated label.
    pub fn label(mut self, suffix: impl Into<String>) -> Self {
        self.label_suffix = suffix.into();
        self
    }

    /// Sets the worker-thread count for the parallel per-rack phase
    /// (`0` is treated as 1). Purely a throughput knob: the run's
    /// results are bit-identical at every value, so the label is
    /// unaffected.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Materializes the configuration (generates the trace corpus, picks
    /// the topology, applies model transforms).
    pub fn build(self) -> ExperimentConfig {
        let mut model = self.system.model();
        if let Some(indices) = &self.pstate_subset {
            model = model
                .subset(indices)
                .expect("scenario P-state subset must be valid");
        }
        if let Some(factor) = self.idle_scale {
            model = model
                .with_idle_scale(factor)
                .expect("scenario idle scale must be valid");
        }
        let topology = match self.topology_override.clone() {
            Some(t) => t,
            None if self.mix.workload_count() >= 180 => Topology::paper_180(),
            None => Topology::paper_60(),
        };
        let models_override = if self.heterogeneous {
            let transform = |m: ServerModel| -> ServerModel {
                let mut m = m;
                if let Some(factor) = self.idle_scale {
                    m = m.with_idle_scale(factor).expect("valid idle scale");
                }
                m
            };
            let blade = transform(ServerModel::blade_a());
            let standalone = transform(ServerModel::server_b());
            Some(
                topology
                    .servers()
                    .map(|s| {
                        if topology.enclosure_of(s).is_some() {
                            blade.clone()
                        } else {
                            standalone.clone()
                        }
                    })
                    .collect(),
            )
        } else {
            None
        };
        let traces = if self.topology_override.is_some() {
            build_scale_traces(
                topology.num_servers(),
                self.horizon,
                self.seed,
                self.diurnal_period,
            )
        } else {
            build_mix_traces(self.mix, self.horizon, self.seed, self.diurnal_period)
        };
        let label = format!(
            "{}{}/{} {} [{}]{}{}",
            if self.heterogeneous { "Hetero+" } else { "" },
            self.system.label(),
            self.mix.label(),
            self.mode.label(),
            self.budgets.label(),
            if self.label_suffix.is_empty() {
                ""
            } else {
                " "
            },
            self.label_suffix
        );
        ExperimentConfig {
            label,
            model,
            models_override,
            topology,
            traces,
            budgets: self.budgets,
            intervals: self.intervals,
            lambda: self.lambda,
            beta: self.beta,
            vmc: self.vmc,
            sim: self.sim,
            mode: self.mode,
            mask: self.mask,
            policy: self.policy,
            horizon: self.horizon,
            threads: self.threads,
            electrical_cap_frac: self.electrical_cap_frac,
            faults: self.faults,
            bus: self.bus,
            redundancy: self.redundancy,
            invariants: self.invariants,
        }
    }
}

/// Generates exactly `n` enterprise workloads by cycling the nine site
/// profiles — the corpus for arbitrary-size (multi-rack) topologies.
fn build_scale_traces(n: usize, horizon: u64, seed: u64, diurnal_period: usize) -> Vec<UtilTrace> {
    let len = (horizon as usize).max(diurnal_period);
    let profiles = EnterpriseProfile::default_sites();
    let per_site = n.div_ceil(profiles.len()).max(1);
    let mut traces = Corpus::from_profiles(&profiles, per_site, len, seed).into_traces();
    traces.truncate(n);
    traces
}

/// Generates the enterprise corpus sized for the run and selects a mix.
fn build_mix_traces(mix: Mix, horizon: u64, seed: u64, diurnal_period: usize) -> Vec<UtilTrace> {
    // Trace length: at least one diurnal period, at most the horizon
    // (traces wrap cyclically). Generating exactly the horizon keeps runs
    // free of wrap artifacts.
    let len = (horizon as usize).max(diurnal_period);
    let corpus = Corpus::enterprise(len, seed);
    corpus
        .mix(mix)
        .expect("enterprise corpus supports all mixes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_selects_matching_topology() {
        let cfg = Scenario::paper(
            SystemKind::BladeA,
            Mix::All180,
            CoordinationMode::Coordinated,
        )
        .horizon(100)
        .build();
        assert_eq!(cfg.topology.num_servers(), 180);
        assert_eq!(cfg.traces.len(), 180);
        let cfg60 = Scenario::paper(
            SystemKind::ServerB,
            Mix::Hh60,
            CoordinationMode::Coordinated,
        )
        .horizon(100)
        .build();
        assert_eq!(cfg60.topology.num_servers(), 60);
        assert_eq!(cfg60.traces.len(), 60);
    }

    #[test]
    fn label_mentions_system_mix_and_mode() {
        let cfg = Scenario::paper(
            SystemKind::ServerB,
            Mix::H60,
            CoordinationMode::Uncoordinated,
        )
        .horizon(100)
        .build();
        assert!(cfg.label.contains("Server B"));
        assert!(cfg.label.contains("60H"));
        assert!(cfg.label.contains("Uncoordinated"));
        assert!(cfg.label.contains("20-15-10"));
    }

    #[test]
    fn pstate_subset_flows_into_model() {
        let cfg = Scenario::paper(
            SystemKind::BladeA,
            Mix::All180,
            CoordinationMode::Coordinated,
        )
        .pstate_subset(vec![0, 4])
        .horizon(100)
        .build();
        assert_eq!(cfg.model.num_pstates(), 2);
    }

    #[test]
    fn same_seed_same_traces() {
        let a = Scenario::paper(
            SystemKind::BladeA,
            Mix::All180,
            CoordinationMode::Coordinated,
        )
        .horizon(200)
        .build();
        let b = Scenario::paper(
            SystemKind::BladeA,
            Mix::All180,
            CoordinationMode::Coordinated,
        )
        .horizon(200)
        .build();
        assert_eq!(a.traces, b.traces);
    }

    #[test]
    fn multi_rack_sizes_traces_to_topology() {
        let cfg = Scenario::multi_rack(
            SystemKind::BladeA,
            CoordinationMode::Coordinated,
            4,
            2,
            16,
            32,
        )
        .horizon(100)
        .build();
        assert_eq!(cfg.topology.num_servers(), 4 * 2 * 16 + 32);
        assert_eq!(cfg.traces.len(), cfg.topology.num_servers());
        assert_eq!(cfg.topology.num_racks(), 4);
        assert_eq!(cfg.topology.num_enclosures(), 8);
        assert!(cfg.label.contains("scale 4r x 2e x 16b + 32"));
    }

    #[test]
    fn multi_rack_traces_are_deterministic() {
        let build = || {
            Scenario::multi_rack(
                SystemKind::ServerB,
                CoordinationMode::Coordinated,
                2,
                3,
                8,
                12,
            )
            .horizon(150)
            .seed(9)
            .build()
        };
        let (a, b) = (build(), build());
        assert_eq!(a.traces, b.traces);
    }

    #[test]
    fn topology_override_applies_to_paper_scenario() {
        let cfg = Scenario::paper(
            SystemKind::BladeA,
            Mix::All180,
            CoordinationMode::Coordinated,
        )
        .topology(Topology::builder().enclosures(3, 10).standalone(6).build())
        .horizon(100)
        .build();
        assert_eq!(cfg.topology.num_servers(), 36);
        assert_eq!(cfg.traces.len(), 36);
    }

    #[test]
    fn threads_knob_flows_into_config_but_not_label() {
        let build = |n: usize| {
            Scenario::paper(SystemKind::BladeA, Mix::L60, CoordinationMode::Coordinated)
                .horizon(50)
                .threads(n)
                .build()
        };
        let (one, four) = (build(1), build(4));
        assert_eq!(one.threads, 1);
        assert_eq!(four.threads, 4);
        // The knob must not leak into the label: results are identical,
        // so sweeps and checkpoints key on the same label at any count.
        assert_eq!(one.label, four.label);
        // Zero is sanitized to the sequential path.
        assert_eq!(build(0).threads, 1);
    }

    #[test]
    fn builders_chain() {
        let cfg = Scenario::paper(SystemKind::BladeA, Mix::L60, CoordinationMode::Coordinated)
            .budgets(BudgetSpec::PAPER_30_25_20)
            .policy(PolicyKind::Fair)
            .electrical_cap(0.95)
            .horizon(50)
            .label("custom")
            .build();
        assert_eq!(cfg.budgets, BudgetSpec::PAPER_30_25_20);
        assert!(matches!(cfg.policy, PolicyKind::Fair));
        assert_eq!(cfg.electrical_cap_frac, Some(0.95));
        assert!(cfg.label.ends_with("custom"));
    }
}

//! Errors for hand-assembled experiment configurations.

use std::fmt;

/// Errors surfaced by [`crate::Runner::try_new`].
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// A controller gain was non-positive or non-finite.
    InvalidGain {
        /// Which gain (`"lambda"` or `"beta"`).
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// `models_override` does not provide one model per server.
    ModelCountMismatch {
        /// Models provided.
        models: usize,
        /// Servers in the topology.
        servers: usize,
    },
    /// The simulator rejected the configuration.
    Sim(nps_sim::SimError),
    /// A checkpoint could not be restored into this runner (wrong
    /// experiment, incompatible format version, or mismatched sizes).
    Checkpoint(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidGain { name, value } => {
                write!(
                    f,
                    "controller gain `{name}` must be positive and finite, got {value}"
                )
            }
            CoreError::ModelCountMismatch { models, servers } => write!(
                f,
                "models_override has {models} models for a {servers}-server topology"
            ),
            CoreError::Sim(e) => write!(f, "simulator rejected the configuration: {e}"),
            CoreError::Checkpoint(why) => write!(f, "checkpoint cannot be restored: {why}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nps_sim::SimError> for CoreError {
    fn from(e: nps_sim::SimError) -> Self {
        CoreError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_problem() {
        let e = CoreError::InvalidGain {
            name: "lambda",
            value: -1.0,
        };
        assert!(e.to_string().contains("lambda"));
        let e = CoreError::ModelCountMismatch {
            models: 2,
            servers: 5,
        };
        assert!(e.to_string().contains('2') && e.to_string().contains('5'));
    }

    #[test]
    fn sim_errors_are_chained() {
        use std::error::Error;
        let e = CoreError::from(nps_sim::SimError::NoWorkloads);
        assert!(e.source().is_some());
    }
}

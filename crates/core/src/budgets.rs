//! Static power budgets at the three capping levels.

use nps_models::ServerModel;
use nps_sim::Topology;
use serde::{Deserialize, Serialize};

/// Power budgets as fractions *off* the maximum possible consumption at
/// each level — the paper's `20-15-10` notation means caps 20%, 15% and
/// 10% below group, enclosure and local (server) maxima respectively.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetSpec {
    /// Fraction off the group maximum (`CAP_GRP = (1−x)·max`).
    pub group_off: f64,
    /// Fraction off each enclosure maximum.
    pub enclosure_off: f64,
    /// Fraction off each server maximum.
    pub local_off: f64,
}

impl BudgetSpec {
    /// The paper's base configuration `20-15-10`.
    pub const PAPER_20_15_10: BudgetSpec = BudgetSpec {
        group_off: 0.20,
        enclosure_off: 0.15,
        local_off: 0.10,
    };

    /// The paper's tighter configuration `25-20-15`.
    pub const PAPER_25_20_15: BudgetSpec = BudgetSpec {
        group_off: 0.25,
        enclosure_off: 0.20,
        local_off: 0.15,
    };

    /// The paper's tightest configuration `30-25-20`.
    pub const PAPER_30_25_20: BudgetSpec = BudgetSpec {
        group_off: 0.30,
        enclosure_off: 0.25,
        local_off: 0.20,
    };

    /// The three configurations of the Figure 10 study, loosest first.
    pub const FIGURE10: [BudgetSpec; 3] = [
        BudgetSpec::PAPER_20_15_10,
        BudgetSpec::PAPER_25_20_15,
        BudgetSpec::PAPER_30_25_20,
    ];

    /// The paper's `G-E-L` label (e.g. `"20-15-10"`).
    pub fn label(&self) -> String {
        format!(
            "{:.0}-{:.0}-{:.0}",
            self.group_off * 100.0,
            self.enclosure_off * 100.0,
            self.local_off * 100.0
        )
    }

    /// Per-server static caps `CAP_LOC_i` for a homogeneous fleet.
    pub fn local_caps(&self, model: &ServerModel, topo: &Topology) -> Vec<f64> {
        vec![(1.0 - self.local_off) * model.max_power(); topo.num_servers()]
    }

    /// Per-enclosure static caps `CAP_ENC_q`.
    pub fn enclosure_caps(&self, model: &ServerModel, topo: &Topology) -> Vec<f64> {
        (0..topo.num_enclosures())
            .map(|e| {
                let members = topo.enclosure_servers(nps_sim::EnclosureId(e)).len() as f64;
                (1.0 - self.enclosure_off) * model.max_power() * members
            })
            .collect()
    }

    /// The group static cap `CAP_GRP`.
    pub fn group_cap(&self, model: &ServerModel, topo: &Topology) -> f64 {
        (1.0 - self.group_off) * model.max_power() * topo.num_servers() as f64
    }
}

impl std::fmt::Display for BudgetSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(BudgetSpec::PAPER_20_15_10.label(), "20-15-10");
        assert_eq!(BudgetSpec::PAPER_30_25_20.to_string(), "30-25-20");
    }

    #[test]
    fn caps_derate_level_maxima() {
        let model = ServerModel::blade_a();
        let topo = Topology::paper_60();
        let spec = BudgetSpec::PAPER_20_15_10;
        let loc = spec.local_caps(&model, &topo);
        assert_eq!(loc.len(), 60);
        assert!((loc[0] - 0.9 * model.max_power()).abs() < 1e-9);
        let enc = spec.enclosure_caps(&model, &topo);
        assert_eq!(enc.len(), 2);
        assert!((enc[0] - 0.85 * 20.0 * model.max_power()).abs() < 1e-9);
        let grp = spec.group_cap(&model, &topo);
        assert!((grp - 0.8 * 60.0 * model.max_power()).abs() < 1e-6);
    }

    #[test]
    fn figure10_specs_tighten_monotonically() {
        let [a, b, c] = BudgetSpec::FIGURE10;
        assert!(a.group_off < b.group_off && b.group_off < c.group_off);
        assert!(a.local_off < b.local_off && b.local_off < c.local_off);
    }
}

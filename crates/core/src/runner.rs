//! The experiment runner: wires the five controllers over the simulator
//! according to the coordination mode, executes the horizon, and collects
//! the paper's metrics.

use nps_control::{
    BankShard, BankSnapshot, CapperLevel, CapperSnapshot, ControllerBank, ElectricalCapper,
    GroupCapper,
};
use nps_metrics::{
    BudgetLevel, Comparison, ControllerKind, DegradationPolicy, FaultStats, InvariantKind,
    InvariantStats, LevelViolations, Recorder, RingRecorder, RunStats, SensorFaultKind,
    TelemetryEvent, ViolationCounter,
};
use nps_models::{PState, ServerModel};
use nps_opt::{ClusterContext, Vmc};
use nps_sim::{
    reduce, ActuatorDrawShard, ActuatorShard, BusEvent, BusSnapshot, ControlBus, ControllerLayer,
    EnclosureId, FaultInjector, FaultPlan, GrantMsg, InjectorSnapshot, LinkId, OutageWindow,
    Reading, RedundancyConfig, RedundancyStats, ReplicaState, SensorChannel, SensorDrawShard,
    ServerId, SimConfig, SimEpochView, SimSnapshot, Simulation, VmId, WorkerPool,
};
use std::ops::Range;
use std::sync::Mutex;

use crate::arch::ControllerMask;
use crate::config::ExperimentConfig;
use crate::CoreError;

/// The outcome of [`run_experiment`]: the run's metrics normalized
/// against its no-controller baseline.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExperimentResult {
    /// The configuration's label.
    pub label: String,
    /// Baseline-normalized metrics (power savings, perf loss, violations).
    pub comparison: Comparison,
    /// The baseline's raw stats.
    pub baseline: RunStats,
}

/// Runs `cfg` and its baseline (same traces and fleet, no controllers),
/// returning normalized results.
pub fn run_experiment(cfg: &ExperimentConfig) -> ExperimentResult {
    let mut baseline_cfg = cfg.clone();
    baseline_cfg.mask = ControllerMask::NONE;
    baseline_cfg.label = format!("{} (baseline)", cfg.label);
    // The baseline is the normalization reference: it stays fault-free
    // even when the run under test injects faults.
    baseline_cfg.faults = FaultPlan::disabled();
    let baseline = Runner::new(&baseline_cfg).run_to_horizon();
    let run = Runner::new(cfg).run_to_horizon();
    ExperimentResult {
        label: cfg.label.clone(),
        comparison: Comparison::against_baseline(run, &baseline),
        baseline,
    }
}

/// Where a bus link terminates: the receiver that applies a delivered
/// grant.
#[derive(Debug, Clone, Copy)]
enum GrantTarget {
    /// A server's SM/bank slot (EM→member or GM→standalone grants).
    Server(usize),
    /// An enclosure manager (GM→EM grants).
    Enclosure(usize),
}

/// Static routing record for one registered bus link: how a delivery on
/// that link is applied and labelled in telemetry.
#[derive(Debug, Clone, Copy)]
struct LinkMeta {
    level: BudgetLevel,
    child: usize,
    target: GrantTarget,
}

/// Which warm-standby replica a state-sync bus link feeds.
#[derive(Debug, Clone, Copy)]
enum SyncPeer {
    /// The Group Manager's standby.
    Gm,
    /// Enclosure `e`'s EM standby.
    Em(usize),
}

/// One live experiment: the simulator plus controller instances and the
/// measurement windows connecting them.
///
/// For standard experiments use [`run_experiment`]; construct a `Runner`
/// directly to drive the system tick by tick (e.g. to sample temperature
/// or P-state trajectories in examples).
#[derive(Debug)]
pub struct Runner {
    // Configuration (flattened for the hot loop).
    label: String,
    mask: ControllerMask,
    mode: crate::arch::CoordinationMode,
    intervals: crate::intervals::Intervals,
    horizon: u64,
    // Substrate.
    sim: Simulation,
    models: Vec<ServerModel>,
    // Controllers. Per-server EC + SM state lives in a contiguous
    // structure-of-arrays bank rather than one object per server.
    bank: ControllerBank,
    ems: Vec<GroupCapper>,
    gm: GroupCapper,
    vmc: Vmc,
    elec: Option<Vec<ElectricalCapper>>,
    /// Standing SM P-state demands for the min-merge mode.
    sm_hold: Vec<Option<PState>>,
    // Static caps.
    cap_loc: Vec<f64>,
    cap_enc: Vec<f64>,
    cap_grp: f64,
    // Runner-owned CSR copy of the enclosure membership, so the EM/GM
    // epochs walk flat arrays instead of cloning topology lists.
    enc_offsets: Vec<usize>,
    enc_members: Vec<ServerId>,
    standalone_ids: Vec<ServerId>,
    // Reusable epoch scratch buffers (no per-epoch allocation).
    scratch_power: Vec<f64>,
    scratch_caps: Vec<f64>,
    scratch_consumption: Vec<f64>,
    scratch_child_caps: Vec<f64>,
    scratch_demands: Vec<f64>,
    // Measurement-window snapshots (cumulative values at last epoch).
    snap_util_ec: Vec<f64>,
    snap_power_sm: Vec<f64>,
    snap_power_em: Vec<f64>,
    snap_power_gm: Vec<f64>,
    snap_encpow_em: Vec<f64>,
    snap_encpow_gm: Vec<f64>,
    // Runner-side per-VM estimate accumulators.
    cum_real: Vec<f64>,
    cum_apparent: Vec<f64>,
    snap_real: Vec<f64>,
    snap_apparent: Vec<f64>,
    win_max_real: Vec<f64>,
    win_max_apparent: Vec<f64>,
    // Fault injection and graceful degradation.
    injector: FaultInjector,
    fstats: FaultStats,
    /// Last good reading per channel, the hold-last-good fallback for
    /// dropped samples and non-finite values at the ingestion boundary.
    last_util_ec: Vec<f64>,
    last_power_sm: Vec<f64>,
    last_encpow_em: Vec<f64>,
    last_child_gm: Vec<f64>,
    /// Outage edge detection: local-cap fallback fires once per
    /// down-transition, not every skipped epoch.
    em_was_down: Vec<bool>,
    gm_was_down: bool,
    // Control-plane bus: every budget grant is a sequence-numbered,
    // lease-bearing message routed through this queue.
    bus: ControlBus,
    /// Grant-lease duration in ticks (0 = leases off; sanitized copy of
    /// the bus config so the hot path avoids re-reading it).
    lease_ticks: u64,
    /// Per-link routing metadata, indexed by `LinkId.0`.
    link_meta: Vec<LinkMeta>,
    /// Server index → link slot of the grant edge terminating at that
    /// server (enclosure members and standalone servers both have one).
    server_link: Vec<Option<usize>>,
    /// Enclosure index → link slot of the GM→EM grant edge.
    em_link: Vec<usize>,
    // Violation accounting.
    violations: LevelViolations,
    win_sm: ViolationCounter,
    win_em: ViolationCounter,
    win_gm: ViolationCounter,
    // Progress.
    ticks_done: u64,
    skipped_migrations: u64,
    power_trace: Option<nps_metrics::TimeSeries>,
    cum_latency_proxy: f64,
    latency_samples: u64,
    /// Wall-clock nanoseconds spent inside VMC arbitration epochs.
    /// Timing diagnostic like the pool's `busy_nanos` — never part of a
    /// checkpoint.
    arb_ns: u64,
    /// Telemetry sink; `None` costs one discriminant test per event site.
    recorder: Option<Box<dyn Recorder>>,
    // Rack-sharded parallel execution. The persistent worker pool and the
    // topology's size-weighted shard partition drive the parallel phase
    // of the simulator step and the EC/SM/EM epochs, the GM's window
    // fan-out, and the electrical clamp; `pool == None` is the fully
    // sequential legacy path. Results are bit-identical at every thread
    // count, so none of these fields is part of a checkpoint (resuming
    // at a different `--threads` is exact by construction).
    pool: Option<WorkerPool>,
    shards: Vec<Range<usize>>,
    /// Per-shard enclosure ordinal ranges: `shard_encs[k]` are the
    /// enclosures whose member servers lie entirely inside `shards[k]`.
    /// Valid (dense, covering every enclosure) only when `enc_aligned`.
    shard_encs: Vec<Range<usize>>,
    /// Whether every enclosure is wholly owned by one shard (the weighted
    /// [`nps_sim::Topology::shard_ranges`] partition snaps cuts to
    /// enclosure boundaries, so this holds except for degenerate
    /// topologies, e.g. an empty enclosure). Gates the parallel EM epoch
    /// and GM fan-out; when false those run sequentially.
    enc_aligned: bool,
    /// Static copy of the fault plan's outage windows, so parallel shard
    /// workers can evaluate `offline` without borrowing the injector
    /// (whose actuator-jam state is carved into the shards).
    outage_windows: Vec<OutageWindow>,
    // Controller redundancy: optional warm standbys for the GM and EMs.
    // The failure detector and every promotion/fencing decision run in
    // the sequential global phase, so redundancy never perturbs the
    // thread-count determinism contract.
    redundancy: RedundancyConfig,
    /// GM standby replica (None when not configured).
    gm_replica: Option<ReplicaState>,
    /// Per-enclosure EM standby replicas (empty when not configured).
    em_replicas: Vec<ReplicaState>,
    rstats: RedundancyStats,
    /// First bus slot of the state-sync links. Every slot below it is a
    /// grant link with a `link_meta` entry; sync links are registered
    /// after all grant links so grant slots (and their per-link fault
    /// streams) are identical with redundancy on or off.
    sync_base: usize,
    /// Sync-link routing: `slot - sync_base` → the replica it feeds.
    sync_peers: Vec<SyncPeer>,
    /// Enclosure → sync-link slot (empty without EM standbys).
    em_sync_link: Vec<usize>,
    /// GM sync-link slot (None without a GM standby).
    gm_sync_link: Option<usize>,
    // Runtime safety-invariant monitor (side-effect-free observer).
    invariants_on: bool,
    istats: InvariantStats,
    /// Hardened (post-ingestion) per-child window averages produced by
    /// the GM window pass: enclosures first, then standalone servers.
    scratch_child_raw: Vec<f64>,
}

impl Runner {
    /// Builds the runner (simulator + controllers) for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent (e.g. more
    /// workloads than the simulator accepts); scenario builders produce
    /// consistent configurations. Use [`Runner::try_new`] for
    /// hand-assembled configurations.
    pub fn new(cfg: &ExperimentConfig) -> Self {
        Self::try_new(cfg).expect("scenario configurations are consistent")
    }

    /// Builds the runner, surfacing configuration inconsistencies (sizes
    /// that disagree, invalid gains) as errors instead of panics.
    pub fn try_new(cfg: &ExperimentConfig) -> Result<Self, CoreError> {
        if cfg.lambda <= 0.0 || !cfg.lambda.is_finite() {
            return Err(CoreError::InvalidGain {
                name: "lambda",
                value: cfg.lambda,
            });
        }
        if cfg.beta <= 0.0 || !cfg.beta.is_finite() {
            return Err(CoreError::InvalidGain {
                name: "beta",
                value: cfg.beta,
            });
        }
        if let Some(models) = &cfg.models_override {
            if models.len() != cfg.topology.num_servers() {
                return Err(CoreError::ModelCountMismatch {
                    models: models.len(),
                    servers: cfg.topology.num_servers(),
                });
            }
        }
        let models = cfg.server_models();
        let intervals = cfg.intervals.sanitized();
        let sim_cfg = SimConfig {
            alpha_v: cfg.vmc.alpha_v,
            ..cfg.sim
        };
        let sim = Simulation::with_models_and_placement(
            cfg.topology.clone(),
            models.clone(),
            cfg.traces.clone(),
            nps_sim::Placement::one_per_server(cfg.traces.len(), cfg.topology.num_servers()),
            sim_cfg,
        )
        .map_err(CoreError::Sim)?;

        let n = cfg.topology.num_servers();
        let num_vms = cfg.traces.len();
        let cap_loc: Vec<f64> = (0..n)
            .map(|i| (1.0 - cfg.budgets.local_off) * models[i].max_power())
            .collect();
        // Capacity sums run through the fixed-shape reduction tree like
        // every other fleet-indexed aggregate (one reduction story).
        let cap_enc: Vec<f64> = (0..cfg.topology.num_enclosures())
            .map(|e| {
                let servers = cfg.topology.enclosure_servers(EnclosureId(e));
                let sum =
                    reduce::tree_sum_by(servers.len(), |m| models[servers[m].index()].max_power());
                (1.0 - cfg.budgets.enclosure_off) * sum
            })
            .collect();
        let cap_grp = (1.0 - cfg.budgets.group_off)
            * reduce::tree_sum_by(models.len(), |i| models[i].max_power());

        // One EC (starting at f_max, r_ref = 0.75) and one SM (static cap
        // CAP_LOC, unbounded grant) per server, banked into flat arrays.
        let bank = ControllerBank::new(
            nps_models::ModelTable::from_models(&models),
            cfg.lambda,
            cfg.beta,
            0.75,
            &cap_loc,
        );
        let num_enclosures = cfg.topology.num_enclosures();
        let mut enc_offsets = Vec::with_capacity(num_enclosures + 1);
        let mut enc_members = Vec::new();
        enc_offsets.push(0);
        for e in 0..num_enclosures {
            enc_members.extend_from_slice(cfg.topology.enclosure_servers(EnclosureId(e)));
            enc_offsets.push(enc_members.len());
        }
        let standalone_ids = cfg.topology.standalone_servers().to_vec();
        let ems: Vec<GroupCapper> = (0..cfg.topology.num_enclosures())
            .map(|e| {
                GroupCapper::new(
                    CapperLevel::Enclosure,
                    cap_enc[e],
                    cfg.policy
                        .make(cfg.topology.enclosure_servers(EnclosureId(e)).len()),
                )
            })
            .collect();
        let gm_children = cfg.topology.num_enclosures() + cfg.topology.standalone_servers().len();
        let gm = GroupCapper::new(CapperLevel::Group, cap_grp, cfg.policy.make(gm_children));

        let mut vmc_cfg = cfg.vmc;
        vmc_cfg.use_budget_constraints =
            cfg.vmc.use_budget_constraints && cfg.mode.vmc_uses_budget_constraints();
        vmc_cfg.use_feedback = cfg.vmc.use_feedback && cfg.mode.vmc_uses_feedback();
        if !cfg.mask.ec {
            // Without ECs servers stay at P0; the power estimator must use
            // the P0 curve rather than an EC-settled operating point.
            vmc_cfg.assumed_r_ref = 0.01;
        }
        let vmc = Vmc::new(vmc_cfg);

        let elec: Option<Vec<ElectricalCapper>> = cfg.electrical_cap_frac.map(|frac| {
            (0..n)
                .map(|i| ElectricalCapper::new(&models[i], frac * models[i].max_power()))
                .collect()
        });
        let mut sim = sim;
        if let Some(elec) = &elec {
            // A fuse-level cap admits no violation at all — including the
            // very first tick before any controller has acted.
            for (i, capper) in elec.iter().enumerate() {
                let s = ServerId(i);
                sim.set_pstate(s, capper.clamp(sim.pstate(s)));
            }
        }

        // Control-plane bus: one link per grant edge, registered in a
        // fixed order (EM→member links per enclosure, then GM→EM links,
        // then GM→standalone links) so link ids are stable across runs
        // and checkpoints.
        let bus_cfg = cfg.bus.clone().sanitized();
        let mut bus = ControlBus::new(&bus_cfg);
        let mut link_meta: Vec<LinkMeta> = Vec::new();
        let mut server_link: Vec<Option<usize>> = vec![None; n];
        let mut em_link: Vec<usize> = Vec::with_capacity(num_enclosures);
        for e in 0..num_enclosures {
            for (k, &s) in enc_members[enc_offsets[e]..enc_offsets[e + 1]]
                .iter()
                .enumerate()
            {
                let link = bus.register_link();
                debug_assert_eq!(link.0, link_meta.len());
                link_meta.push(LinkMeta {
                    level: BudgetLevel::Enclosure,
                    child: k,
                    target: GrantTarget::Server(s.index()),
                });
                server_link[s.index()] = Some(link.0);
            }
        }
        for e in 0..num_enclosures {
            let link = bus.register_link();
            em_link.push(link.0);
            link_meta.push(LinkMeta {
                level: BudgetLevel::Group,
                child: e,
                target: GrantTarget::Enclosure(e),
            });
        }
        for (k, &s) in standalone_ids.iter().enumerate() {
            let link = bus.register_link();
            link_meta.push(LinkMeta {
                level: BudgetLevel::Group,
                child: num_enclosures + k,
                target: GrantTarget::Server(s.index()),
            });
            server_link[s.index()] = Some(link.0);
        }
        // Warm-standby state-sync links, registered after every grant
        // link: the grant slots (and the per-link loss streams keyed on
        // them) stay identical whether or not redundancy is configured.
        let redundancy = cfg.redundancy.sanitized();
        let sync_base = link_meta.len();
        let mut sync_peers: Vec<SyncPeer> = Vec::new();
        let mut em_sync_link: Vec<usize> = Vec::new();
        let mut gm_sync_link: Option<usize> = None;
        if redundancy.em_standby {
            for e in 0..num_enclosures {
                let link = bus.register_link();
                debug_assert_eq!(link.0, sync_base + sync_peers.len());
                em_sync_link.push(link.0);
                sync_peers.push(SyncPeer::Em(e));
            }
        }
        if redundancy.gm_standby {
            let link = bus.register_link();
            gm_sync_link = Some(link.0);
            sync_peers.push(SyncPeer::Gm);
        }
        // Both sides of a pair boot from the same configuration, so each
        // standby starts with an exact shadow of its primary.
        let em_replicas: Vec<ReplicaState> = if redundancy.em_standby {
            ems.iter()
                .map(|em| ReplicaState::new(encode_capper(&em.snapshot())))
                .collect()
        } else {
            Vec::new()
        };
        let gm_replica = redundancy
            .gm_standby
            .then(|| ReplicaState::new(encode_capper(&gm.snapshot())));

        // Seed the hold-last-good stores at each server's idle operating
        // point (P0, zero utilization) rather than 0.0: a sample dropped
        // before the first clean reading then degrades to a physically
        // plausible value instead of a phantom zero-watt observation.
        let last_power_sm: Vec<f64> = (0..n).map(|i| models[i].idle_power(0)).collect();
        let last_encpow_em: Vec<f64> = (0..num_enclosures)
            .map(|e| {
                let members = &enc_members[enc_offsets[e]..enc_offsets[e + 1]];
                reduce::tree_sum_by(members.len(), |m| models[members[m].index()].idle_power(0))
                    + cfg.sim.enclosure_base_watts
            })
            .collect();
        let mut last_child_gm: Vec<f64> = last_encpow_em.clone();
        last_child_gm.extend(
            standalone_ids
                .iter()
                .map(|&s| models[s.index()].idle_power(0)),
        );

        // Size-weighted shard partition: up to 2 shards per thread (so the
        // pool's dynamic claiming can rebalance uneven racks), with cuts
        // snapped to enclosure boundaries. A pool only pays off when there
        // are at least two shards to hand out; below that the sequential
        // path is both faster and simpler.
        let shards = cfg.topology.shard_ranges(cfg.threads.max(1) * 2);
        let pool = if cfg.threads > 1 && shards.len() >= 2 {
            Some(WorkerPool::new(cfg.threads))
        } else {
            None
        };

        // Map each enclosure to the shard wholly containing its members.
        // `shard_ranges` snaps cuts to enclosure boundaries, so normally
        // every enclosure is owned by exactly one shard and the EM epoch /
        // GM window fan-out can run per-shard; a degenerate topology
        // (empty enclosure, non-contiguous member ids) falls back to the
        // sequential paths via `enc_aligned = false`.
        let mut shard_encs: Vec<Range<usize>> = Vec::with_capacity(shards.len());
        let mut enc_aligned = true;
        {
            let mut e = 0usize;
            for r in &shards {
                let start = e;
                while e < num_enclosures {
                    let (m0, m1) = (enc_offsets[e], enc_offsets[e + 1]);
                    if m0 == m1 {
                        enc_aligned = false;
                        break;
                    }
                    let first = enc_members[m0].index();
                    let last = enc_members[m1 - 1].index();
                    if first < r.start || first >= r.end {
                        break;
                    }
                    if last >= r.end || last - first + 1 != m1 - m0 {
                        // Straddles a shard cut, or member ids are not
                        // contiguous: no shard can own it outright.
                        enc_aligned = false;
                        break;
                    }
                    e += 1;
                }
                shard_encs.push(start..e);
                if !enc_aligned {
                    break;
                }
            }
            if e != num_enclosures {
                enc_aligned = false;
            }
            while shard_encs.len() < shards.len() {
                shard_encs.push(num_enclosures..num_enclosures);
            }
        }
        // The GM fan-out additionally indexes its standalone scratch by
        // `server id - flat`, which requires the standalone tail to be
        // dense after the blade region (true by construction).
        let flat = enc_members.len();
        if !standalone_ids
            .iter()
            .enumerate()
            .all(|(k, s)| s.index() == flat + k)
        {
            enc_aligned = false;
        }

        let injector = FaultInjector::new(&cfg.faults, n, num_enclosures, standalone_ids.len());
        let outage_windows = injector.plan().outages.clone();

        Ok(Self {
            label: cfg.label.clone(),
            mask: cfg.mask,
            mode: cfg.mode,
            intervals,
            horizon: cfg.horizon,
            sim,
            bank,
            ems,
            gm,
            vmc,
            elec,
            sm_hold: vec![None; n],
            cap_loc,
            cap_enc,
            cap_grp,
            enc_offsets,
            enc_members,
            standalone_ids,
            scratch_power: Vec::new(),
            scratch_caps: Vec::new(),
            scratch_consumption: Vec::new(),
            scratch_child_caps: Vec::new(),
            scratch_demands: Vec::new(),
            snap_util_ec: vec![0.0; n],
            snap_power_sm: vec![0.0; n],
            snap_power_em: vec![0.0; n],
            snap_power_gm: vec![0.0; n],
            snap_encpow_em: vec![0.0; cfg.topology.num_enclosures()],
            snap_encpow_gm: vec![0.0; cfg.topology.num_enclosures()],
            injector,
            fstats: FaultStats::default(),
            last_util_ec: vec![0.0; n],
            last_power_sm,
            last_encpow_em,
            last_child_gm,
            em_was_down: vec![false; cfg.topology.num_enclosures()],
            gm_was_down: false,
            lease_ticks: bus_cfg.lease_ticks,
            bus,
            link_meta,
            server_link,
            em_link,
            cum_real: vec![0.0; num_vms],
            cum_apparent: vec![0.0; num_vms],
            snap_real: vec![0.0; num_vms],
            snap_apparent: vec![0.0; num_vms],
            win_max_real: vec![0.0; num_vms],
            win_max_apparent: vec![0.0; num_vms],
            violations: LevelViolations::new(),
            win_sm: ViolationCounter::new(),
            win_em: ViolationCounter::new(),
            win_gm: ViolationCounter::new(),
            ticks_done: 0,
            models,
            skipped_migrations: 0,
            power_trace: None,
            cum_latency_proxy: 0.0,
            latency_samples: 0,
            arb_ns: 0,
            recorder: None,
            pool,
            shards,
            shard_encs,
            enc_aligned,
            outage_windows,
            redundancy,
            gm_replica,
            em_replicas,
            rstats: RedundancyStats::default(),
            sync_base,
            sync_peers,
            em_sync_link,
            gm_sync_link,
            invariants_on: cfg.invariants,
            istats: InvariantStats::default(),
            scratch_child_raw: Vec::new(),
        })
    }

    /// Installs a telemetry [`Recorder`]; controller epochs emit
    /// [`TelemetryEvent`]s into it from now on.
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.recorder = Some(recorder);
    }

    /// Installs a bounded [`RingRecorder`] keeping the most recent
    /// `capacity` events (per-type counters stay exact past the bound).
    pub fn enable_ring_telemetry(&mut self, capacity: usize) {
        self.recorder = Some(Box::new(RingRecorder::new(capacity)));
    }

    /// The installed ring recorder, if [`Runner::enable_ring_telemetry`]
    /// (or an explicit `RingRecorder`) is in place.
    pub fn ring_telemetry(&self) -> Option<&RingRecorder> {
        self.recorder
            .as_ref()
            .and_then(|r| r.as_any().downcast_ref())
    }

    /// Removes and returns the recorder, leaving telemetry disabled.
    pub fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        self.recorder.take()
    }

    #[inline]
    fn recording(&self) -> bool {
        self.recorder.as_ref().is_some_and(|r| r.enabled())
    }

    #[inline]
    fn emit<F: FnOnce() -> TelemetryEvent>(&mut self, event: F) {
        if let Some(r) = &mut self.recorder {
            if r.enabled() {
                r.record(event());
            }
        }
    }

    /// Fault and degradation counters accumulated so far (exact,
    /// independent of any recorder).
    pub fn fault_stats(&self) -> FaultStats {
        self.fstats
    }

    /// Redundancy-protocol counters accumulated so far (heartbeats,
    /// promotions, fencings, sync traffic). All-zero when no standby is
    /// configured.
    pub fn redundancy_stats(&self) -> RedundancyStats {
        self.rstats
    }

    /// Safety-invariant monitor counters accumulated so far. All-zero
    /// checks when the monitor is off.
    pub fn invariant_stats(&self) -> InvariantStats {
        self.istats
    }

    /// The GM's warm-standby replica, when one is configured.
    pub fn gm_replica(&self) -> Option<&ReplicaState> {
        self.gm_replica.as_ref()
    }

    /// Enclosure `e`'s warm-standby replica, when EM standbys are
    /// configured.
    pub fn em_replica(&self, e: usize) -> Option<&ReplicaState> {
        self.em_replicas.get(e)
    }

    /// The last-good slot backing `chan`/`idx` — the hold-last-good store.
    fn last_good_slot(&mut self, chan: SensorChannel, idx: usize) -> &mut f64 {
        match chan {
            SensorChannel::ServerUtilization => &mut self.last_util_ec[idx],
            SensorChannel::ServerPower => &mut self.last_power_sm[idx],
            SensorChannel::EnclosurePower => &mut self.last_encpow_em[idx],
            SensorChannel::GroupChildPower => &mut self.last_child_gm[idx],
        }
    }

    /// The ingestion boundary: routes one raw sensor reading through the
    /// fault injector, then applies the always-on hardening — non-finite
    /// or negative values and dropped samples degrade to the last good
    /// reading. Every controller input passes through here.
    fn ingest(&mut self, chan: SensorChannel, ctrl: ControllerKind, idx: usize, raw: f64) -> f64 {
        let t = self.ticks_done;
        let reading = self.injector.sense(chan, idx, t, raw);
        let delivered = match reading {
            Reading::Clean(v) => Some(v),
            Reading::Noisy(v) => {
                self.fstats.sensor_noise += 1;
                self.emit(|| TelemetryEvent::SensorFault {
                    tick: t,
                    controller: ctrl,
                    index: idx,
                    fault: SensorFaultKind::Noise,
                });
                Some(v)
            }
            Reading::Stuck(v) => {
                self.fstats.sensor_stuck += 1;
                self.emit(|| TelemetryEvent::SensorFault {
                    tick: t,
                    controller: ctrl,
                    index: idx,
                    fault: SensorFaultKind::Stuck,
                });
                Some(v)
            }
            Reading::Dropped => {
                self.fstats.sensor_dropped += 1;
                self.emit(|| TelemetryEvent::SensorFault {
                    tick: t,
                    controller: ctrl,
                    index: idx,
                    fault: SensorFaultKind::Dropped,
                });
                None
            }
        };
        let value = match delivered {
            Some(v) if v.is_finite() && v >= 0.0 => v,
            Some(_) => {
                self.fstats.clamped_inputs += 1;
                self.emit(|| TelemetryEvent::Degradation {
                    tick: t,
                    controller: ctrl,
                    index: idx,
                    policy: DegradationPolicy::ClampNonFinite,
                });
                *self.last_good_slot(chan, idx)
            }
            None => {
                self.fstats.degradations += 1;
                self.emit(|| TelemetryEvent::Degradation {
                    tick: t,
                    controller: ctrl,
                    index: idx,
                    policy: DegradationPolicy::HoldLastGood,
                });
                *self.last_good_slot(chan, idx)
            }
        };
        *self.last_good_slot(chan, idx) = value;
        value
    }

    /// Writes a P-state unless the server's actuator is jammed; returns
    /// whether the write landed.
    fn write_pstate(&mut self, s: ServerId, p: PState, source: ControllerKind) -> bool {
        let t = self.ticks_done;
        if self.injector.pstate_write_blocked(s.index(), t) {
            self.fstats.actuator_blocked += 1;
            let server = s.index();
            self.emit(|| TelemetryEvent::ActuatorFault {
                tick: t,
                server,
                source,
            });
            return false;
        }
        self.sim.set_pstate(s, p);
        true
    }

    // ----- the control-plane bus ----------------------------------------

    /// The single entry point for every downstream budget grant (EM→
    /// member, GM→EM, GM→standalone — formerly four copy-pasted loss
    /// branches): draws the plan-level loss verdict from the link's own
    /// counter stream (position-independent, so every caller — epoch
    /// order, thread count, replay — sees the same verdict sequence),
    /// routes the grant through the bus as a sequence-numbered message,
    /// and synchronously drains due traffic so passthrough delivery
    /// lands in-place in the telemetry stream.
    fn deliver_grant(&mut self, link_slot: usize, watts: f64) {
        let t = self.ticks_done;
        let plan_lost = self.injector.budget_message_lost(link_slot);
        let (_seq, enqueued) = self.bus.send(LinkId(link_slot), watts, t, plan_lost);
        if !enqueued {
            // Lost outright — by the plan-level draw or the bus's own
            // drop model. The child holds its last granted budget (until
            // its lease, if any, lapses).
            let LinkMeta { level, child, .. } = self.link_meta[link_slot];
            self.fstats.messages_lost += 1;
            self.emit(|| TelemetryEvent::MessageLoss {
                tick: t,
                level,
                child,
            });
        }
        self.drain_bus();
    }

    /// Polls the bus and applies everything due now: fresh grants write
    /// the receiver's cap (and lease), duplicates and stale copies are
    /// rejected, retransmissions are counted.
    fn drain_bus(&mut self) {
        let t = self.ticks_done;
        for event in self.bus.poll(t) {
            let slot = match &event {
                BusEvent::Delivered(m) | BusEvent::Duplicate(m) | BusEvent::Exhausted(m) => {
                    m.link.0
                }
                BusEvent::Stale { msg, .. } | BusEvent::Retry { msg, .. } => msg.link.0,
            };
            // State-sync traffic feeds the standby replicas, never a
            // grant target (sync links sit above every grant slot).
            if slot >= self.sync_base {
                self.apply_sync_event(slot, &event);
                continue;
            }
            match event {
                BusEvent::Delivered(msg) => self.apply_grant(msg),
                BusEvent::Duplicate(msg) => {
                    let LinkMeta { level, child, .. } = self.link_meta[msg.link.0];
                    self.fstats.duplicates_dropped += 1;
                    let seq = msg.seq;
                    self.emit(|| TelemetryEvent::DuplicateDropped {
                        tick: t,
                        level,
                        child,
                        seq,
                    });
                }
                BusEvent::Stale { msg, accepted } => {
                    let LinkMeta { level, child, .. } = self.link_meta[msg.link.0];
                    self.fstats.stale_rejected += 1;
                    let seq = msg.seq;
                    self.emit(|| TelemetryEvent::StaleRejected {
                        tick: t,
                        level,
                        child,
                        seq,
                        accepted,
                    });
                }
                BusEvent::Retry {
                    msg,
                    attempt,
                    dropped,
                } => {
                    let LinkMeta { level, child, .. } = self.link_meta[msg.link.0];
                    self.fstats.grant_retries += 1;
                    let seq = msg.seq;
                    self.emit(|| TelemetryEvent::GrantRetry {
                        tick: t,
                        level,
                        child,
                        seq,
                        attempt,
                    });
                    if dropped {
                        self.fstats.messages_lost += 1;
                        self.emit(|| TelemetryEvent::MessageLoss {
                            tick: t,
                            level,
                            child,
                        });
                    }
                }
                // Retries exhausted: the sender gives up. With leases on,
                // the receiver's lease lapses back to its static cap; no
                // extra action here.
                BusEvent::Exhausted(_) => {}
            }
        }
    }

    /// Applies one accepted grant to its receiver and emits the legacy
    /// `BudgetGrant` event.
    fn apply_grant(&mut self, msg: GrantMsg) {
        let t = self.ticks_done;
        let LinkMeta {
            level,
            child,
            target,
        } = self.link_meta[msg.link.0];
        let lease_until = if self.lease_ticks > 0 {
            t + self.lease_ticks
        } else {
            u64::MAX
        };
        match target {
            GrantTarget::Server(i) => {
                if self.lease_ticks > 0 {
                    self.bank.set_granted_cap_leased(i, msg.watts, lease_until);
                } else {
                    self.bank.set_granted_cap(i, msg.watts);
                }
            }
            GrantTarget::Enclosure(e) => {
                if self.lease_ticks > 0 {
                    self.ems[e].set_granted_cap_leased(msg.watts, lease_until);
                } else {
                    self.ems[e].set_granted_cap(msg.watts);
                }
            }
        }
        let watts = msg.watts;
        self.emit(|| TelemetryEvent::BudgetGrant {
            tick: t,
            level,
            child,
            watts,
        });
    }

    /// Reverts every lapsed lease to its static cap, with telemetry.
    fn expire_leases(&mut self) {
        let t = self.ticks_done;
        for i in 0..self.server_link.len() {
            if self.bank.expire_lease(i, t) {
                let slot = self.server_link[i].expect("leased server must have a grant link");
                let LinkMeta { level, child, .. } = self.link_meta[slot];
                let seq = self.bus.accepted_seq(LinkId(slot));
                self.fstats.leases_expired += 1;
                self.emit(|| TelemetryEvent::LeaseExpired {
                    tick: t,
                    level,
                    child,
                    seq,
                });
            }
        }
        for e in 0..self.ems.len() {
            if self.ems[e].expire_lease(t) {
                let slot = self.em_link[e];
                let LinkMeta { level, child, .. } = self.link_meta[slot];
                let seq = self.bus.accepted_seq(LinkId(slot));
                self.fstats.leases_expired += 1;
                self.emit(|| TelemetryEvent::LeaseExpired {
                    tick: t,
                    level,
                    child,
                    seq,
                });
            }
        }
    }

    // ----- controller redundancy ----------------------------------------

    /// Routes one bus event on a state-sync link to its replica. Sync
    /// payloads ride in [`ReplicaState::inflight`] keyed by the bus
    /// sequence number; the bus only decides delivery, duplication,
    /// staleness, retransmission, or exhaustion.
    fn apply_sync_event(&mut self, slot: usize, event: &BusEvent) {
        let rep = match self.sync_peers[slot - self.sync_base] {
            SyncPeer::Gm => self.gm_replica.as_mut(),
            SyncPeer::Em(e) => self.em_replicas.get_mut(e),
        };
        let Some(rep) = rep else { return };
        match event {
            BusEvent::Delivered(m) => {
                if rep.deliver_sync(m.seq) {
                    self.rstats.syncs_applied += 1;
                }
            }
            // A duplicate's payload was already applied (or pruned as
            // stale) by the first copy; a stale copy was superseded by a
            // newer accepted sync. Neither touches the shadow.
            BusEvent::Duplicate(m) => {
                rep.drop_sync(m.seq);
            }
            BusEvent::Stale { msg, .. } => {
                rep.drop_sync(msg.seq);
            }
            BusEvent::Retry { dropped, .. } => {
                self.rstats.sync_retries += 1;
                if *dropped {
                    self.rstats.syncs_dropped += 1;
                }
            }
            BusEvent::Exhausted(m) => {
                if rep.drop_sync(m.seq) {
                    self.rstats.syncs_dropped += 1;
                }
            }
        }
    }

    /// Ships the GM's post-epoch controller state to its standby as a
    /// sequence-numbered sync message (no-op without a GM standby).
    fn send_gm_sync(&mut self) {
        let Some(slot) = self.gm_sync_link else {
            return;
        };
        let t = self.ticks_done;
        let snap = self.gm.snapshot();
        let watts = self.gm.effective_cap_watts();
        let (seq, enqueued) = self.bus.send(LinkId(slot), watts, t, false);
        self.rstats.syncs_sent += 1;
        if enqueued {
            if let Some(rep) = &mut self.gm_replica {
                rep.record_sync(seq, encode_capper(&snap));
            }
        } else {
            self.rstats.syncs_dropped += 1;
        }
        self.drain_bus();
    }

    /// Ships enclosure `e`'s EM state to its standby (no-op without EM
    /// standbys).
    fn send_em_sync(&mut self, e: usize) {
        let Some(&slot) = self.em_sync_link.get(e) else {
            return;
        };
        let t = self.ticks_done;
        let snap = self.ems[e].snapshot();
        let watts = self.ems[e].effective_cap_watts();
        let (seq, enqueued) = self.bus.send(LinkId(slot), watts, t, false);
        self.rstats.syncs_sent += 1;
        if enqueued {
            if let Some(rep) = self.em_replicas.get_mut(e) {
                rep.record_sync(seq, encode_capper(&snap));
            }
        } else {
            self.rstats.syncs_dropped += 1;
        }
        self.drain_bus();
    }

    /// Whether enclosure `e`'s standby currently leads (its primary is
    /// deposed), so the EM keeps operating through the primary's outage.
    #[inline]
    fn em_promoted(&self, e: usize) -> bool {
        self.em_replicas.get(e).is_some_and(|r| r.promoted)
    }

    /// Whether the GM standby currently leads.
    #[inline]
    fn gm_promoted(&self) -> bool {
        self.gm_replica.as_ref().is_some_and(|r| r.promoted)
    }

    /// The deterministic failure detector, run in the sequential global
    /// phase every `heartbeat_interval_ticks`: counts missed heartbeats
    /// for protected primaries, promotes warm standbys past the miss
    /// threshold (bumping the leadership term and restoring the live
    /// controller from the shadow), and fences returning primaries on
    /// their stale term, re-integrating them as the new standby.
    // `%` rather than `u64::is_multiple_of`: pinned MSRV (1.75).
    #[allow(clippy::manual_is_multiple_of)]
    fn redundancy_step(&mut self) {
        let t = self.ticks_done;
        if t % self.redundancy.heartbeat_interval_ticks != 0 {
            return;
        }
        if let Some(mut rep) = self.gm_replica.take() {
            let down = self.injector.offline(ControllerLayer::Gm, 0, t);
            if self.detect(&mut rep, down, ControllerKind::Gm, BudgetLevel::Group, 0) {
                if let Some(snap) = decode_capper(&rep.shadow) {
                    self.gm.restore(&snap);
                    self.gm.expire_lease(t);
                }
            }
            self.gm_replica = Some(rep);
        }
        let mut reps = std::mem::take(&mut self.em_replicas);
        for (e, rep) in reps.iter_mut().enumerate() {
            let down = self.injector.offline(ControllerLayer::Em, e, t);
            if self.detect(rep, down, ControllerKind::Em, BudgetLevel::Enclosure, e) {
                if let Some(snap) = decode_capper(&rep.shadow) {
                    self.ems[e].restore(&snap);
                    // The shadow can lag the primary by in-flight syncs:
                    // a lease that lapsed meanwhile expires right away
                    // rather than resurrecting a stale grant.
                    self.ems[e].expire_lease(t);
                }
            }
        }
        self.em_replicas = reps;
    }

    /// One heartbeat check for one replica pair. Returns whether the
    /// standby was promoted just now (the caller then restores the live
    /// controller state from the shadow).
    fn detect(
        &mut self,
        rep: &mut ReplicaState,
        down: bool,
        controller: ControllerKind,
        level: BudgetLevel,
        index: usize,
    ) -> bool {
        let t = self.ticks_done;
        self.rstats.heartbeats += 1;
        if down {
            if rep.promoted {
                // The standby is serving; there is no primary to probe.
                return false;
            }
            rep.missed += 1;
            self.rstats.missed_heartbeats += 1;
            let missed = rep.missed;
            self.emit(|| TelemetryEvent::HeartbeatMissed {
                tick: t,
                controller,
                index,
                missed,
            });
            if rep.missed >= self.redundancy.miss_threshold {
                rep.term += 1;
                rep.promoted = true;
                rep.missed = 0;
                self.rstats.promotions += 1;
                let term = rep.term;
                self.emit(|| TelemetryEvent::FailoverPromoted {
                    tick: t,
                    controller,
                    index,
                    term,
                });
                return true;
            }
            return false;
        }
        if rep.promoted {
            // The deposed primary is back. Its leadership claim carries
            // the pre-failover term — fenced via the existing stale-
            // rejection path, then taken on as the new standby.
            self.fstats.stale_rejected += 1;
            self.rstats.fenced += 1;
            let (stale, serving) = (rep.term - 1, rep.term);
            self.emit(|| TelemetryEvent::StaleRejected {
                tick: t,
                level,
                child: index,
                seq: stale,
                accepted: serving,
            });
            rep.promoted = false;
            rep.missed = 0;
            self.emit(|| TelemetryEvent::StandbyReintegrated {
                tick: t,
                controller,
                index,
                term: serving,
            });
            return false;
        }
        rep.missed = 0;
        false
    }

    // ----- the safety-invariant monitor ---------------------------------

    /// Records one violation: exact counter plus telemetry event.
    fn invariant_violation(&mut self, invariant: InvariantKind, index: usize) {
        let t = self.ticks_done;
        self.istats.record(invariant);
        self.emit(|| TelemetryEvent::InvariantViolated {
            tick: t,
            invariant,
            index,
        });
    }

    /// Budget-conservation check at a reallocation site: the children's
    /// grants must sum to at most the parent's effective cap (float
    /// tolerance for the summation order).
    fn check_conservation(&mut self, alloc_sum: f64, cap: f64, index: usize) {
        self.istats.checks += 1;
        if alloc_sum > cap * (1.0 + 1e-9) + 1e-9 {
            self.invariant_violation(InvariantKind::BudgetConservation, index);
        }
    }

    /// The per-tick safety-invariant sweep, run after every controller
    /// (including the electrical clamp) has acted. Pure observation: it
    /// never steers the system. Budget conservation is checked at the
    /// reallocation sites instead; the catalog's remaining entries are
    /// global conditions checked here.
    fn invariant_sweep(&mut self) {
        let t = self.ticks_done;
        // Electrical protection: no powered-on server with a working
        // actuator runs above its fuse-level cap.
        if let Some(elec) = self.elec.take() {
            for (i, capper) in elec.iter().enumerate() {
                let s = ServerId(i);
                if !self.sim.is_on(s) || self.injector.actuator_jammed(i, t) {
                    continue;
                }
                self.istats.checks += 1;
                let p = self.sim.pstate(s);
                if capper.clamp(p) != p {
                    self.invariant_violation(InvariantKind::ElectricalCap, i);
                }
            }
            self.elec = Some(elec);
        }
        // Floor operating point: every static local cap admits the
        // deepest P-state at full utilization.
        for i in 0..self.models.len() {
            self.istats.checks += 1;
            let floor = self.models[i].power(self.models[i].deepest().index(), 1.0);
            if self.cap_loc[i] < floor - 1e-9 {
                self.invariant_violation(InvariantKind::ServerCapFloor, i);
            }
        }
        // Lease discipline: an unleased child holds no finite grant, and
        // a finite grant's lease is unexpired (the expiry sweep at the
        // top of `act` reverted anything older).
        if self.lease_ticks > 0 {
            for i in 0..self.models.len() {
                self.istats.checks += 1;
                let stranded = if self.bank.lease_until(i) == u64::MAX {
                    self.bank.effective_cap_watts(i) < self.bank.static_cap_watts(i)
                } else {
                    self.bank.lease_until(i) < t
                };
                if stranded {
                    self.invariant_violation(InvariantKind::LeaseBound, i);
                }
            }
            for e in 0..self.ems.len() {
                self.istats.checks += 1;
                let stranded = if self.ems[e].lease_until() == u64::MAX {
                    self.ems[e].effective_cap_watts() < self.ems[e].static_cap_watts()
                } else {
                    self.ems[e].lease_until() < t
                };
                if stranded {
                    self.invariant_violation(InvariantKind::LeaseBound, e);
                }
            }
        }
    }

    /// Enables recording of the group-power trajectory into a bounded
    /// [`nps_metrics::TimeSeries`] of at most `max_points` points.
    pub fn enable_power_trace(&mut self, max_points: usize) {
        self.power_trace = Some(nps_metrics::TimeSeries::new("group_power_w", max_points));
    }

    /// The recorded group-power trajectory, if enabled.
    pub fn power_trace(&self) -> Option<&nps_metrics::TimeSeries> {
        self.power_trace.as_ref()
    }

    /// The underlying simulation (read-only).
    pub fn sim(&self) -> &Simulation {
        &self.sim
    }

    /// Ticks simulated so far.
    pub fn ticks_done(&self) -> u64 {
        self.ticks_done
    }

    /// Total wall-clock nanoseconds this run has spent inside parallel
    /// shard phases (simulator step, EC/SM/EM epochs, GM fan-out,
    /// electrical clamp). Zero for a sequential runner. The complement
    /// against the run's total wall time is the sequential global phase
    /// the `scale` bench reports.
    pub fn parallel_nanos(&self) -> u64 {
        self.pool.as_ref().map_or(0, |p| p.busy_nanos())
    }

    /// Total shard steals the pool's workers have performed this run —
    /// how often an idle worker pulled a shard from a busy peer's deque.
    /// Zero for a sequential runner (and for perfectly balanced fleets).
    pub fn steal_count(&self) -> u64 {
        self.pool.as_ref().map_or(0, |p| p.steal_count())
    }

    /// Total wall-clock nanoseconds this run has spent inside VMC
    /// arbitration epochs (demand estimation, placement planning, and
    /// plan application). Diagnostic only — never checkpointed; the
    /// `scale` bench reports it as `arbitration_phase_fraction`.
    pub fn arbitration_nanos(&self) -> u64 {
        self.arb_ns
    }

    /// The VMC's current buffers `(b_loc, b_enc, b_grp)`.
    pub fn vmc_buffers(&self) -> (f64, f64, f64) {
        self.vmc.buffers()
    }

    /// The `r_ref` currently targeted by server `s`'s EC.
    pub fn ec_r_ref(&self, s: ServerId) -> f64 {
        self.bank.r_ref(s.index())
    }

    /// The budget server `s`'s SM enforces right now:
    /// `min(CAP_LOC, granted by EM/GM)`, watts.
    pub fn sm_effective_cap(&self, s: ServerId) -> f64 {
        self.bank.effective_cap_watts(s.index())
    }

    /// The budget enclosure `e`'s EM enforces right now:
    /// `min(CAP_ENC, granted by GM)`, watts.
    pub fn em_effective_cap(&self, e: EnclosureId) -> f64 {
        self.ems[e.index()].effective_cap_watts()
    }

    /// The static caps `(CAP_LOC for s, CAP_GRP)` in watts.
    pub fn static_caps(&self, s: ServerId) -> (f64, f64) {
        (self.cap_loc[s.index()], self.cap_grp)
    }

    /// Advances the system by one tick: controllers act on the window
    /// ending now, then the simulator steps.
    pub fn tick(&mut self) {
        if self.ticks_done > 0 {
            self.act();
        }
        match &self.pool {
            Some(pool) => self.sim.step_parallel(pool, &self.shards),
            None => self.sim.step(),
        }
        if let Some(trace) = &mut self.power_trace {
            trace.push(self.ticks_done, self.sim.group_power());
        }
        self.accumulate_latency_proxy();
        self.accumulate_vm_windows();
        self.ticks_done += 1;
    }

    /// Per-tick latency-proxy accumulation: an M/M/1-style delay proxy
    /// `1/(1-util)` (capped at util 0.95 to keep saturated servers from
    /// dominating the mean) summed over powered-on servers. The sum runs
    /// through the fixed-shape reduction tree over *all* servers — an
    /// off server contributes an exact `(0.0, 0)` term, which leaves
    /// every partial's bits unchanged (all live terms are ≥ 1) while
    /// keeping the combine order a function of fleet size alone. Large
    /// fleets farm the leaf partials out to the pool; either driver
    /// walks the identical tree, so the one per-tick delta added to
    /// `cum_latency_proxy` is bit-identical at any thread count.
    fn accumulate_latency_proxy(&mut self) {
        let n = self.models.len();
        let sim = &self.sim;
        let term = |i: usize| -> (f64, u64) {
            let s = ServerId(i);
            if sim.is_on(s) {
                let util = sim.server_utilization(s).min(0.95);
                (1.0 / (1.0 - util), 1)
            } else {
                (0.0, 0)
            }
        };
        let combine = |a: (f64, u64), b: (f64, u64)| (a.0 + b.0, a.1 + b.1);
        let (delta, on) = match &self.pool {
            Some(pool) if n >= PAR_VM_THRESHOLD => {
                reduce::tree_reduce_pool(pool, n, (0.0f64, 0u64), term, combine)
            }
            _ => reduce::tree_reduce(n, (0.0f64, 0u64), term, combine),
        };
        self.cum_latency_proxy += delta;
        self.latency_samples += on;
    }

    /// Per-tick VMC accumulators: every VM's real and apparent
    /// utilization folds into its cumulative sums and window maxima.
    /// Each slot is independent (no cross-VM arithmetic), so the
    /// parallel fan-out over even VM ranges is bit-identical to the
    /// sequential loop; tiny fleets skip the barrier overhead.
    fn accumulate_vm_windows(&mut self) {
        let num_vms = self.cum_real.len();
        let pool = match &self.pool {
            Some(pool) if num_vms >= PAR_VM_THRESHOLD => pool,
            _ => {
                for j in 0..num_vms {
                    let vm = VmId(j);
                    let real = self.sim.real_vm_utilization(vm);
                    let apparent = self.sim.apparent_vm_utilization(vm);
                    self.cum_real[j] += real;
                    self.cum_apparent[j] += apparent;
                    self.win_max_real[j] = self.win_max_real[j].max(real);
                    self.win_max_apparent[j] = self.win_max_apparent[j].max(apparent);
                }
                return;
            }
        };
        struct VmShard<'a> {
            lo: usize,
            cum_real: &'a mut [f64],
            cum_apparent: &'a mut [f64],
            win_max_real: &'a mut [f64],
            win_max_apparent: &'a mut [f64],
        }
        let ranges = vm_ranges(num_vms, self.shards.len());
        let view = self.sim.vm_view();
        let cum_reals = split_ranges(&mut self.cum_real, &ranges);
        let cum_apparents = split_ranges(&mut self.cum_apparent, &ranges);
        let win_reals = split_ranges(&mut self.win_max_real, &ranges);
        let win_apparents = split_ranges(&mut self.win_max_apparent, &ranges);
        let cells: Vec<Mutex<VmShard<'_>>> = ranges
            .iter()
            .zip(cum_reals)
            .zip(cum_apparents)
            .zip(win_reals)
            .zip(win_apparents)
            .map(
                |((((range, cum_real), cum_apparent), win_max_real), win_max_apparent)| {
                    Mutex::new(VmShard {
                        lo: range.start,
                        cum_real,
                        cum_apparent,
                        win_max_real,
                        win_max_apparent,
                    })
                },
            )
            .collect();
        pool.execute(cells.len(), &|k| {
            let mut guard = cells[k].lock().expect("vm shard lock");
            let sh = &mut *guard;
            for off in 0..sh.cum_real.len() {
                let vm = VmId(sh.lo + off);
                let real = view.real_vm_utilization(vm);
                let apparent = view.apparent_vm_utilization(vm);
                sh.cum_real[off] += real;
                sh.cum_apparent[off] += apparent;
                sh.win_max_real[off] = sh.win_max_real[off].max(real);
                sh.win_max_apparent[off] = sh.win_max_apparent[off].max(apparent);
            }
        });
    }

    /// Runs to the configured horizon and returns the raw stats.
    pub fn run_to_horizon(&mut self) -> RunStats {
        while self.ticks_done < self.horizon {
            self.tick();
        }
        self.stats()
    }

    /// The raw stats so far.
    pub fn stats(&self) -> RunStats {
        let num_vms = self.sim.num_vms();
        // One fixed-shape tree over (delivered, demanded) pairs — a
        // struct reduction, combined component-wise.
        let (delivered, demanded) = reduce::tree_reduce(
            num_vms,
            (0.0f64, 0.0f64),
            |j| {
                (
                    self.sim.cumulative_delivered(VmId(j)),
                    self.sim.cumulative_demand(VmId(j)),
                )
            },
            |a, b| (a.0 + b.0, a.1 + b.1),
        );
        RunStats {
            energy: self.sim.total_energy(),
            delivered_work: delivered,
            demanded_work: demanded,
            violations: self.violations,
            pstate_conflicts: self.sim.pstate_conflicts(),
            migrations: self.sim.migrations_started(),
            failovers: self.sim.failover_events(),
            mean_latency_proxy: if self.latency_samples == 0 {
                1.0
            } else {
                self.cum_latency_proxy / self.latency_samples as f64
            },
            ticks: self.ticks_done,
        }
    }

    // ----- checkpoint / restore -----------------------------------------

    /// Captures the runner's complete dynamic state — simulator,
    /// controllers, bus in-flight queues, injector RNG, measurement
    /// windows, accumulators — for bit-exact resumption. The telemetry
    /// recorder and power trace are diagnostics and are *not* part of the
    /// checkpoint. Emits a `Checkpoint` telemetry event.
    pub fn snapshot(&mut self) -> RunnerSnapshot {
        let t = self.ticks_done;
        self.emit(|| TelemetryEvent::Checkpoint {
            tick: t,
            restored: false,
        });
        RunnerSnapshot {
            version: RunnerSnapshot::VERSION,
            label: self.label.clone(),
            ticks_done: self.ticks_done,
            sim: self.sim.snapshot(),
            injector: self.injector.snapshot(),
            bus: self.bus.snapshot(),
            bank: self.bank.snapshot(),
            ems: self.ems.iter().map(|em| em.snapshot()).collect(),
            gm: self.gm.snapshot(),
            vmc_buffer_bits: self.vmc.buffer_bits().to_vec(),
            sm_hold: self
                .sm_hold
                .iter()
                .map(|h| h.map_or(u64::MAX, |p| p.index() as u64))
                .collect(),
            snap_util_ec_bits: pack_bits(&self.snap_util_ec),
            snap_power_sm_bits: pack_bits(&self.snap_power_sm),
            snap_power_em_bits: pack_bits(&self.snap_power_em),
            snap_power_gm_bits: pack_bits(&self.snap_power_gm),
            snap_encpow_em_bits: pack_bits(&self.snap_encpow_em),
            snap_encpow_gm_bits: pack_bits(&self.snap_encpow_gm),
            cum_real_bits: pack_bits(&self.cum_real),
            cum_apparent_bits: pack_bits(&self.cum_apparent),
            snap_real_bits: pack_bits(&self.snap_real),
            snap_apparent_bits: pack_bits(&self.snap_apparent),
            win_max_real_bits: pack_bits(&self.win_max_real),
            win_max_apparent_bits: pack_bits(&self.win_max_apparent),
            last_util_ec_bits: pack_bits(&self.last_util_ec),
            last_power_sm_bits: pack_bits(&self.last_power_sm),
            last_encpow_em_bits: pack_bits(&self.last_encpow_em),
            last_child_gm_bits: pack_bits(&self.last_child_gm),
            fstats: self.fstats,
            em_was_down: self.em_was_down.clone(),
            gm_was_down: self.gm_was_down,
            violations: self.violations,
            win_sm: self.win_sm,
            win_em: self.win_em,
            win_gm: self.win_gm,
            skipped_migrations: self.skipped_migrations,
            cum_latency_proxy_bits: self.cum_latency_proxy.to_bits(),
            latency_samples: self.latency_samples,
            gm_replica: self.gm_replica.clone(),
            em_replicas: self.em_replicas.clone(),
            rstats: self.rstats,
            istats: self.istats,
        }
    }

    /// Restores state captured by [`Runner::snapshot`]. The runner must
    /// have been built from the *same* [`ExperimentConfig`] — the
    /// checkpoint carries only dynamic state; static structure (topology,
    /// models, traces, caps) comes from the configuration. A resumed run
    /// reproduces the uninterrupted run bit for bit.
    pub fn restore(&mut self, snap: &RunnerSnapshot) -> Result<(), CoreError> {
        if snap.version != RunnerSnapshot::VERSION {
            return Err(CoreError::Checkpoint(format!(
                "format version {} (this build reads {})",
                snap.version,
                RunnerSnapshot::VERSION
            )));
        }
        if snap.label != self.label {
            return Err(CoreError::Checkpoint(format!(
                "checkpoint is for experiment {:?}, runner is {:?}",
                snap.label, self.label
            )));
        }
        let n = self.models.len();
        if snap.sm_hold.len() != n
            || snap.ems.len() != self.ems.len()
            || snap.cum_real_bits.len() != self.cum_real.len()
            || snap.em_replicas.len() != self.em_replicas.len()
            || snap.gm_replica.is_some() != self.gm_replica.is_some()
        {
            return Err(CoreError::Checkpoint(
                "checkpoint sizes do not match this configuration".to_string(),
            ));
        }
        self.ticks_done = snap.ticks_done;
        self.sim.restore(&snap.sim);
        self.injector.restore(&snap.injector);
        self.bus.restore(&snap.bus);
        self.bank.restore(&snap.bank);
        for (em, s) in self.ems.iter_mut().zip(&snap.ems) {
            em.restore(s);
        }
        self.gm.restore(&snap.gm);
        let mut vb = [0u64; 3];
        for (w, &v) in vb.iter_mut().zip(&snap.vmc_buffer_bits) {
            *w = v;
        }
        self.vmc.restore_buffer_bits(&vb);
        for (h, &raw) in self.sm_hold.iter_mut().zip(&snap.sm_hold) {
            *h = if raw == u64::MAX {
                None
            } else {
                Some(PState(raw as usize))
            };
        }
        unpack_bits(&snap.snap_util_ec_bits, &mut self.snap_util_ec);
        unpack_bits(&snap.snap_power_sm_bits, &mut self.snap_power_sm);
        unpack_bits(&snap.snap_power_em_bits, &mut self.snap_power_em);
        unpack_bits(&snap.snap_power_gm_bits, &mut self.snap_power_gm);
        unpack_bits(&snap.snap_encpow_em_bits, &mut self.snap_encpow_em);
        unpack_bits(&snap.snap_encpow_gm_bits, &mut self.snap_encpow_gm);
        unpack_bits(&snap.cum_real_bits, &mut self.cum_real);
        unpack_bits(&snap.cum_apparent_bits, &mut self.cum_apparent);
        unpack_bits(&snap.snap_real_bits, &mut self.snap_real);
        unpack_bits(&snap.snap_apparent_bits, &mut self.snap_apparent);
        unpack_bits(&snap.win_max_real_bits, &mut self.win_max_real);
        unpack_bits(&snap.win_max_apparent_bits, &mut self.win_max_apparent);
        unpack_bits(&snap.last_util_ec_bits, &mut self.last_util_ec);
        unpack_bits(&snap.last_power_sm_bits, &mut self.last_power_sm);
        unpack_bits(&snap.last_encpow_em_bits, &mut self.last_encpow_em);
        unpack_bits(&snap.last_child_gm_bits, &mut self.last_child_gm);
        self.fstats = snap.fstats;
        self.em_was_down = snap.em_was_down.clone();
        self.gm_was_down = snap.gm_was_down;
        self.violations = snap.violations;
        self.win_sm = snap.win_sm;
        self.win_em = snap.win_em;
        self.win_gm = snap.win_gm;
        self.skipped_migrations = snap.skipped_migrations;
        self.cum_latency_proxy = f64::from_bits(snap.cum_latency_proxy_bits);
        self.latency_samples = snap.latency_samples;
        self.gm_replica = snap.gm_replica.clone();
        self.em_replicas = snap.em_replicas.clone();
        self.rstats = snap.rstats;
        self.istats = snap.istats;
        let t = self.ticks_done;
        self.emit(|| TelemetryEvent::Checkpoint {
            tick: t,
            restored: true,
        });
        Ok(())
    }

    /// Builds a runner for `cfg` and restores `snap` into it — the
    /// one-call resume path.
    pub fn resume(cfg: &ExperimentConfig, snap: &RunnerSnapshot) -> Result<Self, CoreError> {
        let mut runner = Self::try_new(cfg)?;
        runner.restore(snap)?;
        Ok(runner)
    }

    // ----- the per-tick control schedule --------------------------------

    // `%` rather than `u64::is_multiple_of` keeps the crate building on
    // the pinned MSRV (1.75); intervals are sanitized nonzero.
    #[allow(clippy::manual_is_multiple_of)]
    fn act(&mut self) {
        let t = self.ticks_done;
        // Deferred bus traffic first: delayed grant copies and expired
        // retransmission timers from earlier ticks come due before any
        // controller epoch reads the caps they update.
        if !self.bus.is_idle() {
            self.drain_bus();
        }
        // Lease expiry sweep: a granted cap whose lease has lapsed (its
        // grantor went silent — outage, lost refresh, exhausted retries)
        // reverts to the child's static cap. This replaces the
        // edge-triggered outage fallback uniformly when leases are on.
        if self.lease_ticks > 0 {
            self.expire_leases();
        }
        // Failure detector for warm standbys: runs in the sequential
        // global phase before any controller epoch, so a promotion this
        // tick already serves this tick's epochs.
        if self.redundancy.any_enabled() {
            self.redundancy_step();
        }
        let iv = self.intervals;
        if self.mask.ec && t % iv.ec == 0 {
            self.ec_epoch(iv.ec);
        }
        if t % iv.sm == 0 {
            self.sm_epoch(iv.sm);
        }
        if t % iv.em == 0 {
            self.em_epoch(iv.em);
        }
        if t % iv.gm == 0 {
            self.gm_epoch(iv.gm);
        }
        if self.mask.vmc && t % iv.vmc == 0 {
            // Wall-clock diagnostic only (never checkpointed): how much
            // of the run the VMC arbitration step costs, reported by the
            // `scale` bench as `arbitration_phase_fraction`.
            let t0 = std::time::Instant::now();
            self.vmc_epoch();
            self.arb_ns += t0.elapsed().as_nanos() as u64;
        }
        if self.elec.is_some() {
            if self.pool.is_some() {
                self.elec_clamp_parallel();
            } else {
                self.elec_clamp_seq();
            }
        }
        // The safety sweep observes the fully settled tick: every
        // controller, the bus, and the electrical clamp have acted.
        if self.invariants_on {
            self.invariant_sweep();
        }
    }

    /// Sequential electrical CAP clamp: every powered-on server whose
    /// P-state exceeds its fuse-level cap is clamped down.
    fn elec_clamp_seq(&mut self) {
        let t = self.ticks_done;
        let elec = self.elec.take().expect("caller checked elec is present");
        for (i, capper) in elec.iter().enumerate() {
            let s = ServerId(i);
            if !self.sim.is_on(s) {
                continue;
            }
            let cur = self.sim.pstate(s);
            let clamped = capper.clamp(cur);
            if clamped != cur && self.write_pstate(s, clamped, ControllerKind::Electrical) {
                self.emit(|| TelemetryEvent::PStateChange {
                    tick: t,
                    server: i,
                    from: cur.index(),
                    to: clamped.index(),
                    source: ControllerKind::Electrical,
                });
            }
        }
        self.elec = Some(elec);
    }

    /// Sharded electrical CAP clamp: each worker clamps its own servers,
    /// drawing the conditional actuator-jam verdict from the per-server
    /// counter stream (order-free, so no pre-sampling is needed) and
    /// buffering telemetry; the reduction replays buffers in ascending
    /// shard order, which is ascending server order — the sequential
    /// emission order exactly.
    fn elec_clamp_parallel(&mut self) {
        let t = self.ticks_done;
        let recording = self.recording();
        let elec = self.elec.take().expect("caller checked elec is present");
        let (view, acts) = self.sim.epoch_shards(&self.shards);
        let draws = self.injector.actuator_shards(&self.shards);
        struct ElecShard<'a> {
            range: Range<usize>,
            act: ActuatorShard<'a>,
            draw: ActuatorDrawShard<'a>,
            fstats: FaultStats,
            telemetry: Vec<TelemetryEvent>,
        }
        let cells: Vec<Mutex<ElecShard<'_>>> = self
            .shards
            .iter()
            .zip(acts)
            .zip(draws)
            .map(|((range, act), draw)| {
                Mutex::new(ElecShard {
                    range: range.clone(),
                    act,
                    draw,
                    fstats: FaultStats::default(),
                    telemetry: Vec::new(),
                })
            })
            .collect();
        let cappers: &[ElectricalCapper] = &elec;
        let pool = self.pool.as_ref().expect("parallel clamp requires a pool");
        pool.execute(cells.len(), &|k| {
            let mut guard = cells[k].lock().expect("elec shard lock");
            let sh = &mut *guard;
            for i in sh.range.clone() {
                let s = ServerId(i);
                if !view.is_on(s) {
                    continue;
                }
                let cur = sh.act.pstate(s);
                let clamped = cappers[i].clamp(cur);
                if clamped == cur {
                    continue;
                }
                if sh.draw.pstate_write_blocked(i, t) {
                    sh.fstats.actuator_blocked += 1;
                    if recording {
                        sh.telemetry.push(TelemetryEvent::ActuatorFault {
                            tick: t,
                            server: i,
                            source: ControllerKind::Electrical,
                        });
                    }
                } else {
                    sh.act.set_pstate(s, clamped);
                    if recording {
                        sh.telemetry.push(TelemetryEvent::PStateChange {
                            tick: t,
                            server: i,
                            from: cur.index(),
                            to: clamped.index(),
                            source: ControllerKind::Electrical,
                        });
                    }
                }
            }
        });
        let mut effects = Vec::with_capacity(cells.len());
        for cell in cells {
            let sh = cell.into_inner().expect("worker panics already propagated");
            self.fstats.merge(&sh.fstats);
            if let Some(r) = &mut self.recorder {
                for ev in sh.telemetry {
                    r.record(ev);
                }
            }
            effects.push(sh.act.into_effects());
        }
        self.sim.absorb_shard_effects(effects);
        self.elec = Some(elec);
    }

    /// Window-average power per server since the given snapshot, updating
    /// the snapshot in place.
    fn window_avg_power(sim: &Simulation, snap: &mut [f64], i: usize, ticks: u64) -> f64 {
        let cum = sim.cumulative_power(ServerId(i));
        let avg = (cum - snap[i]) / ticks.max(1) as f64;
        snap[i] = cum;
        avg
    }

    fn ec_epoch(&mut self, window: u64) {
        if self.pool.is_some() {
            self.ec_epoch_parallel(window);
        } else {
            self.ec_epoch_seq(window);
        }
    }

    fn sm_epoch(&mut self, window: u64) {
        // The uncoordinated SM's conditional P-state write draws its
        // actuator-jam verdict from the per-server counter stream, which
        // is order-free across shards — so every SM variant parallelizes.
        if self.pool.is_some() {
            self.sm_epoch_parallel(window);
        } else {
            self.sm_epoch_seq(window);
        }
    }

    fn em_epoch(&mut self, window: u64) {
        if self.pool.is_some() && self.enc_aligned {
            self.em_epoch_parallel(window);
        } else {
            self.em_epoch_seq(window);
        }
    }

    fn ec_epoch_parallel(&mut self, window: u64) {
        let t = self.ticks_done;
        let recording = self.recording();
        let merges = self.mode.merges_min_pstate();
        let (view, cells) = carve_shards(
            &self.shards,
            &mut self.sim,
            &mut self.bank,
            &mut self.injector,
            SensorChannel::ServerUtilization,
            &mut self.snap_util_ec,
            &mut self.last_util_ec,
            &mut self.sm_hold,
        );
        let pool = self.pool.as_ref().expect("parallel epoch requires a pool");
        pool.execute(cells.len(), &|k| {
            let mut guard = cells[k].lock().expect("epoch shard lock");
            let sh = &mut *guard;
            for off in 0..sh.snap.len() {
                let i = sh.lo + off;
                let s = ServerId(i);
                if !view.is_on(s) {
                    continue;
                }
                let cum = view.cumulative_utilization(s);
                let raw = (cum - sh.snap[off]) / window.max(1) as f64;
                sh.snap[off] = cum;
                let reading = sh.sense.sense(i, t, raw);
                let util = shard_ingest(reading, t, ControllerKind::Ec, i, sh, off, recording);
                let desired = sh.bank.ec_step(i, util);
                let applied = if merges {
                    match sh.sm_hold[off] {
                        Some(hold) => PState(desired.index().max(hold.index())),
                        None => desired,
                    }
                } else {
                    desired
                };
                let before = sh.act.pstate(s);
                if sh.draw.pstate_write_blocked(i, t) {
                    sh.fstats.actuator_blocked += 1;
                    if recording {
                        sh.telemetry.push(TelemetryEvent::ActuatorFault {
                            tick: t,
                            server: i,
                            source: ControllerKind::Ec,
                        });
                    }
                } else {
                    sh.act.set_pstate(s, applied);
                    if recording && before != applied {
                        sh.telemetry.push(TelemetryEvent::PStateChange {
                            tick: t,
                            server: i,
                            from: before.index(),
                            to: applied.index(),
                            source: ControllerKind::Ec,
                        });
                    }
                }
            }
        });
        // Fixed-shard-order reduction: ascending shards are ascending
        // server ids, so replaying each shard's buffers in order restores
        // the sequential epoch's exact emission order.
        let mut effects = Vec::with_capacity(cells.len());
        for cell in cells {
            let sh = cell.into_inner().expect("worker panics already propagated");
            self.fstats.merge(&sh.fstats);
            if let Some(r) = &mut self.recorder {
                for ev in sh.telemetry {
                    r.record(ev);
                }
            }
            effects.push(sh.act.into_effects());
        }
        self.sim.absorb_shard_effects(effects);
    }

    fn sm_epoch_parallel(&mut self, window: u64) {
        let t = self.ticks_done;
        let recording = self.recording();
        let mask_sm = self.mask.sm;
        let coordinated = self.mode.sm_actuates_r_ref();
        let merges = self.mode.merges_min_pstate();
        let (view, cells) = carve_shards(
            &self.shards,
            &mut self.sim,
            &mut self.bank,
            &mut self.injector,
            SensorChannel::ServerPower,
            &mut self.snap_power_sm,
            &mut self.last_power_sm,
            &mut self.sm_hold,
        );
        let outages: &[OutageWindow] = &self.outage_windows;
        let cap_loc: &[f64] = &self.cap_loc;
        let pool = self.pool.as_ref().expect("parallel epoch requires a pool");
        pool.execute(cells.len(), &|k| {
            let mut guard = cells[k].lock().expect("epoch shard lock");
            let sh = &mut *guard;
            for off in 0..sh.snap.len() {
                let i = sh.lo + off;
                let s = ServerId(i);
                if !view.is_on(s) {
                    // Keep snapshots current so a later power-on starts a
                    // fresh window.
                    sh.snap[off] = view.cumulative_power(s);
                    continue;
                }
                let cum = view.cumulative_power(s);
                let raw = (cum - sh.snap[off]) / window.max(1) as f64;
                sh.snap[off] = cum;
                let reading = sh.sense.sense(i, t, raw);
                let avg = shard_ingest(reading, t, ControllerKind::Sm, i, sh, off, recording);
                let violated_static = avg > cap_loc[i];
                sh.win.record(violated_static);
                if violated_static && recording {
                    sh.telemetry.push(TelemetryEvent::Violation {
                        tick: t,
                        level: BudgetLevel::Server,
                        observed_watts: avg,
                        cap_watts: cap_loc[i],
                        effective: false,
                    });
                }
                if !mask_sm {
                    continue;
                }
                if offline_in(outages, ControllerLayer::Sm, i, t) {
                    sh.fstats.outage_epochs += 1;
                    if recording {
                        sh.telemetry.push(TelemetryEvent::ControllerOutage {
                            tick: t,
                            controller: ControllerKind::Sm,
                            index: i,
                        });
                    }
                    continue;
                }
                let eff_cap = sh.bank.effective_cap_watts(i);
                if avg > eff_cap && eff_cap < cap_loc[i] && recording {
                    sh.telemetry.push(TelemetryEvent::Violation {
                        tick: t,
                        level: BudgetLevel::Server,
                        observed_watts: avg,
                        cap_watts: eff_cap,
                        effective: true,
                    });
                }
                if coordinated {
                    let prev_r_ref = sh.bank.r_ref(i);
                    sh.bank.sm_step_coordinated(i, avg);
                    if recording {
                        let r_ref = sh.bank.r_ref(i);
                        if r_ref != prev_r_ref {
                            sh.telemetry.push(TelemetryEvent::RRefUpdate {
                                tick: t,
                                server: i,
                                r_ref,
                            });
                        }
                    }
                } else {
                    let current = sh.act.pstate(s);
                    let (_, forced) = sh.bank.sm_step_uncoordinated(i, avg, current);
                    if merges {
                        sh.sm_hold[off] = forced;
                    }
                    // The race (in the non-merge mode): this write lands on
                    // the same actuator the EC writes every tick. The jam
                    // verdict comes from the per-server counter stream and
                    // is drawn only when a write actually happens — the
                    // sequential short-circuit exactly.
                    if let Some(p) = forced {
                        let applied = if merges {
                            PState(p.index().max(current.index()))
                        } else {
                            p
                        };
                        if sh.draw.pstate_write_blocked(i, t) {
                            sh.fstats.actuator_blocked += 1;
                            if recording {
                                sh.telemetry.push(TelemetryEvent::ActuatorFault {
                                    tick: t,
                                    server: i,
                                    source: ControllerKind::Sm,
                                });
                            }
                        } else {
                            sh.act.set_pstate(s, applied);
                            if recording && applied != current {
                                sh.telemetry.push(TelemetryEvent::PStateChange {
                                    tick: t,
                                    server: i,
                                    from: current.index(),
                                    to: applied.index(),
                                    source: ControllerKind::Sm,
                                });
                            }
                        }
                    }
                }
            }
        });
        let mut effects = Vec::with_capacity(cells.len());
        for cell in cells {
            let sh = cell.into_inner().expect("worker panics already propagated");
            self.fstats.merge(&sh.fstats);
            // Violation windows are order-free counters; the sequential
            // epoch records each verdict into both the lifetime and the
            // VMC-window counter.
            self.violations.server.merge(sh.win);
            self.win_sm.merge(sh.win);
            if let Some(r) = &mut self.recorder {
                for ev in sh.telemetry {
                    r.record(ev);
                }
            }
            effects.push(sh.act.into_effects());
        }
        self.sim.absorb_shard_effects(effects);
    }

    /// The parallel EM epoch. Requires `enc_aligned`: every enclosure is
    /// wholly owned by one shard, so each worker runs the full sequential
    /// per-enclosure pipeline — member window averages, enclosure ingest,
    /// violation accounting, offline fallback, and `reallocate` — against
    /// its own slices. Side effects that must land in the sequential
    /// order (telemetry, bus grant deliveries, state syncs) are buffered
    /// per enclosure and replayed ascending in the reduction; every
    /// random draw — sensors, actuators, plan-level message loss — comes
    /// from a per-instance counter stream, so nothing is pre-sampled.
    fn em_epoch_parallel(&mut self, window: u64) {
        let t = self.ticks_done;
        let recording = self.recording();
        let mask_em = self.mask.em;
        let flows_down = self.mode.budgets_flow_down();
        let lease_free = self.lease_ticks == 0;

        /// One enclosure's ordered side effects, replayed in the
        /// reduction: its buffered telemetry, then (coordinated modes)
        /// its member grant deliveries through the bus, then — for
        /// enclosures whose EM completed an online epoch — the
        /// conservation check and the state sync to its standby.
        struct EmEncRecord {
            enc: usize,
            telemetry: Vec<TelemetryEvent>,
            grants: Option<Vec<f64>>,
            /// Whether the EM ran a full (online) epoch this tick.
            online: bool,
            /// Sum of the reallocated member budgets (conservation).
            alloc_sum: f64,
            /// The effective cap the reallocation ran against.
            eff_cap: f64,
        }
        struct EmShard<'a> {
            /// First global server id of this shard's server range.
            lo: usize,
            /// First global enclosure id of this shard's enclosure range.
            enc_lo: usize,
            bank: BankShard<'a>,
            act: ActuatorShard<'a>,
            draw: ActuatorDrawShard<'a>,
            sense: SensorDrawShard<'a>,
            snap_pow: &'a mut [f64],
            snap_encpow: &'a mut [f64],
            last_encpow: &'a mut [f64],
            em_was_down: &'a mut [bool],
            ems: &'a mut [GroupCapper],
            power: Vec<f64>,
            caps: Vec<f64>,
            fstats: FaultStats,
            win: ViolationCounter,
            records: Vec<EmEncRecord>,
        }

        // Promotion state is frozen for the epoch (the failure detector
        // only runs in the sequential global phase), so a plain snapshot
        // is safe to share read-only across workers.
        let em_promoted_snapshot: Vec<bool> =
            (0..self.ems.len()).map(|e| self.em_promoted(e)).collect();
        let (view, acts) = self.sim.epoch_shards(&self.shards);
        let banks = self.bank.shards(&self.shards);
        let draws = self.injector.em_draw_shards(&self.shards, &self.shard_encs);
        let snap_pows = split_ranges(&mut self.snap_power_em, &self.shards);
        let snap_encs = split_ranges(&mut self.snap_encpow_em, &self.shard_encs);
        let last_encs = split_ranges(&mut self.last_encpow_em, &self.shard_encs);
        let was_downs = split_ranges(&mut self.em_was_down, &self.shard_encs);
        let emss = split_ranges(&mut self.ems, &self.shard_encs);
        let cells: Vec<Mutex<EmShard<'_>>> = self
            .shards
            .iter()
            .zip(self.shard_encs.iter())
            .zip(banks)
            .zip(acts)
            .zip(draws)
            .zip(snap_pows)
            .zip(snap_encs)
            .zip(last_encs)
            .zip(was_downs)
            .zip(emss)
            .map(
                |(
                    (
                        (
                            (
                                (((((range, enc_range), bank), act), (draw, sense)), snap_pow),
                                snap_encpow,
                            ),
                            last_encpow,
                        ),
                        em_was_down,
                    ),
                    ems,
                )| {
                    Mutex::new(EmShard {
                        lo: range.start,
                        enc_lo: enc_range.start,
                        bank,
                        act,
                        draw,
                        sense,
                        snap_pow,
                        snap_encpow,
                        last_encpow,
                        em_was_down,
                        ems,
                        power: Vec::new(),
                        caps: Vec::new(),
                        fstats: FaultStats::default(),
                        win: ViolationCounter::new(),
                        records: Vec::new(),
                    })
                },
            )
            .collect();
        let outages: &[OutageWindow] = &self.outage_windows;
        let promoted: &[bool] = &em_promoted_snapshot;
        let em_standby = self.redundancy.em_standby;
        let cap_loc: &[f64] = &self.cap_loc;
        let enc_offsets: &[usize] = &self.enc_offsets;
        let enc_members: &[ServerId] = &self.enc_members;
        let models: &[ServerModel] = &self.models;
        let pool = self.pool.as_ref().expect("parallel epoch requires a pool");
        pool.execute(cells.len(), &|kk| {
            let mut guard = cells[kk].lock().expect("epoch shard lock");
            let sh = &mut *guard;
            for ee in 0..sh.ems.len() {
                let e = sh.enc_lo + ee;
                let (m0, m1) = (enc_offsets[e], enc_offsets[e + 1]);
                let mut rec = EmEncRecord {
                    enc: e,
                    telemetry: Vec::new(),
                    grants: None,
                    online: false,
                    alloc_sum: 0.0,
                    eff_cap: 0.0,
                };
                sh.power.clear();
                sh.caps.clear();
                for &s in &enc_members[m0..m1] {
                    let off = s.index() - sh.lo;
                    let cum = view.cumulative_power(s);
                    let avg = (cum - sh.snap_pow[off]) / window.max(1) as f64;
                    sh.snap_pow[off] = cum;
                    sh.power.push(avg);
                }
                let enc_cum = view.cumulative_enclosure_power(EnclosureId(e));
                let raw_total = (enc_cum - sh.snap_encpow[ee]) / window.max(1) as f64;
                sh.snap_encpow[ee] = enc_cum;
                let reading = sh.sense.sense(e, t, raw_total);
                let total = ingest_buffered(
                    reading,
                    t,
                    ControllerKind::Em,
                    e,
                    &mut sh.fstats,
                    &mut rec.telemetry,
                    &mut sh.last_encpow[ee],
                    recording,
                );
                let static_cap = sh.ems[ee].static_cap_watts();
                let violated_static = total > static_cap;
                sh.win.record(violated_static);
                if violated_static && recording {
                    rec.telemetry.push(TelemetryEvent::Violation {
                        tick: t,
                        level: BudgetLevel::Enclosure,
                        observed_watts: total,
                        cap_watts: static_cap,
                        effective: false,
                    });
                }
                if !mask_em {
                    sh.records.push(rec);
                    continue;
                }
                if offline_in(outages, ControllerLayer::Em, e, t) && !promoted[e] {
                    if !sh.em_was_down[ee] {
                        sh.em_was_down[ee] = true;
                        // Members just lost their parent manager: fall back
                        // to local static caps (stale dynamic grants from a
                        // dead EM could strangle them indefinitely). With
                        // leases on, the lease state machine covers this
                        // uniformly — orphaned grants simply expire; with a
                        // warm standby the detector promotes it instead, so
                        // the static-cap fallback stays out of the way.
                        if flows_down && lease_free && !em_standby {
                            for &s in &enc_members[m0..m1] {
                                sh.bank.set_granted_cap(s.index(), f64::INFINITY);
                                sh.fstats.degradations += 1;
                                if recording {
                                    rec.telemetry.push(TelemetryEvent::Degradation {
                                        tick: t,
                                        controller: ControllerKind::Sm,
                                        index: s.index(),
                                        policy: DegradationPolicy::LocalCapFallback,
                                    });
                                }
                            }
                        }
                    }
                    sh.fstats.outage_epochs += 1;
                    if recording {
                        rec.telemetry.push(TelemetryEvent::ControllerOutage {
                            tick: t,
                            controller: ControllerKind::Em,
                            index: e,
                        });
                    }
                    sh.records.push(rec);
                    continue;
                }
                sh.em_was_down[ee] = false;
                rec.online = true;
                let eff_cap = sh.ems[ee].effective_cap_watts();
                rec.eff_cap = eff_cap;
                if total > eff_cap && eff_cap < static_cap && recording {
                    rec.telemetry.push(TelemetryEvent::Violation {
                        tick: t,
                        level: BudgetLevel::Enclosure,
                        observed_watts: total,
                        cap_watts: eff_cap,
                        effective: true,
                    });
                }
                for &s in &enc_members[m0..m1] {
                    sh.caps.push(cap_loc[s.index()]);
                }
                let allocations = sh.ems[ee].reallocate(&sh.power, &sh.caps);
                rec.alloc_sum = reduce::tree_sum(&allocations);
                if flows_down {
                    // Bus deliveries draw from the bus's own RNG stream and
                    // must land in ascending enclosure order — deferred to
                    // the reduction.
                    rec.grants = Some(allocations);
                } else if total > sh.ems[ee].effective_cap_watts() {
                    // Uncoordinated enclosure capper: on violation, directly
                    // clamp member P-states to fit their allocation — racing
                    // with the EC and SM.
                    for (k, &alloc) in allocations.iter().enumerate() {
                        let s = enc_members[m0 + k];
                        if !view.is_on(s) {
                            continue;
                        }
                        let model = &models[s.index()];
                        let forced = model
                            .pstate_for_power_budget(alloc)
                            .unwrap_or_else(|| model.deepest());
                        let before = sh.act.pstate(s);
                        if sh.draw.pstate_write_blocked(s.index(), t) {
                            sh.fstats.actuator_blocked += 1;
                            if recording {
                                rec.telemetry.push(TelemetryEvent::ActuatorFault {
                                    tick: t,
                                    server: s.index(),
                                    source: ControllerKind::Em,
                                });
                            }
                        } else {
                            sh.act.set_pstate(s, forced);
                            if recording && forced != before {
                                rec.telemetry.push(TelemetryEvent::PStateChange {
                                    tick: t,
                                    server: s.index(),
                                    from: before.index(),
                                    to: forced.index(),
                                    source: ControllerKind::Em,
                                });
                            }
                        }
                    }
                }
                sh.records.push(rec);
            }
        });
        // Drain every cell to owned data first (the grant replay below
        // needs `&mut self`, which the live cells' borrows would forbid).
        let mut all_records: Vec<EmEncRecord> = Vec::new();
        let mut effects = Vec::with_capacity(cells.len());
        for cell in cells {
            let sh = cell.into_inner().expect("worker panics already propagated");
            self.fstats.merge(&sh.fstats);
            self.violations.enclosure.merge(sh.win);
            self.win_em.merge(sh.win);
            all_records.extend(sh.records);
            effects.push(sh.act.into_effects());
        }
        self.sim.absorb_shard_effects(effects);
        // Ascending shards own ascending enclosure ranges, so this replay
        // is ascending-enclosure order — the sequential epoch's exact
        // telemetry, bus-send, and bus-poll sequence.
        for rec in all_records {
            if let Some(r) = &mut self.recorder {
                for ev in rec.telemetry {
                    r.record(ev);
                }
            }
            if rec.online && self.invariants_on {
                self.check_conservation(rec.alloc_sum, rec.eff_cap, rec.enc);
            }
            if let Some(grants) = rec.grants {
                let m0 = self.enc_offsets[rec.enc];
                for (k, &watts) in grants.iter().enumerate() {
                    let s = self.enc_members[m0 + k];
                    let slot = self.server_link[s.index()]
                        .expect("every enclosure member has a grant link");
                    self.deliver_grant(slot, watts);
                }
            }
            if rec.online {
                self.send_em_sync(rec.enc);
            }
        }
    }

    fn ec_epoch_seq(&mut self, window: u64) {
        let t = self.ticks_done;
        let recording = self.recording();
        for i in 0..self.models.len() {
            let s = ServerId(i);
            if !self.sim.is_on(s) {
                continue;
            }
            let cum = self.sim.cumulative_utilization(s);
            let raw = (cum - self.snap_util_ec[i]) / window.max(1) as f64;
            self.snap_util_ec[i] = cum;
            let util = self.ingest(SensorChannel::ServerUtilization, ControllerKind::Ec, i, raw);
            let desired = self.bank.ec_step(i, util);
            let applied = if self.mode.merges_min_pstate() {
                // Naïve "min frequency wins" merge with the SM's standing
                // demand.
                match self.sm_hold[i] {
                    Some(hold) => PState(desired.index().max(hold.index())),
                    None => desired,
                }
            } else {
                desired
            };
            let before = if recording {
                Some(self.sim.pstate(s))
            } else {
                None
            };
            let wrote = self.write_pstate(s, applied, ControllerKind::Ec);
            if let Some(before) = before {
                if wrote && before != applied {
                    self.emit(|| TelemetryEvent::PStateChange {
                        tick: t,
                        server: i,
                        from: before.index(),
                        to: applied.index(),
                        source: ControllerKind::Ec,
                    });
                }
            }
        }
    }

    fn sm_epoch_seq(&mut self, window: u64) {
        let t = self.ticks_done;
        let recording = self.recording();
        for i in 0..self.models.len() {
            let s = ServerId(i);
            if !self.sim.is_on(s) {
                // Keep snapshots current so a later power-on starts a
                // fresh window.
                self.snap_power_sm[i] = self.sim.cumulative_power(s);
                continue;
            }
            let raw = Self::window_avg_power(&self.sim, &mut self.snap_power_sm, i, window);
            // The monitor reads the same (possibly faulty) sensor the SM
            // does: faults distort what is *observed*, not what is true.
            let avg = self.ingest(SensorChannel::ServerPower, ControllerKind::Sm, i, raw);
            // Violation measurement against the *static* budget happens at
            // the SM cadence regardless of whether the SM is deployed.
            let violated_static = avg > self.cap_loc[i];
            self.violations.server.record(violated_static);
            self.win_sm.record(violated_static);
            if violated_static {
                let cap = self.cap_loc[i];
                self.emit(|| TelemetryEvent::Violation {
                    tick: t,
                    level: BudgetLevel::Server,
                    observed_watts: avg,
                    cap_watts: cap,
                    effective: false,
                });
            }
            if !self.mask.sm {
                continue;
            }
            // An offline SM takes no control action; the EC keeps running
            // against its last `r_ref` and the static-budget monitor above
            // keeps reporting (the graceful-degradation contract).
            if self.injector.offline(ControllerLayer::Sm, i, t) {
                self.fstats.outage_epochs += 1;
                self.emit(|| TelemetryEvent::ControllerOutage {
                    tick: t,
                    controller: ControllerKind::Sm,
                    index: i,
                });
                continue;
            }
            // A breach of the dynamically granted budget (tighter than the
            // static cap) is reported separately as an effective violation.
            let eff_cap = self.bank.effective_cap_watts(i);
            if avg > eff_cap && eff_cap < self.cap_loc[i] {
                self.emit(|| TelemetryEvent::Violation {
                    tick: t,
                    level: BudgetLevel::Server,
                    observed_watts: avg,
                    cap_watts: eff_cap,
                    effective: true,
                });
            }
            if self.mode.sm_actuates_r_ref() {
                let prev_r_ref = if recording { self.bank.r_ref(i) } else { 0.0 };
                self.bank.sm_step_coordinated(i, avg);
                if recording {
                    let r_ref = self.bank.r_ref(i);
                    if r_ref != prev_r_ref {
                        self.emit(|| TelemetryEvent::RRefUpdate {
                            tick: t,
                            server: i,
                            r_ref,
                        });
                    }
                }
            } else {
                let current = self.sim.pstate(s);
                let (_, forced) = self.bank.sm_step_uncoordinated(i, avg, current);
                if self.mode.merges_min_pstate() {
                    self.sm_hold[i] = forced;
                    if let Some(p) = forced {
                        let applied = PState(p.index().max(current.index()));
                        if self.write_pstate(s, applied, ControllerKind::Sm) && applied != current {
                            self.emit(|| TelemetryEvent::PStateChange {
                                tick: t,
                                server: i,
                                from: current.index(),
                                to: applied.index(),
                                source: ControllerKind::Sm,
                            });
                        }
                    }
                } else if let Some(p) = forced {
                    // The race: this write lands on the same actuator the
                    // EC writes every tick.
                    if self.write_pstate(s, p, ControllerKind::Sm) && p != current {
                        self.emit(|| TelemetryEvent::PStateChange {
                            tick: t,
                            server: i,
                            from: current.index(),
                            to: p.index(),
                            source: ControllerKind::Sm,
                        });
                    }
                }
            }
        }
    }

    fn em_epoch_seq(&mut self, window: u64) {
        let t = self.ticks_done;
        for e in 0..self.ems.len() {
            // Enclosure `e`'s members are the CSR slice
            // `enc_members[enc_offsets[e]..enc_offsets[e + 1]]`.
            let (m0, m1) = (self.enc_offsets[e], self.enc_offsets[e + 1]);
            self.scratch_power.clear();
            for k in m0..m1 {
                let s = self.enc_members[k];
                let avg =
                    Self::window_avg_power(&self.sim, &mut self.snap_power_em, s.index(), window);
                self.scratch_power.push(avg);
            }
            // Level total includes the enclosure's shared base power.
            let enc_cum = self.sim.cumulative_enclosure_power(EnclosureId(e));
            let raw_total = (enc_cum - self.snap_encpow_em[e]) / window.max(1) as f64;
            self.snap_encpow_em[e] = enc_cum;
            let total = self.ingest(
                SensorChannel::EnclosurePower,
                ControllerKind::Em,
                e,
                raw_total,
            );
            let violated_static = total > self.ems[e].static_cap_watts();
            self.violations.enclosure.record(violated_static);
            self.win_em.record(violated_static);
            if violated_static {
                let cap = self.ems[e].static_cap_watts();
                self.emit(|| TelemetryEvent::Violation {
                    tick: t,
                    level: BudgetLevel::Enclosure,
                    observed_watts: total,
                    cap_watts: cap,
                    effective: false,
                });
            }
            if !self.mask.em {
                continue;
            }
            if self.injector.offline(ControllerLayer::Em, e, t) && !self.em_promoted(e) {
                if !self.em_was_down[e] {
                    self.em_was_down[e] = true;
                    // The members just lost their parent manager: fall back
                    // to their local static caps (stale dynamic grants from
                    // a dead EM could strangle them indefinitely). With
                    // leases on, the lease state machine covers this
                    // uniformly — the orphaned grants simply expire; with a
                    // warm standby the detector promotes it instead, so the
                    // static-cap fallback stays out of the way.
                    if self.mode.budgets_flow_down()
                        && self.lease_ticks == 0
                        && !self.redundancy.em_standby
                    {
                        for k in m0..m1 {
                            let s = self.enc_members[k];
                            self.bank.set_granted_cap(s.index(), f64::INFINITY);
                            self.fstats.degradations += 1;
                            let server = s.index();
                            self.emit(|| TelemetryEvent::Degradation {
                                tick: t,
                                controller: ControllerKind::Sm,
                                index: server,
                                policy: DegradationPolicy::LocalCapFallback,
                            });
                        }
                    }
                }
                self.fstats.outage_epochs += 1;
                self.emit(|| TelemetryEvent::ControllerOutage {
                    tick: t,
                    controller: ControllerKind::Em,
                    index: e,
                });
                continue;
            }
            self.em_was_down[e] = false;
            let eff_cap = self.ems[e].effective_cap_watts();
            if total > eff_cap && eff_cap < self.ems[e].static_cap_watts() {
                self.emit(|| TelemetryEvent::Violation {
                    tick: t,
                    level: BudgetLevel::Enclosure,
                    observed_watts: total,
                    cap_watts: eff_cap,
                    effective: true,
                });
            }
            self.scratch_caps.clear();
            for k in m0..m1 {
                let s = self.enc_members[k];
                self.scratch_caps.push(self.cap_loc[s.index()]);
            }
            let allocations = self.ems[e].reallocate(&self.scratch_power, &self.scratch_caps);
            if self.invariants_on {
                self.check_conservation(reduce::tree_sum(&allocations), eff_cap, e);
            }
            if self.mode.budgets_flow_down() {
                for (k, &watts) in allocations.iter().enumerate() {
                    let s = self.enc_members[m0 + k];
                    let slot = self.server_link[s.index()]
                        .expect("every enclosure member has a grant link");
                    self.deliver_grant(slot, watts);
                }
            } else if total > self.ems[e].effective_cap_watts() {
                // Uncoordinated enclosure capper: on violation, directly
                // clamp member P-states to fit their allocation — racing
                // with the EC and SM.
                for (k, &alloc) in allocations.iter().enumerate() {
                    let s = self.enc_members[m0 + k];
                    if !self.sim.is_on(s) {
                        continue;
                    }
                    let model = &self.models[s.index()];
                    let forced = model
                        .pstate_for_power_budget(alloc)
                        .unwrap_or_else(|| model.deepest());
                    let before = self.sim.pstate(s);
                    if self.write_pstate(s, forced, ControllerKind::Em) && forced != before {
                        self.emit(|| TelemetryEvent::PStateChange {
                            tick: t,
                            server: s.index(),
                            from: before.index(),
                            to: forced.index(),
                            source: ControllerKind::Em,
                        });
                    }
                }
            }
            self.send_em_sync(e);
        }
    }

    fn gm_epoch(&mut self, window: u64) {
        // The GM's window computation (averages over every server and
        // enclosure) plus its sensor ingest (per-child counter streams)
        // is embarrassingly parallel; only the arbitration that follows
        // is inherently sequential. Fan the windows out when a pool is
        // available.
        if self.pool.is_some() && self.enc_aligned {
            self.gm_window_fanout(window);
        } else {
            self.gm_window_seq(window);
        }
        self.gm_arbitrate();
    }

    /// Sequential GM window pass: fills `scratch_child_raw` with each
    /// child's *hardened* window-average power (enclosures first, then
    /// standalone servers) — sensing each child's counter stream and
    /// running the full ingestion pipeline — and advances the GM
    /// snapshots.
    fn gm_window_seq(&mut self, window: u64) {
        self.scratch_child_raw.clear();
        for e in 0..self.ems.len() {
            // Keep the per-server GM snapshots warm for standalone reads.
            for k in self.enc_offsets[e]..self.enc_offsets[e + 1] {
                let s = self.enc_members[k];
                let _ =
                    Self::window_avg_power(&self.sim, &mut self.snap_power_gm, s.index(), window);
            }
            let enc_cum = self.sim.cumulative_enclosure_power(EnclosureId(e));
            let raw = (enc_cum - self.snap_encpow_gm[e]) / window.max(1) as f64;
            self.snap_encpow_gm[e] = enc_cum;
            let v = self.ingest(SensorChannel::GroupChildPower, ControllerKind::Gm, e, raw);
            self.scratch_child_raw.push(v);
        }
        for k in 0..self.standalone_ids.len() {
            let s = self.standalone_ids[k];
            let raw = Self::window_avg_power(&self.sim, &mut self.snap_power_gm, s.index(), window);
            let child = self.ems.len() + k;
            let v = self.ingest(
                SensorChannel::GroupChildPower,
                ControllerKind::Gm,
                child,
                raw,
            );
            self.scratch_child_raw.push(v);
        }
    }

    /// Parallel GM window pass — bit-identical to [`Runner::gm_window_seq`]
    /// because it performs the same per-child arithmetic and every sensor
    /// draw comes from that child's private counter stream. Requires
    /// `enc_aligned` so each worker's enclosure and standalone slices
    /// fall inside its server range. The sequential ingest order is *all*
    /// enclosures then *all* standalones, so each shard buffers its
    /// telemetry in two streams that the reduction replays in that order.
    fn gm_window_fanout(&mut self, window: u64) {
        let t = self.ticks_done;
        let recording = self.recording();
        let num_enclosures = self.ems.len();
        let flat = self.enc_members.len();
        let num_sa = self.standalone_ids.len();
        self.scratch_child_raw.clear();
        self.scratch_child_raw.resize(num_enclosures + num_sa, 0.0);

        struct GmShard<'a> {
            /// First global server id of this shard's server range.
            lo: usize,
            /// First global enclosure id of this shard's enclosure range.
            enc_lo: usize,
            /// First standalone-child ordinal of this shard.
            sa_lo: usize,
            sense_enc: SensorDrawShard<'a>,
            sense_sa: SensorDrawShard<'a>,
            snap_pow: &'a mut [f64],
            snap_enc: &'a mut [f64],
            enc_raw: &'a mut [f64],
            sa_raw: &'a mut [f64],
            last_enc: &'a mut [f64],
            last_sa: &'a mut [f64],
            fstats: FaultStats,
            tel_enc: Vec<TelemetryEvent>,
            tel_sa: Vec<TelemetryEvent>,
        }

        // Standalone servers are a dense tail (`enc_aligned` guarantees
        // it), so each server shard maps to a dense standalone range.
        let sa_ranges: Vec<Range<usize>> = self
            .shards
            .iter()
            .map(|r| (r.start.max(flat) - flat)..(r.end.max(flat) - flat))
            .collect();
        let view = self.sim.epoch_view();
        let senses = self.injector.gm_child_shards(&self.shard_encs, &sa_ranges);
        let (enc_raw_all, sa_raw_all) = self.scratch_child_raw.split_at_mut(num_enclosures);
        let (last_enc_all, last_sa_all) = self.last_child_gm.split_at_mut(num_enclosures);
        let snap_pows = split_ranges(&mut self.snap_power_gm, &self.shards);
        let snap_encs = split_ranges(&mut self.snap_encpow_gm, &self.shard_encs);
        let enc_raws = split_ranges(enc_raw_all, &self.shard_encs);
        let sa_raws = split_ranges(sa_raw_all, &sa_ranges);
        let last_encs = split_ranges(last_enc_all, &self.shard_encs);
        let last_sas = split_ranges(last_sa_all, &sa_ranges);
        let cells: Vec<Mutex<GmShard<'_>>> = self
            .shards
            .iter()
            .zip(self.shard_encs.iter())
            .zip(&sa_ranges)
            .zip(senses)
            .zip(snap_pows)
            .zip(snap_encs)
            .zip(enc_raws)
            .zip(sa_raws)
            .zip(last_encs)
            .zip(last_sas)
            .map(
                |(
                    (
                        (
                            (
                                (
                                    (
                                        (((range, enc_range), sa_range), (sense_enc, sense_sa)),
                                        snap_pow,
                                    ),
                                    snap_enc,
                                ),
                                enc_raw,
                            ),
                            sa_raw,
                        ),
                        last_enc,
                    ),
                    last_sa,
                )| {
                    Mutex::new(GmShard {
                        lo: range.start,
                        enc_lo: enc_range.start,
                        sa_lo: sa_range.start,
                        sense_enc,
                        sense_sa,
                        snap_pow,
                        snap_enc,
                        enc_raw,
                        sa_raw,
                        last_enc,
                        last_sa,
                        fstats: FaultStats::default(),
                        tel_enc: Vec::new(),
                        tel_sa: Vec::new(),
                    })
                },
            )
            .collect();
        let enc_offsets: &[usize] = &self.enc_offsets;
        let enc_members: &[ServerId] = &self.enc_members;
        let standalone: &[ServerId] = &self.standalone_ids;
        let pool = self.pool.as_ref().expect("parallel epoch requires a pool");
        pool.execute(cells.len(), &|kk| {
            let mut guard = cells[kk].lock().expect("epoch shard lock");
            let sh = &mut *guard;
            for ee in 0..sh.snap_enc.len() {
                let e = sh.enc_lo + ee;
                for &s in &enc_members[enc_offsets[e]..enc_offsets[e + 1]] {
                    // The sequential pass only warms the per-server
                    // snapshot here (the member average is discarded).
                    sh.snap_pow[s.index() - sh.lo] = view.cumulative_power(s);
                }
                let enc_cum = view.cumulative_enclosure_power(EnclosureId(e));
                let raw = (enc_cum - sh.snap_enc[ee]) / window.max(1) as f64;
                sh.snap_enc[ee] = enc_cum;
                let reading = sh.sense_enc.sense(e, t, raw);
                sh.enc_raw[ee] = ingest_buffered(
                    reading,
                    t,
                    ControllerKind::Gm,
                    e,
                    &mut sh.fstats,
                    &mut sh.tel_enc,
                    &mut sh.last_enc[ee],
                    recording,
                );
            }
            for j in 0..sh.sa_raw.len() {
                let ordinal = sh.sa_lo + j;
                let s = standalone[ordinal];
                let off = s.index() - sh.lo;
                let cum = view.cumulative_power(s);
                let raw = (cum - sh.snap_pow[off]) / window.max(1) as f64;
                sh.snap_pow[off] = cum;
                let reading = sh.sense_sa.sense(ordinal, t, raw);
                sh.sa_raw[j] = ingest_buffered(
                    reading,
                    t,
                    ControllerKind::Gm,
                    num_enclosures + ordinal,
                    &mut sh.fstats,
                    &mut sh.tel_sa,
                    &mut sh.last_sa[j],
                    recording,
                );
            }
        });
        // Ascending shards own ascending child ranges; replaying every
        // shard's enclosure telemetry before any shard's standalone
        // telemetry restores the sequential all-enclosures-then-all-
        // standalones emission order.
        let mut sa_telemetry: Vec<Vec<TelemetryEvent>> = Vec::with_capacity(cells.len());
        for cell in cells {
            let sh = cell.into_inner().expect("worker panics already propagated");
            self.fstats.merge(&sh.fstats);
            if let Some(r) = &mut self.recorder {
                for ev in sh.tel_enc {
                    r.record(ev);
                }
            }
            sa_telemetry.push(sh.tel_sa);
        }
        if let Some(r) = &mut self.recorder {
            for tel in sa_telemetry {
                for ev in tel {
                    r.record(ev);
                }
            }
        }
    }

    /// The sequential remainder of a GM epoch: the window pass (seq or
    /// fan-out) already sensed and hardened every child's average into
    /// `scratch_child_raw`, so arbitration is RNG-free apart from the GM
    /// outage check — sum, check the group cap, reallocate, deliver.
    fn gm_arbitrate(&mut self) {
        let t = self.ticks_done;
        // Children: enclosures first, then standalone servers.
        let num_enclosures = self.ems.len();
        self.scratch_consumption.clear();
        self.scratch_consumption
            .extend_from_slice(&self.scratch_child_raw);
        self.scratch_child_caps.clear();
        for e in 0..num_enclosures {
            self.scratch_child_caps.push(self.cap_enc[e]);
        }
        for k in 0..self.standalone_ids.len() {
            let s = self.standalone_ids[k];
            self.scratch_child_caps.push(self.cap_loc[s.index()]);
        }
        let group_total = reduce::tree_sum(&self.scratch_consumption);
        let violated_static = group_total > self.cap_grp;
        self.violations.group.record(violated_static);
        self.win_gm.record(violated_static);
        if violated_static {
            let cap = self.cap_grp;
            self.emit(|| TelemetryEvent::Violation {
                tick: t,
                level: BudgetLevel::Group,
                observed_watts: group_total,
                cap_watts: cap,
                effective: false,
            });
        }
        if !self.mask.gm {
            return;
        }
        if self.injector.offline(ControllerLayer::Gm, 0, t) && !self.gm_promoted() {
            if !self.gm_was_down {
                self.gm_was_down = true;
                // Every child just lost the group manager: enclosures and
                // standalone servers fall back to their local static caps.
                // Under leases the orphaned grants expire on their own;
                // with a warm standby the detector promotes it instead, so
                // the static-cap fallback stays out of the way.
                if self.mode.budgets_flow_down()
                    && self.lease_ticks == 0
                    && !self.redundancy.gm_standby
                {
                    for e in 0..self.ems.len() {
                        self.ems[e].set_granted_cap(f64::INFINITY);
                        self.fstats.degradations += 1;
                        self.emit(|| TelemetryEvent::Degradation {
                            tick: t,
                            controller: ControllerKind::Em,
                            index: e,
                            policy: DegradationPolicy::LocalCapFallback,
                        });
                    }
                    for k in 0..self.standalone_ids.len() {
                        let s = self.standalone_ids[k];
                        self.bank.set_granted_cap(s.index(), f64::INFINITY);
                        self.fstats.degradations += 1;
                        let server = s.index();
                        self.emit(|| TelemetryEvent::Degradation {
                            tick: t,
                            controller: ControllerKind::Sm,
                            index: server,
                            policy: DegradationPolicy::LocalCapFallback,
                        });
                    }
                }
            }
            self.fstats.outage_epochs += 1;
            self.emit(|| TelemetryEvent::ControllerOutage {
                tick: t,
                controller: ControllerKind::Gm,
                index: 0,
            });
            return;
        }
        self.gm_was_down = false;
        let eff_cap = self.gm.effective_cap_watts();
        if group_total > eff_cap && eff_cap < self.cap_grp {
            self.emit(|| TelemetryEvent::Violation {
                tick: t,
                level: BudgetLevel::Group,
                observed_watts: group_total,
                cap_watts: eff_cap,
                effective: true,
            });
        }
        let allocations = self
            .gm
            .reallocate(&self.scratch_consumption, &self.scratch_child_caps);
        if self.invariants_on {
            self.check_conservation(reduce::tree_sum(&allocations), eff_cap, 0);
        }
        if self.mode.budgets_flow_down() {
            for (e, &watts) in allocations.iter().enumerate().take(num_enclosures) {
                let slot = self.em_link[e];
                self.deliver_grant(slot, watts);
            }
            for k in 0..self.standalone_ids.len() {
                let s = self.standalone_ids[k];
                let child = num_enclosures + k;
                let slot =
                    self.server_link[s.index()].expect("every standalone server has a grant link");
                self.deliver_grant(slot, allocations[child]);
            }
        } else if group_total > self.gm.effective_cap_watts() {
            // Uncoordinated group capper: directly clamp standalone
            // servers (it has no interface into the enclosures' blades).
            for k in 0..self.standalone_ids.len() {
                let s = self.standalone_ids[k];
                if !self.sim.is_on(s) {
                    continue;
                }
                let alloc = allocations[num_enclosures + k];
                let model = &self.models[s.index()];
                let forced = model
                    .pstate_for_power_budget(alloc)
                    .unwrap_or_else(|| model.deepest());
                let before = self.sim.pstate(s);
                if self.write_pstate(s, forced, ControllerKind::Gm) && forced != before {
                    self.emit(|| TelemetryEvent::PStateChange {
                        tick: t,
                        server: s.index(),
                        from: before.index(),
                        to: forced.index(),
                        source: ControllerKind::Gm,
                    });
                }
            }
        }
        self.send_gm_sync();
    }

    fn vmc_epoch(&mut self) {
        // Feedback first (rates observed since the last epoch). The
        // feedback signal comes *from* the capping controllers (paper
        // Figure 4: "expose power budget violations to VMC"); levels whose
        // capper is not deployed report nothing.
        self.vmc.report_violations_windowed(
            if self.mask.sm {
                self.win_sm.rate()
            } else {
                0.0
            },
            if self.mask.em {
                self.win_em.rate()
            } else {
                0.0
            },
            if self.mask.gm {
                self.win_gm.rate()
            } else {
                0.0
            },
            self.intervals.vmc,
        );
        self.win_sm = ViolationCounter::new();
        self.win_em = ViolationCounter::new();
        self.win_gm = ViolationCounter::new();

        // Demand estimates over the window: per-VM independent slots,
        // sharded across the pool when the fleet is large enough.
        self.vmc_demands();

        // Field-disjoint borrows: the VMC plans (mutably) against a
        // context borrowing the simulation, models, and caps directly —
        // no placement clone.
        let ctx = ClusterContext {
            topo: self.sim.topology(),
            models: &self.models,
            current: self.sim.placement(),
            cap_loc: &self.cap_loc,
            cap_enc: &self.cap_enc,
            cap_grp: self.cap_grp,
        };
        let plan = self.vmc.plan(&self.scratch_demands, &ctx);
        let t = self.ticks_done;
        if self.recording() {
            // Telemetry aggregates through the fixed-shape tree; large
            // fleets farm the leaf partials out to the pool (both sum
            // and max in one struct reduction), identical bits either
            // way.
            let demands = &self.scratch_demands;
            let (demand_sum, demand_max) = {
                let n = demands.len();
                let term = |j: usize| (demands[j], demands[j]);
                let combine = |a: (f64, f64), b: (f64, f64)| (a.0 + b.0, a.1.max(b.1));
                match &self.pool {
                    Some(pool) if n >= PAR_VM_THRESHOLD => {
                        reduce::tree_reduce_pool(pool, n, (0.0f64, 0.0f64), term, combine)
                    }
                    _ => reduce::tree_reduce(n, (0.0f64, 0.0f64), term, combine),
                }
            };
            let demand_mean = if demands.is_empty() {
                0.0
            } else {
                demand_sum / demands.len() as f64
            };
            let used_servers = plan.placement.used_servers().len();
            let migrations = plan.migrations.len();
            let power_on = plan.power_on.len();
            let power_off = plan.power_off.len();
            let forced_placements = plan.forced_placements;
            self.emit(|| TelemetryEvent::VmcPlan {
                tick: t,
                demand_mean,
                demand_max,
                used_servers,
                migrations,
                power_on,
                power_off,
                forced_placements,
            });
        }

        for &s in &plan.power_on {
            if !self.sim.is_on(s) && self.sim.power_on(s).is_ok() {
                self.bank.ec_reset(s.index());
                self.bank.set_r_ref(s.index(), 0.75);
                // A stale grant from before the power-off (possibly 0 W)
                // must not strangle the revived server until the next
                // EM/GM epoch refreshes it; any lease on it clears too.
                self.bank.reset_grant(s.index());
                // Fresh measurement windows for the revived server: all
                // four cumulative snapshots, not just the EC's — a stale
                // SM/EM/GM power snapshot would fold the whole off period
                // into the first window after revival.
                self.snap_util_ec[s.index()] = self.sim.cumulative_utilization(s);
                let cum_power = self.sim.cumulative_power(s);
                self.snap_power_sm[s.index()] = cum_power;
                self.snap_power_em[s.index()] = cum_power;
                self.snap_power_gm[s.index()] = cum_power;
                let server = s.index();
                self.emit(|| TelemetryEvent::PowerOn { tick: t, server });
            }
        }
        for m in &plan.migrations {
            // `Simulation::migrate` treats a same-server move as a no-op
            // success; the telemetry stream mirrors that (no event), so
            // Migration events stay in lockstep with `migrations_started`.
            let from = self.sim.placement().host_of(m.vm);
            match self.sim.migrate(m.vm, m.to) {
                Ok(()) => {
                    if from != m.to {
                        let (vm, to) = (m.vm.index(), m.to.index());
                        let from = from.index();
                        self.emit(|| TelemetryEvent::Migration {
                            tick: t,
                            vm,
                            from,
                            to,
                        });
                    }
                }
                Err(_) => self.skipped_migrations += 1,
            }
        }
        for &s in &plan.power_off {
            if self.sim.is_on(s)
                && self.sim.residents(s).is_empty()
                && self.sim.power_off(s).is_ok()
            {
                let server = s.index();
                self.emit(|| TelemetryEvent::PowerOff { tick: t, server });
            }
        }
    }

    /// Per-VM demand estimates for a VMC epoch, including the window
    /// bookkeeping (snapshot advances, peak resets). Every slot runs
    /// [`vmc_demand_slot`] independently, so the parallel fan-out over
    /// even VM ranges is bit-identical to the sequential loop.
    fn vmc_demands(&mut self) {
        let num_vms = self.cum_real.len();
        let real_mode = self.mode.vmc_uses_real_util();
        let window = self.intervals.vmc.max(1) as f64;
        self.scratch_demands.clear();
        self.scratch_demands.resize(num_vms, 0.0);
        let pool = match &self.pool {
            Some(pool) if num_vms >= PAR_VM_THRESHOLD => pool,
            _ => {
                for j in 0..num_vms {
                    self.scratch_demands[j] = vmc_demand_slot(
                        real_mode,
                        window,
                        self.cum_real[j],
                        self.cum_apparent[j],
                        &mut self.snap_real[j],
                        &mut self.snap_apparent[j],
                        &mut self.win_max_real[j],
                        &mut self.win_max_apparent[j],
                    );
                }
                return;
            }
        };
        struct DemandShard<'a> {
            lo: usize,
            snap_real: &'a mut [f64],
            snap_apparent: &'a mut [f64],
            win_max_real: &'a mut [f64],
            win_max_apparent: &'a mut [f64],
            demands: &'a mut [f64],
        }
        let ranges = vm_ranges(num_vms, self.shards.len());
        let snap_reals = split_ranges(&mut self.snap_real, &ranges);
        let snap_apparents = split_ranges(&mut self.snap_apparent, &ranges);
        let win_reals = split_ranges(&mut self.win_max_real, &ranges);
        let win_apparents = split_ranges(&mut self.win_max_apparent, &ranges);
        let demandss = split_ranges(&mut self.scratch_demands, &ranges);
        let cum_real: &[f64] = &self.cum_real;
        let cum_apparent: &[f64] = &self.cum_apparent;
        let cells: Vec<Mutex<DemandShard<'_>>> = ranges
            .iter()
            .zip(snap_reals)
            .zip(snap_apparents)
            .zip(win_reals)
            .zip(win_apparents)
            .zip(demandss)
            .map(
                |(
                    ((((range, snap_real), snap_apparent), win_max_real), win_max_apparent),
                    demands,
                )| {
                    Mutex::new(DemandShard {
                        lo: range.start,
                        snap_real,
                        snap_apparent,
                        win_max_real,
                        win_max_apparent,
                        demands,
                    })
                },
            )
            .collect();
        pool.execute(cells.len(), &|k| {
            let mut guard = cells[k].lock().expect("vm shard lock");
            let sh = &mut *guard;
            for off in 0..sh.demands.len() {
                let j = sh.lo + off;
                sh.demands[off] = vmc_demand_slot(
                    real_mode,
                    window,
                    cum_real[j],
                    cum_apparent[j],
                    &mut sh.snap_real[off],
                    &mut sh.snap_apparent[off],
                    &mut sh.win_max_real[off],
                    &mut sh.win_max_apparent[off],
                );
            }
        });
    }
}

/// One worker's slice of the runner's per-server state during a parallel
/// EC or SM epoch, plus its locally-buffered side effects. Buffers are
/// merged (counters) or replayed (event streams) in ascending shard
/// order after the barrier, which restores the sequential emission order
/// exactly.
struct EpochShard<'a> {
    /// First global server id of this shard.
    lo: usize,
    bank: BankShard<'a>,
    act: ActuatorShard<'a>,
    /// This shard's slice of the per-server actuator-jam counter
    /// streams (order-free draws, safe to evaluate in-shard).
    draw: ActuatorDrawShard<'a>,
    /// This shard's slice of the epoch channel's per-server sensor
    /// counter streams (order-free draws, safe to evaluate in-shard).
    sense: SensorDrawShard<'a>,
    /// This epoch's measurement-window snapshots (EC: utilization,
    /// SM: power), shard slice.
    snap: &'a mut [f64],
    /// This epoch's hold-last-good store, shard slice.
    last_good: &'a mut [f64],
    /// SM standing P-state demands, shard slice (written by the
    /// min-merge SM, read by the EC).
    sm_hold: &'a mut [Option<PState>],
    fstats: FaultStats,
    telemetry: Vec<TelemetryEvent>,
    /// Static-cap violation verdicts (SM epochs only; order-free).
    win: ViolationCounter,
}

/// Offline check against a static copy of the fault plan's outage
/// windows — usable from inside a worker while the injector itself is
/// carved into actuator-draw shards. [`FaultInjector::offline`] is a
/// pure scan of the same windows, so verdicts are identical.
fn offline_in(outages: &[OutageWindow], layer: ControllerLayer, index: usize, tick: u64) -> bool {
    outages.iter().any(|w| w.covers(layer, index, tick))
}

/// Minimum VM count before the per-tick accumulators and the VMC demand
/// pass fan out to the pool — below this the barrier costs more than the
/// loop.
const PAR_VM_THRESHOLD: usize = 64;

/// Even partition of `0..num_vms` into `k` dense ascending ranges (VMs
/// have no enclosure-alignment constraint, so a plain even split works).
fn vm_ranges(num_vms: usize, k: usize) -> Vec<Range<usize>> {
    let k = k.max(1);
    (0..k)
        .map(|p| p * num_vms / k..(p + 1) * num_vms / k)
        .collect()
}

/// One VM's demand estimate plus window bookkeeping for a VMC epoch: the
/// mean/peak blend over the closing window, both snapshots advanced,
/// both window peaks reset. Pure per-slot arithmetic — the parallel and
/// sequential VMC passes share it, so they are bit-identical.
#[allow(clippy::too_many_arguments)]
fn vmc_demand_slot(
    real_mode: bool,
    window: f64,
    cum_real: f64,
    cum_apparent: f64,
    snap_real: &mut f64,
    snap_apparent: &mut f64,
    win_max_real: &mut f64,
    win_max_apparent: &mut f64,
) -> f64 {
    let (cum, snap, win_max) = if real_mode {
        (cum_real, &mut *snap_real, *win_max_real)
    } else {
        (cum_apparent, &mut *snap_apparent, *win_max_apparent)
    };
    let mean = (cum - *snap) / window;
    *snap = cum;
    // Size by a mean/peak blend: a placement sized to the window mean
    // alone saturates as soon as the diurnal curve rises within the
    // next epoch.
    let est = mean + 0.3 * (win_max - mean).max(0.0);
    *win_max_real = 0.0;
    *win_max_apparent = 0.0;
    // Keep the unused snapshot current too.
    if real_mode {
        *snap_apparent = cum_apparent;
    } else {
        *snap_real = cum_real;
    }
    est.clamp(0.0, 1.0)
}

/// Splits `data` into the per-shard slices of a dense ascending
/// partition (the tail past the last range must be empty).
fn split_ranges<'a, T>(mut data: &'a mut [T], ranges: &[Range<usize>]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut cursor = 0usize;
    for r in ranges {
        debug_assert_eq!(r.start, cursor, "shards must be dense and ascending");
        let (head, rest) = data.split_at_mut(r.len());
        data = rest;
        out.push(head);
        cursor = r.end;
    }
    debug_assert!(data.is_empty(), "shards must cover the whole fleet");
    out
}

/// Carves the simulator, the controller bank, and the runner's
/// per-server arrays into one lock-free-in-practice cell per shard (each
/// worker locks only its own, uncontended).
#[allow(clippy::too_many_arguments)]
fn carve_shards<'a>(
    ranges: &[Range<usize>],
    sim: &'a mut Simulation,
    bank: &'a mut ControllerBank,
    injector: &'a mut FaultInjector,
    channel: SensorChannel,
    snap: &'a mut [f64],
    last_good: &'a mut [f64],
    sm_hold: &'a mut [Option<PState>],
) -> (SimEpochView<'a>, Vec<Mutex<EpochShard<'a>>>) {
    let (view, acts) = sim.epoch_shards(ranges);
    let banks = bank.shards(ranges);
    let draws = injector.draw_shards(ranges, channel);
    let snaps = split_ranges(snap, ranges);
    let lasts = split_ranges(last_good, ranges);
    let holds = split_ranges(sm_hold, ranges);
    let cells = ranges
        .iter()
        .zip(banks)
        .zip(acts)
        .zip(draws)
        .zip(snaps)
        .zip(lasts)
        .zip(holds)
        .map(
            |((((((range, bank), act), (draw, sense)), snap), last_good), sm_hold)| {
                Mutex::new(EpochShard {
                    lo: range.start,
                    bank,
                    act,
                    draw,
                    sense,
                    snap,
                    last_good,
                    sm_hold,
                    fstats: FaultStats::default(),
                    telemetry: Vec::new(),
                    win: ViolationCounter::new(),
                })
            },
        )
        .collect();
    (view, cells)
}

/// The shard-local replica of [`Runner::ingest`]: identical arithmetic
/// and identical fault/degradation accounting, with the counters and
/// telemetry buffered in the worker's [`EpochShard`] instead of applied
/// globally. The sensor reading itself comes from the slot's private
/// counter stream, drawn in-shard.
fn shard_ingest(
    reading: Reading,
    t: u64,
    ctrl: ControllerKind,
    idx: usize,
    sh: &mut EpochShard<'_>,
    off: usize,
    recording: bool,
) -> f64 {
    ingest_buffered(
        reading,
        t,
        ctrl,
        idx,
        &mut sh.fstats,
        &mut sh.telemetry,
        &mut sh.last_good[off],
        recording,
    )
}

/// The buffered core of the shard-local ingest: identical arithmetic
/// and identical fault/degradation accounting to [`Runner::ingest`],
/// with counters and telemetry accumulated into the caller's buffers
/// instead of applied globally. The sensor reading itself comes from the
/// slot's private counter stream, drawn in-shard.
#[allow(clippy::too_many_arguments)]
fn ingest_buffered(
    reading: Reading,
    t: u64,
    ctrl: ControllerKind,
    idx: usize,
    fstats: &mut FaultStats,
    telemetry: &mut Vec<TelemetryEvent>,
    last_good: &mut f64,
    recording: bool,
) -> f64 {
    let delivered = match reading {
        Reading::Clean(v) => Some(v),
        Reading::Noisy(v) => {
            fstats.sensor_noise += 1;
            if recording {
                telemetry.push(TelemetryEvent::SensorFault {
                    tick: t,
                    controller: ctrl,
                    index: idx,
                    fault: SensorFaultKind::Noise,
                });
            }
            Some(v)
        }
        Reading::Stuck(v) => {
            fstats.sensor_stuck += 1;
            if recording {
                telemetry.push(TelemetryEvent::SensorFault {
                    tick: t,
                    controller: ctrl,
                    index: idx,
                    fault: SensorFaultKind::Stuck,
                });
            }
            Some(v)
        }
        Reading::Dropped => {
            fstats.sensor_dropped += 1;
            if recording {
                telemetry.push(TelemetryEvent::SensorFault {
                    tick: t,
                    controller: ctrl,
                    index: idx,
                    fault: SensorFaultKind::Dropped,
                });
            }
            None
        }
    };
    let value = match delivered {
        Some(v) if v.is_finite() && v >= 0.0 => v,
        Some(_) => {
            fstats.clamped_inputs += 1;
            if recording {
                telemetry.push(TelemetryEvent::Degradation {
                    tick: t,
                    controller: ctrl,
                    index: idx,
                    policy: DegradationPolicy::ClampNonFinite,
                });
            }
            *last_good
        }
        None => {
            fstats.degradations += 1;
            if recording {
                telemetry.push(TelemetryEvent::Degradation {
                    tick: t,
                    controller: ctrl,
                    index: idx,
                    policy: DegradationPolicy::HoldLastGood,
                });
            }
            *last_good
        }
    };
    *last_good = value;
    value
}

/// Packs a float slice into IEEE-754 bit words (bit-exact, non-finite
/// safe — the JSON layer would otherwise collapse infinities to null).
fn pack_bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Unpacks bit words into an existing float slice (shorter input leaves
/// the tail untouched; `restore` validates sizes up front).
fn unpack_bits(bits: &[u64], out: &mut [f64]) {
    for (o, &b) in out.iter_mut().zip(bits) {
        *o = f64::from_bits(b);
    }
}

/// Flattens a capper snapshot into the word vector shipped over sync
/// links and held in a replica's shadow: `[granted_cap_bits,
/// lease_until, policy words...]`. Bit-exact by construction.
fn encode_capper(snap: &CapperSnapshot) -> Vec<u64> {
    let mut words = Vec::with_capacity(2 + snap.policy_state.len());
    words.push(snap.granted_cap_bits);
    words.push(snap.lease_until);
    words.extend_from_slice(&snap.policy_state);
    words
}

/// Inverse of [`encode_capper`]. `None` on a malformed shadow (shorter
/// than the two fixed words) — the promotion then keeps the live
/// controller's current state rather than corrupting it.
fn decode_capper(words: &[u64]) -> Option<CapperSnapshot> {
    let (&granted_cap_bits, rest) = words.split_first()?;
    let (&lease_until, policy) = rest.split_first()?;
    Some(CapperSnapshot {
        granted_cap_bits,
        lease_until,
        policy_state: policy.to_vec(),
    })
}

/// A [`Runner`]'s complete dynamic state, produced by
/// [`Runner::snapshot`] and consumed by [`Runner::restore`] /
/// [`Runner::resume`]. Serializable (floats travel as IEEE-754 bit
/// words), so checkpoints written by `npsctl --checkpoint-every` resume
/// bit-exactly across process boundaries.
///
/// Compatibility: a checkpoint binds to one experiment (the `label` must
/// match) and one format `version`; static structure is *not* stored and
/// must come from the same [`ExperimentConfig`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunnerSnapshot {
    /// Checkpoint format version ([`RunnerSnapshot::VERSION`]).
    pub version: u32,
    /// Label of the experiment this checkpoint belongs to.
    pub label: String,
    /// Ticks simulated when the checkpoint was taken.
    pub ticks_done: u64,
    /// Simulator state (placement, P-states, accumulators, thermal).
    pub sim: SimSnapshot,
    /// Fault-injector RNG and latched fault state.
    pub injector: InjectorSnapshot,
    /// Control-plane bus: link sequence state and in-flight queue.
    pub bus: BusSnapshot,
    /// Per-server EC/SM controller bank.
    pub bank: BankSnapshot,
    /// Enclosure managers' grants, leases, and policy state.
    pub ems: Vec<CapperSnapshot>,
    /// Group manager's grant, lease, and policy state.
    pub gm: CapperSnapshot,
    /// VMC feedback buffers `[b_loc, b_enc, b_grp]` as bit words.
    pub vmc_buffer_bits: Vec<u64>,
    /// SM standing P-state demands (`u64::MAX` = none).
    pub sm_hold: Vec<u64>,
    /// EC utilization window snapshots (bit words).
    pub snap_util_ec_bits: Vec<u64>,
    /// SM power window snapshots (bit words).
    pub snap_power_sm_bits: Vec<u64>,
    /// EM per-member power window snapshots (bit words).
    pub snap_power_em_bits: Vec<u64>,
    /// GM per-server power window snapshots (bit words).
    pub snap_power_gm_bits: Vec<u64>,
    /// EM enclosure-total window snapshots (bit words).
    pub snap_encpow_em_bits: Vec<u64>,
    /// GM enclosure-total window snapshots (bit words).
    pub snap_encpow_gm_bits: Vec<u64>,
    /// Cumulative real per-VM utilization (bit words).
    pub cum_real_bits: Vec<u64>,
    /// Cumulative apparent per-VM utilization (bit words).
    pub cum_apparent_bits: Vec<u64>,
    /// VMC real-utilization window snapshots (bit words).
    pub snap_real_bits: Vec<u64>,
    /// VMC apparent-utilization window snapshots (bit words).
    pub snap_apparent_bits: Vec<u64>,
    /// Window maxima of real per-VM utilization (bit words).
    pub win_max_real_bits: Vec<u64>,
    /// Window maxima of apparent per-VM utilization (bit words).
    pub win_max_apparent_bits: Vec<u64>,
    /// Hold-last-good store: EC utilization channel (bit words).
    pub last_util_ec_bits: Vec<u64>,
    /// Hold-last-good store: SM power channel (bit words).
    pub last_power_sm_bits: Vec<u64>,
    /// Hold-last-good store: EM enclosure power channel (bit words).
    pub last_encpow_em_bits: Vec<u64>,
    /// Hold-last-good store: GM child power channel (bit words).
    pub last_child_gm_bits: Vec<u64>,
    /// Fault and degradation counters.
    pub fstats: FaultStats,
    /// EM outage edge-detection latches.
    pub em_was_down: Vec<bool>,
    /// GM outage edge-detection latch.
    pub gm_was_down: bool,
    /// Per-level violation accounting.
    pub violations: LevelViolations,
    /// Server-level violation window feeding the VMC.
    pub win_sm: ViolationCounter,
    /// Enclosure-level violation window feeding the VMC.
    pub win_em: ViolationCounter,
    /// Group-level violation window feeding the VMC.
    pub win_gm: ViolationCounter,
    /// Migrations the simulator rejected.
    pub skipped_migrations: u64,
    /// Latency-proxy accumulator (bit word).
    pub cum_latency_proxy_bits: u64,
    /// Latency-proxy sample count.
    pub latency_samples: u64,
    /// GM warm-standby replica (term, heartbeat counter, shadow state,
    /// in-flight syncs). `None` when no GM standby is configured.
    pub gm_replica: Option<ReplicaState>,
    /// Per-enclosure EM warm-standby replicas (empty without standbys).
    pub em_replicas: Vec<ReplicaState>,
    /// Redundancy-protocol counters.
    pub rstats: RedundancyStats,
    /// Safety-invariant monitor counters.
    pub istats: InvariantStats,
}

impl RunnerSnapshot {
    /// Current checkpoint format version. Bump on any layout change —
    /// restore refuses checkpoints from other versions. Version 2 added
    /// the per-server actuator draw counters to the injector snapshot;
    /// version 3 replaced the shared-stream sensor state with per-slot
    /// counter streams (counters, stuck-until ticks, held values);
    /// version 4 added warm-standby replica state (terms, heartbeat
    /// counters, shadows, in-flight syncs), the redundancy and
    /// safety-invariant counter blocks, and the per-link message-loss
    /// counter layout in the injector snapshot.
    pub const VERSION: u32 = 4;

    /// Writes the checkpoint to `path` as JSON, atomically: the bytes go
    /// to a sibling temp file first and are renamed into place, so a
    /// crash mid-write leaves the previous checkpoint intact.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        let dir = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => std::path::PathBuf::from("."),
        };
        let stem = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "checkpoint.json".to_string());
        let tmp = dir.join(format!(".{stem}.tmp.{}", std::process::id()));
        let write = (|| -> std::io::Result<()> {
            let file = std::fs::File::create(&tmp)?;
            let mut writer = std::io::BufWriter::new(file);
            serde_json::to_writer(&mut writer, self).map_err(std::io::Error::other)?;
            use std::io::Write as _;
            writer.flush()?;
            writer.into_inner().map_err(|e| e.into_error())?.sync_all()
        })();
        match write {
            Ok(()) => std::fs::rename(&tmp, path),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Reads a checkpoint previously written by [`RunnerSnapshot::save`].
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let file = std::fs::File::open(path)?;
        serde_json::from_reader(std::io::BufReader::new(file)).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{Scenario, SystemKind};
    use crate::CoordinationMode;
    use nps_traces::Mix;

    fn quick(mode: CoordinationMode) -> ExperimentResult {
        let cfg = Scenario::paper(SystemKind::BladeA, Mix::All180, mode)
            .horizon(1_200)
            .seed(7)
            .build();
        run_experiment(&cfg)
    }

    #[test]
    fn coordinated_run_saves_power_with_small_perf_loss() {
        let r = quick(CoordinationMode::Coordinated);
        assert!(
            r.comparison.power_savings_pct > 30.0,
            "savings {:.1}%",
            r.comparison.power_savings_pct
        );
        assert!(
            r.comparison.perf_loss_pct < 10.0,
            "perf loss {:.1}%",
            r.comparison.perf_loss_pct
        );
    }

    #[test]
    fn coordinated_never_races_on_the_actuator() {
        let r = quick(CoordinationMode::Coordinated);
        assert_eq!(
            r.comparison.run.pstate_conflicts, 0,
            "coordinated mode must not produce same-tick actuator races"
        );
    }

    #[test]
    fn uncoordinated_races_on_the_actuator() {
        let r = quick(CoordinationMode::Uncoordinated);
        assert!(
            r.comparison.run.pstate_conflicts > 0,
            "uncoordinated EC/SM must collide on the P-state register"
        );
    }

    #[test]
    fn parallel_epochs_engage_and_match_sequential() {
        let mut cfg = Scenario::multi_rack(
            SystemKind::BladeA,
            CoordinationMode::Coordinated,
            2,
            2,
            4,
            2,
        )
        .horizon(200)
        .seed(9)
        .build();
        let mut seq = Runner::new(&cfg);
        let a = seq.run_to_horizon();
        cfg.threads = 4;
        let mut par = Runner::new(&cfg);
        assert!(
            par.pool.is_some(),
            "threads=4 on a multi-rack fleet must build a worker pool"
        );
        let b = par.run_to_horizon();
        assert_eq!(a, b);
        assert_eq!(seq.snapshot(), par.snapshot());
    }

    #[test]
    fn baseline_of_identical_config_is_deterministic() {
        let a = quick(CoordinationMode::Coordinated);
        let b = quick(CoordinationMode::Coordinated);
        assert_eq!(a.baseline, b.baseline);
        assert_eq!(a.comparison, b.comparison);
    }

    #[test]
    fn vmc_only_mask_still_consolidates() {
        let cfg = Scenario::paper(
            SystemKind::ServerB,
            Mix::All180,
            CoordinationMode::Coordinated,
        )
        .mask(ControllerMask::VMC_ONLY)
        .horizon(1_200)
        .seed(7)
        .build();
        let r = run_experiment(&cfg);
        assert!(r.comparison.run.migrations > 0);
        // Only ~2 VMC epochs fit in this short horizon; the full-horizon
        // numbers live in the fig8 bench.
        assert!(
            r.comparison.power_savings_pct > 10.0,
            "savings {:.1}%",
            r.comparison.power_savings_pct
        );
    }

    #[test]
    fn revival_starts_fresh_measurement_windows() {
        use crate::intervals::Intervals;
        use nps_metrics::EventKind;
        use nps_metrics::TelemetryEvent;

        // Regression: powering a server back on used to refresh only the
        // EC utilization snapshot; the SM/EM/GM power snapshots kept their
        // pre-revival values. Use intervals where no SM/EM/GM epoch
        // coincides with the reviving VMC epoch, and nonzero off-power, so
        // a stale snapshot would fold the off period into the first
        // post-revival window.
        let mut cfg = Scenario::paper(
            SystemKind::ServerB,
            Mix::All180,
            CoordinationMode::Coordinated,
        )
        .mask(ControllerMask::VMC_ONLY)
        .horizon(3_000)
        .seed(7)
        .intervals(Intervals {
            ec: 1,
            sm: 7,
            em: 11,
            gm: 13,
            vmc: 10,
        })
        .build();
        cfg.sim.off_power_watts = 40.0;
        let mut runner = Runner::new(&cfg);
        runner.enable_ring_telemetry(1 << 20);
        let mut seen_power_on = 0;
        let mut checked = 0;
        while runner.ticks_done() < cfg.horizon {
            runner.tick();
            let ring = runner.ring_telemetry().unwrap();
            let now = ring.count(EventKind::PowerOn);
            if now == seen_power_on {
                continue;
            }
            seen_power_on = now;
            // act() ran at the tick before ticks_done was incremented.
            let t = runner.ticks_done() - 1;
            let revived: Vec<usize> = ring
                .events()
                .filter_map(|e| match e {
                    TelemetryEvent::PowerOn { tick, server } if *tick == t => Some(*server),
                    _ => None,
                })
                .collect();
            for s in revived {
                // The revival refreshed the snapshots to the act-time
                // cumulative power; exactly one sim step has run since, so
                // each snapshot trails the cumulative reading by exactly
                // the last tick's power.
                let cum = runner.sim.cumulative_power(ServerId(s));
                let last = runner.sim.server_power(ServerId(s));
                for (name, snap) in [
                    ("sm", runner.snap_power_sm[s]),
                    ("em", runner.snap_power_em[s]),
                    ("gm", runner.snap_power_gm[s]),
                ] {
                    assert!(
                        (cum - snap - last).abs() < 1e-9,
                        "stale {name} snapshot for server {s} revived at t={t}: \
                         cum={cum} snap={snap} last={last}"
                    );
                }
                checked += 1;
            }
        }
        assert!(checked > 0, "scenario must revive at least one server");
    }

    #[test]
    fn no_controllers_changes_nothing() {
        let cfg = Scenario::paper(
            SystemKind::BladeA,
            Mix::All180,
            CoordinationMode::Coordinated,
        )
        .mask(ControllerMask::NONE)
        .horizon(600)
        .seed(7)
        .build();
        let r = run_experiment(&cfg);
        assert_eq!(r.comparison.power_savings_pct, 0.0);
        assert_eq!(r.comparison.perf_loss_pct, 0.0);
        assert_eq!(r.comparison.run.migrations, 0);
    }
}

#[cfg(test)]
mod try_new_tests {
    use super::*;
    use crate::scenarios::{Scenario, SystemKind};
    use crate::{CoordinationMode, CoreError};
    use nps_sim::EnclosureId;
    use nps_traces::Mix;

    #[test]
    fn try_new_rejects_bad_gains() {
        let mut cfg = Scenario::paper(SystemKind::BladeA, Mix::L60, CoordinationMode::Coordinated)
            .horizon(10)
            .build();
        cfg.lambda = 0.0;
        assert!(matches!(
            Runner::try_new(&cfg),
            Err(CoreError::InvalidGain { name: "lambda", .. })
        ));
        cfg.lambda = 0.8;
        cfg.beta = f64::NAN;
        assert!(matches!(
            Runner::try_new(&cfg),
            Err(CoreError::InvalidGain { name: "beta", .. })
        ));
    }

    #[test]
    fn try_new_rejects_missized_model_override() {
        let mut cfg = Scenario::paper(SystemKind::BladeA, Mix::L60, CoordinationMode::Coordinated)
            .horizon(10)
            .build();
        cfg.models_override = Some(vec![cfg.model.clone(); 3]);
        assert!(matches!(
            Runner::try_new(&cfg),
            Err(CoreError::ModelCountMismatch { models: 3, .. })
        ));
    }

    #[test]
    fn try_new_rejects_empty_traces_via_sim() {
        let mut cfg = Scenario::paper(SystemKind::BladeA, Mix::L60, CoordinationMode::Coordinated)
            .horizon(10)
            .build();
        cfg.traces.clear();
        assert!(matches!(Runner::try_new(&cfg), Err(CoreError::Sim(_))));
    }

    #[test]
    fn effective_caps_are_observable_and_bounded() {
        let cfg = Scenario::paper(SystemKind::BladeA, Mix::M60, CoordinationMode::Coordinated)
            .horizon(300)
            .seed(3)
            .build();
        let mut runner = Runner::new(&cfg);
        runner.run_to_horizon();
        let (cap_loc, cap_grp) = runner.static_caps(ServerId(0));
        assert!(cap_loc > 0.0 && cap_grp > cap_loc);
        for i in 0..runner.sim().topology().num_servers() {
            let eff = runner.sm_effective_cap(ServerId(i));
            assert!(eff <= cap_loc + 1e-9, "server {i}: {eff} > {cap_loc}");
            assert!(eff > 0.0);
        }
        for e in 0..runner.sim().topology().num_enclosures() {
            let eff = runner.em_effective_cap(EnclosureId(e));
            assert!(eff > 0.0);
        }
    }
}

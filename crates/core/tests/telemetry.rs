//! Telemetry integration: the event log a [`Runner`] records must stay in
//! lockstep with the [`RunStats`] the same run reports, survive a JSON
//! round trip, and cover every controller epoch.

use nps_core::{ControllerMask, CoordinationMode, Runner, Scenario, SystemKind};
use nps_metrics::{BudgetLevel, ControllerKind, EventKind, RunStats, TelemetryEvent, TelemetryLog};
use nps_traces::Mix;

/// Runs a scenario with a generously sized ring recorder and returns the
/// parsed JSON log next to the run's own stats.
fn record(
    system: SystemKind,
    mask: Option<ControllerMask>,
    horizon: u64,
) -> (TelemetryLog, RunStats) {
    let mut sc = Scenario::paper(system, Mix::All180, CoordinationMode::Coordinated)
        .horizon(horizon)
        .seed(7);
    if let Some(mask) = mask {
        sc = sc.mask(mask);
    }
    let cfg = sc.build();
    let mut runner = Runner::new(&cfg);
    runner.enable_ring_telemetry(1 << 20);
    let stats = runner.run_to_horizon();
    let ring = runner.ring_telemetry().expect("ring recorder installed");
    assert_eq!(ring.dropped(), 0, "capacity must hold the whole run");
    let log = TelemetryLog::from_json(&ring.to_json()).expect("log round-trips through JSON");
    assert_eq!(&log, &ring.export());
    (log, stats)
}

fn static_violations(log: &TelemetryLog, level: BudgetLevel) -> u64 {
    log.events
        .iter()
        .filter(|e| {
            matches!(
                e,
                TelemetryEvent::Violation {
                    level: l,
                    effective: false,
                    ..
                } if *l == level
            )
        })
        .count() as u64
}

#[test]
fn event_log_agrees_with_run_stats() {
    let (log, stats) = record(SystemKind::BladeA, None, 1_200);
    assert_eq!(
        static_violations(&log, BudgetLevel::Server),
        stats.violations.server.violated()
    );
    assert_eq!(
        static_violations(&log, BudgetLevel::Enclosure),
        stats.violations.enclosure.violated()
    );
    assert_eq!(
        static_violations(&log, BudgetLevel::Group),
        stats.violations.group.violated()
    );
    assert_eq!(log.count(EventKind::Migration), stats.migrations);
}

#[test]
fn consolidating_run_logs_every_started_migration() {
    let (log, stats) = record(SystemKind::ServerB, Some(ControllerMask::VMC_ONLY), 1_200);
    assert!(stats.migrations > 0, "scenario must consolidate");
    assert_eq!(log.count(EventKind::Migration), stats.migrations);
    // Static violation measurement runs regardless of the mask.
    assert_eq!(
        static_violations(&log, BudgetLevel::Server),
        stats.violations.server.violated()
    );
    // Each VMC epoch produced exactly one structured plan event.
    let expected_epochs = (1_200 - 1) / 500; // ticks 500 and 1000
    assert_eq!(log.count(EventKind::VmcPlan), expected_epochs);
}

#[test]
fn every_controller_epoch_emits_events() {
    let (log, _) = record(SystemKind::BladeA, None, 1_200);
    let has_source = |src: ControllerKind| log.events.iter().any(|e| e.source() == src);
    assert!(
        log.events.iter().any(|e| matches!(
            e,
            TelemetryEvent::PStateChange {
                source: ControllerKind::Ec,
                ..
            }
        )),
        "EC epochs must log P-state changes"
    );
    assert!(
        log.count(EventKind::RRefUpdate) > 0,
        "coordinated SM epochs must log r_ref retunes"
    );
    assert!(
        log.budget_flow()
            .iter()
            .any(|&(_, l, _, _)| l == BudgetLevel::Enclosure),
        "EM epochs must log grants to servers"
    );
    assert!(
        log.budget_flow()
            .iter()
            .any(|&(_, l, _, _)| l == BudgetLevel::Group),
        "GM epochs must log grants to enclosures"
    );
    assert!(has_source(ControllerKind::Vmc), "VMC epochs must log plans");
    // Grant amounts must serialize losslessly (no infinities in the log).
    for (_, _, _, watts) in log.budget_flow() {
        assert!(watts.is_finite());
    }
}

#[test]
fn electrical_capper_logs_its_clamps() {
    let cfg = Scenario::paper(SystemKind::BladeA, Mix::Hh60, CoordinationMode::Coordinated)
        .horizon(600)
        .seed(7)
        .electrical_cap(0.7)
        .build();
    let mut runner = Runner::new(&cfg);
    runner.enable_ring_telemetry(1 << 20);
    runner.run_to_horizon();
    let ring = runner.ring_telemetry().unwrap();
    let clamps = ring
        .events()
        .filter(|e| {
            matches!(
                e,
                TelemetryEvent::PStateChange {
                    source: ControllerKind::Electrical,
                    ..
                }
            )
        })
        .count();
    assert!(clamps > 0, "a 70% fuse under heavy load must clamp");
}

#[test]
fn runner_without_recorder_records_nothing() {
    let cfg = Scenario::paper(
        SystemKind::BladeA,
        Mix::All180,
        CoordinationMode::Coordinated,
    )
    .horizon(300)
    .seed(7)
    .build();
    let mut runner = Runner::new(&cfg);
    assert!(runner.ring_telemetry().is_none());
    runner.run_to_horizon();
    assert!(runner.ring_telemetry().is_none());
    assert!(runner.take_recorder().is_none());
}

#[test]
fn identical_runs_produce_identical_logs() {
    let (a, _) = record(SystemKind::BladeA, None, 600);
    let (b, _) = record(SystemKind::BladeA, None, 600);
    assert_eq!(a, b);
}

//! Property-based invariants of the full experiment runner across
//! randomized scenario knobs: metrics stay physical, the coordinated
//! architecture never races, and runs are reproducible.

use nps_core::{
    run_experiment, BudgetSpec, ControllerMask, CoordinationMode, PolicyKind, Runner, Scenario,
    SystemKind,
};
use nps_traces::Mix;
use proptest::prelude::*;

fn arb_mode() -> impl Strategy<Value = CoordinationMode> {
    prop_oneof![
        Just(CoordinationMode::Coordinated),
        Just(CoordinationMode::Uncoordinated),
        Just(CoordinationMode::CoordApparentUtil),
        Just(CoordinationMode::CoordNoFeedback),
        Just(CoordinationMode::CoordNoBudgetLimits),
        Just(CoordinationMode::UncoordMinPstates),
    ]
}

fn arb_mix() -> impl Strategy<Value = Mix> {
    prop_oneof![
        Just(Mix::L60),
        Just(Mix::M60),
        Just(Mix::H60),
        Just(Mix::Hh60),
    ]
}

fn arb_budgets() -> impl Strategy<Value = BudgetSpec> {
    prop_oneof![
        Just(BudgetSpec::PAPER_20_15_10),
        Just(BudgetSpec::PAPER_25_20_15),
        Just(BudgetSpec::PAPER_30_25_20),
    ]
}

fn arb_policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Proportional),
        Just(PolicyKind::Fair),
        Just(PolicyKind::Fifo),
        Just(PolicyKind::Random(7)),
        Just(PolicyKind::History(0.3)),
    ]
}

proptest! {
    // Full experiments are comparatively expensive; a couple of dozen
    // random configurations give broad coverage.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn runner_metrics_stay_physical(
        mode in arb_mode(),
        mix in arb_mix(),
        budgets in arb_budgets(),
        policy in arb_policy(),
        seed in 0u64..1_000,
        sys in prop_oneof![Just(SystemKind::BladeA), Just(SystemKind::ServerB)],
    ) {
        let cfg = Scenario::paper(sys, mix, mode)
            .budgets(budgets)
            .policy(policy)
            .horizon(700)
            .seed(seed)
            .build();
        let r = run_experiment(&cfg);
        let c = &r.comparison;
        // Percentages bounded.
        for v in [c.violations_gm_pct, c.violations_em_pct, c.violations_sm_pct] {
            prop_assert!((0.0..=100.0).contains(&v), "violation {v}");
        }
        prop_assert!(c.power_savings_pct <= 100.0);
        prop_assert!(c.perf_loss_pct <= 100.0);
        // A power-management run never *increases* demand; delivered work
        // can never exceed what was asked for.
        prop_assert!(c.run.delivered_work <= c.run.demanded_work + 1e-6);
        prop_assert!(c.run.energy >= 0.0);
        // Baselines deliver at least as much as any managed run (no
        // queueing: management can only throttle).
        prop_assert!(c.run.delivered_work <= r.baseline.delivered_work + 1e-6);
        // Coordinated wiring never races on the actuator.
        if matches!(
            mode,
            CoordinationMode::Coordinated
                | CoordinationMode::CoordApparentUtil
                | CoordinationMode::CoordNoFeedback
                | CoordinationMode::CoordNoBudgetLimits
        ) {
            prop_assert_eq!(c.run.pstate_conflicts, 0);
        }
    }

    #[test]
    fn runs_are_reproducible(seed in 0u64..100) {
        let build = || {
            Scenario::paper(SystemKind::BladeA, Mix::M60, CoordinationMode::Coordinated)
                .horizon(400)
                .seed(seed)
                .build()
        };
        let a = Runner::new(&build()).run_to_horizon();
        let b = Runner::new(&build()).run_to_horizon();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn masks_only_reduce_controller_activity(seed in 0u64..50) {
        let base = Scenario::paper(SystemKind::BladeA, Mix::M60, CoordinationMode::Coordinated)
            .horizon(600)
            .seed(seed);
        let none = run_experiment(&base.clone().mask(ControllerMask::NONE).build());
        prop_assert_eq!(none.comparison.power_savings_pct, 0.0);
        prop_assert_eq!(none.comparison.run.migrations, 0);
        prop_assert_eq!(none.comparison.run.pstate_conflicts, 0);
        let no_vmc = run_experiment(&base.mask(ControllerMask::NO_VMC).build());
        prop_assert_eq!(no_vmc.comparison.run.migrations, 0);
    }
}

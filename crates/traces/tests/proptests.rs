//! Property-based tests over trace construction, stacking, and mixes.

use nps_traces::{generate, Corpus, Mix, TraceSpec, UtilTrace, WorkloadClass};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_spec() -> impl Strategy<Value = TraceSpec> {
    (
        0usize..9,
        0.02f64..0.9,
        0.0f64..1.0,
        0.0f64..0.15,
        0.0f64..0.99,
        0.0f64..0.01,
    )
        .prop_map(|(class, mean, diurnal, sigma, rho, burst)| {
            let mut spec = WorkloadClass::ALL[class].spec();
            spec.mean_util = mean;
            spec.diurnal_amplitude = diurnal;
            spec.noise_sigma = sigma;
            spec.noise_rho = rho;
            spec.burst_prob = burst;
            spec
        })
}

proptest! {
    #[test]
    fn generated_samples_always_valid(spec in arb_spec(), seed in 0u64..1_000, len in 1usize..2_000) {
        let t = generate("t", &spec, len, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(t.len(), len.max(1));
        prop_assert!(t.samples().iter().all(|&s| s.is_finite() && (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn stack_is_monotone_and_clamped(
        a in proptest::collection::vec(0.0f64..1.0, 1..200),
        b in proptest::collection::vec(0.0f64..1.0, 1..200),
    ) {
        let n = a.len().min(b.len());
        let ta = UtilTrace::new("a", a[..n].to_vec()).unwrap();
        let tb = UtilTrace::new("b", b[..n].to_vec()).unwrap();
        let s = UtilTrace::stack("s", &[&ta, &tb]).unwrap();
        for i in 0..n as u64 {
            let v = s.demand_at(i);
            prop_assert!(v >= ta.demand_at(i) - 1e-12);
            prop_assert!(v >= tb.demand_at(i) - 1e-12);
            prop_assert!(v <= 1.0);
            prop_assert!((v - (ta.demand_at(i) + tb.demand_at(i)).min(1.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn demand_at_wraps(samples in proptest::collection::vec(0.0f64..1.0, 1..50), tick in 0u64..10_000) {
        let t = UtilTrace::new("t", samples.clone()).unwrap();
        prop_assert_eq!(t.demand_at(tick), samples[(tick % samples.len() as u64) as usize]);
    }

    #[test]
    fn stats_bounds_hold(samples in proptest::collection::vec(0.0f64..1.0, 1..300)) {
        let t = UtilTrace::new("t", samples).unwrap();
        let s = t.stats();
        prop_assert!(s.min <= s.p50 && s.p50 <= s.p95 + 1e-12 && s.p95 <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.std_dev >= 0.0);
    }

}

proptest! {
    // Corpus generation is comparatively expensive; a handful of seeds is
    // plenty to cover the mix-selection logic.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn mixes_partition_and_order(seed in 0u64..50) {
        let c = Corpus::enterprise(300, seed);
        let l = c.mix(Mix::L60).unwrap();
        let m = c.mix(Mix::M60).unwrap();
        let h = c.mix(Mix::H60).unwrap();
        prop_assert_eq!(l.len() + m.len() + h.len(), 180);
        let mean = |ts: &[UtilTrace]| ts.iter().map(|t| t.mean()).sum::<f64>() / ts.len() as f64;
        prop_assert!(mean(&l) <= mean(&m));
        prop_assert!(mean(&m) <= mean(&h));
    }

    #[test]
    fn hh_traces_dominate_h(seed in 0u64..20) {
        let c = Corpus::enterprise(300, seed);
        let mean = |ts: Vec<UtilTrace>| {
            let n = ts.len() as f64;
            ts.iter().map(|t| t.mean()).sum::<f64>() / n
        };
        prop_assert!(mean(c.mix(Mix::Hh60).unwrap()) >= mean(c.mix(Mix::H60).unwrap()) - 1e-9);
    }
}

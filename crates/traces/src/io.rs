//! Trace persistence: JSON corpus files and CSV export.
//!
//! The corpus format is a plain JSON array of `{name, samples}` objects so
//! real utilization traces (if available) can be dropped in without code
//! changes.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

use crate::corpus::Corpus;
use crate::trace::UtilTrace;
use crate::Result;

/// Writes a corpus to `path` as JSON.
pub fn save_json(corpus: &Corpus, path: impl AsRef<Path>) -> Result<()> {
    let file = File::create(path)?;
    let writer = BufWriter::new(file);
    serde_json::to_writer(writer, corpus.traces())?;
    Ok(())
}

/// Loads a corpus previously written by [`save_json`] (or hand-authored in
/// the same format). Samples are re-validated on load.
pub fn load_json(path: impl AsRef<Path>) -> Result<Corpus> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let raw: Vec<UtilTrace> = serde_json::from_reader(reader)?;
    // Re-validate through the constructor so hand-edited files cannot
    // smuggle out-of-range samples past the type.
    let mut traces = Vec::with_capacity(raw.len());
    for t in raw {
        traces.push(UtilTrace::new(t.name().to_string(), t.samples().to_vec())?);
    }
    Ok(Corpus::new(traces))
}

/// Exports a corpus to CSV (`tick,trace1,trace2,…`), truncating to the
/// shortest trace. Handy for external plotting.
pub fn export_csv(corpus: &Corpus, path: impl AsRef<Path>) -> Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    write!(w, "tick")?;
    for t in corpus.traces() {
        write!(w, ",{}", t.name().replace(',', ";"))?;
    }
    writeln!(w)?;
    let len = corpus.traces().iter().map(|t| t.len()).min().unwrap_or(0);
    for tick in 0..len {
        write!(w, "{tick}")?;
        for t in corpus.traces() {
            write!(w, ",{:.4}", t.samples()[tick])?;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Imports a corpus from CSV in the [`export_csv`] format
/// (`tick,name1,name2,…` header, one row per tick). This is the hook for
/// dropping in *real* utilization traces: values are validated into
/// `[0, 1]`.
pub fn import_csv(path: impl AsRef<Path>) -> Result<Corpus> {
    use std::io::BufRead;
    let file = File::open(path)?;
    let mut lines = BufReader::new(file).lines();
    let header = lines.next().ok_or_else(|| {
        TraceError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "empty CSV file",
        ))
    })??;
    let names: Vec<String> = header.split(',').skip(1).map(str::to_string).collect();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        for (k, cell) in line.split(',').skip(1).enumerate().take(columns.len()) {
            let value: f64 = cell.trim().parse().map_err(|_| {
                TraceError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unparseable sample {cell:?}"),
                ))
            })?;
            columns[k].push(value);
        }
    }
    let mut traces = Vec::with_capacity(names.len());
    for (name, samples) in names.into_iter().zip(columns) {
        traces.push(UtilTrace::new(name, samples)?);
    }
    Ok(Corpus::new(traces))
}

use crate::error::TraceError;

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("nps-traces-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn json_roundtrip_preserves_corpus() {
        let corpus = Corpus::enterprise(50, 2);
        let path = tmp("roundtrip.json");
        save_json(&corpus, &path).unwrap();
        let back = load_json(&path).unwrap();
        assert_eq!(corpus, back);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_tampered_samples() {
        let path = tmp("tampered.json");
        std::fs::write(&path, r#"[{"name":"bad","samples":[0.5,7.0]}]"#).unwrap();
        assert!(load_json(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let corpus = Corpus::enterprise(10, 2);
        let path = tmp("export.csv");
        export_csv(&corpus, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("tick,"));
        assert_eq!(header.split(',').count(), 181);
        assert_eq!(lines.count(), 10);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn csv_roundtrip_preserves_values() {
        let corpus = Corpus::enterprise(25, 3);
        let path = tmp("csv-roundtrip.csv");
        export_csv(&corpus, &path).unwrap();
        let back = import_csv(&path).unwrap();
        assert_eq!(back.len(), corpus.len());
        for (a, b) in corpus.traces().iter().zip(back.traces()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.len(), b.len());
            for (x, y) in a.samples().iter().zip(b.samples()) {
                // export_csv writes 4 decimals.
                assert!((x - y).abs() < 5e-5);
            }
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn import_rejects_out_of_range_csv() {
        let path = tmp("bad-range.csv");
        std::fs::write(
            &path,
            "tick,a
0,0.5
1,1.7
",
        )
        .unwrap();
        assert!(import_csv(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn import_rejects_garbage_cells() {
        let path = tmp("bad-cell.csv");
        std::fs::write(
            &path,
            "tick,a
0,hello
",
        )
        .unwrap();
        assert!(import_csv(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load_json("/nonexistent/nowhere.json").unwrap_err();
        assert!(matches!(err, crate::TraceError::Io(_)));
    }
}

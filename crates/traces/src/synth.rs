//! Synthetic workload-trace generator.
//!
//! Generates per-tick CPU-utilization traces with the structure observed in
//! real enterprise deployments (and in the paper's trace corpus): diurnal
//! cycles, weekly modulation, autocorrelated noise, and bursts, with
//! class-specific shapes (a remote-desktop farm follows office hours; a
//! batch cluster runs at night; web front-ends are bursty).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::trace::UtilTrace;

/// Workload classes named in the paper (§4.3): "database servers, web
/// servers, e-commerce, remote desktop infrastructures, etc.", extended to
/// nine classes so each of the nine enterprise sites can lead with a
/// different one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum WorkloadClass {
    /// Web front-end: strong diurnal swing, bursty.
    WebServer,
    /// Database tier: steadier, higher base load.
    Database,
    /// E-commerce multi-tier: diurnal with promotional bursts.
    ECommerce,
    /// Remote desktop infrastructure: office-hours shaped, weekly dips.
    RemoteDesktop,
    /// Batch/compute: night-shifted, long high-load phases.
    Batch,
    /// Mail server: morning/evening peaks, low base.
    MailServer,
    /// File server: low, weakly diurnal.
    FileServer,
    /// Virtual desktop infrastructure: sharp office-hours profile.
    Vdi,
    /// Analytics/warehouse: high base, long scans.
    Analytics,
}

impl WorkloadClass {
    /// All nine classes.
    pub const ALL: [WorkloadClass; 9] = [
        WorkloadClass::WebServer,
        WorkloadClass::Database,
        WorkloadClass::ECommerce,
        WorkloadClass::RemoteDesktop,
        WorkloadClass::Batch,
        WorkloadClass::MailServer,
        WorkloadClass::FileServer,
        WorkloadClass::Vdi,
        WorkloadClass::Analytics,
    ];

    /// The default generator parameters for this class. Mean utilizations
    /// sit in the paper's observed 15–50% band.
    pub fn spec(self) -> TraceSpec {
        use std::f64::consts::PI;
        let base = TraceSpec {
            class: self,
            mean_util: 0.20,
            diurnal_amplitude: 0.5,
            diurnal_period: 2_000,
            phase: 0.0,
            weekly_amplitude: 0.1,
            noise_sigma: 0.04,
            noise_rho: 0.9,
            burst_prob: 0.002,
            burst_magnitude: 0.25,
            burst_len: 30,
        };
        match self {
            WorkloadClass::WebServer => TraceSpec {
                mean_util: 0.20,
                diurnal_amplitude: 0.6,
                burst_prob: 0.004,
                burst_magnitude: 0.3,
                ..base
            },
            WorkloadClass::Database => TraceSpec {
                mean_util: 0.27,
                diurnal_amplitude: 0.35,
                noise_sigma: 0.05,
                ..base
            },
            WorkloadClass::ECommerce => TraceSpec {
                mean_util: 0.23,
                diurnal_amplitude: 0.7,
                burst_prob: 0.003,
                burst_magnitude: 0.35,
                burst_len: 50,
                ..base
            },
            WorkloadClass::RemoteDesktop => TraceSpec {
                mean_util: 0.17,
                diurnal_amplitude: 0.8,
                weekly_amplitude: 0.3,
                noise_sigma: 0.05,
                ..base
            },
            WorkloadClass::Batch => TraceSpec {
                mean_util: 0.30,
                diurnal_amplitude: 0.5,
                phase: PI, // night-shifted
                burst_prob: 0.0008,
                burst_magnitude: 0.4,
                burst_len: 120,
                ..base
            },
            WorkloadClass::MailServer => TraceSpec {
                mean_util: 0.13,
                diurnal_amplitude: 0.5,
                ..base
            },
            WorkloadClass::FileServer => TraceSpec {
                mean_util: 0.10,
                diurnal_amplitude: 0.3,
                noise_sigma: 0.03,
                ..base
            },
            WorkloadClass::Vdi => TraceSpec {
                mean_util: 0.18,
                diurnal_amplitude: 0.85,
                weekly_amplitude: 0.4,
                ..base
            },
            WorkloadClass::Analytics => TraceSpec {
                mean_util: 0.34,
                diurnal_amplitude: 0.25,
                burst_prob: 0.0005,
                burst_magnitude: 0.3,
                burst_len: 200,
                ..base
            },
        }
    }
}

/// Parameters of the synthetic trace generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// Workload class the spec was derived from.
    pub class: WorkloadClass,
    /// Target mean utilization in `[0, 1]`.
    pub mean_util: f64,
    /// Diurnal swing as a fraction of the mean (0 = flat).
    pub diurnal_amplitude: f64,
    /// Length of one "day" in ticks.
    pub diurnal_period: usize,
    /// Phase offset of the diurnal cycle in radians.
    pub phase: f64,
    /// Weekly modulation as a fraction of the mean.
    pub weekly_amplitude: f64,
    /// Standard deviation of the AR(1) noise process.
    pub noise_sigma: f64,
    /// AR(1) autocorrelation coefficient in `[0, 1)`.
    pub noise_rho: f64,
    /// Per-tick probability of starting a burst.
    pub burst_prob: f64,
    /// Additive utilization during a burst.
    pub burst_magnitude: f64,
    /// Burst duration in ticks.
    pub burst_len: usize,
}

impl TraceSpec {
    /// Returns this spec with a different target mean utilization.
    pub fn with_mean(mut self, mean_util: f64) -> Self {
        self.mean_util = mean_util;
        self
    }

    /// Returns this spec with a different diurnal phase (radians).
    pub fn with_phase(mut self, phase: f64) -> Self {
        self.phase = phase;
        self
    }

    /// Returns this spec with a different diurnal period (ticks).
    pub fn with_period(mut self, ticks: usize) -> Self {
        self.diurnal_period = ticks.max(2);
        self
    }
}

/// Generates a `len`-tick utilization trace from `spec`, using `rng` for
/// the stochastic components. Deterministic for a given RNG state.
pub fn generate<R: Rng>(
    name: impl Into<String>,
    spec: &TraceSpec,
    len: usize,
    rng: &mut R,
) -> UtilTrace {
    use std::f64::consts::TAU;
    let len = len.max(1);
    let mut samples = Vec::with_capacity(len);
    let mut ar = 0.0_f64;
    let mut burst_left = 0usize;
    // Pre-scale AR(1) innovation so the process has stationary std
    // `noise_sigma`.
    let innov = spec.noise_sigma * (1.0 - spec.noise_rho * spec.noise_rho).sqrt();
    for t in 0..len {
        let day = TAU * t as f64 / spec.diurnal_period as f64 + spec.phase;
        let week = TAU * t as f64 / (7.0 * spec.diurnal_period as f64);
        let mut u = spec.mean_util
            * (1.0 + spec.diurnal_amplitude * day.sin())
            * (1.0 + spec.weekly_amplitude * week.sin());
        ar = spec.noise_rho * ar + innov * gaussian(rng);
        u += ar;
        if burst_left > 0 {
            burst_left -= 1;
            u += spec.burst_magnitude;
        } else if rng.gen::<f64>() < spec.burst_prob {
            burst_left = spec.burst_len;
            u += spec.burst_magnitude;
        }
        samples.push(u.clamp(0.0, 1.0));
    }
    UtilTrace::new(name, samples).expect("generator clamps samples into [0, 1]")
}

/// Standard normal deviate via Box–Muller (avoids a `rand_distr`
/// dependency).
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    use std::f64::consts::TAU;
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generate_is_deterministic_per_seed() {
        let spec = WorkloadClass::WebServer.spec();
        let a = generate("a", &spec, 500, &mut StdRng::seed_from_u64(7));
        let b = generate("b", &spec, 500, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.samples(), b.samples());
        let c = generate("c", &spec, 500, &mut StdRng::seed_from_u64(8));
        assert_ne!(a.samples(), c.samples());
    }

    #[test]
    fn generated_mean_tracks_spec_mean() {
        for class in WorkloadClass::ALL {
            let spec = class.spec();
            let t = generate("t", &spec, 8_000, &mut StdRng::seed_from_u64(1));
            let mean = t.mean();
            // Bursts push the mean slightly above spec; clamping pulls it
            // down. Allow a generous band.
            assert!(
                (mean - spec.mean_util).abs() < 0.12,
                "{class:?}: mean {mean} vs spec {}",
                spec.mean_util
            );
        }
    }

    #[test]
    fn diurnal_classes_show_periodic_structure() {
        let spec = WorkloadClass::Vdi.spec().with_period(400);
        let t = generate("t", &spec, 4_000, &mut StdRng::seed_from_u64(3));
        // Compare mean in "day" half-period vs "night" half-period.
        let day: f64 = (0..200).map(|i| t.demand_at(i)).sum::<f64>() / 200.0;
        let night: f64 = (200..400).map(|i| t.demand_at(i)).sum::<f64>() / 200.0;
        assert!(day > night, "day {day} should exceed night {night}");
    }

    #[test]
    fn batch_is_night_shifted() {
        let period = 400;
        let spec = WorkloadClass::Batch.spec().with_period(period);
        let t = generate("t", &spec, 4_000, &mut StdRng::seed_from_u64(3));
        let first_half: f64 = (0..200).map(|i| t.demand_at(i)).sum::<f64>() / 200.0;
        let second_half: f64 = (200..400).map(|i| t.demand_at(i)).sum::<f64>() / 200.0;
        assert!(second_half > first_half);
    }

    #[test]
    fn all_samples_in_unit_interval() {
        for class in WorkloadClass::ALL {
            let t = generate("t", &class.spec(), 2_000, &mut StdRng::seed_from_u64(9));
            assert!(t.samples().iter().all(|&s| (0.0..=1.0).contains(&s)));
        }
    }

    #[test]
    fn bursty_classes_have_heavier_tails() {
        let web = generate(
            "web",
            &WorkloadClass::WebServer.spec(),
            8_000,
            &mut StdRng::seed_from_u64(5),
        );
        let file = generate(
            "file",
            &WorkloadClass::FileServer.spec(),
            8_000,
            &mut StdRng::seed_from_u64(5),
        );
        let web_stats = web.stats();
        let file_stats = file.stats();
        assert!(web_stats.p95 - web_stats.mean > file_stats.p95 - file_stats.mean);
    }
}

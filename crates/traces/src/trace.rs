use serde::{Deserialize, Serialize};

use crate::error::TraceError;
use crate::Result;

/// A CPU-utilization trace for one server/workload: a named sequence of
/// per-tick utilization samples in `[0, 1]`, expressed as a fraction of a
/// reference server's maximum capacity.
///
/// Traces are *cyclic*: [`UtilTrace::demand_at`] wraps around, so a
/// simulation horizon may exceed the trace length (the synthetic corpus
/// generates a whole number of diurnal periods, so wrapping is seamless).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilTrace {
    name: String,
    samples: Vec<f64>,
}

impl UtilTrace {
    /// Builds a trace, validating every sample is finite and within
    /// `[0, 1]`.
    pub fn new(name: impl Into<String>, samples: Vec<f64>) -> Result<Self> {
        if samples.is_empty() {
            return Err(TraceError::Empty);
        }
        for (index, &value) in samples.iter().enumerate() {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(TraceError::OutOfRange { index, value });
            }
        }
        Ok(Self {
            name: name.into(),
            samples,
        })
    }

    /// A constant-demand trace, useful for controller step-response tests.
    pub fn constant(name: impl Into<String>, level: f64, len: usize) -> Result<Self> {
        Self::new(name, vec![level; len.max(1)])
    }

    /// Trace name (e.g. `"site3/web-07"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the trace has no samples (never true for a constructed
    /// trace; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Demand at tick `t`, wrapping cyclically past the end of the trace.
    pub fn demand_at(&self, tick: u64) -> f64 {
        self.samples[(tick % self.samples.len() as u64) as usize]
    }

    /// Sums this trace with `others` sample-by-sample, clamping at 1.0 —
    /// the paper's trace *stacking* used to build the high-activity
    /// 60HH/60HHH mixes. All traces must have equal length.
    pub fn stack(name: impl Into<String>, parts: &[&UtilTrace]) -> Result<Self> {
        let first = parts.first().ok_or(TraceError::Empty)?;
        let len = first.len();
        for p in parts {
            if p.len() != len {
                return Err(TraceError::LengthMismatch {
                    expected: len,
                    actual: p.len(),
                });
            }
        }
        let samples = (0..len)
            .map(|i| parts.iter().map(|p| p.samples[i]).sum::<f64>().min(1.0))
            .collect();
        Self::new(name, samples)
    }

    /// Returns a trace scaled by `factor`, clamping into `[0, 1]`.
    pub fn scaled(&self, factor: f64) -> Result<Self> {
        let samples = self
            .samples
            .iter()
            .map(|s| (s * factor).clamp(0.0, 1.0))
            .collect();
        Self::new(format!("{}×{factor}", self.name), samples)
    }

    /// Mean utilization across the trace.
    pub fn mean(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Summary statistics.
    pub fn stats(&self) -> TraceStats {
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("validated finite"));
        let n = sorted.len();
        let mean = self.mean();
        let var = self.samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        let pct = |q: f64| sorted[((q * (n - 1) as f64).round() as usize).min(n - 1)];
        TraceStats {
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            p50: pct(0.50),
            p95: pct(0.95),
        }
    }
}

/// Summary statistics of a utilization trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Arithmetic mean utilization.
    pub mean: f64,
    /// Standard deviation.
    pub std_dev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_out_of_range() {
        assert!(matches!(
            UtilTrace::new("t", vec![]),
            Err(TraceError::Empty)
        ));
        assert!(matches!(
            UtilTrace::new("t", vec![0.5, 1.2]),
            Err(TraceError::OutOfRange { index: 1, .. })
        ));
        assert!(matches!(
            UtilTrace::new("t", vec![f64::NAN]),
            Err(TraceError::OutOfRange { index: 0, .. })
        ));
        assert!(matches!(
            UtilTrace::new("t", vec![-0.1]),
            Err(TraceError::OutOfRange { index: 0, .. })
        ));
    }

    #[test]
    fn demand_wraps_cyclically() {
        let t = UtilTrace::new("t", vec![0.1, 0.2, 0.3]).unwrap();
        assert_eq!(t.demand_at(0), 0.1);
        assert_eq!(t.demand_at(4), 0.2);
        assert_eq!(t.demand_at(300), 0.1);
    }

    #[test]
    fn stack_sums_and_clamps() {
        let a = UtilTrace::new("a", vec![0.5, 0.8]).unwrap();
        let b = UtilTrace::new("b", vec![0.3, 0.7]).unwrap();
        let s = UtilTrace::stack("a+b", &[&a, &b]).unwrap();
        assert!((s.demand_at(0) - 0.8).abs() < 1e-12);
        assert_eq!(s.demand_at(1), 1.0); // clamped from 1.5
    }

    #[test]
    fn stack_rejects_length_mismatch() {
        let a = UtilTrace::new("a", vec![0.5, 0.8]).unwrap();
        let b = UtilTrace::new("b", vec![0.3]).unwrap();
        assert!(matches!(
            UtilTrace::stack("a+b", &[&a, &b]),
            Err(TraceError::LengthMismatch {
                expected: 2,
                actual: 1
            })
        ));
    }

    #[test]
    fn scaled_clamps_to_unit_interval() {
        let t = UtilTrace::new("t", vec![0.6]).unwrap();
        assert_eq!(t.scaled(2.0).unwrap().demand_at(0), 1.0);
        assert!((t.scaled(0.5).unwrap().demand_at(0) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn stats_are_consistent() {
        let t = UtilTrace::new("t", vec![0.1, 0.2, 0.3, 0.4, 0.5]).unwrap();
        let s = t.stats();
        assert!((s.mean - 0.3).abs() < 1e-12);
        assert_eq!(s.min, 0.1);
        assert_eq!(s.max, 0.5);
        assert_eq!(s.p50, 0.3);
        assert!(s.std_dev > 0.0);
    }

    #[test]
    fn constant_trace_has_zero_variance() {
        let t = UtilTrace::constant("c", 0.4, 100).unwrap();
        let s = t.stats();
        assert!(s.std_dev < 1e-9);
        assert_eq!(s.min, s.max);
    }

    #[test]
    fn serde_roundtrip() {
        let t = UtilTrace::new("t", vec![0.1, 0.9]).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: UtilTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}

use std::fmt;

/// Errors produced while building, transforming, or (de)serializing traces.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// A trace must contain at least one sample.
    Empty,
    /// A sample was outside `[0, 1]` or not finite.
    OutOfRange {
        /// Index of the offending sample.
        index: usize,
        /// The rejected value.
        value: f64,
    },
    /// Stacking or mixing was given traces of different lengths.
    LengthMismatch {
        /// Length of the first trace.
        expected: usize,
        /// Length of the mismatching trace.
        actual: usize,
    },
    /// A mix selection needs more traces than the corpus provides.
    CorpusTooSmall {
        /// Traces required by the mix.
        required: usize,
        /// Traces available.
        available: usize,
    },
    /// Underlying I/O failure while reading or writing trace files.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Empty => write!(f, "trace has no samples"),
            TraceError::OutOfRange { index, value } => write!(
                f,
                "sample {index} = {value} is outside the valid utilization \
                 range [0, 1]"
            ),
            TraceError::LengthMismatch { expected, actual } => write!(
                f,
                "trace length mismatch: expected {expected} samples, got {actual}"
            ),
            TraceError::CorpusTooSmall {
                required,
                available,
            } => write!(
                f,
                "mix requires {required} traces but corpus has only {available}"
            ),
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Json(e) => write!(f, "trace JSON error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<serde_json::Error> for TraceError {
    fn from(e: serde_json::Error) -> Self {
        TraceError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offending_sample() {
        let e = TraceError::OutOfRange {
            index: 7,
            value: 1.5,
        };
        let msg = e.to_string();
        assert!(msg.contains('7') && msg.contains("1.5"));
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error;
        let e = TraceError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
    }
}

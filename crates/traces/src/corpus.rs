//! The 180-trace enterprise corpus (9 sites × 20 servers).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::mix::Mix;
use crate::synth::{generate, WorkloadClass};
use crate::trace::UtilTrace;
use crate::Result;

/// Description of one enterprise site: which workload classes it runs and
/// how hot it runs them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnterpriseProfile {
    /// Site name (e.g. `"site4-finance"`).
    pub name: String,
    /// The classes deployed at this site; servers cycle through this list.
    pub classes: Vec<WorkloadClass>,
    /// Multiplier on every class's mean utilization (site "temperature").
    pub util_scale: f64,
}

impl EnterpriseProfile {
    /// The nine default sites. Each leads with a different dominant class
    /// and has a distinct utilization temperature, spreading corpus means
    /// across the paper's 15–50% band.
    pub fn default_sites() -> Vec<EnterpriseProfile> {
        use WorkloadClass::*;
        let mk = |name: &str, classes: Vec<WorkloadClass>, util_scale: f64| EnterpriseProfile {
            name: name.to_string(),
            classes,
            util_scale,
        };
        vec![
            mk(
                "site1-webco",
                vec![WebServer, WebServer, Database, MailServer],
                1.0,
            ),
            mk(
                "site2-retail",
                vec![ECommerce, WebServer, Database, FileServer],
                1.1,
            ),
            mk(
                "site3-bank",
                vec![Database, Database, Analytics, MailServer],
                0.95,
            ),
            mk(
                "site4-callcenter",
                vec![RemoteDesktop, Vdi, MailServer, FileServer],
                0.85,
            ),
            mk("site5-hpc", vec![Batch, Batch, Analytics, FileServer], 1.15),
            mk(
                "site6-saas",
                vec![WebServer, Database, ECommerce, Analytics],
                1.05,
            ),
            mk(
                "site7-gov",
                vec![FileServer, MailServer, RemoteDesktop, Database],
                0.75,
            ),
            mk(
                "site8-media",
                vec![WebServer, Analytics, Batch, FileServer],
                1.2,
            ),
            mk(
                "site9-consulting",
                vec![Vdi, RemoteDesktop, MailServer, WebServer],
                0.9,
            ),
        ]
    }
}

/// A set of utilization traces with the paper's mix operations.
///
/// [`Corpus::enterprise`] builds the full 180-trace corpus; [`Corpus::new`]
/// wraps any trace list (e.g. loaded from disk via [`crate::io`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Corpus {
    traces: Vec<UtilTrace>,
}

impl Corpus {
    /// Wraps an existing list of traces.
    pub fn new(traces: Vec<UtilTrace>) -> Self {
        Self { traces }
    }

    /// Generates the default enterprise corpus: 9 sites × 20 servers = 180
    /// traces of `len` ticks each, deterministically from `seed`.
    pub fn enterprise(len: usize, seed: u64) -> Self {
        Self::from_profiles(&EnterpriseProfile::default_sites(), 20, len, seed)
    }

    /// Generates a corpus from custom site profiles with
    /// `servers_per_site` servers each.
    pub fn from_profiles(
        profiles: &[EnterpriseProfile],
        servers_per_site: usize,
        len: usize,
        seed: u64,
    ) -> Self {
        let mut traces = Vec::with_capacity(profiles.len() * servers_per_site);
        for (si, site) in profiles.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(
                seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(si as u64 + 1)),
            );
            for server in 0..servers_per_site {
                let class = site.classes[server % site.classes.len()];
                let mut spec = class.spec();
                spec.mean_util = (spec.mean_util * site.util_scale).clamp(0.02, 0.95);
                // Per-server phase jitter and mild mean jitter so servers at
                // one site are correlated but not identical.
                spec.phase += rng.gen_range(-0.5..0.5);
                spec.mean_util = (spec.mean_util * rng.gen_range(0.85..1.15)).clamp(0.02, 0.95);
                let name = format!("{}/{:?}-{:02}", site.name, class, server);
                traces.push(generate(name, &spec, len, &mut rng));
            }
        }
        Self { traces }
    }

    /// Number of traces in the corpus.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True if the corpus holds no traces.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// All traces, in corpus order.
    pub fn traces(&self) -> &[UtilTrace] {
        &self.traces
    }

    /// Consumes the corpus, returning its traces.
    pub fn into_traces(self) -> Vec<UtilTrace> {
        self.traces
    }

    /// Indices of all traces sorted by ascending mean utilization.
    pub fn indices_by_mean(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.traces.len()).collect();
        idx.sort_by(|&a, &b| {
            self.traces[a]
                .mean()
                .partial_cmp(&self.traces[b].mean())
                .expect("trace means are finite")
        });
        idx
    }

    /// Selects one of the paper's workload mixes (§4.3). See [`Mix`].
    pub fn mix(&self, mix: Mix) -> Result<Vec<UtilTrace>> {
        mix.select(self)
    }

    /// Mean utilization across the whole corpus.
    pub fn mean_utilization(&self) -> f64 {
        if self.traces.is_empty() {
            return 0.0;
        }
        self.traces.iter().map(|t| t.mean()).sum::<f64>() / self.traces.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enterprise_corpus_has_180_traces() {
        let c = Corpus::enterprise(200, 11);
        assert_eq!(c.len(), 180);
        // All names unique.
        let mut names: Vec<&str> = c.traces().iter().map(|t| t.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 180);
    }

    #[test]
    fn corpus_is_deterministic_per_seed() {
        let a = Corpus::enterprise(100, 3);
        let b = Corpus::enterprise(100, 3);
        assert_eq!(a, b);
        let c = Corpus::enterprise(100, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn corpus_means_sit_in_enterprise_band() {
        // Paper: "relatively low utilization (15–50% in most cases)".
        let c = Corpus::enterprise(4_000, 7);
        let mean = c.mean_utilization();
        assert!(
            (0.15..=0.50).contains(&mean),
            "corpus mean {mean} outside the paper's band"
        );
        let in_band = c
            .traces()
            .iter()
            .filter(|t| (0.10..=0.60).contains(&t.mean()))
            .count();
        assert!(in_band * 100 / c.len() >= 80, "only {in_band}/180 in band");
    }

    #[test]
    fn sites_have_distinct_temperatures() {
        let c = Corpus::enterprise(2_000, 7);
        // site7-gov (scale 0.75) should run cooler than site8-media (1.2).
        let site_mean = |prefix: &str| {
            let ts: Vec<_> = c
                .traces()
                .iter()
                .filter(|t| t.name().starts_with(prefix))
                .collect();
            ts.iter().map(|t| t.mean()).sum::<f64>() / ts.len() as f64
        };
        assert!(site_mean("site7-gov") < site_mean("site8-media"));
    }

    #[test]
    fn indices_by_mean_is_sorted() {
        let c = Corpus::enterprise(500, 1);
        let idx = c.indices_by_mean();
        assert_eq!(idx.len(), 180);
        for w in idx.windows(2) {
            assert!(c.traces()[w[0]].mean() <= c.traces()[w[1]].mean());
        }
    }

    #[test]
    fn custom_profiles_control_corpus_size() {
        let profiles = vec![EnterpriseProfile {
            name: "solo".into(),
            classes: vec![WorkloadClass::Database],
            util_scale: 1.0,
        }];
        let c = Corpus::from_profiles(&profiles, 5, 100, 0);
        assert_eq!(c.len(), 5);
    }
}

//! The paper's workload mixes (§4.3): `180`, `60L`, `60M`, `60H`, and the
//! stacked synthetic high-activity mixes `60HH` and `60HHH`.

use serde::{Deserialize, Serialize};

use crate::corpus::Corpus;
use crate::error::TraceError;
use crate::trace::UtilTrace;
use crate::Result;

/// A workload-mix selector over a [`Corpus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mix {
    /// All 180 traces (`180` in the paper).
    All180,
    /// The 60 traces with the *lowest* mean utilization (`60L`).
    L60,
    /// The middle 60 traces by mean utilization (`60M`).
    M60,
    /// The 60 traces with the *highest* mean utilization (`60H`).
    H60,
    /// 60 synthetic traces, each stacking **two** of the hottest 120 real
    /// traces (`60HH`): the i-th hottest with the (i+60)-th hottest.
    Hh60,
    /// 60 synthetic traces, each stacking **three** of the 180 traces
    /// (`60HHH`): i-th, (i+60)-th and (i+120)-th hottest.
    Hhh60,
}

impl Mix {
    /// All mixes, in the order the paper's Figure 8 plots them plus
    /// `All180`.
    pub const ALL: [Mix; 6] = [
        Mix::L60,
        Mix::M60,
        Mix::H60,
        Mix::Hh60,
        Mix::Hhh60,
        Mix::All180,
    ];

    /// The paper's label for this mix.
    pub fn label(self) -> &'static str {
        match self {
            Mix::All180 => "180",
            Mix::L60 => "60L",
            Mix::M60 => "60M",
            Mix::H60 => "60H",
            Mix::Hh60 => "60HH",
            Mix::Hhh60 => "60HHH",
        }
    }

    /// Number of workloads this mix yields.
    pub fn workload_count(self) -> usize {
        match self {
            Mix::All180 => 180,
            _ => 60,
        }
    }

    /// Minimum corpus size this mix requires.
    pub fn required_corpus(self) -> usize {
        match self {
            Mix::All180 | Mix::Hhh60 => 180,
            Mix::L60 | Mix::M60 | Mix::H60 => 60,
            Mix::Hh60 => 120,
        }
    }

    /// Selects this mix from `corpus`.
    ///
    /// For a corpus of a non-standard size `n`, the selections scale:
    /// thirds for L/M/H, pair/triple stacking over the hottest 2/3 and the
    /// whole corpus for HH/HHH, always yielding `n/3` traces (or `n` for
    /// [`Mix::All180`]).
    pub fn select(self, corpus: &Corpus) -> Result<Vec<UtilTrace>> {
        let n = corpus.len();
        if n < self.required_corpus().min(n.max(3)) || n < 3 {
            return Err(TraceError::CorpusTooSmall {
                required: self.required_corpus(),
                available: n,
            });
        }
        let by_mean = corpus.indices_by_mean();
        let third = n / 3;
        let pick = |indices: &[usize]| -> Vec<UtilTrace> {
            indices
                .iter()
                .map(|&i| corpus.traces()[i].clone())
                .collect()
        };
        match self {
            Mix::All180 => Ok(corpus.traces().to_vec()),
            Mix::L60 => Ok(pick(&by_mean[..third])),
            Mix::M60 => Ok(pick(&by_mean[third..2 * third])),
            Mix::H60 => Ok(pick(&by_mean[n - third..])),
            Mix::Hh60 => {
                // Hottest 2·third traces, stacked in pairs: i-th hottest
                // with (i+third)-th hottest.
                let hot: Vec<usize> = by_mean[n - 2 * third..].iter().rev().copied().collect();
                (0..third)
                    .map(|i| {
                        let a = &corpus.traces()[hot[i]];
                        let b = &corpus.traces()[hot[i + third]];
                        UtilTrace::stack(format!("HH-{i:02}[{}+{}]", a.name(), b.name()), &[a, b])
                    })
                    .collect()
            }
            Mix::Hhh60 => {
                let hot: Vec<usize> = by_mean[n - 3 * third..].iter().rev().copied().collect();
                (0..third)
                    .map(|i| {
                        let a = &corpus.traces()[hot[i]];
                        let b = &corpus.traces()[hot[i + third]];
                        let c = &corpus.traces()[hot[i + 2 * third]];
                        UtilTrace::stack(format!("HHH-{i:02}"), &[a, b, c])
                    })
                    .collect()
            }
        }
    }
}

impl std::fmt::Display for Mix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        Corpus::enterprise(1_000, 5)
    }

    #[test]
    fn mix_sizes_match_paper() {
        let c = corpus();
        assert_eq!(c.mix(Mix::All180).unwrap().len(), 180);
        for m in [Mix::L60, Mix::M60, Mix::H60, Mix::Hh60, Mix::Hhh60] {
            assert_eq!(c.mix(m).unwrap().len(), 60, "{m}");
        }
    }

    #[test]
    fn activity_ordering_holds() {
        // Paper's intent: L < M < H < HH < HHH in mean utilization.
        let c = corpus();
        let mean = |m: Mix| {
            let ts = c.mix(m).unwrap();
            ts.iter().map(|t| t.mean()).sum::<f64>() / ts.len() as f64
        };
        let (l, m, h, hh, hhh) = (
            mean(Mix::L60),
            mean(Mix::M60),
            mean(Mix::H60),
            mean(Mix::Hh60),
            mean(Mix::Hhh60),
        );
        assert!(l < m, "L {l} < M {m}");
        assert!(m < h, "M {m} < H {h}");
        assert!(h < hh, "H {h} < HH {hh}");
        assert!(hh < hhh, "HH {hh} < HHH {hhh}");
    }

    #[test]
    fn l_and_h_partition_extremes() {
        let c = corpus();
        let l = c.mix(Mix::L60).unwrap();
        let h = c.mix(Mix::H60).unwrap();
        let max_l = l.iter().map(|t| t.mean()).fold(0.0, f64::max);
        let min_h = h.iter().map(|t| t.mean()).fold(1.0, f64::min);
        assert!(max_l <= min_h);
    }

    #[test]
    fn stacked_mixes_stay_in_unit_interval() {
        let c = corpus();
        for t in c.mix(Mix::Hhh60).unwrap() {
            assert!(t.samples().iter().all(|&s| (0.0..=1.0).contains(&s)));
        }
    }

    #[test]
    fn small_corpus_rejected() {
        let c = Corpus::new(vec![UtilTrace::constant("a", 0.5, 10).unwrap()]);
        assert!(matches!(
            c.mix(Mix::L60),
            Err(TraceError::CorpusTooSmall { .. })
        ));
    }

    #[test]
    fn nonstandard_corpus_scales_to_thirds() {
        let traces: Vec<UtilTrace> = (0..30)
            .map(|i| UtilTrace::constant(format!("t{i}"), 0.02 + 0.03 * i as f64, 10).unwrap())
            .collect();
        let c = Corpus::new(traces);
        assert_eq!(c.mix(Mix::L60).unwrap().len(), 10);
        assert_eq!(c.mix(Mix::Hh60).unwrap().len(), 10);
        assert_eq!(c.mix(Mix::All180).unwrap().len(), 30);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Mix::All180.to_string(), "180");
        assert_eq!(Mix::Hh60.to_string(), "60HH");
        assert_eq!(Mix::Hhh60.label(), "60HHH");
    }
}

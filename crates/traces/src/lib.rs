//! Enterprise CPU-utilization traces for trace-driven data-center
//! simulation.
//!
//! The paper evaluates on *"180 traces representing individual server
//! utilization from nine different enterprise sites for several classes of
//! individual and multi-tier workloads (database servers, web servers,
//! e-commerce, remote desktop infrastructures, etc.)"* — proprietary data
//! we cannot ship. This crate builds the closest synthetic equivalent
//! (see `DESIGN.md` §3): a deterministic generator with per-class diurnal
//! patterns, weekly modulation, AR(1) noise and bursts, assembled into a
//! [`Corpus`] of 9 enterprises × 20 servers = 180 traces whose mean
//! utilizations fall in the paper's observed 15–50% band.
//!
//! The paper's workload mixes are reproduced exactly by construction:
//! `180` (everything), `60L`/`60M`/`60H` (60 lowest / middle / highest mean
//! utilization), and the stacked `60HH`/`60HHH` synthetic high-activity
//! mixes.
//!
//! ```
//! use nps_traces::{Corpus, Mix};
//!
//! let corpus = Corpus::enterprise(2_000, 42);
//! assert_eq!(corpus.len(), 180);
//! let hot = corpus.mix(Mix::Hh60).unwrap();
//! assert_eq!(hot.len(), 60);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod error;
pub mod io;
mod mix;
mod synth;
mod trace;

pub use corpus::{Corpus, EnterpriseProfile};
pub use error::TraceError;
pub use mix::Mix;
pub use synth::{generate, TraceSpec, WorkloadClass};
pub use trace::{TraceStats, UtilTrace};

/// Convenient result alias for trace operations.
pub type Result<T> = std::result::Result<T, TraceError>;

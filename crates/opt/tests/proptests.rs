//! Property-based tests of the VMC: the greedy solver must produce valid
//! assignments satisfying the program's constraints whenever it claims
//! feasibility, for arbitrary fleets and demand vectors.

use nps_models::ServerModel;
use nps_opt::{ClusterContext, PowerEstimator, Vmc, VmcConfig};
use nps_sim::{Placement, ServerId, Topology, VmId};
use proptest::prelude::*;

fn check_plan_constraints(
    demands: &[f64],
    ctx: &ClusterContext<'_>,
    cfg: &VmcConfig,
    plan: &nps_opt::VmcPlan,
) -> Result<(), TestCaseError> {
    // Constraint (6): every VM placed exactly once on a valid server.
    prop_assert_eq!(plan.placement.num_vms(), demands.len());
    for (_, host) in plan.placement.iter() {
        prop_assert!(host.index() < ctx.num_servers());
    }
    if !plan.is_feasible() {
        return Ok(()); // flagged plans may violate budgets by design
    }
    let est = PowerEstimator::new(cfg.assumed_r_ref);
    let n = ctx.num_servers();
    let mut loads = vec![0.0; n];
    for (vm, host) in plan.placement.iter() {
        loads[host.index()] += demands[vm.index()].max(0.0) * (1.0 + cfg.alpha_v);
    }
    let power = |i: usize| -> f64 {
        if loads[i] <= 0.0 && cfg.allow_turn_off {
            0.0
        } else {
            est.power(&ctx.models[i], loads[i])
        }
    };
    let mut group = 0.0;
    for (i, &load) in loads.iter().enumerate() {
        // Constraint (2).
        prop_assert!(load <= cfg.headroom + 1e-9, "server {i} overfilled: {load}");
        if cfg.use_budget_constraints {
            // Constraint (3).
            prop_assert!(
                power(i) <= ctx.cap_loc[i] + 1e-6,
                "server {i}: {} > cap {}",
                power(i),
                ctx.cap_loc[i]
            );
        }
        group += power(i);
    }
    if cfg.use_budget_constraints {
        // Constraints (4) and (5).
        for e in 0..ctx.topo.num_enclosures() {
            let enc: f64 = ctx
                .topo
                .enclosure_servers(nps_sim::EnclosureId(e))
                .iter()
                .map(|s| power(s.index()))
                .sum();
            prop_assert!(enc <= ctx.cap_enc[e] + 1e-6);
        }
        prop_assert!(group <= ctx.cap_grp + 1e-6);
    }
    // power_off servers host nothing.
    for s in &plan.power_off {
        prop_assert!(plan.placement.vms_on(*s).is_empty());
    }
    // Migrations transform current into target.
    let mut p = ctx.current.clone();
    for m in &plan.migrations {
        prop_assert_eq!(p.host_of(m.vm), m.from);
        p.assign(m.vm, m.to);
    }
    prop_assert_eq!(&p, &plan.placement);
    Ok(())
}

proptest! {
    #[test]
    fn greedy_plans_satisfy_all_constraints(
        demands in proptest::collection::vec(0.0f64..0.7, 1..24),
        blades in 1usize..3,
        standalone in 1usize..8,
        cap_frac in 0.7f64..1.0,
        local_search in 0usize..4,
        turn_off in proptest::bool::ANY,
        seed_buffers in 0.0f64..0.25,
    ) {
        let servers = blades * 4 + standalone;
        let topo = Topology::builder().enclosures(blades, 4).standalone(standalone).build();
        let model = ServerModel::blade_a();
        let models = vec![model.clone(); servers];
        let current = Placement::one_per_server(demands.len(), servers);
        let cap_loc = vec![cap_frac * model.max_power(); servers];
        let cap_enc = vec![4.0 * cap_frac * model.max_power() * 0.95; blades];
        let cap_grp = servers as f64 * cap_frac * model.max_power() * 0.9;
        let ctx = ClusterContext {
            topo: &topo,
            models: &models,
            current: &current,
            cap_loc: &cap_loc,
            cap_enc: &cap_enc,
            cap_grp,
        };
        let cfg = VmcConfig {
            allow_turn_off: turn_off,
            local_search_iters: local_search,
            ..VmcConfig::default()
        };
        let mut vmc = Vmc::new(cfg);
        vmc.report_violations(seed_buffers, seed_buffers, seed_buffers);
        let plan = vmc.plan(&demands, &ctx);
        check_plan_constraints(&demands, &ctx, &cfg, &plan)?;
    }

    #[test]
    fn planning_is_deterministic(
        demands in proptest::collection::vec(0.0f64..0.6, 1..12),
    ) {
        let topo = Topology::builder().standalone(6).build();
        let model = ServerModel::server_b();
        let models = vec![model.clone(); 6];
        let current = Placement::one_per_server(demands.len(), 6);
        let cap_loc = vec![0.9 * model.max_power(); 6];
        let cap_enc: Vec<f64> = vec![];
        let ctx = ClusterContext {
            topo: &topo,
            models: &models,
            current: &current,
            cap_loc: &cap_loc,
            cap_enc: &cap_enc,
            cap_grp: 6.0 * 0.8 * model.max_power(),
        };
        let vmc = Vmc::new(VmcConfig::default());
        let a = vmc.plan(&demands, &ctx);
        let b = vmc.plan(&demands, &ctx);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn tiny_estimates_consolidate_near_the_capacity_bound(
        demands in proptest::collection::vec(0.005f64..0.05, 2..16),
    ) {
        // The vicious-cycle raw material (paper §3.1): when measurements
        // shrink (e.g. under throttling), the VMC packs down toward the
        // capacity lower bound — there is no built-in brake besides the
        // budget constraints and feedback buffers.
        let topo = Topology::builder().standalone(16).build();
        let model = ServerModel::blade_a();
        let models = vec![model.clone(); 16];
        let current = Placement::one_per_server(demands.len(), 16);
        let cap_loc = vec![1e9; 16];
        let cap_enc: Vec<f64> = vec![];
        let ctx = ClusterContext {
            topo: &topo,
            models: &models,
            current: &current,
            cap_loc: &cap_loc,
            cap_enc: &cap_enc,
            cap_grp: 1e9,
        };
        let vmc = Vmc::new(VmcConfig::default());
        let plan = vmc.plan(&demands, &ctx);
        let total_load: f64 = demands.iter().map(|d| d * 1.1).sum();
        let lower_bound = (total_load / 0.9).ceil().max(1.0) as usize;
        prop_assert!(
            plan.placement.used_servers().len() <= lower_bound + 1,
            "tiny demands used {} servers (bound {lower_bound})",
            plan.placement.used_servers().len()
        );
    }
}

#[test]
fn server_ids_in_plans_are_always_valid() {
    // Non-property sanity: a 1-server degenerate cluster.
    let topo = Topology::builder().standalone(1).build();
    let model = ServerModel::blade_a();
    let models = vec![model.clone()];
    let current = Placement::one_per_server(3, 1);
    let cap_loc = vec![model.max_power()];
    let cap_enc: Vec<f64> = vec![];
    let ctx = ClusterContext {
        topo: &topo,
        models: &models,
        current: &current,
        cap_loc: &cap_loc,
        cap_enc: &cap_enc,
        cap_grp: model.max_power(),
    };
    let vmc = Vmc::new(VmcConfig::default());
    let plan = vmc.plan(&[0.2, 0.2, 0.2], &ctx);
    assert_eq!(plan.placement.host_of(VmId(0)), ServerId(0));
}

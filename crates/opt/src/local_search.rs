//! Local-search improvement over a greedy plan — our extension beyond the
//! paper's plain greedy approximation (§4.1 notes *"many algorithms are
//! available to solve this 0-1 integer program"*; first-fit-decreasing can
//! strand servers that a single relocation would empty).
//!
//! The move set is single-VM relocation; a move is accepted when it
//! strictly lowers the estimated total power while keeping every
//! constraint satisfied. Iterates to a fixed point or an iteration cap.

use nps_sim::ServerId;

use crate::context::ClusterContext;
use crate::estimate::PowerEstimator;
use crate::greedy::assemble_plan;
use crate::plan::VmcPlan;
use crate::vmc::VmcConfig;

/// Improves `plan` by single-VM relocations. `demands` and `buffers`
/// must be those the plan was produced with.
#[allow(clippy::too_many_arguments)]
pub fn improve(
    plan: VmcPlan,
    demands: &[f64],
    ctx: &ClusterContext<'_>,
    est: &PowerEstimator,
    cfg: &VmcConfig,
    buffers: (f64, f64, f64),
    max_iters: usize,
) -> VmcPlan {
    let n = ctx.num_servers();
    let mut hosts: Vec<ServerId> = (0..demands.len())
        .map(|j| plan.placement.host_of(nps_sim::VmId(j)))
        .collect();
    let overheads: Vec<f64> = demands
        .iter()
        .map(|d| d.max(0.0) * (1.0 + cfg.alpha_v))
        .collect();
    let mut loads = vec![0.0; n];
    for (j, h) in hosts.iter().enumerate() {
        loads[h.index()] += overheads[j];
    }
    let server_power = |load: f64, i: usize| -> f64 {
        if load <= 0.0 && cfg.allow_turn_off {
            0.0
        } else {
            est.power(&ctx.models[i], load)
        }
    };
    let (b_loc, b_enc, b_grp) = buffers;

    for _ in 0..max_iters {
        let mut improved = false;
        for j in 0..hosts.len() {
            let from = hosts[j].index();
            let d = overheads[j];
            let from_now = server_power(loads[from], from);
            let from_after = server_power(loads[from] - d, from);
            let mut best: Option<(f64, usize)> = None;
            for to in 0..n {
                if to == from || loads[to] + d > cfg.headroom {
                    continue;
                }
                let to_now = server_power(loads[to], to);
                let to_after = server_power(loads[to] + d, to);
                if cfg.use_budget_constraints {
                    let floor = ctx.models[to].min_active_power() * 1.05;
                    let eff_cap = ((1.0 - b_loc) * ctx.cap_loc[to]).max(floor.min(ctx.cap_loc[to]));
                    if to_after > eff_cap {
                        continue;
                    }
                    // Enclosure/group deltas for this single move.
                    let delta_to = to_after - to_now;
                    let delta_from = from_after - from_now;
                    let enc_ok = |i: usize, delta: f64| -> bool {
                        match ctx.enclosure_of(ServerId(i)) {
                            Some(e) => {
                                let enc_power: f64 = ctx
                                    .topo
                                    .enclosure_servers(e)
                                    .iter()
                                    .map(|&s| server_power(loads[s.index()], s.index()))
                                    .sum();
                                enc_power + delta <= (1.0 - b_enc) * ctx.cap_enc[e.index()]
                            }
                            None => true,
                        }
                    };
                    if !enc_ok(to, delta_to) {
                        continue;
                    }
                    let group: f64 = (0..n).map(|i| server_power(loads[i], i)).sum();
                    if group + delta_to + delta_from > (1.0 - b_grp) * ctx.cap_grp {
                        continue;
                    }
                }
                let gain = (from_now - from_after)
                    - (to_after - to_now)
                    - cfg.migration_weight * d * ctx.models[to].max_power();
                if gain > 1e-9 && best.map(|(bg, _)| gain > bg).unwrap_or(true) {
                    best = Some((gain, to));
                }
            }
            if let Some((_, to)) = best {
                loads[from] -= d;
                loads[to] += d;
                hosts[j] = ServerId(to);
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }

    let total: f64 = (0..n).map(|i| server_power(loads[i], i)).sum();
    assemble_plan(ctx, cfg, hosts, total, plan.forced_placements)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_pack;
    use nps_models::ServerModel;
    use nps_sim::{Placement, Topology};

    #[test]
    fn local_search_never_worsens_the_plan() {
        let topo = Topology::builder().standalone(6).build();
        let models = vec![ServerModel::server_b(); 6];
        let current = Placement::one_per_server(6, 6);
        let cap_loc = vec![0.9 * models[0].max_power(); 6];
        let cap_enc: Vec<f64> = vec![];
        let ctx = ClusterContext {
            topo: &topo,
            models: &models,
            current: &current,
            cap_loc: &cap_loc,
            cap_enc: &cap_enc,
            cap_grp: 6.0 * 0.8 * models[0].max_power(),
        };
        let demands = [0.25, 0.30, 0.20, 0.15, 0.35, 0.10];
        let cfg = VmcConfig::default();
        let est = PowerEstimator::default();
        let base = greedy_pack(&demands, &ctx, &est, &cfg, (0.0, 0.0, 0.0));
        let better = improve(
            base.clone(),
            &demands,
            &ctx,
            &est,
            &cfg,
            (0.0, 0.0, 0.0),
            10,
        );
        assert!(better.estimated_power_watts <= base.estimated_power_watts + 1e-6);
        assert_eq!(better.placement.num_vms(), 6);
    }

    #[test]
    fn local_search_respects_headroom() {
        let topo = Topology::builder().standalone(3).build();
        let models = vec![ServerModel::blade_a(); 3];
        let current = Placement::one_per_server(3, 3);
        let cap_loc = vec![1e9; 3];
        let cap_enc: Vec<f64> = vec![];
        let ctx = ClusterContext {
            topo: &topo,
            models: &models,
            current: &current,
            cap_loc: &cap_loc,
            cap_enc: &cap_enc,
            cap_grp: 1e9,
        };
        let demands = [0.5, 0.4, 0.3];
        let cfg = VmcConfig::default();
        let est = PowerEstimator::default();
        let base = greedy_pack(&demands, &ctx, &est, &cfg, (0.0, 0.0, 0.0));
        let better = improve(base, &demands, &ctx, &est, &cfg, (0.0, 0.0, 0.0), 20);
        // Verify no server exceeds headroom.
        let mut loads = vec![0.0; 3];
        for (vm, host) in better.placement.iter() {
            loads[host.index()] += demands[vm.index()] * 1.1;
        }
        for l in loads {
            assert!(l <= cfg.headroom + 1e-9, "load {l} exceeds headroom");
        }
    }
}

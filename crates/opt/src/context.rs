//! The cluster snapshot a VMC plans against.

use nps_models::ServerModel;
use nps_sim::{EnclosureId, Placement, ServerId, Topology};

/// Everything the VMC knows about the cluster when planning: topology,
/// per-server models, the current placement, and the (approximate) static
/// power budgets at every level — the paper's observation that budget
/// knowledge can come from *"either machine specifications or approximate
/// estimates"* (§3.1).
#[derive(Debug, Clone)]
pub struct ClusterContext<'a> {
    /// Physical topology (enclosure membership = the `M` matrix).
    pub topo: &'a Topology,
    /// Per-server power/performance models.
    pub models: &'a [ServerModel],
    /// Placement in force when planning starts.
    pub current: &'a Placement,
    /// Static per-server budgets `CAP_LOC_i`, watts.
    pub cap_loc: &'a [f64],
    /// Static per-enclosure budgets `CAP_ENC_q`, watts.
    pub cap_enc: &'a [f64],
    /// Static group budget `CAP_GRP`, watts.
    pub cap_grp: f64,
}

impl ClusterContext<'_> {
    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.topo.num_servers()
    }

    /// The enclosure of `s`, if any.
    pub fn enclosure_of(&self, s: ServerId) -> Option<EnclosureId> {
        self.topo.enclosure_of(s)
    }

    /// Panics with a clear message if the context is internally
    /// inconsistent (sizes disagree); called once per planning round.
    pub fn validate(&self) {
        assert_eq!(
            self.models.len(),
            self.topo.num_servers(),
            "one model per server required"
        );
        assert_eq!(
            self.cap_loc.len(),
            self.topo.num_servers(),
            "one local cap per server required"
        );
        assert_eq!(
            self.cap_enc.len(),
            self.topo.num_enclosures(),
            "one cap per enclosure required"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nps_models::ServerModel;

    #[test]
    fn validate_accepts_consistent_context() {
        let topo = Topology::builder().enclosure(2).standalone(1).build();
        let models = vec![ServerModel::blade_a(); 3];
        let placement = Placement::one_per_server(3, 3);
        let cap_loc = vec![108.0; 3];
        let cap_enc = vec![200.0];
        let ctx = ClusterContext {
            topo: &topo,
            models: &models,
            current: &placement,
            cap_loc: &cap_loc,
            cap_enc: &cap_enc,
            cap_grp: 500.0,
        };
        ctx.validate();
        assert_eq!(ctx.num_servers(), 3);
        assert_eq!(ctx.enclosure_of(ServerId(0)), Some(EnclosureId(0)));
        assert_eq!(ctx.enclosure_of(ServerId(2)), None);
    }

    #[test]
    #[should_panic(expected = "one local cap per server")]
    fn validate_rejects_missized_caps() {
        let topo = Topology::builder().standalone(2).build();
        let models = vec![ServerModel::blade_a(); 2];
        let placement = Placement::one_per_server(2, 2);
        let cap_loc = vec![108.0];
        let cap_enc: Vec<f64> = vec![];
        ClusterContext {
            topo: &topo,
            models: &models,
            current: &placement,
            cap_loc: &cap_loc,
            cap_enc: &cap_enc,
            cap_grp: 500.0,
        }
        .validate();
    }
}

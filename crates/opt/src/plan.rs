//! The output of one VMC planning round.

use nps_sim::{Migration, Placement, ServerId};

/// A consolidation plan: the new placement plus the actions needed to get
/// there. Produced by [`crate::Vmc::plan`]; `nps-core` applies it to the
/// simulator (power servers on, migrate, power empties off).
#[derive(Debug, Clone, PartialEq)]
pub struct VmcPlan {
    /// The target placement (the new `X` matrix).
    pub placement: Placement,
    /// Servers that must be powered on before migrating (targets that are
    /// currently off).
    pub power_on: Vec<ServerId>,
    /// Servers left empty by the plan, to be powered off (empty when
    /// turn-off is disallowed).
    pub power_off: Vec<ServerId>,
    /// The migrations transforming the current placement into the target.
    pub migrations: Vec<Migration>,
    /// Estimated steady-state group power of the target placement, watts.
    pub estimated_power_watts: f64,
    /// Number of VMs that could not be placed within all constraints and
    /// were force-placed on the least-loaded feasible-capacity server.
    /// Zero means the plan satisfies every constraint of the 0-1 program.
    pub forced_placements: usize,
}

impl VmcPlan {
    /// Whether the plan satisfies all constraints of the optimization
    /// problem (no forced placements).
    pub fn is_feasible(&self) -> bool {
        self.forced_placements == 0
    }

    /// Total number of VM moves the plan requires.
    pub fn num_migrations(&self) -> usize {
        self.migrations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasibility_reflects_forced_placements() {
        let plan = VmcPlan {
            placement: Placement::one_per_server(2, 2),
            power_on: vec![],
            power_off: vec![],
            migrations: vec![],
            estimated_power_watts: 100.0,
            forced_placements: 0,
        };
        assert!(plan.is_feasible());
        assert_eq!(plan.num_migrations(), 0);
    }
}

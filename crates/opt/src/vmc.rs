//! The VMC controller: configuration, violation-feedback buffers, and the
//! planning entry point.

use serde::{Deserialize, Serialize};

use crate::context::ClusterContext;
use crate::estimate::PowerEstimator;
use crate::greedy::greedy_pack;
use crate::local_search::improve;
use crate::plan::VmcPlan;
use nps_models::ServerModel;

/// The optimization objective of the placement program — paper §6.1
/// extension (6): *"energy efficiency and energy-delay objective
/// functions (different tradeoffs between power and performance): at the
/// higher levels (e.g., VMC), this is a straightforward change to the
/// linear programming optimization problem."*
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[non_exhaustive]
pub enum Objective {
    /// Minimize total power (the paper's base objective).
    #[default]
    Power,
    /// Minimize an energy–delay proxy: total power plus a quadratic
    /// load penalty, discouraging deep packing whose queueing delay
    /// would dominate. Trades some consolidation for latency headroom.
    EnergyDelay,
}

impl Objective {
    /// Extra score (pseudo-watts) for moving a server from `old_load` to
    /// `new_load` under this objective.
    pub(crate) fn load_penalty(self, model: &ServerModel, old_load: f64, new_load: f64) -> f64 {
        match self {
            Objective::Power => 0.0,
            Objective::EnergyDelay => {
                // Quadratic delay proxy scaled to the server's power range
                // so it is commensurate with the marginal-power term.
                0.75 * model.max_power() * (new_load * new_load - old_load * old_load)
            }
        }
    }
}

/// Which bin-packing rule the solver uses for each VM (paper §4.1:
/// *"Many algorithms are available to solve this 0-1 integer program. In
/// our evaluation, we use a greedy bin-packing algorithm"*). All variants
/// respect the same constraints; they differ in the placement choice
/// among feasible servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[non_exhaustive]
pub enum PackingAlgorithm {
    /// Choose the feasible server with the lowest marginal estimated
    /// power plus migration cost (this crate's default, power-aware).
    #[default]
    MarginalPower,
    /// Classic first-fit-decreasing: the first feasible server by index.
    FirstFitDecreasing,
    /// Best-fit-decreasing: the feasible server left with the least
    /// remaining capacity headroom.
    BestFitDecreasing,
}

impl PackingAlgorithm {
    /// All variants, for ablation sweeps.
    pub const ALL: [PackingAlgorithm; 3] = [
        PackingAlgorithm::MarginalPower,
        PackingAlgorithm::FirstFitDecreasing,
        PackingAlgorithm::BestFitDecreasing,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            PackingAlgorithm::MarginalPower => "marginal-power",
            PackingAlgorithm::FirstFitDecreasing => "first-fit",
            PackingAlgorithm::BestFitDecreasing => "best-fit",
        }
    }
}

/// Tunables of the virtual machine controller (paper Figure 5 base values
/// and §3.1 coordination features).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmcConfig {
    /// Virtualization overhead `α_V` applied to every demand (base 10%).
    pub alpha_v: f64,
    /// Packing headroom `r̄`: the greatest fraction of a server's max
    /// capacity the VMC will fill, leaving room for workload variability.
    pub headroom: f64,
    /// Weight `α_M` of migration cost in the objective; converted to
    /// watts as `α_M · demand · max_power` per move.
    pub migration_weight: f64,
    /// Whether empty servers may be powered off (paper §5.4 studies
    /// disabling this).
    pub allow_turn_off: bool,
    /// Whether the budget constraints (3)–(5) are enforced
    /// (`false` = the paper's "no budget limits" ablation).
    pub use_budget_constraints: bool,
    /// Whether violation feedback widens the buffers
    /// (`false` = the paper's "no feedback" ablation).
    pub use_feedback: bool,
    /// Buffer increase per unit violation rate.
    pub buffer_gain: f64,
    /// Multiplicative buffer decay when a level reports no violations.
    pub buffer_decay: f64,
    /// Upper bound on each buffer.
    pub buffer_max: f64,
    /// Minimum buffer growth applied whenever an epoch reports *any*
    /// violations — the "aggressiveness of the feedback parameter" the
    /// paper's §5.4 time-constant study hinges on: a faster VMC reacts to
    /// more (smaller) violated epochs and accumulates wider buffers.
    /// Default 0 (pure rate-proportional growth); see EXPERIMENTS.md for
    /// the time-constant discussion.
    pub buffer_growth_floor: f64,
    /// Reference epoch length in ticks; buffer decay is expressed per
    /// reference epoch and rescaled for shorter/longer actual epochs.
    pub base_epoch_ticks: u64,
    /// Utilization the local ECs are assumed to settle at, for power
    /// estimation.
    pub assumed_r_ref: f64,
    /// Local-search improvement iterations after greedy packing
    /// (0 = paper's plain greedy).
    pub local_search_iters: usize,
    /// The optimization objective (paper §6 extension (6)).
    pub objective: Objective,
    /// The bin-packing rule (paper §4.1's "many algorithms" remark).
    pub algorithm: PackingAlgorithm,
}

impl Default for VmcConfig {
    fn default() -> Self {
        Self {
            alpha_v: 0.10,
            headroom: 0.85,
            migration_weight: 0.10,
            allow_turn_off: true,
            use_budget_constraints: true,
            use_feedback: true,
            buffer_gain: 0.25,
            buffer_decay: 0.7,
            buffer_max: 0.20,
            buffer_growth_floor: 0.0,
            base_epoch_ticks: 500,
            assumed_r_ref: 0.75,
            local_search_iters: 0,
            objective: Objective::Power,
            algorithm: PackingAlgorithm::MarginalPower,
        }
    }
}

/// The virtual machine controller. Holds the violation-feedback buffers
/// `b_loc / b_enc / b_grp` between epochs; each [`Vmc::plan`] call solves
/// one instance of the placement program.
///
/// ```
/// use nps_models::ServerModel;
/// use nps_opt::{ClusterContext, Vmc, VmcConfig};
/// use nps_sim::{Placement, Topology};
///
/// let topo = Topology::builder().standalone(4).build();
/// let model = ServerModel::server_b();
/// let models = vec![model.clone(); 4];
/// let current = Placement::one_per_server(4, 4);
/// let cap_loc = vec![0.9 * model.max_power(); 4];
/// let ctx = ClusterContext {
///     topo: &topo,
///     models: &models,
///     current: &current,
///     cap_loc: &cap_loc,
///     cap_enc: &[],
///     cap_grp: 4.0 * 0.8 * model.max_power(),
/// };
/// // Four light VMs consolidate onto fewer servers.
/// let plan = Vmc::new(VmcConfig::default()).plan(&[0.15; 4], &ctx);
/// assert!(plan.power_off.len() >= 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Vmc {
    cfg: VmcConfig,
    b_loc: f64,
    b_enc: f64,
    b_grp: f64,
}

impl Vmc {
    /// Initial local buffer: starting slightly conservative avoids a
    /// violation burst in the first consolidated epoch (the feedback loop
    /// then tunes it).
    const INITIAL_B_LOC: f64 = 0.05;

    /// Creates a VMC with near-zero initial buffers.
    pub fn new(cfg: VmcConfig) -> Self {
        Self {
            cfg,
            b_loc: if cfg.use_feedback {
                Self::INITIAL_B_LOC
            } else {
                0.0
            },
            b_enc: 0.0,
            b_grp: 0.0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &VmcConfig {
        &self.cfg
    }

    /// Current buffers `(b_loc, b_enc, b_grp)`.
    pub fn buffers(&self) -> (f64, f64, f64) {
        (self.b_loc, self.b_enc, self.b_grp)
    }

    /// The feedback buffers as IEEE-754 bit words
    /// `[b_loc, b_enc, b_grp]`, for bit-exact checkpointing.
    pub fn buffer_bits(&self) -> [u64; 3] {
        [
            self.b_loc.to_bits(),
            self.b_enc.to_bits(),
            self.b_grp.to_bits(),
        ]
    }

    /// Restores buffers captured by [`Vmc::buffer_bits`].
    pub fn restore_buffer_bits(&mut self, bits: &[u64; 3]) {
        self.b_loc = f64::from_bits(bits[0]);
        self.b_enc = f64::from_bits(bits[1]);
        self.b_grp = f64::from_bits(bits[2]);
    }

    /// Feeds back the budget-violation rates observed since the last
    /// epoch (fraction of capping intervals violated at each level, in
    /// `[0, 1]`). Violations widen the corresponding buffer — making the
    /// next consolidation more conservative; quiet levels decay back
    /// toward zero. No-op when feedback is disabled (ablation).
    pub fn report_violations(&mut self, loc_rate: f64, enc_rate: f64, grp_rate: f64) {
        let base = self.cfg.base_epoch_ticks;
        self.report_violations_windowed(loc_rate, enc_rate, grp_rate, base);
    }

    /// Like [`Vmc::report_violations`], but for an epoch of
    /// `window_ticks`. Growth applies per violated epoch (so a faster VMC
    /// reacts more aggressively — the paper's §5.4 observation), while
    /// decay is rescaled to be fair per unit *time*.
    pub fn report_violations_windowed(
        &mut self,
        loc_rate: f64,
        enc_rate: f64,
        grp_rate: f64,
        window_ticks: u64,
    ) {
        if !self.cfg.use_feedback {
            return;
        }
        let frac = window_ticks.max(1) as f64 / self.cfg.base_epoch_ticks.max(1) as f64;
        let decay = self.cfg.buffer_decay.powf(frac);
        let update = |b: &mut f64, rate: f64, cfg: &VmcConfig| {
            *b = if rate > 0.0 {
                let growth = (cfg.buffer_gain * rate.clamp(0.0, 1.0)).max(cfg.buffer_growth_floor);
                (*b + growth).min(cfg.buffer_max)
            } else {
                *b * decay
            };
        };
        update(&mut self.b_loc, loc_rate, &self.cfg);
        update(&mut self.b_enc, enc_rate, &self.cfg);
        update(&mut self.b_grp, grp_rate, &self.cfg);
    }

    /// Solves one placement round: `demands` are per-VM demand estimates
    /// in fractions of a full-speed server (real utilization in the
    /// coordinated architecture; apparent in the ablation).
    pub fn plan(&self, demands: &[f64], ctx: &ClusterContext<'_>) -> VmcPlan {
        ctx.validate();
        assert_eq!(
            demands.len(),
            ctx.current.num_vms(),
            "one demand estimate per VM required"
        );
        let estimator = PowerEstimator::new(self.cfg.assumed_r_ref);
        let mut plan = greedy_pack(demands, ctx, &estimator, &self.cfg, self.buffers());
        if self.cfg.local_search_iters > 0 {
            plan = improve(
                plan,
                demands,
                ctx,
                &estimator,
                &self.cfg,
                self.buffers(),
                self.cfg.local_search_iters,
            );
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_widen_on_violations_and_decay_when_quiet() {
        let mut vmc = Vmc::new(VmcConfig::default());
        // b_loc starts at the conservative seed 0.05; the others at 0.
        vmc.report_violations(0.2, 0.0, 0.4);
        let (l, e, g) = vmc.buffers();
        assert!((l - (0.05 + 0.25 * 0.2)).abs() < 1e-12);
        assert_eq!(e, 0.0);
        assert!((g - 0.25 * 0.4).abs() < 1e-12);
        vmc.report_violations(0.0, 0.0, 0.0);
        let (l2, _, g2) = vmc.buffers();
        assert!(l2 < l && g2 < g);
    }

    #[test]
    fn buffers_saturate_at_max() {
        let mut vmc = Vmc::new(VmcConfig::default());
        for _ in 0..20 {
            vmc.report_violations(1.0, 1.0, 1.0);
        }
        let (l, e, g) = vmc.buffers();
        assert_eq!((l, e, g), (0.20, 0.20, 0.20));
    }

    #[test]
    fn buffer_bits_roundtrip_exactly() {
        let mut vmc = Vmc::new(VmcConfig::default());
        vmc.report_violations(0.137, 0.004, 0.91);
        let bits = vmc.buffer_bits();
        let mut fresh = Vmc::new(VmcConfig::default());
        fresh.restore_buffer_bits(&bits);
        assert_eq!(vmc.buffers(), fresh.buffers());
        assert_eq!(fresh.buffer_bits(), bits);
    }

    #[test]
    fn feedback_ablation_freezes_buffers() {
        let cfg = VmcConfig {
            use_feedback: false,
            ..VmcConfig::default()
        };
        let mut vmc = Vmc::new(cfg);
        vmc.report_violations(1.0, 1.0, 1.0);
        assert_eq!(vmc.buffers(), (0.0, 0.0, 0.0));
    }
}

//! Greedy bin-packing solver for the placement program (the paper's
//! chosen approximation: *"we use a greedy bin-packing algorithm to search
//! for a new placement solution that satisfies all the constraints"*).
//!
//! First-fit-decreasing with a power-aware scoring rule: VMs in decreasing
//! demand order; each VM goes to the feasible server minimizing
//! *marginal estimated power + migration cost*. Feasibility covers the
//! capacity constraint (2) and — when enabled — the buffered budget
//! constraints (3)–(5).

use nps_sim::{Placement, ServerId, VmId};

use crate::context::ClusterContext;
use crate::estimate::PowerEstimator;
use crate::plan::VmcPlan;
use crate::vmc::VmcConfig;

/// Incremental state of a packing in progress.
struct PackState<'a> {
    ctx: &'a ClusterContext<'a>,
    est: &'a PowerEstimator,
    cfg: &'a VmcConfig,
    buffers: (f64, f64, f64),
    /// Assigned load per server (max-capacity units, incl. `α_V`).
    loads: Vec<f64>,
    /// Estimated power per server under the plan (0 for empty +
    /// turn-off).
    powers: Vec<f64>,
    /// Running per-enclosure power estimate.
    enc_powers: Vec<f64>,
    /// Running group power estimate.
    group_power: f64,
}

impl<'a> PackState<'a> {
    fn new(
        ctx: &'a ClusterContext<'a>,
        est: &'a PowerEstimator,
        cfg: &'a VmcConfig,
        buffers: (f64, f64, f64),
    ) -> Self {
        let n = ctx.num_servers();
        let mut state = Self {
            ctx,
            est,
            cfg,
            buffers,
            loads: vec![0.0; n],
            powers: vec![0.0; n],
            enc_powers: vec![0.0; ctx.topo.num_enclosures()],
            group_power: 0.0,
        };
        // Empty servers that cannot be turned off still draw their parked
        // idle power.
        if !cfg.allow_turn_off {
            for i in 0..n {
                let p = est.power(&ctx.models[i], 0.0);
                state.powers[i] = p;
                state.add_level_power(ServerId(i), p);
            }
        }
        state
    }

    fn add_level_power(&mut self, s: ServerId, delta: f64) {
        if let Some(e) = self.ctx.enclosure_of(s) {
            self.enc_powers[e.index()] += delta;
        }
        self.group_power += delta;
    }

    /// Power the server would draw carrying `load` under this plan.
    fn server_power(&self, i: usize, load: f64) -> f64 {
        if load <= 0.0 && self.cfg.allow_turn_off {
            0.0
        } else {
            self.est.power(&self.ctx.models[i], load)
        }
    }

    /// Whether placing `extra` load on server `i` keeps all constraints.
    fn fits(&self, i: usize, extra: f64) -> bool {
        let new_load = self.loads[i] + extra;
        // Constraint (2): capacity with headroom r̄. A VM whose demand
        // alone exceeds r̄ may still get a *dedicated* server up to full
        // capacity — the alternative would drop it, violating the
        // absolute constraint (6).
        let limit = if self.loads[i] <= 0.0 {
            self.cfg.headroom.max(1.0_f64.min(extra))
        } else {
            self.cfg.headroom
        };
        if new_load > limit {
            return false;
        }
        if !self.cfg.use_budget_constraints {
            return true;
        }
        let (b_loc, b_enc, b_grp) = self.buffers;
        let new_power = self.server_power(i, new_load);
        // Constraint (3): buffered local budget. Buffers moderate how
        // *aggressively* servers are packed; they never block an empty
        // server from accepting its first VM (which is always checked
        // against the full static cap) — otherwise high violation
        // feedback could make every server unplaceable and deadlock the
        // packing into forced placements.
        let eff_cap = if self.loads[i] <= 0.0 {
            self.ctx.cap_loc[i]
        } else {
            (1.0 - b_loc) * self.ctx.cap_loc[i]
        };
        if new_power > eff_cap {
            return false;
        }
        let delta = new_power - self.powers[i];
        // Constraint (4): buffered enclosure budget.
        if let Some(e) = self.ctx.enclosure_of(ServerId(i)) {
            if self.enc_powers[e.index()] + delta > (1.0 - b_enc) * self.ctx.cap_enc[e.index()] {
                return false;
            }
        }
        // Constraint (5): buffered group budget.
        self.group_power + delta <= (1.0 - b_grp) * self.ctx.cap_grp
    }

    /// Score of placing VM `vm` (with overheaded demand `extra`) on `i`:
    /// marginal estimated power plus migration cost if `i` is not the
    /// VM's current host. Lower is better.
    fn score(&self, vm: VmId, i: usize, extra: f64) -> f64 {
        let marginal = self.server_power(i, self.loads[i] + extra) - self.powers[i];
        let migration = if self.ctx.current.host_of(vm) == ServerId(i) {
            0.0
        } else {
            self.cfg.migration_weight * extra * self.ctx.models[i].max_power()
        };
        let objective = self.cfg.objective.load_penalty(
            &self.ctx.models[i],
            self.loads[i],
            self.loads[i] + extra,
        );
        marginal + migration + objective
    }

    fn place(&mut self, i: usize, extra: f64) {
        let new_load = self.loads[i] + extra;
        let new_power = self.server_power(i, new_load);
        let delta = new_power - self.powers[i];
        self.loads[i] = new_load;
        self.powers[i] = new_power;
        self.add_level_power(ServerId(i), delta);
    }
}

/// Runs the greedy packing and assembles the plan.
///
/// `demands` are per-VM demand estimates in max-capacity fractions
/// (without `α_V`, which this function applies). `buffers` are the current
/// `(b_loc, b_enc, b_grp)` safety buffers.
pub fn greedy_pack(
    demands: &[f64],
    ctx: &ClusterContext<'_>,
    est: &PowerEstimator,
    cfg: &VmcConfig,
    buffers: (f64, f64, f64),
) -> VmcPlan {
    let n = ctx.num_servers();
    let mut state = PackState::new(ctx, est, cfg, buffers);
    // First-fit-decreasing order.
    let mut order: Vec<usize> = (0..demands.len()).collect();
    order.sort_by(|&a, &b| {
        demands[b]
            .partial_cmp(&demands[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut hosts: Vec<ServerId> = vec![ServerId(0); demands.len()];
    let mut forced = 0usize;
    for j in order {
        let vm = VmId(j);
        let extra = demands[j].max(0.0) * (1.0 + cfg.alpha_v);
        let mut best: Option<(f64, usize)> = None;
        for i in 0..n {
            if !state.fits(i, extra) {
                continue;
            }
            let s = match cfg.algorithm {
                crate::vmc::PackingAlgorithm::MarginalPower => state.score(vm, i, extra),
                // First feasible by index: a strictly increasing key.
                crate::vmc::PackingAlgorithm::FirstFitDecreasing => i as f64,
                // Least remaining headroom after placement.
                crate::vmc::PackingAlgorithm::BestFitDecreasing => {
                    cfg.headroom - (state.loads[i] + extra)
                }
            };
            if best.map(|(bs, _)| s < bs).unwrap_or(true) {
                best = Some((s, i));
            }
            if matches!(
                cfg.algorithm,
                crate::vmc::PackingAlgorithm::FirstFitDecreasing
            ) {
                break; // first feasible server wins outright
            }
        }
        let target = match best {
            Some((_, i)) => i,
            None => {
                // Constraint (6) is absolute — every VM must be placed.
                // Fall back to the least-loaded *already-used* server with
                // capacity room (preserving consolidation), else the
                // least-loaded server overall; the plan is flagged
                // infeasible either way.
                forced += 1;
                let least_loaded = |pred: &dyn Fn(usize) -> bool| {
                    (0..n).filter(|&i| pred(i)).min_by(|&a, &b| {
                        state.loads[a]
                            .partial_cmp(&state.loads[b])
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                };
                least_loaded(&|i| state.loads[i] > 0.0 && state.loads[i] + extra <= 1.0)
                    .or_else(|| least_loaded(&|_| true))
                    .expect("at least one server")
            }
        };
        state.place(target, extra);
        hosts[j] = ServerId(target);
    }

    assemble_plan(ctx, cfg, hosts, state.group_power, forced)
}

/// Builds a [`VmcPlan`] from chosen hosts: derives migrations against the
/// current placement, and power-on/off lists from plan usage.
pub(crate) fn assemble_plan(
    ctx: &ClusterContext<'_>,
    cfg: &VmcConfig,
    hosts: Vec<ServerId>,
    estimated_power_watts: f64,
    forced_placements: usize,
) -> VmcPlan {
    let placement = Placement::from_hosts(hosts);
    let migrations = ctx.current.diff(&placement);
    let mut used = vec![false; ctx.num_servers()];
    for (_, s) in placement.iter() {
        used[s.index()] = true;
    }
    // Servers gaining VMs must be on; the engine rejects migrations to off
    // servers, so surface every used target.
    let power_on: Vec<ServerId> = migrations
        .iter()
        .map(|m| m.to)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let power_off: Vec<ServerId> = if cfg.allow_turn_off {
        (0..ctx.num_servers())
            .filter(|&i| !used[i])
            .map(ServerId)
            .collect()
    } else {
        Vec::new()
    };
    VmcPlan {
        placement,
        power_on,
        power_off,
        migrations,
        estimated_power_watts,
        forced_placements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nps_models::ServerModel;
    use nps_sim::Topology;

    struct Fixture {
        topo: Topology,
        models: Vec<ServerModel>,
        current: Placement,
        cap_loc: Vec<f64>,
        cap_enc: Vec<f64>,
        cap_grp: f64,
    }

    impl Fixture {
        fn new(servers: usize, vms: usize) -> Self {
            let model = ServerModel::blade_a();
            let max = model.max_power();
            Self {
                topo: Topology::builder().standalone(servers).build(),
                models: vec![model; servers],
                current: Placement::one_per_server(vms, servers),
                cap_loc: vec![0.9 * max; servers],
                cap_enc: vec![],
                cap_grp: 0.8 * max * servers as f64,
            }
        }

        fn ctx(&self) -> ClusterContext<'_> {
            ClusterContext {
                topo: &self.topo,
                models: &self.models,
                current: &self.current,
                cap_loc: &self.cap_loc,
                cap_enc: &self.cap_enc,
                cap_grp: self.cap_grp,
            }
        }
    }

    fn pack(demands: &[f64], fx: &Fixture, cfg: &VmcConfig) -> VmcPlan {
        greedy_pack(
            demands,
            &fx.ctx(),
            &PowerEstimator::default(),
            cfg,
            (0.0, 0.0, 0.0),
        )
    }

    #[test]
    fn light_workloads_consolidate_onto_few_servers() {
        let fx = Fixture::new(4, 4);
        let plan = pack(&[0.15, 0.15, 0.15, 0.15], &fx, &VmcConfig::default());
        assert!(plan.is_feasible());
        let used = plan.placement.used_servers().len();
        assert_eq!(used, 1, "0.66 total load fits one server");
        assert_eq!(plan.power_off.len(), 3);
    }

    #[test]
    fn heavy_workloads_spread_across_servers() {
        let mut fx = Fixture::new(4, 4);
        fx.cap_grp = 1e9; // group budget not under test here
        let plan = pack(&[0.6, 0.6, 0.6, 0.6], &fx, &VmcConfig::default());
        assert!(plan.is_feasible());
        assert_eq!(plan.placement.used_servers().len(), 4);
        assert!(plan.power_off.is_empty());
    }

    #[test]
    fn vm_too_hot_for_local_budget_is_forced() {
        // A VM whose steady-state power alone exceeds every buffered local
        // budget cannot be placed feasibly; the plan must still place it
        // and flag the violation.
        let fx = Fixture::new(2, 1);
        let plan = pack(&[0.85], &fx, &VmcConfig::default());
        assert!(!plan.is_feasible());
        assert_eq!(plan.forced_placements, 1);
    }

    #[test]
    fn capacity_constraint_respects_headroom() {
        let fx = Fixture::new(2, 2);
        let cfg = VmcConfig {
            headroom: 0.5,
            ..VmcConfig::default()
        };
        // Each VM is 0.3·1.1 = 0.33; two on one server = 0.66 > 0.5.
        let plan = pack(&[0.3, 0.3], &fx, &cfg);
        assert!(plan.is_feasible());
        assert_eq!(plan.placement.used_servers().len(), 2);
    }

    #[test]
    fn every_vm_is_placed_even_when_infeasible() {
        let fx = Fixture::new(2, 5);
        let plan = pack(&[0.8, 0.8, 0.8, 0.8, 0.8], &fx, &VmcConfig::default());
        assert!(!plan.is_feasible());
        assert_eq!(plan.placement.num_vms(), 5);
        assert!(plan.forced_placements > 0);
    }

    #[test]
    fn group_budget_limits_consolidation() {
        let mut fx = Fixture::new(3, 3);
        // Group cap only admits about one fully busy server: forces
        // either spreading at low power or infeasibility flags.
        fx.cap_grp = 130.0;
        let plan = pack(&[0.4, 0.4, 0.4], &fx, &VmcConfig::default());
        // Estimated power within the buffered group budget whenever the
        // plan is feasible.
        if plan.is_feasible() {
            assert!(plan.estimated_power_watts <= 130.0 + 1e-9);
        }
    }

    #[test]
    fn local_budget_excludes_hot_servers() {
        let mut fx = Fixture::new(2, 2);
        fx.cap_loc[0] = 70.0; // server 0 only fits light loads
        let plan = pack(&[0.6, 0.2], &fx, &VmcConfig::default());
        assert!(plan.is_feasible());
        // The heavy VM cannot land on server 0 (cap 70 W < its ~100 W
        // steady-state draw).
        assert_eq!(plan.placement.host_of(VmId(0)), ServerId(1));
    }

    #[test]
    fn disabling_budget_constraints_ignores_caps() {
        let mut fx = Fixture::new(2, 2);
        fx.cap_loc = vec![10.0, 10.0]; // impossible caps
        fx.cap_grp = 10.0;
        let cfg = VmcConfig {
            use_budget_constraints: false,
            ..VmcConfig::default()
        };
        let plan = pack(&[0.3, 0.3], &fx, &cfg);
        assert!(plan.is_feasible(), "without budget checks packing succeeds");
    }

    #[test]
    fn buffers_make_packing_more_conservative() {
        let mut fx = Fixture::new(4, 4);
        fx.cap_grp = 1e9; // isolate the local-buffer effect
        let demands = [0.25, 0.25, 0.25, 0.25];
        let loose = greedy_pack(
            &demands,
            &fx.ctx(),
            &PowerEstimator::default(),
            &VmcConfig::default(),
            (0.0, 0.0, 0.0),
        );
        let tight = greedy_pack(
            &demands,
            &fx.ctx(),
            &PowerEstimator::default(),
            &VmcConfig::default(),
            (0.3, 0.3, 0.3),
        );
        assert!(
            tight.placement.used_servers().len() > loose.placement.used_servers().len(),
            "wide buffers must force a more conservative packing: tight {} vs loose {}",
            tight.placement.used_servers().len(),
            loose.placement.used_servers().len()
        );
    }

    #[test]
    fn no_turn_off_keeps_power_off_list_empty() {
        let fx = Fixture::new(4, 4);
        let cfg = VmcConfig {
            allow_turn_off: false,
            ..VmcConfig::default()
        };
        let plan = pack(&[0.1, 0.1, 0.1, 0.1], &fx, &cfg);
        assert!(plan.power_off.is_empty());
    }

    #[test]
    fn migration_weight_prefers_current_hosts_on_ties() {
        let fx = Fixture::new(2, 2);
        // Both demands heavy enough that consolidation saves nothing;
        // each VM should stay home.
        let plan = pack(&[0.7, 0.7], &fx, &VmcConfig::default());
        assert_eq!(plan.num_migrations(), 0);
    }

    #[test]
    fn all_packing_algorithms_satisfy_constraints() {
        use crate::vmc::PackingAlgorithm;
        let fx = Fixture::new(6, 6);
        let demands = [0.3, 0.25, 0.2, 0.15, 0.28, 0.22];
        for algorithm in PackingAlgorithm::ALL {
            let cfg = VmcConfig {
                algorithm,
                ..VmcConfig::default()
            };
            let plan = pack(&demands, &fx, &cfg);
            assert_eq!(plan.placement.num_vms(), 6, "{}", algorithm.name());
            // Capacity constraint per server.
            let mut loads = vec![0.0; 6];
            for (vm, host) in plan.placement.iter() {
                loads[host.index()] += demands[vm.index()] * 1.1;
            }
            if plan.is_feasible() {
                for l in &loads {
                    assert!(*l <= cfg.headroom + 1e-9, "{}", algorithm.name());
                }
            }
        }
    }

    #[test]
    fn marginal_power_never_costs_more_than_first_fit() {
        use crate::vmc::PackingAlgorithm;
        let mut fx = Fixture::new(8, 8);
        fx.cap_grp = 1e9;
        let demands = [0.3, 0.1, 0.25, 0.18, 0.22, 0.12, 0.28, 0.08];
        let run = |algorithm| {
            pack(
                &demands,
                &fx,
                &VmcConfig {
                    algorithm,
                    migration_weight: 0.0, // compare pure power quality
                    ..VmcConfig::default()
                },
            )
            .estimated_power_watts
        };
        let mp = run(PackingAlgorithm::MarginalPower);
        let ff = run(PackingAlgorithm::FirstFitDecreasing);
        assert!(
            mp <= ff + 1e-6,
            "marginal-power {mp:.1} W should not exceed first-fit {ff:.1} W"
        );
    }

    #[test]
    fn energy_delay_objective_spreads_load_wider() {
        use crate::vmc::Objective;
        let mut fx = Fixture::new(6, 6);
        fx.cap_grp = 1e9;
        let demands = [0.22, 0.22, 0.22, 0.22, 0.22, 0.22];
        let power = pack(&demands, &fx, &VmcConfig::default());
        let ed_cfg = VmcConfig {
            objective: Objective::EnergyDelay,
            ..VmcConfig::default()
        };
        let ed = pack(&demands, &fx, &ed_cfg);
        assert!(
            ed.placement.used_servers().len() >= power.placement.used_servers().len(),
            "energy-delay ({}) should not pack tighter than power ({})",
            ed.placement.used_servers().len(),
            power.placement.used_servers().len()
        );
    }

    #[test]
    fn migrations_transform_current_into_target() {
        let fx = Fixture::new(4, 4);
        let plan = pack(&[0.1, 0.1, 0.1, 0.1], &fx, &VmcConfig::default());
        let mut p = fx.current.clone();
        for m in &plan.migrations {
            p.assign(m.vm, m.to);
        }
        assert_eq!(p, plan.placement);
    }
}

//! Greedy bin-packing solver for the placement program (the paper's
//! chosen approximation: *"we use a greedy bin-packing algorithm to search
//! for a new placement solution that satisfies all the constraints"*).
//!
//! First-fit-decreasing with a power-aware scoring rule: VMs in decreasing
//! demand order; each VM goes to the feasible server minimizing
//! *marginal estimated power + migration cost*. Feasibility covers the
//! capacity constraint (2) and — when enabled — the buffered budget
//! constraints (3)–(5).

use nps_models::ServerModel;
use nps_sim::{Placement, ServerId, VmId};

use crate::context::ClusterContext;
use crate::estimate::PowerEstimator;
use crate::plan::VmcPlan;
use crate::vmc::VmcConfig;

/// Incremental state of a packing in progress.
struct PackState<'a> {
    ctx: &'a ClusterContext<'a>,
    est: &'a PowerEstimator,
    cfg: &'a VmcConfig,
    buffers: (f64, f64, f64),
    /// Assigned load per server (max-capacity units, incl. `α_V`).
    loads: Vec<f64>,
    /// Estimated power per server under the plan (0 for empty +
    /// turn-off).
    powers: Vec<f64>,
    /// Running per-enclosure power estimate.
    enc_powers: Vec<f64>,
    /// Running group power estimate.
    group_power: f64,
    /// Certified local-budget reject threshold per *used* server: any
    /// `new_load >= loc_reject[i]` is guaranteed to fail constraint (3)'s
    /// `power(new_load) > (1 - b_loc)·cap_loc[i]` check, so [`Self::fits`]
    /// can skip the power-curve interpolation — the dominant cost of a
    /// large pack. Thresholds carry a 1e-6 W certification margin, vastly
    /// wider than any float wobble of the (mathematically monotone) load →
    /// power curve, and loads *below* the threshold always take the exact
    /// original check — so the filter can never change a packing decision.
    /// `+∞` (never fires) when budget constraints are disabled.
    loc_reject: Vec<f64>,
}

/// Safety margin (watts) for [`PackState::loc_reject`] thresholds. The
/// estimator's load → power curve is mathematically non-decreasing; float
/// evaluation can wobble by at most a few ulps of a ~100 W value
/// (~1e-13 W), so a 1e-6 W margin certifies every fast rejection.
const LOC_REJECT_MARGIN_W: f64 = 1e-6;

/// Smallest load certified to exceed `eff_cap` under `est.power(model, ·)`
/// for every load at or above it, or `+∞` if no load in `[0, 2]` does.
fn loc_reject_threshold(est: &PowerEstimator, model: &ServerModel, eff_cap: f64) -> f64 {
    let over = |load: f64| est.power(model, load) > eff_cap + LOC_REJECT_MARGIN_W;
    if over(0.0) {
        return 0.0;
    }
    // Reachable loads are bounded by the capacity limit (≤ 1); 2.0 is a
    // safely unreachable upper end.
    if !over(2.0) {
        return f64::INFINITY;
    }
    // Bisect to the boundary; keep the upper end, where `over` held.
    let (mut lo, mut hi) = (0.0f64, 2.0f64);
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if over(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

impl<'a> PackState<'a> {
    fn new(
        ctx: &'a ClusterContext<'a>,
        est: &'a PowerEstimator,
        cfg: &'a VmcConfig,
        buffers: (f64, f64, f64),
    ) -> Self {
        let n = ctx.num_servers();
        let loc_reject = if cfg.use_budget_constraints {
            // Memoize by (model identity, static cap): fleets have a
            // handful of distinct (model, cap) pairs.
            let mut memo: Vec<(&ServerModel, u64, f64)> = Vec::new();
            (0..n)
                .map(|i| {
                    let (model, cap_bits) = (&ctx.models[i], ctx.cap_loc[i].to_bits());
                    match memo.iter().find(|(m, c, _)| *c == cap_bits && *m == model) {
                        Some(&(_, _, t)) => t,
                        None => {
                            let eff_cap = (1.0 - buffers.0) * ctx.cap_loc[i];
                            let t = loc_reject_threshold(est, model, eff_cap);
                            memo.push((model, cap_bits, t));
                            t
                        }
                    }
                })
                .collect()
        } else {
            vec![f64::INFINITY; n]
        };
        let mut state = Self {
            ctx,
            est,
            cfg,
            buffers,
            loads: vec![0.0; n],
            powers: vec![0.0; n],
            enc_powers: vec![0.0; ctx.topo.num_enclosures()],
            group_power: 0.0,
            loc_reject,
        };
        // Empty servers that cannot be turned off still draw their parked
        // idle power.
        if !cfg.allow_turn_off {
            for i in 0..n {
                let p = est.power(&ctx.models[i], 0.0);
                state.powers[i] = p;
                state.add_level_power(ServerId(i), p);
            }
        }
        state
    }

    fn add_level_power(&mut self, s: ServerId, delta: f64) {
        if let Some(e) = self.ctx.enclosure_of(s) {
            self.enc_powers[e.index()] += delta;
        }
        self.group_power += delta;
    }

    /// Power the server would draw carrying `load` under this plan.
    fn server_power(&self, i: usize, load: f64) -> f64 {
        if load <= 0.0 && self.cfg.allow_turn_off {
            0.0
        } else {
            self.est.power(&self.ctx.models[i], load)
        }
    }

    /// Whether placing `extra` load on server `i` keeps all constraints:
    /// `Some(new_power)` — the server's post-placement power estimate,
    /// which the scorer reuses instead of re-interpolating — when it
    /// does, `None` otherwise.
    fn feasible_power(&self, i: usize, extra: f64) -> Option<f64> {
        let new_load = self.loads[i] + extra;
        // Constraint (2): capacity with headroom r̄. A VM whose demand
        // alone exceeds r̄ may still get a *dedicated* server up to full
        // capacity — the alternative would drop it, violating the
        // absolute constraint (6).
        let limit = if self.loads[i] <= 0.0 {
            self.cfg.headroom.max(1.0_f64.min(extra))
        } else {
            self.cfg.headroom
        };
        if new_load > limit {
            return None;
        }
        if !self.cfg.use_budget_constraints {
            return Some(self.server_power(i, new_load));
        }
        // Certified fast path for used servers: loads at or above the
        // precomputed threshold are guaranteed to fail the buffered local
        // budget below, skipping the power interpolation.
        if self.loads[i] > 0.0 && new_load >= self.loc_reject[i] {
            return None;
        }
        let (b_loc, b_enc, b_grp) = self.buffers;
        let new_power = self.server_power(i, new_load);
        // Constraint (3): buffered local budget. Buffers moderate how
        // *aggressively* servers are packed; they never block an empty
        // server from accepting its first VM (which is always checked
        // against the full static cap) — otherwise high violation
        // feedback could make every server unplaceable and deadlock the
        // packing into forced placements.
        let eff_cap = if self.loads[i] <= 0.0 {
            self.ctx.cap_loc[i]
        } else {
            (1.0 - b_loc) * self.ctx.cap_loc[i]
        };
        if new_power > eff_cap {
            return None;
        }
        let delta = new_power - self.powers[i];
        // Constraint (4): buffered enclosure budget.
        if let Some(e) = self.ctx.enclosure_of(ServerId(i)) {
            if self.enc_powers[e.index()] + delta > (1.0 - b_enc) * self.ctx.cap_enc[e.index()] {
                return None;
            }
        }
        // Constraint (5): buffered group budget.
        if self.group_power + delta <= (1.0 - b_grp) * self.ctx.cap_grp {
            Some(new_power)
        } else {
            None
        }
    }

    /// Score of placing VM `vm` (with overheaded demand `extra`) on `i`:
    /// marginal estimated power plus migration cost if `i` is not the
    /// VM's current host. Lower is better. `new_power` is the
    /// post-placement power [`Self::feasible_power`] already computed for
    /// this exact `(i, extra)` — the same value the old standalone scorer
    /// re-derived.
    fn score(&self, vm: VmId, i: usize, extra: f64, new_power: f64) -> f64 {
        let marginal = new_power - self.powers[i];
        let migration = if self.ctx.current.host_of(vm) == ServerId(i) {
            0.0
        } else {
            self.cfg.migration_weight * extra * self.ctx.models[i].max_power()
        };
        let objective = self.cfg.objective.load_penalty(
            &self.ctx.models[i],
            self.loads[i],
            self.loads[i] + extra,
        );
        marginal + migration + objective
    }

    fn place(&mut self, i: usize, extra: f64) {
        let new_load = self.loads[i] + extra;
        let new_power = self.server_power(i, new_load);
        let delta = new_power - self.powers[i];
        self.loads[i] = new_load;
        self.powers[i] = new_power;
        self.add_level_power(ServerId(i), delta);
    }
}

/// Interchangeable-server buckets: empty servers in the same enclosure
/// with the same model and the same static cap are *exactly*
/// interchangeable under every constraint and every scoring rule (their
/// feasibility checks read the same caps and the same running
/// enclosure/group totals, and their scores evaluate the same model at
/// the same load), so only the lowest-index empty server of each bucket
/// can ever win the old full scan's strict-`<` argmin. The per-VM scan
/// therefore only needs *used* servers, one empty representative per
/// bucket, and the VM's current host — shrinking the dominant
/// O(VMs × servers) cost of a pack to O(VMs × (used + buckets)) with a
/// bit-identical result.
struct Buckets {
    /// Bucket ordinal of each server.
    of: Vec<usize>,
    /// Members of each bucket, ascending server index.
    members: Vec<Vec<usize>>,
    /// Per-bucket cursor: `members[b][cursor[b]..]` are still empty (the
    /// representative is the first of them). Loads only ever grow during
    /// a pack, so cursors only advance.
    cursor: Vec<usize>,
}

impl Buckets {
    fn new(ctx: &ClusterContext<'_>) -> Self {
        let n = ctx.num_servers();
        // Model classes by structural equality; fleets have a handful of
        // distinct models, so the linear probe is cheap.
        let mut distinct: Vec<&nps_models::ServerModel> = Vec::new();
        let mut key_to_bucket = std::collections::BTreeMap::new();
        let mut of = Vec::with_capacity(n);
        let mut members: Vec<Vec<usize>> = Vec::new();
        for i in 0..n {
            let model = &ctx.models[i];
            let class = match distinct.iter().position(|m| *m == model) {
                Some(c) => c,
                None => {
                    distinct.push(model);
                    distinct.len() - 1
                }
            };
            let enc = ctx.enclosure_of(ServerId(i)).map_or(0, |e| e.index() + 1);
            let key = (enc, class, ctx.cap_loc[i].to_bits());
            let b = *key_to_bucket.entry(key).or_insert_with(|| {
                members.push(Vec::new());
                members.len() - 1
            });
            of.push(b);
            members[b].push(i);
        }
        let cursor = vec![0; members.len()];
        Self {
            of,
            members,
            cursor,
        }
    }

    /// Marks server `i` as used: advances its bucket's cursor past every
    /// no-longer-empty member.
    fn mark_used(&mut self, i: usize, loads: &[f64]) {
        let b = self.of[i];
        let m = &self.members[b];
        let c = &mut self.cursor[b];
        while *c < m.len() && loads[m[*c]] > 0.0 {
            *c += 1;
        }
    }

    /// The current empty representative of each bucket.
    fn reps(&self) -> impl Iterator<Item = usize> + '_ {
        self.members
            .iter()
            .zip(&self.cursor)
            .filter_map(|(m, &c)| m.get(c).copied())
    }
}

/// Runs the greedy packing and assembles the plan.
///
/// `demands` are per-VM demand estimates in max-capacity fractions
/// (without `α_V`, which this function applies). `buffers` are the current
/// `(b_loc, b_enc, b_grp)` safety buffers.
pub fn greedy_pack(
    demands: &[f64],
    ctx: &ClusterContext<'_>,
    est: &PowerEstimator,
    cfg: &VmcConfig,
    buffers: (f64, f64, f64),
) -> VmcPlan {
    let n = ctx.num_servers();
    let mut state = PackState::new(ctx, est, cfg, buffers);
    // First-fit-decreasing order.
    let mut order: Vec<usize> = (0..demands.len()).collect();
    order.sort_by(|&a, &b| {
        demands[b]
            .partial_cmp(&demands[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut buckets = Buckets::new(ctx);
    let mut used: Vec<usize> = Vec::new();
    let mut hosts: Vec<ServerId> = vec![ServerId(0); demands.len()];
    let mut forced = 0usize;
    for j in order {
        let vm = VmId(j);
        let extra = demands[j].max(0.0) * (1.0 + cfg.alpha_v);
        // Argmin by (key, index) over the pruned candidate set. The
        // explicit index tie-break reproduces the full ascending scan's
        // strict-`<` rule (lowest index among equal keys) even though
        // candidates arrive out of index order.
        let mut best: Option<(f64, usize)> = None;
        let host = ctx.current.host_of(vm).index();
        let candidates = used
            .iter()
            .copied()
            .chain(buckets.reps())
            .chain(std::iter::once(host));
        for i in candidates {
            let Some(new_power) = state.feasible_power(i, extra) else {
                continue;
            };
            let s = match cfg.algorithm {
                crate::vmc::PackingAlgorithm::MarginalPower => state.score(vm, i, extra, new_power),
                // Lowest feasible index: an index-valued key.
                crate::vmc::PackingAlgorithm::FirstFitDecreasing => i as f64,
                // Least remaining headroom after placement.
                crate::vmc::PackingAlgorithm::BestFitDecreasing => {
                    cfg.headroom - (state.loads[i] + extra)
                }
            };
            if best
                .map(|(bs, bi)| s < bs || (s == bs && i < bi))
                .unwrap_or(true)
            {
                best = Some((s, i));
            }
        }
        let target = match best {
            Some((_, i)) => i,
            None => {
                // Constraint (6) is absolute — every VM must be placed.
                // Fall back to the least-loaded *already-used* server with
                // capacity room (preserving consolidation), else the
                // least-loaded server overall; the plan is flagged
                // infeasible either way.
                forced += 1;
                let least_loaded = |pred: &dyn Fn(usize) -> bool| {
                    (0..n).filter(|&i| pred(i)).min_by(|&a, &b| {
                        state.loads[a]
                            .partial_cmp(&state.loads[b])
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                };
                least_loaded(&|i| state.loads[i] > 0.0 && state.loads[i] + extra <= 1.0)
                    .or_else(|| least_loaded(&|_| true))
                    .expect("at least one server")
            }
        };
        let was_empty = state.loads[target] <= 0.0;
        state.place(target, extra);
        if was_empty && state.loads[target] > 0.0 {
            used.push(target);
            buckets.mark_used(target, &state.loads);
        }
        hosts[j] = ServerId(target);
    }

    assemble_plan(ctx, cfg, hosts, state.group_power, forced)
}

/// Builds a [`VmcPlan`] from chosen hosts: derives migrations against the
/// current placement, and power-on/off lists from plan usage.
pub(crate) fn assemble_plan(
    ctx: &ClusterContext<'_>,
    cfg: &VmcConfig,
    hosts: Vec<ServerId>,
    estimated_power_watts: f64,
    forced_placements: usize,
) -> VmcPlan {
    let placement = Placement::from_hosts(hosts);
    let migrations = ctx.current.diff(&placement);
    let mut used = vec![false; ctx.num_servers()];
    for (_, s) in placement.iter() {
        used[s.index()] = true;
    }
    // Servers gaining VMs must be on; the engine rejects migrations to off
    // servers, so surface every used target.
    let power_on: Vec<ServerId> = migrations
        .iter()
        .map(|m| m.to)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let power_off: Vec<ServerId> = if cfg.allow_turn_off {
        (0..ctx.num_servers())
            .filter(|&i| !used[i])
            .map(ServerId)
            .collect()
    } else {
        Vec::new()
    };
    VmcPlan {
        placement,
        power_on,
        power_off,
        migrations,
        estimated_power_watts,
        forced_placements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nps_models::ServerModel;
    use nps_sim::Topology;

    struct Fixture {
        topo: Topology,
        models: Vec<ServerModel>,
        current: Placement,
        cap_loc: Vec<f64>,
        cap_enc: Vec<f64>,
        cap_grp: f64,
    }

    impl Fixture {
        fn new(servers: usize, vms: usize) -> Self {
            let model = ServerModel::blade_a();
            let max = model.max_power();
            Self {
                topo: Topology::builder().standalone(servers).build(),
                models: vec![model; servers],
                current: Placement::one_per_server(vms, servers),
                cap_loc: vec![0.9 * max; servers],
                cap_enc: vec![],
                cap_grp: 0.8 * max * servers as f64,
            }
        }

        fn ctx(&self) -> ClusterContext<'_> {
            ClusterContext {
                topo: &self.topo,
                models: &self.models,
                current: &self.current,
                cap_loc: &self.cap_loc,
                cap_enc: &self.cap_enc,
                cap_grp: self.cap_grp,
            }
        }
    }

    fn pack(demands: &[f64], fx: &Fixture, cfg: &VmcConfig) -> VmcPlan {
        greedy_pack(
            demands,
            &fx.ctx(),
            &PowerEstimator::default(),
            cfg,
            (0.0, 0.0, 0.0),
        )
    }

    #[test]
    fn light_workloads_consolidate_onto_few_servers() {
        let fx = Fixture::new(4, 4);
        let plan = pack(&[0.15, 0.15, 0.15, 0.15], &fx, &VmcConfig::default());
        assert!(plan.is_feasible());
        let used = plan.placement.used_servers().len();
        assert_eq!(used, 1, "0.66 total load fits one server");
        assert_eq!(plan.power_off.len(), 3);
    }

    #[test]
    fn heavy_workloads_spread_across_servers() {
        let mut fx = Fixture::new(4, 4);
        fx.cap_grp = 1e9; // group budget not under test here
        let plan = pack(&[0.6, 0.6, 0.6, 0.6], &fx, &VmcConfig::default());
        assert!(plan.is_feasible());
        assert_eq!(plan.placement.used_servers().len(), 4);
        assert!(plan.power_off.is_empty());
    }

    #[test]
    fn vm_too_hot_for_local_budget_is_forced() {
        // A VM whose steady-state power alone exceeds every buffered local
        // budget cannot be placed feasibly; the plan must still place it
        // and flag the violation.
        let fx = Fixture::new(2, 1);
        let plan = pack(&[0.85], &fx, &VmcConfig::default());
        assert!(!plan.is_feasible());
        assert_eq!(plan.forced_placements, 1);
    }

    #[test]
    fn capacity_constraint_respects_headroom() {
        let fx = Fixture::new(2, 2);
        let cfg = VmcConfig {
            headroom: 0.5,
            ..VmcConfig::default()
        };
        // Each VM is 0.3·1.1 = 0.33; two on one server = 0.66 > 0.5.
        let plan = pack(&[0.3, 0.3], &fx, &cfg);
        assert!(plan.is_feasible());
        assert_eq!(plan.placement.used_servers().len(), 2);
    }

    #[test]
    fn every_vm_is_placed_even_when_infeasible() {
        let fx = Fixture::new(2, 5);
        let plan = pack(&[0.8, 0.8, 0.8, 0.8, 0.8], &fx, &VmcConfig::default());
        assert!(!plan.is_feasible());
        assert_eq!(plan.placement.num_vms(), 5);
        assert!(plan.forced_placements > 0);
    }

    #[test]
    fn group_budget_limits_consolidation() {
        let mut fx = Fixture::new(3, 3);
        // Group cap only admits about one fully busy server: forces
        // either spreading at low power or infeasibility flags.
        fx.cap_grp = 130.0;
        let plan = pack(&[0.4, 0.4, 0.4], &fx, &VmcConfig::default());
        // Estimated power within the buffered group budget whenever the
        // plan is feasible.
        if plan.is_feasible() {
            assert!(plan.estimated_power_watts <= 130.0 + 1e-9);
        }
    }

    #[test]
    fn local_budget_excludes_hot_servers() {
        let mut fx = Fixture::new(2, 2);
        fx.cap_loc[0] = 70.0; // server 0 only fits light loads
        let plan = pack(&[0.6, 0.2], &fx, &VmcConfig::default());
        assert!(plan.is_feasible());
        // The heavy VM cannot land on server 0 (cap 70 W < its ~100 W
        // steady-state draw).
        assert_eq!(plan.placement.host_of(VmId(0)), ServerId(1));
    }

    #[test]
    fn disabling_budget_constraints_ignores_caps() {
        let mut fx = Fixture::new(2, 2);
        fx.cap_loc = vec![10.0, 10.0]; // impossible caps
        fx.cap_grp = 10.0;
        let cfg = VmcConfig {
            use_budget_constraints: false,
            ..VmcConfig::default()
        };
        let plan = pack(&[0.3, 0.3], &fx, &cfg);
        assert!(plan.is_feasible(), "without budget checks packing succeeds");
    }

    #[test]
    fn buffers_make_packing_more_conservative() {
        let mut fx = Fixture::new(4, 4);
        fx.cap_grp = 1e9; // isolate the local-buffer effect
        let demands = [0.25, 0.25, 0.25, 0.25];
        let loose = greedy_pack(
            &demands,
            &fx.ctx(),
            &PowerEstimator::default(),
            &VmcConfig::default(),
            (0.0, 0.0, 0.0),
        );
        let tight = greedy_pack(
            &demands,
            &fx.ctx(),
            &PowerEstimator::default(),
            &VmcConfig::default(),
            (0.3, 0.3, 0.3),
        );
        assert!(
            tight.placement.used_servers().len() > loose.placement.used_servers().len(),
            "wide buffers must force a more conservative packing: tight {} vs loose {}",
            tight.placement.used_servers().len(),
            loose.placement.used_servers().len()
        );
    }

    #[test]
    fn no_turn_off_keeps_power_off_list_empty() {
        let fx = Fixture::new(4, 4);
        let cfg = VmcConfig {
            allow_turn_off: false,
            ..VmcConfig::default()
        };
        let plan = pack(&[0.1, 0.1, 0.1, 0.1], &fx, &cfg);
        assert!(plan.power_off.is_empty());
    }

    #[test]
    fn migration_weight_prefers_current_hosts_on_ties() {
        let fx = Fixture::new(2, 2);
        // Both demands heavy enough that consolidation saves nothing;
        // each VM should stay home.
        let plan = pack(&[0.7, 0.7], &fx, &VmcConfig::default());
        assert_eq!(plan.num_migrations(), 0);
    }

    #[test]
    fn all_packing_algorithms_satisfy_constraints() {
        use crate::vmc::PackingAlgorithm;
        let fx = Fixture::new(6, 6);
        let demands = [0.3, 0.25, 0.2, 0.15, 0.28, 0.22];
        for algorithm in PackingAlgorithm::ALL {
            let cfg = VmcConfig {
                algorithm,
                ..VmcConfig::default()
            };
            let plan = pack(&demands, &fx, &cfg);
            assert_eq!(plan.placement.num_vms(), 6, "{}", algorithm.name());
            // Capacity constraint per server.
            let mut loads = vec![0.0; 6];
            for (vm, host) in plan.placement.iter() {
                loads[host.index()] += demands[vm.index()] * 1.1;
            }
            if plan.is_feasible() {
                for l in &loads {
                    assert!(*l <= cfg.headroom + 1e-9, "{}", algorithm.name());
                }
            }
        }
    }

    #[test]
    fn marginal_power_never_costs_more_than_first_fit() {
        use crate::vmc::PackingAlgorithm;
        let mut fx = Fixture::new(8, 8);
        fx.cap_grp = 1e9;
        let demands = [0.3, 0.1, 0.25, 0.18, 0.22, 0.12, 0.28, 0.08];
        let run = |algorithm| {
            pack(
                &demands,
                &fx,
                &VmcConfig {
                    algorithm,
                    migration_weight: 0.0, // compare pure power quality
                    ..VmcConfig::default()
                },
            )
            .estimated_power_watts
        };
        let mp = run(PackingAlgorithm::MarginalPower);
        let ff = run(PackingAlgorithm::FirstFitDecreasing);
        assert!(
            mp <= ff + 1e-6,
            "marginal-power {mp:.1} W should not exceed first-fit {ff:.1} W"
        );
    }

    #[test]
    fn energy_delay_objective_spreads_load_wider() {
        use crate::vmc::Objective;
        let mut fx = Fixture::new(6, 6);
        fx.cap_grp = 1e9;
        let demands = [0.22, 0.22, 0.22, 0.22, 0.22, 0.22];
        let power = pack(&demands, &fx, &VmcConfig::default());
        let ed_cfg = VmcConfig {
            objective: Objective::EnergyDelay,
            ..VmcConfig::default()
        };
        let ed = pack(&demands, &fx, &ed_cfg);
        assert!(
            ed.placement.used_servers().len() >= power.placement.used_servers().len(),
            "energy-delay ({}) should not pack tighter than power ({})",
            ed.placement.used_servers().len(),
            power.placement.used_servers().len()
        );
    }

    /// Reference packer: the pre-pruning full ascending scan over every
    /// server, with the original strict-`<` best tracking and the FFD
    /// early break. The pruned production path must reproduce its plans
    /// bit for bit.
    fn reference_pack(
        demands: &[f64],
        ctx: &ClusterContext<'_>,
        est: &PowerEstimator,
        cfg: &VmcConfig,
        buffers: (f64, f64, f64),
    ) -> VmcPlan {
        let n = ctx.num_servers();
        let mut state = PackState::new(ctx, est, cfg, buffers);
        // Disarm the certified local-budget fast path: the oracle must
        // take the original exact check on every candidate, so the
        // differential test covers the threshold filter too.
        state.loc_reject = vec![f64::INFINITY; n];
        let mut order: Vec<usize> = (0..demands.len()).collect();
        order.sort_by(|&a, &b| {
            demands[b]
                .partial_cmp(&demands[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut hosts: Vec<ServerId> = vec![ServerId(0); demands.len()];
        let mut forced = 0usize;
        for j in order {
            let vm = VmId(j);
            let extra = demands[j].max(0.0) * (1.0 + cfg.alpha_v);
            let mut best: Option<(f64, usize)> = None;
            for i in 0..n {
                let Some(new_power) = state.feasible_power(i, extra) else {
                    continue;
                };
                let s = match cfg.algorithm {
                    crate::vmc::PackingAlgorithm::MarginalPower => {
                        state.score(vm, i, extra, new_power)
                    }
                    crate::vmc::PackingAlgorithm::FirstFitDecreasing => i as f64,
                    crate::vmc::PackingAlgorithm::BestFitDecreasing => {
                        cfg.headroom - (state.loads[i] + extra)
                    }
                };
                if best.map(|(bs, _)| s < bs).unwrap_or(true) {
                    best = Some((s, i));
                }
                if matches!(
                    cfg.algorithm,
                    crate::vmc::PackingAlgorithm::FirstFitDecreasing
                ) {
                    break;
                }
            }
            let target = match best {
                Some((_, i)) => i,
                None => {
                    forced += 1;
                    let least_loaded = |pred: &dyn Fn(usize) -> bool| {
                        (0..n).filter(|&i| pred(i)).min_by(|&a, &b| {
                            state.loads[a]
                                .partial_cmp(&state.loads[b])
                                .unwrap_or(std::cmp::Ordering::Equal)
                        })
                    };
                    least_loaded(&|i| state.loads[i] > 0.0 && state.loads[i] + extra <= 1.0)
                        .or_else(|| least_loaded(&|_| true))
                        .expect("at least one server")
                }
            };
            state.place(target, extra);
            hosts[j] = ServerId(target);
        }
        assemble_plan(ctx, cfg, hosts, state.group_power, forced)
    }

    /// Heterogeneous fixture: two enclosures of different models plus
    /// standalone servers, mixed per-server caps — exercises every bucket
    /// key component (enclosure, model class, static cap).
    struct HeteroFixture {
        topo: Topology,
        models: Vec<ServerModel>,
        current: Placement,
        cap_loc: Vec<f64>,
        cap_enc: Vec<f64>,
        cap_grp: f64,
    }

    impl HeteroFixture {
        fn new(vms: usize) -> Self {
            let topo = Topology::builder().enclosures(2, 4).standalone(4).build();
            let n = topo.num_servers();
            let mut models = Vec::with_capacity(n);
            let mut cap_loc = Vec::with_capacity(n);
            for i in 0..n {
                let m = if i < 4 || i >= 8 && i % 2 == 0 {
                    ServerModel::blade_a()
                } else {
                    ServerModel::server_b()
                };
                // Two cap tiers inside each enclosure so same-model
                // servers can still land in different buckets.
                cap_loc.push(if i % 4 == 3 { 0.7 } else { 0.9 } * m.max_power());
                models.push(m);
            }
            let cap_enc = (0..topo.num_enclosures())
                .map(|e| {
                    topo.enclosure_servers(nps_sim::EnclosureId(e))
                        .iter()
                        .map(|s| 0.85 * models[s.index()].max_power())
                        .sum()
                })
                .collect();
            let cap_grp = 0.8 * models.iter().map(|m| m.max_power()).sum::<f64>();
            Self {
                topo,
                models,
                current: Placement::one_per_server(vms, n),
                cap_loc,
                cap_enc,
                cap_grp,
            }
        }

        fn ctx(&self) -> ClusterContext<'_> {
            ClusterContext {
                topo: &self.topo,
                models: &self.models,
                current: &self.current,
                cap_loc: &self.cap_loc,
                cap_enc: &self.cap_enc,
                cap_grp: self.cap_grp,
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        /// The pruned candidate scan must produce the exact plan of the
        /// exhaustive scan — same hosts, same estimated power bits, same
        /// forced count — on heterogeneous enclosure fleets across all
        /// three packing algorithms and buffer settings.
        #[test]
        fn pruned_scan_matches_exhaustive_reference(
            demands in proptest::collection::vec(0.0f64..0.9, 1..24),
            algo_idx in 0usize..3,
            buffers in (0.0f64..0.3, 0.0f64..0.3, 0.0f64..0.3),
        ) {
            use crate::vmc::PackingAlgorithm;
            let fx = HeteroFixture::new(demands.len());
            let cfg = VmcConfig {
                algorithm: PackingAlgorithm::ALL[algo_idx],
                ..VmcConfig::default()
            };
            let est = PowerEstimator::default();
            let pruned = greedy_pack(&demands, &fx.ctx(), &est, &cfg, buffers);
            let reference = reference_pack(&demands, &fx.ctx(), &est, &cfg, buffers);
            proptest::prop_assert_eq!(&pruned.placement, &reference.placement);
            proptest::prop_assert_eq!(
                pruned.estimated_power_watts.to_bits(),
                reference.estimated_power_watts.to_bits()
            );
            proptest::prop_assert_eq!(pruned.forced_placements, reference.forced_placements);
            proptest::prop_assert_eq!(&pruned.power_off, &reference.power_off);
            proptest::prop_assert_eq!(&pruned.migrations, &reference.migrations);
        }
    }

    #[test]
    fn migrations_transform_current_into_target() {
        let fx = Fixture::new(4, 4);
        let plan = pack(&[0.1, 0.1, 0.1, 0.1], &fx, &VmcConfig::default());
        let mut p = fx.current.clone();
        for m in &plan.migrations {
            p.assign(m.vm, m.to);
        }
        assert_eq!(p, plan.placement);
    }
}

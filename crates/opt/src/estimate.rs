//! Steady-state power estimation for candidate placements.
//!
//! The VMC's objective sums server powers *after* the nested EC/SM loops
//! settle. The paper's §3.1 notes that *"simple models ... can be used to
//! translate apparent utilization to real utilization when the power state
//! is known"*; symmetrically, we estimate post-EC power from assigned
//! load: the EC will track its utilization target `r_ref`, so a server
//! with load `L` (in max-capacity units, incl. virtualization overhead)
//! settles at frequency fraction `φ ≈ L / r_ref` and utilization
//! `r ≈ r_ref`, with power read off the continuous model envelope.

use nps_models::ServerModel;

/// Estimates steady-state server power as a function of assigned load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerEstimator {
    /// The utilization the local EC will settle the server at (the EC's
    /// `r_ref` floor, paper base 0.75).
    pub assumed_r_ref: f64,
}

impl Default for PowerEstimator {
    fn default() -> Self {
        Self {
            assumed_r_ref: 0.75,
        }
    }
}

impl PowerEstimator {
    /// Creates an estimator assuming the EC settles at `assumed_r_ref`.
    /// Pass a very small value (e.g. 0.01) for fleets without an EC:
    /// servers then stay at P0 and power follows the P0 curve directly.
    pub fn new(assumed_r_ref: f64) -> Self {
        Self {
            assumed_r_ref: assumed_r_ref.clamp(0.01, 1.0),
        }
    }

    /// Estimated watts for a server of type `model` carrying total load
    /// `load` (fraction of max capacity, including `α_V` overhead).
    /// A zero load estimates the deepest state's idle power (the EC will
    /// park the server there); loads beyond capacity saturate at P0 full
    /// power.
    pub fn power(&self, model: &ServerModel, load: f64) -> f64 {
        if load <= 0.0 {
            return model.min_active_power();
        }
        let phi_min = model.min_frequency_hz() / model.max_frequency_hz();
        let phi = (load / self.assumed_r_ref).clamp(phi_min, 1.0);
        let r = (load / phi).min(1.0);
        model.interp_power(phi, r)
    }

    /// Marginal watts of adding `extra` load on top of `load`.
    pub fn marginal_power(&self, model: &ServerModel, load: f64, extra: f64) -> f64 {
        self.power(model, load + extra) - self.power(model, load)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_load_estimates_deepest_idle() {
        let m = ServerModel::blade_a();
        let e = PowerEstimator::default();
        assert_eq!(e.power(&m, 0.0), m.min_active_power());
    }

    #[test]
    fn estimate_is_monotone_in_load() {
        let m = ServerModel::server_b();
        let e = PowerEstimator::default();
        let mut last = 0.0;
        for i in 0..=20 {
            let p = e.power(&m, i as f64 / 20.0);
            assert!(
                p >= last - 1e-9,
                "load {} power {p} < {last}",
                i as f64 / 20.0
            );
            last = p;
        }
    }

    #[test]
    fn full_load_estimates_p0_territory() {
        let m = ServerModel::blade_a();
        let e = PowerEstimator::default();
        assert!((e.power(&m, 1.0) - m.max_power()).abs() < 1e-9);
    }

    #[test]
    fn light_load_estimates_deep_state_territory() {
        let m = ServerModel::blade_a();
        let e = PowerEstimator::default();
        // load 0.3 at r_ref 0.75 → φ = 0.4 < φ_min 0.533 → deepest state,
        // util = 0.3/0.533.
        let expect = m.power(4, 0.3 / 0.533);
        assert!((e.power(&m, 0.3) - expect).abs() < 0.5);
    }

    #[test]
    fn marginal_power_is_difference() {
        let m = ServerModel::blade_a();
        let e = PowerEstimator::default();
        let d = e.marginal_power(&m, 0.4, 0.2);
        assert!((d - (e.power(&m, 0.6) - e.power(&m, 0.4))).abs() < 1e-12);
        assert!(d > 0.0);
    }

    #[test]
    fn consolidation_is_power_positive_for_high_idle_servers() {
        // Two half-loaded Server Bs cost more than one full + one off —
        // the economics behind the paper's "VMC dominates savings on high
        // idle power systems".
        let m = ServerModel::server_b();
        let e = PowerEstimator::default();
        let split = 2.0 * e.power(&m, 0.4);
        let packed = e.power(&m, 0.8); // second server off: 0 W
        assert!(packed < split);
    }
}

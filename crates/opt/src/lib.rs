//! The virtual machine controller (VMC): power-minimizing workload
//! consolidation under multi-level power budgets.
//!
//! Implements the paper's Figure 6 `(VMCs)` constrained 0-1 program:
//!
//! ```text
//! min  Σ pow_i  +  α_M · (migration cost)
//! s.t. Σ_j X_ij·r_j·(1+α_V) ≤ r̄ · capacity_i          (server capacity)
//!      pow_i      ≤ (1 − b_loc)·CAP_LOC_i              (local budgets)
//!      Σ_encl pow ≤ (1 − b_enc)·CAP_ENC_q              (enclosure budgets)
//!      Σ pow      ≤ (1 − b_grp)·CAP_GRP                (group budget)
//!      Σ_i X_ij = 1,  X_ij ∈ {0, 1}                    (every VM placed)
//! ```
//!
//! solved — as in the paper — with a **greedy bin-packing** approximation
//! ([`greedy_pack`]), plus an optional **local-search** improvement pass
//! ([`improve`]) as an extension.
//!
//! The two coordination features the paper adds to a conventional VMC
//! (§3.1) are first-class here:
//!
//! 1. demand estimates must be **real** utilization (fraction of a
//!    *full-speed* server), not apparent utilization — the caller chooses
//!    which estimates to feed in, and `nps-core` wires the ablation;
//! 2. the **budget buffers** `b_loc/b_enc/b_grp` widen on violation
//!    feedback from the SM/EM/GM, throttling consolidation aggressiveness
//!    ([`Vmc::report_violations`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod estimate;
mod greedy;
mod local_search;
mod plan;
mod vmc;

pub use context::ClusterContext;
pub use estimate::PowerEstimator;
pub use greedy::greedy_pack;
pub use local_search::improve;
pub use plan::VmcPlan;
pub use vmc::{Objective, PackingAlgorithm, Vmc, VmcConfig};

//! Deterministic control-plane message bus for budget grants.
//!
//! The paper's coordination story (§3, Figure 2) assumes GM→EM→SM budget
//! grants arrive instantly and in order. Real federated power managers
//! ride a lossy, delayed management network, so this module makes the
//! channel explicit: every grant becomes a sequence-numbered,
//! lease-bearing [`GrantMsg`] routed through a seeded in-sim queue with
//! configurable delay, jitter, reordering (modeled as extra delay),
//! duplication, and drop. Receivers reject stale sequence numbers and
//! drop duplicates; senders retry unacknowledged grants with exponential
//! backoff plus jitter.
//!
//! Determinism contract: the bus owns one seeded PRNG and draws from it
//! only when the corresponding probability is nonzero, in a fixed order
//! per send (`drop → duplicate → per-copy delay jitter → per-copy
//! reorder`). The default [`BusConfig`] is a *passthrough*: zero delay,
//! zero fault rates, retries and leases off — it enqueues each grant for
//! same-tick delivery, draws no random numbers, and is observationally
//! identical to the direct `set_granted_cap` write it replaced.
//!
//! Cost model: both the in-flight queue and the retransmission timers
//! are expiry-ordered binary heaps, so a poll costs O(due messages), not
//! O(links). Message delivery pops a min-heap keyed `(deliver_at, uid)`
//! — the identical total order the former sorted-`Vec` scan consumed.
//! Retry timers use lazy deletion: every time a link's `next_retry_at`
//! is (re)armed a `(next_retry_at, link)` entry is pushed, and popped
//! entries that no longer match a live pending grant are discarded. Due
//! links fire in ascending **link order** per poll round (the heap's pop
//! order is time-ordered, so survivors are re-sorted by link index),
//! which reproduces the former full-link scan's RNG draw order exactly.
//! The scan itself survives as [`ControlBus::poll_reference`] so
//! differential tests can replay both against each other.
//!
//! The bus is topology-agnostic: the runner registers one [`LinkId`] per
//! grantor→child edge and interprets [`BusEvent`]s against its own link
//! metadata (which controller, which telemetry level). Acknowledgements
//! ride the bus back with the deterministic base delay and are never
//! lost; unacked grants are re-sent until `max_attempts` is exhausted,
//! after which the sender gives up and the receiver's lease (if enabled)
//! expires it back to the local static cap.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Retransmission policy for unacknowledged grants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryConfig {
    /// Maximum retransmissions per grant (0 disables retries).
    pub max_attempts: u32,
    /// Base backoff in ticks; attempt `k` waits `base << (k-1)` ticks
    /// (clamped to [`RetryConfig::backoff_max_ticks`]). Sanitized to at
    /// least 1 so same-tick retry storms are impossible.
    pub backoff_base_ticks: u64,
    /// Upper bound on the exponential backoff, in ticks.
    pub backoff_max_ticks: u64,
    /// Uniform jitter in `[0, jitter_ticks]` added to each backoff.
    pub jitter_ticks: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self {
            max_attempts: 0,
            backoff_base_ticks: 1,
            backoff_max_ticks: 64,
            jitter_ticks: 0,
        }
    }
}

impl RetryConfig {
    /// Whether retransmission is enabled.
    pub fn enabled(&self) -> bool {
        self.max_attempts > 0
    }

    /// Clamps the backoff base to at least one tick.
    pub fn sanitized(mut self) -> Self {
        self.backoff_base_ticks = self.backoff_base_ticks.max(1);
        self.backoff_max_ticks = self.backoff_max_ticks.max(self.backoff_base_ticks);
        self
    }

    /// Backoff (before jitter) for retransmission attempt `attempt`
    /// (1-based).
    fn backoff(&self, attempt: u32) -> u64 {
        let shift = (attempt.saturating_sub(1)).min(63);
        self.backoff_base_ticks
            .saturating_shl(shift)
            .min(self.backoff_max_ticks)
    }
}

/// Saturating left shift helper (u64 has no stable `checked_shl` by
/// amount > 63 semantics we want here).
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> Self {
        if shift >= 64 {
            return u64::MAX;
        }
        self.checked_shl(shift).unwrap_or(u64::MAX)
    }
}

/// Delivery model of the control-plane bus. The default is a transparent
/// passthrough (zero delay, zero faults, retries and leases off).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BusConfig {
    /// PRNG seed for bus-level faults (independent of the
    /// [`FaultPlan`](crate::FaultPlan) stream).
    pub seed: u64,
    /// Base delivery delay in ticks (0 = same-tick delivery).
    pub delay_ticks: u64,
    /// Uniform extra delay in `[0, jitter_ticks]` per copy.
    pub jitter_ticks: u64,
    /// Per-message probability the grant is dropped by the bus itself
    /// (composes with the plan-level `message_loss_prob`).
    pub drop_prob: f64,
    /// Per-message probability a second copy of the grant is enqueued
    /// (with its own delay draw).
    pub duplicate_prob: f64,
    /// Per-copy probability the copy is held back an extra
    /// [`BusConfig::reorder_extra_ticks`], letting later grants overtake
    /// it.
    pub reorder_prob: f64,
    /// Extra delay applied to reordered copies, in ticks.
    pub reorder_extra_ticks: u64,
    /// Budget-lease duration in ticks; 0 disables leases. When enabled,
    /// a grant accepted at tick `t` authorizes the dynamic cap until
    /// `t + lease_ticks`; an expired lease reverts the child to its
    /// local static cap.
    pub lease_ticks: u64,
    /// Retransmission policy for unacknowledged grants.
    pub retry: RetryConfig,
}

impl Default for BusConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            delay_ticks: 0,
            jitter_ticks: 0,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
            reorder_extra_ticks: 2,
            lease_ticks: 0,
            retry: RetryConfig::default(),
        }
    }
}

impl BusConfig {
    /// A transparent bus (the default).
    pub fn passthrough() -> Self {
        Self::default()
    }

    /// Whether delivery is instantaneous and fault-free (no delay, no
    /// jitter, no drop/duplicate/reorder). A passthrough bus draws no
    /// random numbers and delivers every grant inside the sending epoch.
    pub fn is_passthrough(&self) -> bool {
        self.delay_ticks == 0
            && self.jitter_ticks == 0
            && self.drop_prob == 0.0
            && self.duplicate_prob == 0.0
            && self.reorder_prob == 0.0
    }

    /// Whether leases are enabled.
    pub fn leases_enabled(&self) -> bool {
        self.lease_ticks > 0
    }

    /// Clamps probabilities into `[0, 1]` (non-finite → 0) and sanitizes
    /// the retry policy.
    pub fn sanitized(mut self) -> Self {
        let clean = |v: f64| {
            if v.is_finite() {
                v.clamp(0.0, 1.0)
            } else {
                0.0
            }
        };
        self.drop_prob = clean(self.drop_prob);
        self.duplicate_prob = clean(self.duplicate_prob);
        self.reorder_prob = clean(self.reorder_prob);
        self.retry = self.retry.sanitized();
        self
    }

    /// Builder: sets the bus PRNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: sets base delay and jitter.
    pub fn with_delay(mut self, delay_ticks: u64, jitter_ticks: u64) -> Self {
        self.delay_ticks = delay_ticks;
        self.jitter_ticks = jitter_ticks;
        self
    }

    /// Builder: sets the bus-level drop probability.
    pub fn with_drop(mut self, prob: f64) -> Self {
        self.drop_prob = prob;
        self
    }

    /// Builder: sets the duplication probability.
    pub fn with_duplication(mut self, prob: f64) -> Self {
        self.duplicate_prob = prob;
        self
    }

    /// Builder: sets the reorder probability and penalty.
    pub fn with_reordering(mut self, prob: f64, extra_ticks: u64) -> Self {
        self.reorder_prob = prob;
        self.reorder_extra_ticks = extra_ticks;
        self
    }

    /// Builder: enables leases of the given duration.
    pub fn with_leases(mut self, lease_ticks: u64) -> Self {
        self.lease_ticks = lease_ticks;
        self
    }

    /// Builder: enables retransmission.
    pub fn with_retry(mut self, retry: RetryConfig) -> Self {
        self.retry = retry;
        self
    }
}

/// Handle for one registered grantor→child edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkId(pub usize);

/// A sequence-numbered budget grant in flight on the bus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrantMsg {
    /// The edge this grant travels.
    pub link: LinkId,
    /// Sender-assigned sequence number (monotone per link, starts at 1).
    pub seq: u64,
    /// The granted budget in watts.
    pub watts: f64,
}

/// What the bus tells its owner after processing due traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BusEvent {
    /// A fresh grant was accepted by the receiver; the owner must apply
    /// it (write the granted cap, start the lease, emit telemetry).
    Delivered(GrantMsg),
    /// A duplicated copy arrived after its sequence number was already
    /// accepted; the receiver dropped it.
    Duplicate(GrantMsg),
    /// A stale (overtaken) grant arrived; the receiver rejected it.
    Stale {
        /// The rejected message.
        msg: GrantMsg,
        /// The sequence number the receiver had already accepted.
        accepted: u64,
    },
    /// The sender re-transmitted an unacknowledged grant.
    Retry {
        /// The retransmitted message.
        msg: GrantMsg,
        /// Retransmission attempt (1 = first retry).
        attempt: u32,
        /// Whether this copy was dropped by the bus fault model (the
        /// owner may want to count it as a lost message).
        dropped: bool,
    },
    /// The sender exhausted its retry budget and gave the grant up; if
    /// leases are enabled the receiver will fall back to its static cap
    /// when the lease lapses.
    Exhausted(GrantMsg),
}

/// Wire direction of an in-flight message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum MsgKind {
    /// Grantor → child budget grant.
    Grant,
    /// Child → grantor acknowledgement (deterministic, lossless).
    Ack,
}

/// One queued message.
#[derive(Debug, Clone, Copy, PartialEq)]
struct InFlight {
    deliver_at: u64,
    /// Monotone enqueue counter; ties on `deliver_at` resolve in send
    /// order, which keeps the queue deterministic.
    uid: u64,
    link: usize,
    kind: MsgKind,
    seq: u64,
    watts: f64,
}

/// Min-heap adapter: orders [`InFlight`] messages by `(deliver_at, uid)`
/// only — `uid` is unique, so the order is total and the heap's pop
/// sequence matches the former sorted-`Vec` front removal exactly.
#[derive(Debug, Clone, Copy)]
struct QueueEntry(InFlight);

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.0.deliver_at, self.0.uid) == (other.0.deliver_at, other.0.uid)
    }
}

impl Eq for QueueEntry {}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.0.deliver_at, self.0.uid).cmp(&(other.0.deliver_at, other.0.uid))
    }
}

/// Sender-side retransmission state for the newest unacked grant.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Pending {
    seq: u64,
    watts: f64,
    /// Retransmissions already performed.
    attempts: u32,
    next_retry_at: u64,
}

/// Per-link state machine: sender sequence/retry state plus receiver
/// acceptance state.
#[derive(Debug, Clone, PartialEq, Default)]
struct LinkState {
    /// Next sequence number the sender will assign (first grant is 1).
    next_seq: u64,
    /// The newest unacknowledged grant, if retries are enabled.
    pending: Option<Pending>,
    /// Highest sequence number the receiver has accepted (0 = none).
    accepted_seq: u64,
}

/// The deterministic control-plane bus.
///
/// The owner registers links with [`ControlBus::register_link`], routes
/// every grant through [`ControlBus::send`], and calls
/// [`ControlBus::poll`] to collect due deliveries, duplicate/stale
/// rejections, and retransmissions. With the default passthrough config,
/// `send` followed by `poll` at the same tick behaves exactly like a
/// direct write.
#[derive(Debug, Clone)]
pub struct ControlBus {
    cfg: BusConfig,
    rng: StdRng,
    links: Vec<LinkState>,
    /// In-flight messages, min-heap on `(deliver_at, uid)`.
    queue: BinaryHeap<Reverse<QueueEntry>>,
    /// Retransmission timers, min-heap on `(next_retry_at, link)` with
    /// lazy deletion: entries whose link no longer holds a matching due
    /// pending grant are discarded on pop. Every (re)arm of a link's
    /// `next_retry_at` pushes exactly one entry, so a live pending's
    /// timer is always present.
    retry_timers: BinaryHeap<Reverse<(u64, usize)>>,
    /// Number of links whose `pending` is `Some` (O(1) idle check).
    pending_count: usize,
    next_uid: u64,
    /// Diagnostic: link examinations performed while firing retries
    /// (one per popped timer entry, or per link in the reference scan).
    /// An idle tick performs zero.
    link_scans: u64,
}

impl ControlBus {
    /// Bus PRNG domain-separation constant (`"nps_bus"` in ASCII-ish).
    const SEED_SALT: u64 = 0x6e70_735f_6275_7300;

    /// Builds a bus from a (sanitized) config.
    pub fn new(cfg: &BusConfig) -> Self {
        let cfg = cfg.clone().sanitized();
        Self {
            rng: StdRng::seed_from_u64(cfg.seed ^ Self::SEED_SALT),
            cfg,
            links: Vec::new(),
            queue: BinaryHeap::new(),
            retry_timers: BinaryHeap::new(),
            pending_count: 0,
            next_uid: 0,
            link_scans: 0,
        }
    }

    /// The sanitized config the bus runs with.
    pub fn config(&self) -> &BusConfig {
        &self.cfg
    }

    /// Registers one grantor→child edge and returns its handle. Link ids
    /// are dense and assigned in registration order.
    pub fn register_link(&mut self) -> LinkId {
        self.links.push(LinkState::default());
        LinkId(self.links.len() - 1)
    }

    /// Number of registered links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Highest sequence number the receiver on `link` has accepted
    /// (0 = none yet).
    pub fn accepted_seq(&self, link: LinkId) -> u64 {
        self.links[link.0].accepted_seq
    }

    /// True when nothing is in flight and no retransmission is pending —
    /// polling an idle bus is a no-op. O(1): the queue is a heap and the
    /// pending links are counted, so the per-tick idle check no longer
    /// walks every link.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.pending_count == 0
    }

    /// Link examinations performed while firing retransmission timers
    /// since the bus was built. Stays flat across idle ticks (an idle
    /// poll touches no link at all); the linear reference scan grows it
    /// by `num_links` per poll round instead.
    pub fn link_scans(&self) -> u64 {
        self.link_scans
    }

    /// Sets this link's pending slot, keeping the count and the timer
    /// heap in sync with the invariant that a live `next_retry_at`
    /// always has a heap entry.
    fn arm_pending(&mut self, link: usize, pending: Pending) {
        if self.links[link].pending.is_none() {
            self.pending_count += 1;
        }
        self.retry_timers
            .push(Reverse((pending.next_retry_at, link)));
        self.links[link].pending = Some(pending);
    }

    /// Clears this link's pending slot (ack or retry exhaustion). The
    /// timer heap entry is left behind and discarded lazily.
    fn clear_pending(&mut self, link: usize) {
        if self.links[link].pending.take().is_some() {
            self.pending_count -= 1;
        }
    }

    /// Sends one grant on `link` at tick `now`.
    ///
    /// `plan_lost` is the *plan-level* message-loss verdict (drawn by the
    /// owner from the [`FaultPlan`](crate::FaultPlan) stream so legacy
    /// fault sequences replay unchanged); the bus adds its own drop draw
    /// on top. Returns the assigned sequence number and whether any copy
    /// was actually enqueued (`false` = the grant was lost outright; the
    /// retry machinery, if enabled, will still chase it).
    pub fn send(&mut self, link: LinkId, watts: f64, now: u64, plan_lost: bool) -> (u64, bool) {
        let state = &mut self.links[link.0];
        state.next_seq += 1;
        let seq = state.next_seq;
        if self.cfg.retry.enabled() {
            let backoff = self.cfg.retry.backoff(1);
            let jitter = self.jitter(self.cfg.retry.jitter_ticks);
            self.arm_pending(
                link.0,
                Pending {
                    seq,
                    watts,
                    attempts: 0,
                    next_retry_at: now + backoff + jitter,
                },
            );
        }
        if plan_lost {
            return (seq, false);
        }
        let enqueued = self.transmit(link.0, seq, watts, now);
        (seq, enqueued)
    }

    /// Enqueues one transmission attempt (plus a possible duplicate).
    /// Returns `false` when the bus dropped the copy.
    fn transmit(&mut self, link: usize, seq: u64, watts: f64, now: u64) -> bool {
        if self.cfg.drop_prob > 0.0 && self.rng.gen_bool(self.cfg.drop_prob) {
            return false;
        }
        let duplicate = self.cfg.duplicate_prob > 0.0 && self.rng.gen_bool(self.cfg.duplicate_prob);
        let delay = self.copy_delay();
        self.enqueue(now + delay, link, MsgKind::Grant, seq, watts);
        if duplicate {
            let delay = self.copy_delay();
            self.enqueue(now + delay, link, MsgKind::Grant, seq, watts);
        }
        true
    }

    /// Delay of one message copy: base + jitter + reorder penalty.
    fn copy_delay(&mut self) -> u64 {
        let mut delay = self.cfg.delay_ticks + self.jitter(self.cfg.jitter_ticks);
        if self.cfg.reorder_prob > 0.0 && self.rng.gen_bool(self.cfg.reorder_prob) {
            delay += self.cfg.reorder_extra_ticks;
        }
        delay
    }

    /// Uniform draw in `[0, bound]`; draws nothing when `bound == 0`.
    fn jitter(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.rng.gen_range(0..bound + 1)
        }
    }

    fn enqueue(&mut self, deliver_at: u64, link: usize, kind: MsgKind, seq: u64, watts: f64) {
        let uid = self.next_uid;
        self.next_uid += 1;
        self.queue.push(Reverse(QueueEntry(InFlight {
            deliver_at,
            uid,
            link,
            kind,
            seq,
            watts,
        })));
    }

    /// Processes all traffic due at or before `now`: delivers grants
    /// (enforcing sequence-number acceptance), routes acks, and fires
    /// expired retransmission timers. Messages spawned during the poll
    /// (acks, zero-delay retries) that come due at `now` are processed in
    /// the same call.
    pub fn poll(&mut self, now: u64) -> Vec<BusEvent> {
        let mut events = Vec::new();
        loop {
            let progressed =
                self.deliver_due(now, &mut events) | self.fire_retries(now, &mut events);
            if !progressed {
                break;
            }
        }
        events
    }

    /// The pre-heap poll algorithm: identical delivery, but the
    /// retransmission pass scans every link per round instead of popping
    /// the timer heap. Kept (hidden) as the reference implementation for
    /// differential tests — it maintains the same state, so a bus driven
    /// through `poll_reference` and one driven through [`ControlBus::
    /// poll`] must emit bit-identical event schedules forever.
    #[doc(hidden)]
    pub fn poll_reference(&mut self, now: u64) -> Vec<BusEvent> {
        let mut events = Vec::new();
        loop {
            let progressed =
                self.deliver_due(now, &mut events) | self.fire_retries_linear(now, &mut events);
            if !progressed {
                break;
            }
        }
        events
    }

    /// Delivers queued messages due at `now`; returns whether anything
    /// was processed.
    fn deliver_due(&mut self, now: u64, events: &mut Vec<BusEvent>) -> bool {
        let mut progressed = false;
        while let Some(&Reverse(QueueEntry(first))) = self.queue.peek() {
            if first.deliver_at > now {
                break;
            }
            self.queue.pop();
            let msg = first;
            progressed = true;
            match msg.kind {
                MsgKind::Grant => self.deliver_grant(msg, now, events),
                MsgKind::Ack => {
                    if self.links[msg.link]
                        .pending
                        .is_some_and(|p| p.seq == msg.seq)
                    {
                        self.clear_pending(msg.link);
                    }
                }
            }
        }
        progressed
    }

    fn deliver_grant(&mut self, msg: InFlight, now: u64, events: &mut Vec<BusEvent>) {
        let grant = GrantMsg {
            link: LinkId(msg.link),
            seq: msg.seq,
            watts: msg.watts,
        };
        let accepted = self.links[msg.link].accepted_seq;
        if msg.seq > accepted {
            self.links[msg.link].accepted_seq = msg.seq;
            events.push(BusEvent::Delivered(grant));
        } else if msg.seq == accepted {
            events.push(BusEvent::Duplicate(grant));
        } else {
            events.push(BusEvent::Stale {
                msg: grant,
                accepted,
            });
        }
        // Every delivery is acknowledged (duplicates and stale copies
        // too: the ack names the copy's own sequence number, and the
        // sender ignores acks for anything but its pending grant). Acks
        // are deterministic and lossless — the asymmetry keeps the fault
        // model focused on the downstream grant channel.
        self.enqueue(
            now + self.cfg.delay_ticks,
            msg.link,
            MsgKind::Ack,
            msg.seq,
            0.0,
        );
    }

    /// Fires retransmission timers due at `now` by draining the timer
    /// heap; returns whether any retry was attempted. Pops every due
    /// entry, discards the stale ones (lazy deletion), dedupes, and
    /// fires the survivors in ascending link order — exactly the order
    /// the linear reference scan fires them, so the RNG draw sequence is
    /// preserved bit-for-bit.
    fn fire_retries(&mut self, now: u64, events: &mut Vec<BusEvent>) -> bool {
        if !self.cfg.retry.enabled() {
            return false;
        }
        let mut due: Vec<usize> = Vec::new();
        while let Some(&Reverse((at, link))) = self.retry_timers.peek() {
            if at > now {
                break;
            }
            self.retry_timers.pop();
            self.link_scans += 1;
            // Live = the link still has a pending grant whose timer is
            // due. (A stale entry may pop alongside a live one for the
            // same link — e.g. an acked grant's timer followed by a
            // fresh send's — hence the dedup.)
            let live = self.links[link]
                .pending
                .is_some_and(|p| p.next_retry_at <= now);
            if live && !due.contains(&link) {
                due.push(link);
            }
        }
        if due.is_empty() {
            return false;
        }
        due.sort_unstable();
        for link in due {
            self.fire_link_retry(link, now, events);
        }
        true
    }

    /// The reference retransmission pass: a full scan over every link in
    /// index order, as the pre-heap bus did. Maintains the timer heap on
    /// re-arm so heap-driven polls can take over at any point.
    fn fire_retries_linear(&mut self, now: u64, events: &mut Vec<BusEvent>) -> bool {
        if !self.cfg.retry.enabled() {
            return false;
        }
        let mut progressed = false;
        for link in 0..self.links.len() {
            self.link_scans += 1;
            let due = self.links[link]
                .pending
                .is_some_and(|p| p.next_retry_at <= now);
            if !due {
                continue;
            }
            progressed = true;
            self.fire_link_retry(link, now, events);
        }
        progressed
    }

    /// Fires one due link: either gives the grant up (retry budget
    /// exhausted) or re-arms the backoff timer and retransmits. The
    /// caller guarantees the link's pending grant is due at `now`.
    fn fire_link_retry(&mut self, link: usize, now: u64, events: &mut Vec<BusEvent>) {
        let pending = self.links[link]
            .pending
            .expect("fire_link_retry requires a due pending grant");
        let msg = GrantMsg {
            link: LinkId(link),
            seq: pending.seq,
            watts: pending.watts,
        };
        if pending.attempts >= self.cfg.retry.max_attempts {
            self.clear_pending(link);
            events.push(BusEvent::Exhausted(msg));
            return;
        }
        let attempt = pending.attempts + 1;
        let backoff = self.cfg.retry.backoff(attempt + 1);
        let jitter = self.jitter(self.cfg.retry.jitter_ticks);
        self.arm_pending(
            link,
            Pending {
                attempts: attempt,
                next_retry_at: now + backoff.max(1) + jitter,
                ..pending
            },
        );
        // Retries re-enter the bus fault model (drop/duplicate/delay)
        // but not the plan-level loss draw: the FaultPlan stream must
        // replay identically whether or not retries are enabled.
        let enqueued = self.transmit(link, pending.seq, pending.watts, now);
        events.push(BusEvent::Retry {
            msg,
            attempt,
            dropped: !enqueued,
        });
    }

    /// Captures the bus's full dynamic state for checkpointing. The
    /// queue is serialized in canonical `(deliver_at, uid)` order — the
    /// heap's internal layout never leaks into the checkpoint, so
    /// snapshots stay byte-identical across thread counts and poll
    /// algorithms.
    pub fn snapshot(&self) -> BusSnapshot {
        let mut queue: Vec<InFlight> = self.queue.iter().map(|&Reverse(QueueEntry(m))| m).collect();
        queue.sort_unstable_by_key(|m| (m.deliver_at, m.uid));
        BusSnapshot {
            rng: self.rng.state().to_vec(),
            next_uid: self.next_uid,
            links: self
                .links
                .iter()
                .map(|l| LinkSnapshot {
                    next_seq: l.next_seq,
                    accepted_seq: l.accepted_seq,
                    pending: l.pending.map(|p| PendingSnapshot {
                        seq: p.seq,
                        watts_bits: p.watts.to_bits(),
                        attempts: p.attempts,
                        next_retry_at: p.next_retry_at,
                    }),
                })
                .collect(),
            queue: queue
                .iter()
                .map(|m| InFlightSnapshot {
                    deliver_at: m.deliver_at,
                    uid: m.uid,
                    link: m.link,
                    is_ack: m.kind == MsgKind::Ack,
                    seq: m.seq,
                    watts_bits: m.watts.to_bits(),
                })
                .collect(),
        }
    }

    /// Restores state captured by [`ControlBus::snapshot`]. The bus must
    /// have the same links registered (same topology/config). The retry
    /// timer heap is rebuilt from the live pending grants (one entry
    /// each — stale entries never reach a checkpoint).
    pub fn restore(&mut self, snap: &BusSnapshot) {
        let mut rng_state = [0u64; 4];
        for (slot, &word) in rng_state.iter_mut().zip(snap.rng.iter()) {
            *slot = word;
        }
        self.rng = StdRng::from_state(rng_state);
        self.next_uid = snap.next_uid;
        self.links = snap
            .links
            .iter()
            .map(|l| LinkState {
                next_seq: l.next_seq,
                accepted_seq: l.accepted_seq,
                pending: l.pending.as_ref().map(|p| Pending {
                    seq: p.seq,
                    watts: f64::from_bits(p.watts_bits),
                    attempts: p.attempts,
                    next_retry_at: p.next_retry_at,
                }),
            })
            .collect();
        self.pending_count = self.links.iter().filter(|l| l.pending.is_some()).count();
        self.retry_timers = self
            .links
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.pending.map(|p| Reverse((p.next_retry_at, i))))
            .collect();
        self.queue = snap
            .queue
            .iter()
            .map(|m| {
                Reverse(QueueEntry(InFlight {
                    deliver_at: m.deliver_at,
                    uid: m.uid,
                    link: m.link,
                    kind: if m.is_ack {
                        MsgKind::Ack
                    } else {
                        MsgKind::Grant
                    },
                    seq: m.seq,
                    watts: f64::from_bits(m.watts_bits),
                }))
            })
            .collect();
    }
}

/// Serializable sender/receiver state of one link (floats bit-packed so
/// the JSON roundtrip is exact even for non-finite values).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSnapshot {
    /// Sender's next sequence number.
    pub next_seq: u64,
    /// Receiver's highest accepted sequence number.
    pub accepted_seq: u64,
    /// Unacknowledged grant awaiting retransmission, if any.
    pub pending: Option<PendingSnapshot>,
}

/// Serializable retransmission state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingSnapshot {
    /// Sequence number of the unacked grant.
    pub seq: u64,
    /// Granted watts, as IEEE-754 bits.
    pub watts_bits: u64,
    /// Retransmissions already performed.
    pub attempts: u32,
    /// Tick the next retry timer fires.
    pub next_retry_at: u64,
}

/// Serializable in-flight message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InFlightSnapshot {
    /// Scheduled delivery tick.
    pub deliver_at: u64,
    /// Enqueue counter (tie-break).
    pub uid: u64,
    /// Link index.
    pub link: usize,
    /// `true` for an acknowledgement, `false` for a grant.
    pub is_ack: bool,
    /// Sequence number.
    pub seq: u64,
    /// Payload watts, as IEEE-754 bits.
    pub watts_bits: u64,
}

/// The bus's full dynamic state (checkpoint section).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BusSnapshot {
    /// PRNG state words.
    pub rng: Vec<u64>,
    /// Enqueue counter.
    pub next_uid: u64,
    /// Per-link state, registration order.
    pub links: Vec<LinkSnapshot>,
    /// In-flight queue, delivery order.
    pub queue: Vec<InFlightSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliveries(events: &[BusEvent]) -> Vec<(usize, u64, f64)> {
        events
            .iter()
            .filter_map(|e| match e {
                BusEvent::Delivered(m) => Some((m.link.0, m.seq, m.watts)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn passthrough_delivers_same_tick_in_order() {
        let mut bus = ControlBus::new(&BusConfig::default());
        let a = bus.register_link();
        let b = bus.register_link();
        bus.send(a, 100.0, 5, false);
        bus.send(b, 200.0, 5, false);
        let events = bus.poll(5);
        assert_eq!(deliveries(&events), vec![(0, 1, 100.0), (1, 1, 200.0)]);
        assert!(bus.is_idle());
    }

    #[test]
    fn passthrough_draws_no_randomness() {
        let mut bus = ControlBus::new(&BusConfig::default());
        let rng_before = format!("{:?}", bus.rng);
        let link = bus.register_link();
        for t in 0..50 {
            bus.send(link, t as f64, t, false);
            bus.poll(t);
        }
        assert_eq!(format!("{:?}", bus.rng), rng_before);
    }

    #[test]
    fn plan_lost_grant_is_not_enqueued() {
        let mut bus = ControlBus::new(&BusConfig::default());
        let link = bus.register_link();
        let (seq, enqueued) = bus.send(link, 100.0, 0, true);
        assert_eq!(seq, 1);
        assert!(!enqueued);
        assert!(bus.poll(0).is_empty());
        // The sequence number is still consumed: the next grant overtakes
        // the lost one.
        let (seq, _) = bus.send(link, 120.0, 1, false);
        assert_eq!(seq, 2);
        assert_eq!(deliveries(&bus.poll(1)), vec![(0, 2, 120.0)]);
    }

    #[test]
    fn delayed_delivery_waits_for_its_tick() {
        let cfg = BusConfig::default().with_delay(3, 0);
        let mut bus = ControlBus::new(&cfg);
        let link = bus.register_link();
        bus.send(link, 50.0, 10, false);
        assert!(bus.poll(10).is_empty());
        assert!(bus.poll(12).is_empty());
        assert_eq!(deliveries(&bus.poll(13)), vec![(0, 1, 50.0)]);
    }

    #[test]
    fn stale_grant_is_rejected_after_overtake() {
        // First grant reordered (held back), second arrives first.
        let cfg = BusConfig::default();
        let mut bus = ControlBus::new(&cfg);
        let link = bus.register_link();
        // Hand-construct the overtake deterministically: enqueue seq 1
        // with delay, then seq 2 without.
        bus.links[link.0].next_seq = 1;
        bus.enqueue(5, link.0, MsgKind::Grant, 1, 100.0);
        bus.links[link.0].next_seq = 2;
        bus.enqueue(3, link.0, MsgKind::Grant, 2, 120.0);
        let events = bus.poll(3);
        assert_eq!(deliveries(&events), vec![(0, 2, 120.0)]);
        let events = bus.poll(5);
        assert!(deliveries(&events).is_empty());
        assert!(matches!(
            events[0],
            BusEvent::Stale {
                msg: GrantMsg { seq: 1, .. },
                accepted: 2,
            }
        ));
        assert_eq!(bus.accepted_seq(link), 2);
    }

    #[test]
    fn duplicate_copy_is_dropped_by_receiver() {
        let cfg = BusConfig::default().with_duplication(1.0);
        let mut bus = ControlBus::new(&cfg);
        let link = bus.register_link();
        bus.send(link, 75.0, 0, false);
        let events = bus.poll(0);
        assert_eq!(deliveries(&events), vec![(0, 1, 75.0)]);
        assert!(events
            .iter()
            .any(|e| matches!(e, BusEvent::Duplicate(GrantMsg { seq: 1, .. }))));
    }

    #[test]
    fn dropped_grant_is_retried_until_exhausted() {
        let cfg = BusConfig {
            drop_prob: 1.0,
            ..BusConfig::default()
        }
        .with_retry(RetryConfig {
            max_attempts: 3,
            backoff_base_ticks: 2,
            backoff_max_ticks: 16,
            jitter_ticks: 0,
        });
        let mut bus = ControlBus::new(&cfg);
        let link = bus.register_link();
        let (_, enqueued) = bus.send(link, 90.0, 0, false);
        assert!(!enqueued, "drop_prob=1 drops the first copy");
        let mut retries = 0;
        let mut exhausted = false;
        for t in 0..200 {
            for e in bus.poll(t) {
                match e {
                    BusEvent::Retry { dropped, .. } => {
                        assert!(dropped);
                        retries += 1;
                    }
                    BusEvent::Exhausted(m) => {
                        assert_eq!(m.seq, 1);
                        exhausted = true;
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        assert_eq!(retries, 3);
        assert!(exhausted);
        assert!(bus.is_idle());
    }

    #[test]
    fn retry_stops_after_ack() {
        let cfg = BusConfig::default().with_retry(RetryConfig {
            max_attempts: 5,
            backoff_base_ticks: 4,
            backoff_max_ticks: 64,
            jitter_ticks: 0,
        });
        let mut bus = ControlBus::new(&cfg);
        let link = bus.register_link();
        bus.send(link, 90.0, 0, false);
        // Same-tick delivery and ack: the pending slot clears immediately,
        // so no retry ever fires.
        let events = bus.poll(0);
        assert_eq!(deliveries(&events), vec![(0, 1, 90.0)]);
        for t in 1..100 {
            assert!(bus.poll(t).is_empty());
        }
        assert!(bus.is_idle());
    }

    #[test]
    fn backoff_grows_exponentially_and_clamps() {
        let retry = RetryConfig {
            max_attempts: 10,
            backoff_base_ticks: 2,
            backoff_max_ticks: 12,
            jitter_ticks: 0,
        };
        assert_eq!(retry.backoff(1), 2);
        assert_eq!(retry.backoff(2), 4);
        assert_eq!(retry.backoff(3), 8);
        assert_eq!(retry.backoff(4), 12); // clamped
        assert_eq!(retry.backoff(63), 12);
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = BusConfig {
            seed: 42,
            delay_ticks: 1,
            jitter_ticks: 3,
            drop_prob: 0.2,
            duplicate_prob: 0.2,
            reorder_prob: 0.3,
            reorder_extra_ticks: 4,
            ..BusConfig::default()
        };
        let mut a = ControlBus::new(&cfg);
        let mut b = ControlBus::new(&cfg);
        let la = a.register_link();
        let lb = b.register_link();
        for t in 0..300 {
            a.send(la, t as f64, t, false);
            b.send(lb, t as f64, t, false);
            assert_eq!(a.poll(t), b.poll(t));
        }
    }

    #[test]
    fn heap_poll_matches_linear_reference_poll() {
        // Drive two identical buses through the heap-based poll and the
        // pre-heap full-link scan: every event schedule must match. The
        // proptest in tests/bus_properties.rs fuzzes this over arbitrary
        // fault plans; this is the deterministic smoke version.
        let cfg = BusConfig {
            seed: 11,
            delay_ticks: 1,
            jitter_ticks: 2,
            drop_prob: 0.3,
            duplicate_prob: 0.15,
            reorder_prob: 0.25,
            reorder_extra_ticks: 3,
            lease_ticks: 12,
            retry: RetryConfig {
                max_attempts: 4,
                backoff_base_ticks: 2,
                backoff_max_ticks: 16,
                jitter_ticks: 1,
            },
        };
        let mut heap = ControlBus::new(&cfg);
        let mut linear = ControlBus::new(&cfg);
        for _ in 0..3 {
            heap.register_link();
            linear.register_link();
        }
        for t in 0..400 {
            if t % 7 == 0 {
                let link = LinkId((t as usize / 7) % 3);
                heap.send(link, t as f64, t, false);
                linear.send(link, t as f64, t, false);
            }
            assert_eq!(heap.poll(t), linear.poll_reference(t), "tick {t}");
        }
        assert_eq!(heap.snapshot(), linear.snapshot());
    }

    #[test]
    fn idle_poll_performs_zero_link_scans() {
        let cfg = BusConfig::default()
            .with_delay(1, 0)
            .with_retry(RetryConfig {
                max_attempts: 3,
                backoff_base_ticks: 2,
                backoff_max_ticks: 8,
                jitter_ticks: 0,
            });
        let mut bus = ControlBus::new(&cfg);
        let links: Vec<LinkId> = (0..16).map(|_| bus.register_link()).collect();
        for &l in &links {
            bus.send(l, 50.0, 0, false);
        }
        // Drain until every grant is delivered and acked.
        let mut t = 0;
        while !bus.is_idle() {
            bus.poll(t);
            t += 1;
            assert!(t < 1_000, "bus failed to drain");
        }
        let scans_when_draining = bus.link_scans();
        for quiet in t..t + 500 {
            assert!(bus.poll(quiet).is_empty());
        }
        assert_eq!(
            bus.link_scans(),
            scans_when_draining,
            "an idle tick must not examine any link"
        );
    }

    #[test]
    fn snapshot_roundtrip_resumes_identically() {
        let cfg = BusConfig {
            seed: 7,
            delay_ticks: 2,
            jitter_ticks: 2,
            drop_prob: 0.3,
            duplicate_prob: 0.2,
            reorder_prob: 0.2,
            reorder_extra_ticks: 3,
            lease_ticks: 10,
            retry: RetryConfig {
                max_attempts: 4,
                backoff_base_ticks: 2,
                backoff_max_ticks: 32,
                jitter_ticks: 1,
            },
        };
        let mut live = ControlBus::new(&cfg);
        let link = live.register_link();
        for t in 0..40 {
            live.send(link, 10.0 + t as f64, t, false);
            live.poll(t);
        }
        // Serialize mid-stream, restore into a fresh bus, and check both
        // produce identical futures.
        let json = serde_json::to_string(&live.snapshot()).unwrap();
        let snap: BusSnapshot = serde_json::from_str(&json).unwrap();
        let mut resumed = ControlBus::new(&cfg);
        resumed.register_link();
        resumed.restore(&snap);
        for t in 40..120 {
            live.send(link, t as f64, t, false);
            resumed.send(link, t as f64, t, false);
            assert_eq!(live.poll(t), resumed.poll(t));
        }
    }

    #[test]
    fn sanitize_clamps_probabilities_and_backoff() {
        let cfg = BusConfig {
            drop_prob: 7.0,
            duplicate_prob: f64::NAN,
            reorder_prob: -1.0,
            retry: RetryConfig {
                max_attempts: 2,
                backoff_base_ticks: 0,
                backoff_max_ticks: 0,
                jitter_ticks: 0,
            },
            ..BusConfig::default()
        }
        .sanitized();
        assert_eq!(cfg.drop_prob, 1.0);
        assert_eq!(cfg.duplicate_prob, 0.0);
        assert_eq!(cfg.reorder_prob, 0.0);
        assert_eq!(cfg.retry.backoff_base_ticks, 1);
        assert!(cfg.retry.backoff_max_ticks >= 1);
    }

    #[test]
    fn config_roundtrips_through_json() {
        let cfg = BusConfig {
            seed: 3,
            delay_ticks: 2,
            jitter_ticks: 1,
            drop_prob: 0.1,
            duplicate_prob: 0.05,
            reorder_prob: 0.2,
            reorder_extra_ticks: 5,
            lease_ticks: 120,
            retry: RetryConfig {
                max_attempts: 6,
                backoff_base_ticks: 2,
                backoff_max_ticks: 64,
                jitter_ticks: 2,
            },
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: BusConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}

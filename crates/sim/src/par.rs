//! Persistent worker-thread pool for the rack-sharded parallel phase.
//!
//! A tick's parallel phase is short (tens of microseconds on paper-size
//! fleets), so spawning scoped threads per tick would dominate the work.
//! Instead the pool spawns its workers once and hands them one *job* at
//! a time: a closure invoked with each shard index exactly once, with
//! the shards claimed dynamically from a shared counter. [`WorkerPool::
//! execute`] does not return until every shard of the job has finished,
//! which is the barrier the deterministic reduction phase relies on.
//!
//! This module is the only place in the workspace that uses `unsafe`:
//! a single lifetime erasure that lets workers borrow the caller's
//! stack-scoped closure for the duration of one `execute` call. The
//! rest of the crate remains `deny(unsafe_code)`.

#![allow(unsafe_code)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// The type-erased job: a borrow of the caller's `Fn(usize)` closure
/// with its lifetime erased to a raw pointer so it can sit in shared
/// state. Soundness rests on `execute` blocking until `done_shards ==
/// num_shards`, i.e. until every dereference of this pointer has
/// completed — the pointee (on the caller's stack) outlives all uses.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared `&`-calls from many threads are
// fine) and is only dereferenced within the dynamic extent of the
// `execute` call that published it, which keeps the borrow alive.
unsafe impl Send for Job {}

/// Shard-claiming state shared between the caller and the workers.
struct State {
    /// The active job, if any. Cleared by whichever thread finishes the
    /// last shard, which is also the "job done" signal.
    job: Option<Job>,
    /// Next unclaimed shard index of the active job.
    next_shard: usize,
    /// Total shards in the active job.
    num_shards: usize,
    /// Shards that have finished running.
    done_shards: usize,
    /// True once any shard closure panicked (the panic is re-raised on
    /// the calling thread after the barrier).
    panicked: bool,
    /// Tells workers to exit their loop.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when a new job is published (or on shutdown).
    cv_job: Condvar,
    /// Signalled when the last shard of a job completes.
    cv_done: Condvar,
}

impl Shared {
    /// Claims and runs shards of the active job until none remain to
    /// claim, then returns (releasing the lock). Shared by workers and
    /// the caller so the calling thread contributes a full worker's
    /// throughput.
    fn run_shards<'a>(&'a self, mut st: std::sync::MutexGuard<'a, State>, f: &dyn Fn(usize)) {
        loop {
            if st.job.is_none() || st.next_shard >= st.num_shards {
                return;
            }
            let i = st.next_shard;
            st.next_shard += 1;
            drop(st);
            let ok = catch_unwind(AssertUnwindSafe(|| f(i))).is_ok();
            st = self.state.lock().unwrap();
            st.done_shards += 1;
            if !ok {
                st.panicked = true;
            }
            if st.done_shards == st.num_shards {
                st.job = None;
                self.cv_done.notify_all();
            }
        }
    }
}

/// A fixed-size pool of persistent worker threads executing shard jobs.
///
/// Created once per run (when `threads > 1`); each call to
/// [`WorkerPool::execute`] fans one closure out over shard indices
/// `0..num_shards` and blocks until all have completed. The pool itself
/// carries no job state between calls, so it is irrelevant to
/// checkpointing: snapshots taken from a pooled run restore bit-exactly
/// into a sequential one and vice versa.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
    /// Wall-clock nanoseconds spent inside [`WorkerPool::execute`],
    /// accumulated over the pool's lifetime. Because every parallel
    /// span in a run goes through `execute`, this is the run's total
    /// parallel-phase time — the complement of the sequential global
    /// phase — which the `scale` bench reports per configuration.
    busy_ns: std::sync::atomic::AtomicU64,
}

impl WorkerPool {
    /// Creates a pool delivering `threads`-way parallelism: the calling
    /// thread participates in every job, so `threads - 1` workers are
    /// spawned. `threads` is clamped to at least 1 (an empty pool whose
    /// `execute` simply runs shards inline).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                next_shard: 0,
                num_shards: 0,
                done_shards: 0,
                panicked: false,
                shutdown: false,
            }),
            cv_job: Condvar::new(),
            cv_done: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let mut st = shared.state.lock().unwrap();
                    loop {
                        if st.shutdown {
                            return;
                        }
                        if let Some(job) = st.job {
                            if st.next_shard < st.num_shards {
                                // SAFETY: see `Job` — the pointee lives
                                // until `execute` returns, and `execute`
                                // blocks until this shard is done.
                                let f = unsafe { &*job.0 };
                                shared.run_shards(st, f);
                                st = shared.state.lock().unwrap();
                                continue;
                            }
                        }
                        st = shared.cv_job.wait(st).unwrap();
                    }
                })
            })
            .collect();
        Self {
            shared,
            handles,
            threads,
            busy_ns: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The parallelism this pool delivers (including the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total wall-clock nanoseconds spent inside [`WorkerPool::execute`]
    /// since the pool was created (the run's parallel-phase time).
    pub fn busy_nanos(&self) -> u64 {
        self.busy_ns.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Runs `f(i)` exactly once for every `i in 0..num_shards`, spread
    /// across the pool plus the calling thread, and returns only after
    /// all invocations have completed. Panics (on the calling thread)
    /// if any shard closure panicked.
    pub fn execute(&self, num_shards: usize, f: &(dyn Fn(usize) + Sync)) {
        if num_shards == 0 {
            return;
        }
        let span = std::time::Instant::now();
        // SAFETY: the only unsafe act in the workspace — erasing the
        // closure's borrow lifetime so workers can hold it in shared
        // state. Sound because this function blocks (below) until every
        // invocation has completed, so no dereference outlives `f`.
        let erased: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        {
            let mut st = self.shared.state.lock().unwrap();
            debug_assert!(st.job.is_none(), "execute is not reentrant");
            st.job = Some(Job(erased));
            st.next_shard = 0;
            st.num_shards = num_shards;
            st.done_shards = 0;
            st.panicked = false;
        }
        self.shared.cv_job.notify_all();
        let st = self.shared.state.lock().unwrap();
        self.shared.run_shards(st, f);
        let mut st = self.shared.state.lock().unwrap();
        while st.job.is_some() {
            st = self.shared.cv_done.wait(st).unwrap();
        }
        let panicked = st.panicked;
        drop(st);
        self.busy_ns.fetch_add(
            span.elapsed().as_nanos() as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
        if panicked {
            panic!("a worker panicked during the parallel shard phase");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.cv_job.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_shard_runs_exactly_once() {
        let pool = WorkerPool::new(4);
        for shards in [1usize, 2, 3, 16, 257] {
            let counts: Vec<AtomicUsize> = (0..shards).map(|_| AtomicUsize::new(0)).collect();
            pool.execute(shards, &|i| {
                counts[i].fetch_add(1, Ordering::SeqCst);
            });
            assert!(counts.iter().all(|c| c.load(Ordering::SeqCst) == 1));
        }
    }

    #[test]
    fn pool_is_reusable_across_many_jobs() {
        let pool = WorkerPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..500 {
            pool.execute(5, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 2500);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert!(pool.handles.is_empty());
        let total = AtomicUsize::new(0);
        pool.execute(7, &|i| {
            total.fetch_add(i, Ordering::SeqCst);
        });
        assert_eq!(total.load(Ordering::SeqCst), 21);
    }

    #[test]
    fn zero_shards_is_a_no_op() {
        let pool = WorkerPool::new(2);
        pool.execute(0, &|_| panic!("must not run"));
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = WorkerPool::new(2);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.execute(4, &|i| {
                if i == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(err.is_err());
        // The pool stays usable after a panicked job.
        let total = AtomicUsize::new(0);
        pool.execute(3, &|_| {
            total.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(total.load(Ordering::SeqCst), 3);
    }
}

//! Persistent worker-thread pool for the rack-sharded parallel phase.
//!
//! A tick's parallel phase is short (tens of microseconds on paper-size
//! fleets), so spawning scoped threads per tick would dominate the work.
//! Instead the pool spawns its workers once and hands them one *job* at
//! a time: a closure invoked with each shard index exactly once. Each
//! participant (the workers plus the calling thread) owns a persistent
//! deque seeded with a contiguous block of shard indices; a participant
//! drains its own deque front-first and, once empty, **steals** from the
//! back of a sibling's deque. On balanced fleets every shard runs from
//! its owner's deque (good locality, zero steals); on lopsided fleets
//! the fast participants absorb the slow one's backlog instead of idling
//! at the barrier. [`WorkerPool::execute`] does not return until every
//! shard of the job has finished, which is the barrier the deterministic
//! reduction phase relies on — shard execution order is free, so
//! stealing cannot perturb bit-identity.
//!
//! This module is the only place in the workspace that uses `unsafe`:
//! a single lifetime erasure that lets workers borrow the caller's
//! stack-scoped closure for the duration of one `execute` call. The
//! rest of the crate remains `deny(unsafe_code)`.

#![allow(unsafe_code)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// The type-erased job: a borrow of the caller's `Fn(usize)` closure
/// with its lifetime erased to a raw pointer so it can sit in shared
/// state. Soundness rests on `execute` blocking until `done_shards ==
/// num_shards`, i.e. until every dereference of this pointer has
/// completed — the pointee (on the caller's stack) outlives all uses.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared `&`-calls from many threads are
// fine) and is only dereferenced within the dynamic extent of the
// `execute` call that published it, which keeps the borrow alive.
unsafe impl Send for Job {}

/// Shard-claiming state shared between the caller and the workers.
struct State {
    /// The active job, if any. Cleared by whichever thread finishes the
    /// last shard, which is also the "job done" signal.
    job: Option<Job>,
    /// Total shards in the active job.
    num_shards: usize,
    /// Shards that have finished running.
    done_shards: usize,
    /// Shards not yet claimed from any deque (fast availability check).
    unclaimed: usize,
    /// One persistent deque per participant (index 0 is the caller,
    /// 1..threads are the workers), reseeded with contiguous shard
    /// blocks on each publish.
    deques: Vec<VecDeque<usize>>,
    /// True once any shard closure panicked (the panic is re-raised on
    /// the calling thread after the barrier).
    panicked: bool,
    /// Tells workers to exit their loop.
    shutdown: bool,
}

impl State {
    /// Claims one shard for participant `me`: front of its own deque,
    /// else the back of the first non-empty sibling deque scanning
    /// round-robin from `me + 1` (a steal). Returns the shard index and
    /// whether it was stolen.
    fn claim(&mut self, me: usize) -> Option<(usize, bool)> {
        if self.unclaimed == 0 {
            return None;
        }
        if let Some(i) = self.deques[me].pop_front() {
            self.unclaimed -= 1;
            return Some((i, false));
        }
        let n = self.deques.len();
        for d in 1..n {
            let victim = (me + d) % n;
            if let Some(i) = self.deques[victim].pop_back() {
                self.unclaimed -= 1;
                return Some((i, true));
            }
        }
        None
    }
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when a new job is published (or on shutdown).
    cv_job: Condvar,
    /// Signalled when the last shard of a job completes.
    cv_done: Condvar,
    /// Shards claimed from a sibling's deque rather than the owner's,
    /// accumulated over the pool's lifetime (`busy_ns`-style counter).
    steals: AtomicU64,
}

impl Shared {
    /// Claims and runs shards of the active job until none remain to
    /// claim, then returns (releasing the lock). Shared by workers and
    /// the caller so the calling thread contributes a full worker's
    /// throughput; `me` selects the participant's own deque.
    fn run_shards<'a>(
        &'a self,
        me: usize,
        mut st: std::sync::MutexGuard<'a, State>,
        f: &dyn Fn(usize),
    ) {
        loop {
            if st.job.is_none() {
                return;
            }
            let Some((i, stolen)) = st.claim(me) else {
                return;
            };
            drop(st);
            if stolen {
                self.steals.fetch_add(1, Ordering::Relaxed);
            }
            let ok = catch_unwind(AssertUnwindSafe(|| f(i))).is_ok();
            st = self.state.lock().unwrap();
            st.done_shards += 1;
            if !ok {
                st.panicked = true;
            }
            if st.done_shards == st.num_shards {
                st.job = None;
                self.cv_done.notify_all();
            }
        }
    }
}

/// A fixed-size pool of persistent worker threads executing shard jobs
/// via per-participant deques with work stealing.
///
/// Created once per run (when `threads > 1`); each call to
/// [`WorkerPool::execute`] fans one closure out over shard indices
/// `0..num_shards` and blocks until all have completed. The pool itself
/// carries no job state between calls, so it is irrelevant to
/// checkpointing: snapshots taken from a pooled run restore bit-exactly
/// into a sequential one and vice versa.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
    /// Wall-clock nanoseconds spent inside [`WorkerPool::execute`],
    /// accumulated over the pool's lifetime. Because every parallel
    /// span in a run goes through `execute`, this is the run's total
    /// parallel-phase time — the complement of the sequential global
    /// phase — which the `scale` bench reports per configuration.
    busy_ns: AtomicU64,
}

impl WorkerPool {
    /// Creates a pool delivering `threads`-way parallelism: the calling
    /// thread participates in every job, so `threads - 1` workers are
    /// spawned. `threads` is clamped to at least 1 (an empty pool whose
    /// `execute` simply runs shards inline off the caller's deque).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                num_shards: 0,
                done_shards: 0,
                unclaimed: 0,
                deques: (0..threads).map(|_| VecDeque::new()).collect(),
                panicked: false,
                shutdown: false,
            }),
            cv_job: Condvar::new(),
            cv_done: Condvar::new(),
            steals: AtomicU64::new(0),
        });
        let handles = (1..threads)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let mut st = shared.state.lock().unwrap();
                    loop {
                        if st.shutdown {
                            return;
                        }
                        if let Some(job) = st.job {
                            if st.unclaimed > 0 {
                                // SAFETY: see `Job` — the pointee lives
                                // until `execute` returns, and `execute`
                                // blocks until this shard is done.
                                let f = unsafe { &*job.0 };
                                shared.run_shards(me, st, f);
                                st = shared.state.lock().unwrap();
                                continue;
                            }
                        }
                        st = shared.cv_job.wait(st).unwrap();
                    }
                })
            })
            .collect();
        Self {
            shared,
            handles,
            threads,
            busy_ns: AtomicU64::new(0),
        }
    }

    /// The parallelism this pool delivers (including the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total wall-clock nanoseconds spent inside [`WorkerPool::execute`]
    /// since the pool was created (the run's parallel-phase time).
    pub fn busy_nanos(&self) -> u64 {
        self.busy_ns.load(Ordering::Relaxed)
    }

    /// Shards executed by a participant other than the one whose deque
    /// they were seeded into, since the pool was created. Zero on a
    /// perfectly balanced job; grows when lopsided shard costs leave
    /// some participants idle while others still hold a backlog.
    pub fn steal_count(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Runs `f(i)` exactly once for every `i in 0..num_shards`, spread
    /// across the pool plus the calling thread, and returns only after
    /// all invocations have completed. Panics (on the calling thread)
    /// if any shard closure panicked.
    pub fn execute(&self, num_shards: usize, f: &(dyn Fn(usize) + Sync)) {
        if num_shards == 0 {
            return;
        }
        let span = std::time::Instant::now();
        // SAFETY: the only unsafe act in the workspace — erasing the
        // closure's borrow lifetime so workers can hold it in shared
        // state. Sound because this function blocks (below) until every
        // invocation has completed, so no dereference outlives `f`.
        let erased: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        {
            let mut st = self.shared.state.lock().unwrap();
            debug_assert!(st.job.is_none(), "execute is not reentrant");
            st.job = Some(Job(erased));
            st.num_shards = num_shards;
            st.done_shards = 0;
            st.unclaimed = num_shards;
            st.panicked = false;
            // Seed each participant's deque with a contiguous block —
            // neighbouring shards share cache lines in the runner's
            // dense per-server arrays, and stealing from the *back*
            // keeps the owner on its own block as long as possible.
            let n = self.threads;
            for (p, dq) in st.deques.iter_mut().enumerate() {
                debug_assert!(dq.is_empty(), "stale shards left in a deque");
                dq.clear();
                dq.extend(p * num_shards / n..(p + 1) * num_shards / n);
            }
        }
        self.shared.cv_job.notify_all();
        let st = self.shared.state.lock().unwrap();
        self.shared.run_shards(0, st, f);
        let mut st = self.shared.state.lock().unwrap();
        while st.job.is_some() {
            st = self.shared.cv_done.wait(st).unwrap();
        }
        let panicked = st.panicked;
        drop(st);
        self.busy_ns
            .fetch_add(span.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if panicked {
            panic!("a worker panicked during the parallel shard phase");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.cv_job.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_shard_runs_exactly_once() {
        let pool = WorkerPool::new(4);
        for shards in [1usize, 2, 3, 16, 257] {
            let counts: Vec<AtomicUsize> = (0..shards).map(|_| AtomicUsize::new(0)).collect();
            pool.execute(shards, &|i| {
                counts[i].fetch_add(1, Ordering::SeqCst);
            });
            assert!(counts.iter().all(|c| c.load(Ordering::SeqCst) == 1));
        }
    }

    #[test]
    fn pool_is_reusable_across_many_jobs() {
        let pool = WorkerPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..500 {
            pool.execute(5, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 2500);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert!(pool.handles.is_empty());
        let total = AtomicUsize::new(0);
        pool.execute(7, &|i| {
            total.fetch_add(i, Ordering::SeqCst);
        });
        assert_eq!(total.load(Ordering::SeqCst), 21);
        assert_eq!(pool.steal_count(), 0, "a lone participant cannot steal");
    }

    #[test]
    fn zero_shards_is_a_no_op() {
        let pool = WorkerPool::new(2);
        pool.execute(0, &|_| panic!("must not run"));
    }

    #[test]
    fn more_participants_than_shards_still_covers_every_shard() {
        // Some deques get an empty block; their owners must steal or
        // idle without deadlocking the barrier.
        let pool = WorkerPool::new(8);
        for shards in [1usize, 2, 3, 5] {
            let counts: Vec<AtomicUsize> = (0..shards).map(|_| AtomicUsize::new(0)).collect();
            pool.execute(shards, &|i| {
                counts[i].fetch_add(1, Ordering::SeqCst);
            });
            assert!(counts.iter().all(|c| c.load(Ordering::SeqCst) == 1));
        }
    }

    #[test]
    fn lopsided_shard_costs_trigger_steals() {
        // Two participants, four shards: the caller's block {0, 1}
        // starts with a slow shard, so the worker drains its own block
        // {2, 3} and then steals the caller's backlog.
        let pool = WorkerPool::new(2);
        let slow_ms = if cfg!(miri) { 5 } else { 25 };
        let ran: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.execute(4, &|i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(slow_ms));
            }
            ran[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(ran.iter().all(|c| c.load(Ordering::SeqCst) == 1));
        assert!(
            pool.steal_count() >= 1,
            "the idle worker should have stolen from the slow caller's deque"
        );
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = WorkerPool::new(2);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.execute(4, &|i| {
                if i == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(err.is_err());
        // The pool stays usable after a panicked job (any shards left
        // unclaimed by the aborted job must not leak into the next).
        let total = AtomicUsize::new(0);
        pool.execute(3, &|_| {
            total.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(total.load(Ordering::SeqCst), 3);
    }
}

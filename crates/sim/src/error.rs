use std::fmt;

use crate::ids::{ServerId, VmId};

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A topology must contain at least one server.
    EmptyTopology,
    /// A server index was out of range.
    UnknownServer(ServerId),
    /// A VM index was out of range.
    UnknownVm(VmId),
    /// Attempted to power off a server that still hosts VMs.
    ServerNotEmpty {
        /// The server that was asked to power down.
        server: ServerId,
        /// Number of VMs still placed on it.
        vms: usize,
    },
    /// Attempted to migrate a VM to (or keep it on) a powered-off server.
    ServerOff(ServerId),
    /// The simulation needs at least one VM/trace.
    NoWorkloads,
    /// Placement and trace list disagree on the number of VMs.
    PlacementSizeMismatch {
        /// VMs implied by the placement.
        placement: usize,
        /// Number of traces provided.
        traces: usize,
    },
    /// The per-server model list does not match the topology.
    ModelCountMismatch {
        /// Models provided.
        models: usize,
        /// Servers in the topology.
        servers: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EmptyTopology => write!(f, "topology has no servers"),
            SimError::UnknownServer(s) => write!(f, "unknown server {s}"),
            SimError::UnknownVm(v) => write!(f, "unknown VM {v}"),
            SimError::ServerNotEmpty { server, vms } => {
                write!(
                    f,
                    "cannot power off {server}: {vms} VM(s) still placed on it"
                )
            }
            SimError::ServerOff(s) => {
                write!(f, "cannot place or run a VM on powered-off server {s}")
            }
            SimError::NoWorkloads => write!(f, "simulation requires at least one workload trace"),
            SimError::PlacementSizeMismatch { placement, traces } => write!(
                f,
                "placement covers {placement} VMs but {traces} traces were provided"
            ),
            SimError::ModelCountMismatch { models, servers } => write!(
                f,
                "{models} server models provided for a topology of {servers} servers"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_actor() {
        let e = SimError::ServerNotEmpty {
            server: ServerId(3),
            vms: 2,
        };
        assert!(e.to_string().contains("ServerId(3)"));
        assert!(e.to_string().contains("2 VM"));
    }
}

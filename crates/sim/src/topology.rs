//! Data-center topology: *racks* of blade *enclosures* plus *standalone*
//! servers — the paper's `M` matrix mapping servers to enclosures,
//! generalized so a Group Manager can federate many Enclosure Managers
//! across several racks.
//!
//! Membership is stored in CSR (compressed sparse row) form: one flat
//! `Vec<ServerId>` of enclosure members plus an offset table, and one
//! offset table partitioning the enclosure range into racks. Hot loops
//! that walk every enclosure each epoch read contiguous memory instead of
//! chasing a `Vec` allocation per enclosure.

use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::ids::{EnclosureId, RackId, ServerId};
use crate::Result;

/// The physical organization of the simulated group.
///
/// Servers are numbered densely: enclosure blades first (enclosure 0's
/// blades, then enclosure 1's, …), followed by standalone servers.
/// Enclosures are likewise dense, partitioned into contiguous rack
/// ranges; a topology built without explicit racks has one rack holding
/// every enclosure (the paper's single-group deployments).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// `enclosure_offsets[e]..enclosure_offsets[e + 1]` is enclosure `e`'s
    /// slice of `enclosure_flat`; `len == num_enclosures + 1`.
    enclosure_offsets: Vec<usize>,
    /// Members of every enclosure, concatenated in enclosure order.
    enclosure_flat: Vec<ServerId>,
    /// Servers not in any enclosure (individually racked).
    standalone: Vec<ServerId>,
    /// For each server, its enclosure (if any).
    server_enclosure: Vec<Option<EnclosureId>>,
    /// `rack_offsets[r]..rack_offsets[r + 1]` is rack `r`'s range of
    /// enclosure indices; `len == num_racks + 1`.
    rack_offsets: Vec<usize>,
}

impl Topology {
    /// The paper's 180-server cluster: *"six 20-blade enclosures and sixty
    /// individual servers"* (§4.3).
    pub fn paper_180() -> Self {
        Self::builder().enclosures(6, 20).standalone(60).build()
    }

    /// The paper's 60-server cluster: *"two 20-blade enclosures and twenty
    /// individual servers"*.
    pub fn paper_60() -> Self {
        Self::builder().enclosures(2, 20).standalone(20).build()
    }

    /// A multi-rack data center: `racks` racks, each holding
    /// `enclosures_per_rack` enclosures of `blades` servers, plus
    /// `standalone` individually racked servers at the end.
    pub fn multi_rack(
        racks: usize,
        enclosures_per_rack: usize,
        blades: usize,
        standalone: usize,
    ) -> Self {
        Self::builder()
            .racks(racks, enclosures_per_rack, blades)
            .standalone(standalone)
            .build()
    }

    /// Starts building a custom topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Total number of servers in the group.
    pub fn num_servers(&self) -> usize {
        self.server_enclosure.len()
    }

    /// Number of blade enclosures.
    pub fn num_enclosures(&self) -> usize {
        self.enclosure_offsets.len() - 1
    }

    /// Number of racks (contiguous groups of enclosures). Zero when the
    /// topology has no enclosures at all.
    pub fn num_racks(&self) -> usize {
        self.rack_offsets.len() - 1
    }

    /// All servers, in dense id order.
    pub fn servers(&self) -> impl Iterator<Item = ServerId> + '_ {
        (0..self.num_servers()).map(ServerId)
    }

    /// The servers housed in enclosure `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn enclosure_servers(&self, e: EnclosureId) -> &[ServerId] {
        &self.enclosure_flat[self.enclosure_offsets[e.0]..self.enclosure_offsets[e.0 + 1]]
    }

    /// The enclosures housed in rack `r`, as a dense id range.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn rack_enclosures(&self, r: RackId) -> impl Iterator<Item = EnclosureId> {
        (self.rack_offsets[r.0]..self.rack_offsets[r.0 + 1]).map(EnclosureId)
    }

    /// The rack housing enclosure `e`, or `None` if `e` is out of range.
    pub fn rack_of(&self, e: EnclosureId) -> Option<RackId> {
        if e.0 >= self.num_enclosures() {
            return None;
        }
        // Offsets are sorted, so the owning rack is the partition point.
        let r = self.rack_offsets.partition_point(|&off| off <= e.0) - 1;
        Some(RackId(r))
    }

    /// Number of servers housed in rack `r` (across all its enclosures).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn rack_num_servers(&self, r: RackId) -> usize {
        let enc = self.rack_offsets[r.0]..self.rack_offsets[r.0 + 1];
        self.enclosure_offsets[enc.end] - self.enclosure_offsets[enc.start]
    }

    /// Standalone (non-enclosure) servers.
    pub fn standalone_servers(&self) -> &[ServerId] {
        &self.standalone
    }

    /// The contiguous server-id ranges that partition the fleet for
    /// sharded parallel execution, **weighted by server count**: cut
    /// points aim at the ideal `j·n/max_shards` positions and snap to
    /// the nearest legal boundary, so a lopsided fleet (one huge rack
    /// plus small ones) still spreads evenly across workers instead of
    /// idling all but the big rack's thread.
    ///
    /// Legal cut points are enclosure boundaries in the blade region
    /// (an enclosure is never split — its EM epoch must see all of its
    /// members in one shard) and any server boundary in the standalone
    /// tail. At most `max_shards` ranges are returned; fewer when the
    /// topology has fewer legal boundaries than requested.
    ///
    /// Ranges are disjoint, ascending, non-empty, and cover every
    /// server exactly once — concatenating them in order yields
    /// `0..num_servers()`, which is what makes shard-order reductions
    /// equivalent to a sequential server-order walk. The partition is
    /// a pure load-balancing choice: results are bit-identical for any
    /// `max_shards`.
    pub fn shard_ranges(&self, max_shards: usize) -> Vec<std::ops::Range<usize>> {
        let n = self.num_servers();
        let k = max_shards.max(1);
        let flat = self.enclosure_flat.len();
        // Legal cut positions, strictly inside 0..n, ascending: every
        // enclosure boundary (the last one is `flat`, the blade/
        // standalone frontier), then every standalone server boundary.
        let mut valid: Vec<usize> = self.enclosure_offsets[1..].to_vec();
        valid.extend(flat + 1..n);
        valid.retain(|&c| c > 0 && c < n);
        valid.dedup(); // zero-blade enclosures repeat an offset
        let mut shards = Vec::with_capacity(k);
        let mut start = 0usize;
        for j in 1..k {
            // Nearest legal cut to the ideal j/k position that still
            // leaves this shard non-empty (ties break low).
            let ideal = (n * j + k / 2) / k;
            let open = valid.partition_point(|&c| c <= start);
            let cands = &valid[open..];
            if cands.is_empty() {
                break;
            }
            let at = cands.partition_point(|&c| c < ideal);
            let cut = if at == 0 {
                cands[0]
            } else if at == cands.len() || ideal - cands[at - 1] <= cands[at] - ideal {
                cands[at - 1]
            } else {
                cands[at]
            };
            if cut <= start {
                continue;
            }
            shards.push(start..cut);
            start = cut;
        }
        shards.push(start..n);
        shards
    }

    /// The enclosure housing `s`, or `None` for standalone servers.
    pub fn enclosure_of(&self, s: ServerId) -> Option<EnclosureId> {
        self.server_enclosure.get(s.0).copied().flatten()
    }

    /// Validates a server id against this topology.
    pub fn check_server(&self, s: ServerId) -> Result<()> {
        if s.0 < self.num_servers() {
            Ok(())
        } else {
            Err(SimError::UnknownServer(s))
        }
    }
}

/// Builder for [`Topology`]. Enclosures added first get the low server
/// ids; standalone servers are appended last.
///
/// Enclosures added through [`TopologyBuilder::rack`] /
/// [`TopologyBuilder::racks`] form explicit racks; enclosures added
/// loosely (via [`TopologyBuilder::enclosure`] or
/// [`TopologyBuilder::enclosures`]) coalesce into a single implicit rack
/// per run of consecutive loose additions — so the paper's single-group
/// builders keep exactly one rack.
#[derive(Debug, Default, Clone)]
pub struct TopologyBuilder {
    enclosure_sizes: Vec<usize>,
    /// `(enclosure_count, explicit)` spans partitioning `enclosure_sizes`.
    rack_spans: Vec<(usize, bool)>,
    standalone: usize,
}

impl TopologyBuilder {
    fn push_loose(&mut self, count: usize) {
        match self.rack_spans.last_mut() {
            Some((n, false)) => *n += count,
            _ => self.rack_spans.push((count, false)),
        }
    }

    /// Adds `count` enclosures of `blades` servers each.
    pub fn enclosures(mut self, count: usize, blades: usize) -> Self {
        self.enclosure_sizes
            .extend(std::iter::repeat_n(blades, count));
        self.push_loose(count);
        self
    }

    /// Adds one enclosure with `blades` servers.
    pub fn enclosure(mut self, blades: usize) -> Self {
        self.enclosure_sizes.push(blades);
        self.push_loose(1);
        self
    }

    /// Adds one rack of `enclosures` enclosures with `blades` servers each.
    pub fn rack(mut self, enclosures: usize, blades: usize) -> Self {
        self.enclosure_sizes
            .extend(std::iter::repeat_n(blades, enclosures));
        self.rack_spans.push((enclosures, true));
        self
    }

    /// Adds `count` identical racks, each of `enclosures` enclosures with
    /// `blades` servers.
    pub fn racks(mut self, count: usize, enclosures: usize, blades: usize) -> Self {
        for _ in 0..count {
            self = self.rack(enclosures, blades);
        }
        self
    }

    /// Adds `count` standalone servers.
    pub fn standalone(mut self, count: usize) -> Self {
        self.standalone += count;
        self
    }

    /// Builds the topology.
    ///
    /// # Panics
    ///
    /// Panics if the topology would contain zero servers; use
    /// [`TopologyBuilder::try_build`] to handle that case as an error.
    pub fn build(self) -> Topology {
        self.try_build().expect("topology must contain servers")
    }

    /// Builds the topology, returning an error for an empty one.
    pub fn try_build(self) -> Result<Topology> {
        let total: usize = self.enclosure_sizes.iter().sum::<usize>() + self.standalone;
        if total == 0 {
            return Err(SimError::EmptyTopology);
        }
        let num_enclosures = self.enclosure_sizes.len();
        let flat_len: usize = self.enclosure_sizes.iter().sum();
        let mut enclosure_offsets = Vec::with_capacity(num_enclosures + 1);
        let mut enclosure_flat = Vec::with_capacity(flat_len);
        let mut server_enclosure = Vec::with_capacity(total);
        enclosure_offsets.push(0);
        let mut next = 0usize;
        for (e, &size) in self.enclosure_sizes.iter().enumerate() {
            enclosure_flat.extend((next..next + size).map(ServerId));
            server_enclosure.extend(std::iter::repeat_n(Some(EnclosureId(e)), size));
            next += size;
            enclosure_offsets.push(enclosure_flat.len());
        }
        let standalone: Vec<ServerId> = (next..next + self.standalone).map(ServerId).collect();
        server_enclosure.extend(std::iter::repeat_n(None, self.standalone));
        // Empty spans can arise from `rack(0, _)` / `enclosures(0, _)`;
        // drop them so every rack is non-empty.
        let mut rack_offsets = Vec::with_capacity(self.rack_spans.len() + 1);
        rack_offsets.push(0);
        let mut enc_cursor = 0usize;
        for &(count, _) in &self.rack_spans {
            if count == 0 {
                continue;
            }
            enc_cursor += count;
            rack_offsets.push(enc_cursor);
        }
        debug_assert_eq!(enc_cursor, num_enclosures);
        Ok(Topology {
            enclosure_offsets,
            enclosure_flat,
            standalone,
            server_enclosure,
            rack_offsets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_180_shape() {
        let t = Topology::paper_180();
        assert_eq!(t.num_servers(), 180);
        assert_eq!(t.num_enclosures(), 6);
        assert_eq!(t.standalone_servers().len(), 60);
        assert_eq!(t.enclosure_servers(EnclosureId(0)).len(), 20);
        // Loose enclosures coalesce into a single implicit rack.
        assert_eq!(t.num_racks(), 1);
        assert_eq!(t.rack_num_servers(RackId(0)), 120);
    }

    #[test]
    fn paper_60_shape() {
        let t = Topology::paper_60();
        assert_eq!(t.num_servers(), 60);
        assert_eq!(t.num_enclosures(), 2);
        assert_eq!(t.standalone_servers().len(), 20);
        assert_eq!(t.num_racks(), 1);
    }

    #[test]
    fn server_ids_are_dense_and_enclosures_first() {
        let t = Topology::builder()
            .enclosure(2)
            .enclosure(3)
            .standalone(1)
            .build();
        assert_eq!(t.num_servers(), 6);
        assert_eq!(t.enclosure_of(ServerId(0)), Some(EnclosureId(0)));
        assert_eq!(t.enclosure_of(ServerId(1)), Some(EnclosureId(0)));
        assert_eq!(t.enclosure_of(ServerId(2)), Some(EnclosureId(1)));
        assert_eq!(t.enclosure_of(ServerId(4)), Some(EnclosureId(1)));
        assert_eq!(t.enclosure_of(ServerId(5)), None);
        assert_eq!(t.standalone_servers(), &[ServerId(5)]);
    }

    #[test]
    fn membership_lists_match_reverse_map() {
        let t = Topology::paper_180();
        for e in 0..t.num_enclosures() {
            for &s in t.enclosure_servers(EnclosureId(e)) {
                assert_eq!(t.enclosure_of(s), Some(EnclosureId(e)));
            }
        }
        for &s in t.standalone_servers() {
            assert_eq!(t.enclosure_of(s), None);
        }
    }

    #[test]
    fn multi_rack_partitions_enclosures() {
        let t = Topology::multi_rack(4, 3, 8, 16);
        assert_eq!(t.num_servers(), 4 * 3 * 8 + 16);
        assert_eq!(t.num_enclosures(), 12);
        assert_eq!(t.num_racks(), 4);
        for r in 0..4 {
            let encs: Vec<EnclosureId> = t.rack_enclosures(RackId(r)).collect();
            assert_eq!(encs.len(), 3);
            assert_eq!(encs[0], EnclosureId(r * 3));
            for &e in &encs {
                assert_eq!(t.rack_of(e), Some(RackId(r)));
            }
            assert_eq!(t.rack_num_servers(RackId(r)), 24);
        }
        assert_eq!(t.rack_of(EnclosureId(12)), None);
    }

    #[test]
    fn mixed_racks_and_loose_enclosures() {
        let t = Topology::builder()
            .rack(2, 4)
            .enclosure(6)
            .enclosure(6)
            .rack(1, 4)
            .build();
        // rack 0 = explicit (2 encs), rack 1 = the two loose enclosures,
        // rack 2 = explicit (1 enc).
        assert_eq!(t.num_enclosures(), 5);
        assert_eq!(t.num_racks(), 3);
        assert_eq!(t.rack_of(EnclosureId(1)), Some(RackId(0)));
        assert_eq!(t.rack_of(EnclosureId(2)), Some(RackId(1)));
        assert_eq!(t.rack_of(EnclosureId(3)), Some(RackId(1)));
        assert_eq!(t.rack_of(EnclosureId(4)), Some(RackId(2)));
        assert_eq!(t.rack_num_servers(RackId(1)), 12);
    }

    #[test]
    fn shard_ranges_partition_every_server_in_order() {
        let cases = [
            Topology::paper_180(),
            Topology::paper_60(),
            Topology::multi_rack(4, 3, 8, 16),
            Topology::builder().standalone(5).build(),
            Topology::builder().racks(2, 2, 4).build(),
        ];
        for t in cases {
            for k in [1, 2, 3, 4, 7, 64] {
                let shards = t.shard_ranges(k);
                assert!(shards.len() <= k.max(1));
                let mut covered = 0usize;
                for r in &shards {
                    assert!(!r.is_empty());
                    assert_eq!(r.start, covered, "shards must be ascending and dense");
                    covered = r.end;
                    // Blade-region cuts never split an enclosure.
                    for boundary in [r.start, r.end] {
                        if boundary < t.enclosure_flat.len() {
                            assert!(
                                t.enclosure_offsets.contains(&boundary),
                                "cut at {boundary} splits an enclosure (k={k})"
                            );
                        }
                    }
                }
                assert_eq!(covered, t.num_servers());
            }
        }
        // Asking for one shard returns the whole fleet.
        assert_eq!(Topology::paper_180().shard_ranges(1), vec![0..180]);
        // Two shards of the 180-cluster split near the middle, snapped
        // to an enclosure boundary (ties break low: 80, not 100).
        assert_eq!(Topology::paper_180().shard_ranges(2), vec![0..80, 80..180]);
        // Standalone-only fleets can cut anywhere.
        assert_eq!(
            Topology::builder().standalone(6).build().shard_ranges(3),
            vec![0..2, 2..4, 4..6]
        );
    }

    #[test]
    fn shard_ranges_balance_lopsided_topologies_by_server_count() {
        // One 4x rack (4 enclosures of 32) plus four small racks
        // (1 enclosure of 8 each) and a few standalone servers: a naive
        // per-rack split would put 128 of 166 servers on one worker.
        let t = Topology::builder()
            .rack(4, 32)
            .racks(4, 1, 8)
            .standalone(6)
            .build();
        assert_eq!(t.num_servers(), 166);
        let shards = t.shard_ranges(4);
        assert_eq!(shards.len(), 4);
        let sizes: Vec<usize> = shards.iter().map(|r| r.len()).collect();
        // Ideal is 41.5 per shard; enclosure granularity (32s and 8s)
        // caps the achievable balance, but no shard may hog the fleet.
        let max = *sizes.iter().max().unwrap();
        assert!(max <= 64, "largest shard {max} of {sizes:?} is unbalanced");
        // Every blade-region cut is an enclosure boundary.
        for r in &shards {
            if r.end < t.enclosure_flat.len() {
                assert!(t.enclosure_offsets.contains(&r.end));
            }
        }
        // More shards than legal boundaries degrades gracefully.
        let fine = t.shard_ranges(1000);
        assert_eq!(fine.iter().map(|r| r.len()).sum::<usize>(), 166);
        // 8 enclosures + 6 standalone servers = 14 indivisible units.
        assert_eq!(fine.len(), 14);
    }

    #[test]
    fn standalone_only_topology_has_no_racks() {
        let t = Topology::builder().standalone(3).build();
        assert_eq!(t.num_enclosures(), 0);
        assert_eq!(t.num_racks(), 0);
    }

    #[test]
    fn empty_topology_rejected() {
        assert!(matches!(
            Topology::builder().try_build(),
            Err(SimError::EmptyTopology)
        ));
    }

    #[test]
    fn zero_size_rack_spans_are_dropped() {
        let t = Topology::builder()
            .racks(2, 2, 4)
            .rack(0, 4)
            .enclosures(0, 9)
            .standalone(1)
            .build();
        assert_eq!(t.num_racks(), 2);
        assert_eq!(t.num_enclosures(), 4);
    }

    #[test]
    fn check_server_validates_range() {
        let t = Topology::paper_60();
        assert!(t.check_server(ServerId(59)).is_ok());
        assert!(t.check_server(ServerId(60)).is_err());
    }

    #[test]
    fn out_of_range_enclosure_lookup_is_none() {
        let t = Topology::paper_60();
        assert_eq!(t.enclosure_of(ServerId(999)), None);
    }

    #[test]
    fn serde_roundtrip_preserves_structure() {
        let t = Topology::multi_rack(2, 2, 4, 4);
        let json = serde_json::to_string(&t).unwrap();
        let back: Topology = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}

//! Data-center topology: one *group* (rack or data center) containing
//! blade *enclosures* and *standalone servers* — the paper's `M` matrix
//! mapping servers to enclosures.

use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::ids::{EnclosureId, ServerId};
use crate::Result;

/// The physical organization of the simulated group.
///
/// Servers are numbered densely: enclosure blades first (enclosure 0's
/// blades, then enclosure 1's, …), followed by standalone servers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// `enclosures[e]` = list of servers housed in enclosure `e`.
    enclosure_members: Vec<Vec<ServerId>>,
    /// Servers not in any enclosure (individually racked).
    standalone: Vec<ServerId>,
    /// For each server, its enclosure (if any).
    server_enclosure: Vec<Option<EnclosureId>>,
}

impl Topology {
    /// The paper's 180-server cluster: *"six 20-blade enclosures and sixty
    /// individual servers"* (§4.3).
    pub fn paper_180() -> Self {
        Self::builder().enclosures(6, 20).standalone(60).build()
    }

    /// The paper's 60-server cluster: *"two 20-blade enclosures and twenty
    /// individual servers"*.
    pub fn paper_60() -> Self {
        Self::builder().enclosures(2, 20).standalone(20).build()
    }

    /// Starts building a custom topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Total number of servers in the group.
    pub fn num_servers(&self) -> usize {
        self.server_enclosure.len()
    }

    /// Number of blade enclosures.
    pub fn num_enclosures(&self) -> usize {
        self.enclosure_members.len()
    }

    /// All servers, in dense id order.
    pub fn servers(&self) -> impl Iterator<Item = ServerId> + '_ {
        (0..self.num_servers()).map(ServerId)
    }

    /// The servers housed in enclosure `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn enclosure_servers(&self, e: EnclosureId) -> &[ServerId] {
        &self.enclosure_members[e.0]
    }

    /// Standalone (non-enclosure) servers.
    pub fn standalone_servers(&self) -> &[ServerId] {
        &self.standalone
    }

    /// The enclosure housing `s`, or `None` for standalone servers.
    pub fn enclosure_of(&self, s: ServerId) -> Option<EnclosureId> {
        self.server_enclosure.get(s.0).copied().flatten()
    }

    /// Validates a server id against this topology.
    pub fn check_server(&self, s: ServerId) -> Result<()> {
        if s.0 < self.num_servers() {
            Ok(())
        } else {
            Err(SimError::UnknownServer(s))
        }
    }
}

/// Builder for [`Topology`]. Enclosures added first get the low server
/// ids; standalone servers are appended last.
#[derive(Debug, Default, Clone)]
pub struct TopologyBuilder {
    enclosure_sizes: Vec<usize>,
    standalone: usize,
}

impl TopologyBuilder {
    /// Adds `count` enclosures of `blades` servers each.
    pub fn enclosures(mut self, count: usize, blades: usize) -> Self {
        self.enclosure_sizes
            .extend(std::iter::repeat_n(blades, count));
        self
    }

    /// Adds one enclosure with `blades` servers.
    pub fn enclosure(mut self, blades: usize) -> Self {
        self.enclosure_sizes.push(blades);
        self
    }

    /// Adds `count` standalone servers.
    pub fn standalone(mut self, count: usize) -> Self {
        self.standalone += count;
        self
    }

    /// Builds the topology.
    ///
    /// # Panics
    ///
    /// Panics if the topology would contain zero servers; use
    /// [`TopologyBuilder::try_build`] to handle that case as an error.
    pub fn build(self) -> Topology {
        self.try_build().expect("topology must contain servers")
    }

    /// Builds the topology, returning an error for an empty one.
    pub fn try_build(self) -> Result<Topology> {
        let total: usize = self.enclosure_sizes.iter().sum::<usize>() + self.standalone;
        if total == 0 {
            return Err(SimError::EmptyTopology);
        }
        let mut enclosure_members = Vec::with_capacity(self.enclosure_sizes.len());
        let mut server_enclosure = Vec::with_capacity(total);
        let mut next = 0usize;
        for (e, &size) in self.enclosure_sizes.iter().enumerate() {
            let members: Vec<ServerId> = (next..next + size).map(ServerId).collect();
            server_enclosure.extend(std::iter::repeat_n(Some(EnclosureId(e)), size));
            next += size;
            enclosure_members.push(members);
        }
        let standalone: Vec<ServerId> = (next..next + self.standalone).map(ServerId).collect();
        server_enclosure.extend(std::iter::repeat_n(None, self.standalone));
        Ok(Topology {
            enclosure_members,
            standalone,
            server_enclosure,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_180_shape() {
        let t = Topology::paper_180();
        assert_eq!(t.num_servers(), 180);
        assert_eq!(t.num_enclosures(), 6);
        assert_eq!(t.standalone_servers().len(), 60);
        assert_eq!(t.enclosure_servers(EnclosureId(0)).len(), 20);
    }

    #[test]
    fn paper_60_shape() {
        let t = Topology::paper_60();
        assert_eq!(t.num_servers(), 60);
        assert_eq!(t.num_enclosures(), 2);
        assert_eq!(t.standalone_servers().len(), 20);
    }

    #[test]
    fn server_ids_are_dense_and_enclosures_first() {
        let t = Topology::builder()
            .enclosure(2)
            .enclosure(3)
            .standalone(1)
            .build();
        assert_eq!(t.num_servers(), 6);
        assert_eq!(t.enclosure_of(ServerId(0)), Some(EnclosureId(0)));
        assert_eq!(t.enclosure_of(ServerId(1)), Some(EnclosureId(0)));
        assert_eq!(t.enclosure_of(ServerId(2)), Some(EnclosureId(1)));
        assert_eq!(t.enclosure_of(ServerId(4)), Some(EnclosureId(1)));
        assert_eq!(t.enclosure_of(ServerId(5)), None);
        assert_eq!(t.standalone_servers(), &[ServerId(5)]);
    }

    #[test]
    fn membership_lists_match_reverse_map() {
        let t = Topology::paper_180();
        for e in 0..t.num_enclosures() {
            for &s in t.enclosure_servers(EnclosureId(e)) {
                assert_eq!(t.enclosure_of(s), Some(EnclosureId(e)));
            }
        }
        for &s in t.standalone_servers() {
            assert_eq!(t.enclosure_of(s), None);
        }
    }

    #[test]
    fn empty_topology_rejected() {
        assert!(matches!(
            Topology::builder().try_build(),
            Err(SimError::EmptyTopology)
        ));
    }

    #[test]
    fn check_server_validates_range() {
        let t = Topology::paper_60();
        assert!(t.check_server(ServerId(59)).is_ok());
        assert!(t.check_server(ServerId(60)).is_err());
    }

    #[test]
    fn out_of_range_enclosure_lookup_is_none() {
        let t = Topology::paper_60();
        assert_eq!(t.enclosure_of(ServerId(999)), None);
    }
}

//! Cooling plant: per-zone CRAC units.
//!
//! The paper closes (§7) by proposing to extend the coordination
//! architecture *"to include coordination with the equivalent spectrum of
//! solutions in the performance and cooling domains"*. This module
//! provides the cooling-domain plant for that extension: each zone
//! (typically one blade enclosure, plus one zone for the standalone
//! servers) is served by a CRAC unit whose airflow removes the zone's
//! heat. The inlet temperature follows the standard mixing model
//!
//! ```text
//! T_inlet = T_supply + q_zone / (c_air · airflow)
//! ```
//!
//! and fan power follows the cube law
//! `P_fan = P_ref · (airflow / airflow_ref)³` — which is exactly why
//! *balancing* heat across zones (what the coordinated architecture's
//! enclosure budgets do) saves cooling energy: the cube of the mean is
//! far below the mean of the cubes.

use serde::{Deserialize, Serialize};

/// Parameters of one CRAC unit and its zone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CracConfig {
    /// Supply (cold-aisle) air temperature, °C.
    pub supply_c: f64,
    /// Inlet temperature the facility wants to hold, °C.
    pub setpoint_c: f64,
    /// Effective heat capacity flow per unit airflow, W/°C at airflow 1.0
    /// (i.e. `c_air · ṁ_ref`).
    pub heat_capacity_flow: f64,
    /// Fan power at reference airflow 1.0, watts.
    pub fan_power_ref_w: f64,
    /// Minimum airflow (fraction of reference; fans never fully stop).
    pub airflow_min: f64,
    /// Maximum airflow (fraction of reference).
    pub airflow_max: f64,
}

impl CracConfig {
    /// A config sized for a zone with the given maximum IT power: at max
    /// airflow the zone can dissipate `max_zone_watts` while holding the
    /// setpoint.
    pub fn for_zone(max_zone_watts: f64) -> Self {
        let supply_c = 18.0;
        let setpoint_c = 27.0; // ASHRAE-ish allowable inlet
        let airflow_max = 1.0;
        // q = heat_capacity_flow · airflow · (setpoint − supply)
        let heat_capacity_flow = max_zone_watts / (airflow_max * (setpoint_c - supply_c));
        Self {
            supply_c,
            setpoint_c,
            heat_capacity_flow,
            // Cooling overhead ≈ 25% of zone max IT power at full blast —
            // a mid-2000s CRAC efficiency.
            fan_power_ref_w: 0.25 * max_zone_watts,
            airflow_min: 0.15,
            airflow_max,
        }
    }

    /// Inlet temperature for a zone dissipating `zone_watts` at `airflow`.
    pub fn inlet_c(&self, zone_watts: f64, airflow: f64) -> f64 {
        let flow = airflow.max(self.airflow_min);
        self.supply_c + zone_watts / (self.heat_capacity_flow * flow)
    }

    /// Fan power at `airflow` (cube law).
    pub fn fan_power_w(&self, airflow: f64) -> f64 {
        let a = airflow.clamp(self.airflow_min, self.airflow_max);
        self.fan_power_ref_w * a * a * a
    }

    /// The airflow needed to hold the setpoint at `zone_watts`, clamped
    /// to the actuation range.
    pub fn airflow_for(&self, zone_watts: f64) -> f64 {
        let needed = zone_watts / (self.heat_capacity_flow * (self.setpoint_c - self.supply_c));
        needed.clamp(self.airflow_min, self.airflow_max)
    }
}

/// The cooling plant for a set of zones.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoolingPlant {
    configs: Vec<CracConfig>,
    airflow: Vec<f64>,
    cum_fan_energy: f64,
    overheated_ticks: u64,
    ticks: u64,
}

impl CoolingPlant {
    /// Creates a plant with one CRAC per zone, starting at minimum
    /// airflow.
    pub fn new(configs: Vec<CracConfig>) -> Self {
        let airflow = configs.iter().map(|c| c.airflow_min).collect();
        Self {
            configs,
            airflow,
            cum_fan_energy: 0.0,
            overheated_ticks: 0,
            ticks: 0,
        }
    }

    /// Number of zones.
    pub fn num_zones(&self) -> usize {
        self.configs.len()
    }

    /// Current airflow of zone `z`.
    pub fn airflow(&self, z: usize) -> f64 {
        self.airflow[z]
    }

    /// Sets zone `z`'s airflow (clamped to the CRAC's range) — the
    /// actuator a cooling controller writes.
    pub fn set_airflow(&mut self, z: usize, airflow: f64) {
        let c = &self.configs[z];
        self.airflow[z] = airflow.clamp(c.airflow_min, c.airflow_max);
    }

    /// The CRAC configuration of zone `z`.
    pub fn config(&self, z: usize) -> &CracConfig {
        &self.configs[z]
    }

    /// Advances one tick given each zone's IT power. Returns this tick's
    /// total fan power. Records overheating (any inlet above setpoint
    /// + 1 °C).
    pub fn step(&mut self, zone_watts: &[f64]) -> f64 {
        debug_assert_eq!(zone_watts.len(), self.configs.len());
        let mut fan_total = 0.0;
        let mut overheated = false;
        for (z, &q) in zone_watts.iter().enumerate() {
            let cfg = &self.configs[z];
            fan_total += cfg.fan_power_w(self.airflow[z]);
            if cfg.inlet_c(q, self.airflow[z]) > cfg.setpoint_c + 1.0 {
                overheated = true;
            }
        }
        if overheated {
            self.overheated_ticks += 1;
        }
        self.cum_fan_energy += fan_total;
        self.ticks += 1;
        fan_total
    }

    /// Total fan energy so far (W·ticks).
    pub fn fan_energy(&self) -> f64 {
        self.cum_fan_energy
    }

    /// Mean fan power over the run, watts.
    pub fn mean_fan_power(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.cum_fan_energy / self.ticks as f64
        }
    }

    /// Fraction of ticks in which some inlet exceeded the setpoint band.
    pub fn overheated_fraction(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.overheated_ticks as f64 / self.ticks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CracConfig {
        CracConfig::for_zone(2_000.0)
    }

    #[test]
    fn sizing_holds_setpoint_at_max_load_full_airflow() {
        let c = cfg();
        let inlet = c.inlet_c(2_000.0, c.airflow_max);
        assert!((inlet - c.setpoint_c).abs() < 1e-9);
    }

    #[test]
    fn fan_power_follows_cube_law() {
        let c = cfg();
        let full = c.fan_power_w(1.0);
        let half = c.fan_power_w(0.5);
        assert!((half / full - 0.125).abs() < 1e-9);
    }

    #[test]
    fn airflow_for_load_is_inverse_of_inlet_model() {
        let c = cfg();
        for q in [200.0, 800.0, 1_500.0] {
            let a = c.airflow_for(q);
            assert!(c.inlet_c(q, a) <= c.setpoint_c + 1e-9);
        }
    }

    #[test]
    fn balanced_zones_cool_cheaper_than_skewed() {
        // The cube law: 2 kW split 1+1 costs far less than 2+0.
        let configs = vec![CracConfig::for_zone(2_000.0); 2];
        let mut balanced = CoolingPlant::new(configs.clone());
        let mut skewed = CoolingPlant::new(configs);
        for _ in 0..100 {
            for z in 0..2 {
                let a = balanced.config(z).airflow_for(1_000.0);
                balanced.set_airflow(z, a);
            }
            balanced.step(&[1_000.0, 1_000.0]);
            let a0 = skewed.config(0).airflow_for(2_000.0);
            let a1 = skewed.config(1).airflow_for(0.0);
            skewed.set_airflow(0, a0);
            skewed.set_airflow(1, a1);
            skewed.step(&[2_000.0, 0.0]);
        }
        assert!(
            balanced.fan_energy() < 0.5 * skewed.fan_energy(),
            "balanced {:.0} vs skewed {:.0}",
            balanced.fan_energy(),
            skewed.fan_energy()
        );
    }

    #[test]
    fn underprovisioned_airflow_registers_overheating() {
        let mut plant = CoolingPlant::new(vec![cfg()]);
        plant.set_airflow(0, 0.2);
        plant.step(&[1_800.0]);
        assert!(plant.overheated_fraction() > 0.0);
    }

    #[test]
    fn airflow_clamped_to_range() {
        let mut plant = CoolingPlant::new(vec![cfg()]);
        plant.set_airflow(0, 5.0);
        assert_eq!(plant.airflow(0), plant.config(0).airflow_max);
        plant.set_airflow(0, 0.0);
        assert_eq!(plant.airflow(0), plant.config(0).airflow_min);
    }
}

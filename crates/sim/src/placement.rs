//! VM-to-server placement — the paper's `X` matrix (`X_ij = 1` iff VM `j`
//! runs on server `i`), stored densely as one host per VM, since each VM
//! is placed on exactly one server (paper Figure 6, constraint (6)).

use serde::{Deserialize, Serialize};

use crate::ids::{ServerId, VmId};

/// A complete assignment of every VM to exactly one server.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    host: Vec<ServerId>,
}

/// One VM move produced by diffing two placements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Migration {
    /// The VM being moved.
    pub vm: VmId,
    /// Where it currently runs.
    pub from: ServerId,
    /// Where it should run next.
    pub to: ServerId,
}

impl Placement {
    /// One VM per server in id order, wrapping round-robin if there are
    /// more VMs than servers — the paper's initial deployment (180
    /// workloads on 180 servers).
    pub fn one_per_server(num_vms: usize, num_servers: usize) -> Self {
        assert!(num_servers > 0, "placement needs at least one server");
        Self {
            host: (0..num_vms).map(|j| ServerId(j % num_servers)).collect(),
        }
    }

    /// Builds a placement from an explicit host list (`host[j]` = server of
    /// VM `j`).
    pub fn from_hosts(host: Vec<ServerId>) -> Self {
        Self { host }
    }

    /// Number of VMs covered.
    pub fn num_vms(&self) -> usize {
        self.host.len()
    }

    /// The server hosting `vm`.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is out of range.
    pub fn host_of(&self, vm: VmId) -> ServerId {
        self.host[vm.0]
    }

    /// Reassigns `vm` to `server`.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is out of range.
    pub fn assign(&mut self, vm: VmId, server: ServerId) {
        self.host[vm.0] = server;
    }

    /// Iterates `(vm, host)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VmId, ServerId)> + '_ {
        self.host.iter().enumerate().map(|(j, &s)| (VmId(j), s))
    }

    /// The VMs currently placed on `server`. O(num_vms); the engine keeps
    /// faster per-server lists for the hot path.
    pub fn vms_on(&self, server: ServerId) -> Vec<VmId> {
        self.iter()
            .filter(|&(_, s)| s == server)
            .map(|(v, _)| v)
            .collect()
    }

    /// The set of servers hosting at least one VM, deduplicated.
    pub fn used_servers(&self) -> Vec<ServerId> {
        let mut used: Vec<ServerId> = self.host.clone();
        used.sort();
        used.dedup();
        used
    }

    /// The migrations needed to transform `self` into `target`
    /// (VMs whose host differs). Placements must cover the same VMs.
    ///
    /// # Panics
    ///
    /// Panics if the two placements have different sizes.
    pub fn diff(&self, target: &Placement) -> Vec<Migration> {
        assert_eq!(
            self.host.len(),
            target.host.len(),
            "placements must cover the same VMs"
        );
        self.iter()
            .zip(target.iter())
            .filter(|((_, a), (_, b))| a != b)
            .map(|((vm, from), (_, to))| Migration { vm, from, to })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_per_server_is_identity_when_equal() {
        let p = Placement::one_per_server(4, 4);
        for j in 0..4 {
            assert_eq!(p.host_of(VmId(j)), ServerId(j));
        }
    }

    #[test]
    fn one_per_server_wraps_round_robin() {
        let p = Placement::one_per_server(5, 3);
        assert_eq!(p.host_of(VmId(3)), ServerId(0));
        assert_eq!(p.host_of(VmId(4)), ServerId(1));
    }

    #[test]
    fn vms_on_lists_residents() {
        let p = Placement::one_per_server(5, 3);
        assert_eq!(p.vms_on(ServerId(0)), vec![VmId(0), VmId(3)]);
        assert_eq!(p.vms_on(ServerId(2)), vec![VmId(2)]);
    }

    #[test]
    fn used_servers_deduplicates() {
        let p = Placement::from_hosts(vec![ServerId(2), ServerId(0), ServerId(2)]);
        assert_eq!(p.used_servers(), vec![ServerId(0), ServerId(2)]);
    }

    #[test]
    fn diff_lists_only_moves() {
        let a = Placement::from_hosts(vec![ServerId(0), ServerId(1), ServerId(2)]);
        let b = Placement::from_hosts(vec![ServerId(0), ServerId(2), ServerId(2)]);
        let moves = a.diff(&b);
        assert_eq!(
            moves,
            vec![Migration {
                vm: VmId(1),
                from: ServerId(1),
                to: ServerId(2)
            }]
        );
    }

    #[test]
    fn applying_diff_reaches_target() {
        let a = Placement::from_hosts(vec![ServerId(0), ServerId(1), ServerId(0), ServerId(3)]);
        let b = Placement::from_hosts(vec![ServerId(1), ServerId(1), ServerId(3), ServerId(3)]);
        let mut cur = a.clone();
        for m in a.diff(&b) {
            assert_eq!(cur.host_of(m.vm), m.from);
            cur.assign(m.vm, m.to);
        }
        assert_eq!(cur, b);
    }

    #[test]
    #[should_panic(expected = "same VMs")]
    fn diff_rejects_size_mismatch() {
        let a = Placement::one_per_server(2, 2);
        let b = Placement::one_per_server(3, 3);
        let _ = a.diff(&b);
    }
}

//! The tick-driven simulation engine.

use std::ops::Range;

use nps_models::{ModelTable, PState, ServerModel};
use nps_traces::UtilTrace;

use crate::config::SimConfig;
use crate::error::SimError;
use crate::events::{Event, EventLog};
use crate::ids::{EnclosureId, ServerId, VmId};
use crate::placement::Placement;
use crate::reduce;
use crate::thermal::ThermalState;
use crate::topology::Topology;
use crate::Result;

/// Per-VM measurements from the last simulated tick.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VmObservation {
    /// Work the VM wanted this tick (fraction of a full-speed server).
    pub demand: f64,
    /// Work the host granted before migration penalty (capacity share).
    pub granted: f64,
    /// Work actually completed (granted × migration penalty).
    pub delivered: f64,
}

/// The trace-driven data-center simulator.
///
/// Time advances in discrete ticks via [`Simulation::step`]. Between
/// steps, controllers read sensors (utilization, power at server /
/// enclosure / group level) and write actuators (P-states, power on/off,
/// migrations). Within one tick, multiple P-state writes to the same
/// server are last-writer-wins — exactly the actuator overlap that makes
/// uncoordinated controllers fight (paper §2.3); the engine counts such
/// conflicts for diagnosis.
#[derive(Debug, Clone)]
pub struct Simulation {
    cfg: SimConfig,
    topo: Topology,
    models: Vec<ServerModel>,
    /// Flattened structure-of-arrays view of `models`, used by the
    /// per-tick hot loop (bit-identical to the per-object lookups).
    table: ModelTable,
    traces: Vec<UtilTrace>,
    placement: Placement,
    residents: Vec<Vec<VmId>>,
    on: Vec<bool>,
    pstate: Vec<PState>,
    mig_until: Vec<u64>,
    boot_until: Vec<u64>,
    tick: u64,
    // Last-tick observations.
    util: Vec<f64>,
    power: Vec<f64>,
    vm_obs: Vec<VmObservation>,
    // Cumulative accumulators (units: value·ticks).
    cum_power: Vec<f64>,
    cum_enc_power: Vec<f64>,
    cum_util: Vec<f64>,
    cum_granted: Vec<f64>,
    cum_delivered: Vec<f64>,
    cum_demand: Vec<f64>,
    // Actuation-conflict diagnosis.
    pstate_written_this_tick: Vec<bool>,
    pstate_conflicts: u64,
    migrations_started: u64,
    thermal: Option<ThermalState>,
    events: EventLog,
    /// Reusable per-shard `(vm, granted, delivered)` buffers for
    /// [`Simulation::step_parallel`]. Pure scratch: cleared before every
    /// use, never snapshotted, irrelevant to equality of trajectories.
    scratch_vm_out: Vec<Vec<(usize, f64, f64)>>,
    /// Reusable per-enclosure member-power sums for the sharded
    /// enclosure aggregation in [`Simulation::step_parallel`]. Pure
    /// scratch, like `scratch_vm_out`.
    scratch_enc_sums: Vec<f64>,
}

impl Simulation {
    /// Creates a homogeneous simulation: every server uses `model`, every
    /// trace becomes one VM, initially placed one per server (round-robin
    /// if there are more VMs than servers), all servers on at P0.
    pub fn new(
        topo: Topology,
        model: ServerModel,
        traces: Vec<UtilTrace>,
        cfg: SimConfig,
    ) -> Result<Self> {
        let n = topo.num_servers();
        let placement = Placement::one_per_server(traces.len(), n.max(1));
        let models = vec![model; n];
        Self::with_models_and_placement(topo, models, traces, placement, cfg)
    }

    /// Creates a heterogeneous simulation with one model per server and an
    /// explicit initial placement.
    pub fn with_models_and_placement(
        topo: Topology,
        models: Vec<ServerModel>,
        traces: Vec<UtilTrace>,
        placement: Placement,
        cfg: SimConfig,
    ) -> Result<Self> {
        let n = topo.num_servers();
        if n == 0 {
            return Err(SimError::EmptyTopology);
        }
        if traces.is_empty() {
            return Err(SimError::NoWorkloads);
        }
        if models.len() != n {
            return Err(SimError::ModelCountMismatch {
                models: models.len(),
                servers: n,
            });
        }
        if placement.num_vms() != traces.len() {
            return Err(SimError::PlacementSizeMismatch {
                placement: placement.num_vms(),
                traces: traces.len(),
            });
        }
        let mut residents = vec![Vec::new(); n];
        for (vm, host) in placement.iter() {
            topo.check_server(host)?;
            residents[host.index()].push(vm);
        }
        let thermal = cfg.thermal.map(|tc| ThermalState::new(tc, n));
        let num_vms = traces.len();
        let num_enclosures = topo.num_enclosures();
        let table = ModelTable::from_models(&models);
        Ok(Self {
            cfg,
            topo,
            models,
            table,
            traces,
            placement,
            residents,
            on: vec![true; n],
            pstate: vec![PState::P0; n],
            mig_until: vec![0; num_vms],
            boot_until: vec![0; n],
            tick: 0,
            util: vec![0.0; n],
            power: vec![0.0; n],
            vm_obs: vec![VmObservation::default(); num_vms],
            cum_power: vec![0.0; n],
            cum_enc_power: vec![0.0; num_enclosures],
            cum_util: vec![0.0; n],
            cum_granted: vec![0.0; num_vms],
            cum_delivered: vec![0.0; num_vms],
            cum_demand: vec![0.0; num_vms],
            pstate_written_this_tick: vec![false; n],
            pstate_conflicts: 0,
            migrations_started: 0,
            thermal,
            events: EventLog::new(4_096),
            scratch_vm_out: Vec::new(),
            scratch_enc_sums: Vec::new(),
        })
    }

    // ----- time ---------------------------------------------------------

    /// Advances the simulation by one tick: samples every trace, shares
    /// capacity on each server, updates power, thermal state, and the
    /// cumulative accumulators.
    pub fn step(&mut self) {
        let t = self.tick;
        let alpha_v = self.cfg.alpha_v;
        // 1. Sample demands.
        for (j, trace) in self.traces.iter().enumerate() {
            let d = trace.demand_at(t);
            self.vm_obs[j].demand = d;
            self.cum_demand[j] += d;
        }
        // 2. Per-server capacity sharing and power.
        for i in 0..self.topo.num_servers() {
            let active = self.is_on(ServerId(i));
            let booting = active && self.boot_until[i] > t;
            let capacity = if active && !booting {
                self.table.capacity(i, self.pstate[i].index())
            } else {
                0.0
            };
            let load: f64 = self.residents[i]
                .iter()
                .map(|&vm| self.vm_obs[vm.index()].demand * (1.0 + alpha_v))
                .sum();
            let (util, share) = if !active || capacity <= 0.0 {
                (0.0, 0.0)
            } else if load <= 0.0 {
                (0.0, 1.0)
            } else {
                ((load / capacity).min(1.0), (capacity / load).min(1.0))
            };
            for &vm in &self.residents[i] {
                let j = vm.index();
                let granted = self.vm_obs[j].demand * share;
                let penalty = if self.mig_until[j] > t {
                    1.0 - self.cfg.alpha_m
                } else {
                    1.0
                };
                self.vm_obs[j].granted = granted;
                self.vm_obs[j].delivered = granted * penalty;
                self.cum_granted[j] += granted;
                self.cum_delivered[j] += self.vm_obs[j].delivered;
            }
            self.util[i] = util;
            self.power[i] = if booting {
                // A booting server burns idle power at its P-state but
                // does no work yet.
                self.table.idle_power(i, self.pstate[i].index())
            } else if active {
                self.table.power(i, self.pstate[i].index(), util)
            } else {
                self.cfg.off_power_watts
            };
            self.cum_power[i] += self.power[i];
            self.cum_util[i] += util;
        }
        // 3. Enclosure power (members + shared-infrastructure base).
        //    Member sums go through the fixed-shape reduction tree so the
        //    sequential and sharded paths share one combine order.
        for e in 0..self.topo.num_enclosures() {
            let servers = self.topo.enclosure_servers(EnclosureId(e));
            let members = reduce::tree_sum_by(servers.len(), |m| self.power[servers[m].index()]);
            self.cum_enc_power[e] += members + self.cfg.enclosure_base_watts;
        }
        // 4. Thermal.
        if let Some(thermal) = &mut self.thermal {
            for failed in thermal.step(&self.power) {
                self.events.record(
                    t,
                    Event::ThermalFailover {
                        server: ServerId(failed),
                    },
                );
            }
        }
        // 5. Bookkeeping.
        self.pstate_written_this_tick
            .iter_mut()
            .for_each(|w| *w = false);
        self.tick += 1;
    }

    /// Advances the simulation by one tick with the per-server physics
    /// phase sharded over `pool`. Bit-identical to [`Simulation::step`]:
    /// demand sampling stays sequential, workers run the *exact* same
    /// per-server arithmetic on disjoint slices (each server's float ops
    /// are independent of every other server's), per-VM results are
    /// buffered per shard (every VM lives on exactly one server, so its
    /// single accumulator add lands identically regardless of apply
    /// order), and enclosure/thermal aggregation runs sequentially after
    /// the barrier in the legacy order.
    ///
    /// `shards` must be an ascending, dense partition of the server
    /// range — use [`Topology::shard_ranges`].
    pub fn step_parallel(&mut self, pool: &crate::par::WorkerPool, shards: &[Range<usize>]) {
        use std::sync::Mutex;

        let t = self.tick;
        let alpha_v = self.cfg.alpha_v;
        let alpha_m = self.cfg.alpha_m;
        let off_power = self.cfg.off_power_watts;
        // 1. Sample demands (sequential: trace iteration order is the
        //    per-VM accumulator order).
        for (j, trace) in self.traces.iter().enumerate() {
            let d = trace.demand_at(t);
            self.vm_obs[j].demand = d;
            self.cum_demand[j] += d;
        }
        // 2. Per-server capacity sharing and power, sharded. Workers get
        //    disjoint `&mut` slices of the per-server arrays plus shared
        //    `&` views of everything they only read (`vm_obs` is read for
        //    `demand` alone, which phase 1 finalized).
        struct Shard<'a> {
            lo: usize,
            util: &'a mut [f64],
            power: &'a mut [f64],
            cum_power: &'a mut [f64],
            cum_util: &'a mut [f64],
            vm_out: Vec<(usize, f64, f64)>,
            /// First enclosure index this shard owns.
            enc_lo: usize,
            /// Member-power sums for the owned enclosures.
            enc_sums: &'a mut [f64],
        }
        // Enclosure → shard ownership for the sharded power sums: an
        // enclosure belongs to the shard that fully contains its (dense,
        // contiguous) member range. `Topology::shard_ranges` snaps cuts
        // to enclosure boundaries so every enclosure is owned, but this
        // API accepts arbitrary dense partitions — an enclosure split by
        // a shard boundary (or an empty one) is summed sequentially
        // after the barrier instead.
        let num_enc = self.topo.num_enclosures();
        let mut enc_ranges: Vec<Range<usize>> = Vec::with_capacity(shards.len());
        {
            let mut e = 0usize;
            for range in shards {
                while e < num_enc {
                    match self.topo.enclosure_servers(EnclosureId(e)).first() {
                        Some(s) if s.index() < range.start => e += 1,
                        _ => break,
                    }
                }
                let lo = e;
                while e < num_enc {
                    let members = self.topo.enclosure_servers(EnclosureId(e));
                    let fits = match (members.first(), members.last()) {
                        (Some(f), Some(l)) => f.index() >= range.start && l.index() < range.end,
                        _ => false,
                    };
                    if !fits {
                        break;
                    }
                    e += 1;
                }
                enc_ranges.push(lo..e);
            }
        }
        let mut scratch = std::mem::take(&mut self.scratch_vm_out);
        scratch.resize(shards.len(), Vec::new());
        let mut enc_scratch = std::mem::take(&mut self.scratch_enc_sums);
        enc_scratch.clear();
        enc_scratch.resize(num_enc, 0.0);
        let mut views: Vec<Mutex<Shard<'_>>> = Vec::with_capacity(shards.len());
        {
            let mut util = self.util.as_mut_slice();
            let mut power = self.power.as_mut_slice();
            let mut cum_power = self.cum_power.as_mut_slice();
            let mut cum_util = self.cum_util.as_mut_slice();
            let mut enc_rest = enc_scratch.as_mut_slice();
            let mut enc_cursor = 0usize;
            let mut cursor = 0usize;
            for ((range, enc_range), mut vm_out) in
                shards.iter().zip(&enc_ranges).zip(scratch.drain(..))
            {
                assert_eq!(range.start, cursor, "shards must be dense and ascending");
                let len = range.len();
                let (u, rest) = util.split_at_mut(len);
                util = rest;
                let (p, rest) = power.split_at_mut(len);
                power = rest;
                let (cp, rest) = cum_power.split_at_mut(len);
                cum_power = rest;
                let (cu, rest) = cum_util.split_at_mut(len);
                cum_util = rest;
                let (_orphans, rest) = enc_rest.split_at_mut(enc_range.start - enc_cursor);
                let (sums, rest) = rest.split_at_mut(enc_range.len());
                enc_rest = rest;
                enc_cursor = enc_range.end;
                vm_out.clear();
                views.push(Mutex::new(Shard {
                    lo: range.start,
                    util: u,
                    power: p,
                    cum_power: cp,
                    cum_util: cu,
                    vm_out,
                    enc_lo: enc_range.start,
                    enc_sums: sums,
                }));
                cursor = range.end;
            }
            assert_eq!(
                cursor,
                self.topo.num_servers(),
                "shards must cover the fleet"
            );
        }
        let on = &self.on;
        let pstate = &self.pstate;
        let boot_until = &self.boot_until;
        let residents = &self.residents;
        let mig_until = &self.mig_until;
        let vm_obs = &self.vm_obs;
        let table = &self.table;
        let thermal = self.thermal.as_ref();
        let topo = &self.topo;
        pool.execute(views.len(), &|k| {
            let mut guard = views[k].lock().unwrap();
            let shard = &mut *guard;
            for off in 0..shard.util.len() {
                let i = shard.lo + off;
                let active = on[i] && thermal.map(|th| !th.is_failed(i)).unwrap_or(true);
                let booting = active && boot_until[i] > t;
                let capacity = if active && !booting {
                    table.capacity(i, pstate[i].index())
                } else {
                    0.0
                };
                let load: f64 = residents[i]
                    .iter()
                    .map(|&vm| vm_obs[vm.index()].demand * (1.0 + alpha_v))
                    .sum();
                let (util, share) = if !active || capacity <= 0.0 {
                    (0.0, 0.0)
                } else if load <= 0.0 {
                    (0.0, 1.0)
                } else {
                    ((load / capacity).min(1.0), (capacity / load).min(1.0))
                };
                for &vm in &residents[i] {
                    let j = vm.index();
                    let granted = vm_obs[j].demand * share;
                    let penalty = if mig_until[j] > t { 1.0 - alpha_m } else { 1.0 };
                    shard.vm_out.push((j, granted, granted * penalty));
                }
                shard.util[off] = util;
                shard.power[off] = if booting {
                    table.idle_power(i, pstate[i].index())
                } else if active {
                    table.power(i, pstate[i].index(), util)
                } else {
                    off_power
                };
                shard.cum_power[off] += shard.power[off];
                shard.cum_util[off] += util;
            }
            // Owned-enclosure member sums: the same fixed-shape tree over
            // the same member order as the sequential loop, so the f64
            // result is bit-identical.
            for off_e in 0..shard.enc_sums.len() {
                let e = shard.enc_lo + off_e;
                let servers = topo.enclosure_servers(EnclosureId(e));
                shard.enc_sums[off_e] = reduce::tree_sum_by(servers.len(), |m| {
                    shard.power[servers[m].index() - shard.lo]
                });
            }
        });
        // Barrier passed: apply the buffered per-VM observations in
        // ascending shard (= ascending server) order, then return the
        // scratch buffers to the pool.
        for view in views {
            let shard = view.into_inner().unwrap();
            for &(j, granted, delivered) in &shard.vm_out {
                self.vm_obs[j].granted = granted;
                self.vm_obs[j].delivered = delivered;
                self.cum_granted[j] += granted;
                self.cum_delivered[j] += delivered;
            }
            scratch.push(shard.vm_out);
        }
        self.scratch_vm_out = scratch;
        // 3. Enclosure power (members + shared-infrastructure base):
        //    owned sums come straight from the shards; an enclosure no
        //    shard owns is summed here in the legacy order.
        {
            let mut owned = enc_ranges.iter().flat_map(|r| r.clone());
            let mut next_owned = owned.next();
            for (e, &shard_sum) in enc_scratch.iter().enumerate().take(num_enc) {
                let members: f64 = if next_owned == Some(e) {
                    next_owned = owned.next();
                    shard_sum
                } else {
                    let servers = self.topo.enclosure_servers(EnclosureId(e));
                    reduce::tree_sum_by(servers.len(), |m| self.power[servers[m].index()])
                };
                self.cum_enc_power[e] += members + self.cfg.enclosure_base_watts;
            }
        }
        self.scratch_enc_sums = enc_scratch;
        // 4. Thermal.
        if let Some(thermal) = &mut self.thermal {
            for failed in thermal.step(&self.power) {
                self.events.record(
                    t,
                    Event::ThermalFailover {
                        server: ServerId(failed),
                    },
                );
            }
        }
        // 5. Bookkeeping.
        self.pstate_written_this_tick
            .iter_mut()
            .for_each(|w| *w = false);
        self.tick += 1;
    }

    /// Runs `ticks` steps back to back (no controller interaction).
    pub fn run(&mut self, ticks: u64) {
        for _ in 0..ticks {
            self.step();
        }
    }

    /// The current tick (number of completed steps).
    pub fn now(&self) -> u64 {
        self.tick
    }

    // ----- structure ------------------------------------------------------

    /// The simulated topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The model of server `s`.
    pub fn model(&self, s: ServerId) -> &ServerModel {
        &self.models[s.index()]
    }

    /// The flattened structure-of-arrays view of every server's model.
    pub fn model_table(&self) -> &ModelTable {
        &self.table
    }

    /// Number of VMs (workload traces).
    pub fn num_vms(&self) -> usize {
        self.traces.len()
    }

    /// The configuration the simulation was built with.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The current placement (`X` matrix).
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// VMs resident on `s`.
    pub fn residents(&self, s: ServerId) -> &[VmId] {
        &self.residents[s.index()]
    }

    // ----- sensors --------------------------------------------------------

    /// Last-tick CPU utilization of `s` (fraction of *current* capacity).
    pub fn server_utilization(&self, s: ServerId) -> f64 {
        self.util[s.index()]
    }

    /// Last-tick power draw of `s`, watts.
    pub fn server_power(&self, s: ServerId) -> f64 {
        self.power[s.index()]
    }

    /// Last-tick power draw of enclosure `e` (members plus the shared
    /// enclosure base power), watts.
    pub fn enclosure_power(&self, e: EnclosureId) -> f64 {
        let servers = self.topo.enclosure_servers(e);
        reduce::tree_sum_by(servers.len(), |m| self.power[servers[m].index()])
            + self.cfg.enclosure_base_watts
    }

    /// Last-tick power draw of the whole group (servers plus every
    /// enclosure's base power), watts.
    pub fn group_power(&self) -> f64 {
        reduce::tree_sum(&self.power)
            + self.cfg.enclosure_base_watts * self.topo.num_enclosures() as f64
    }

    /// Cumulative enclosure power (W·ticks since construction), including
    /// the enclosure base power.
    pub fn cumulative_enclosure_power(&self, e: EnclosureId) -> f64 {
        self.cum_enc_power[e.index()]
    }

    /// Whether `s` is still in its boot window (powered, burning idle
    /// power, not yet delivering work).
    pub fn is_booting(&self, s: ServerId) -> bool {
        self.is_on(s) && self.boot_until[s.index()] > self.tick
    }

    /// Cumulative power of `s` (W·ticks since construction). Diff two
    /// readings to average over a controller epoch.
    pub fn cumulative_power(&self, s: ServerId) -> f64 {
        self.cum_power[s.index()]
    }

    /// Cumulative utilization of `s` (util·ticks since construction).
    pub fn cumulative_utilization(&self, s: ServerId) -> f64 {
        self.cum_util[s.index()]
    }

    /// Total energy consumed by the group so far (W·ticks), including
    /// enclosure base power.
    pub fn total_energy(&self) -> f64 {
        reduce::tree_sum(&self.cum_power)
            + self.cfg.enclosure_base_watts * self.topo.num_enclosures() as f64 * self.tick as f64
    }

    /// Last-tick observation for `vm`.
    pub fn vm(&self, vm: VmId) -> VmObservation {
        self.vm_obs[vm.index()]
    }

    /// Cumulative work demanded by `vm` (capacity·ticks).
    pub fn cumulative_demand(&self, vm: VmId) -> f64 {
        self.cum_demand[vm.index()]
    }

    /// Cumulative work granted to `vm` before migration penalty.
    pub fn cumulative_granted(&self, vm: VmId) -> f64 {
        self.cum_granted[vm.index()]
    }

    /// Cumulative work delivered for `vm` (after migration penalty).
    pub fn cumulative_delivered(&self, vm: VmId) -> f64 {
        self.cum_delivered[vm.index()]
    }

    /// *Real* utilization estimate for `vm`: the share of a full-speed
    /// server it consumed last tick. This is what the coordinated VMC
    /// uses ("consider the real utilization instead of the apparent
    /// utilization", paper §3.1).
    pub fn real_vm_utilization(&self, vm: VmId) -> f64 {
        self.vm_obs[vm.index()].granted
    }

    /// *Apparent* utilization for `vm`: its share of the host's *current*
    /// (possibly throttled) capacity — what a naive VMC reads from the
    /// guest OS. On a server at a deep P-state this overstates the VM
    /// relative to full speed.
    pub fn apparent_vm_utilization(&self, vm: VmId) -> f64 {
        let host = self.placement.host_of(vm);
        let cap = if self.is_on(host) {
            self.table
                .capacity(host.index(), self.pstate[host.index()].index())
        } else {
            0.0
        };
        if cap <= 0.0 {
            0.0
        } else {
            (self.vm_obs[vm.index()].granted / cap).min(1.0)
        }
    }

    /// Number of same-tick conflicting P-state writes observed so far —
    /// the "power struggle" signature of uncoordinated deployments.
    pub fn pstate_conflicts(&self) -> u64 {
        self.pstate_conflicts
    }

    /// Number of migrations started so far.
    pub fn migrations_started(&self) -> u64 {
        self.migrations_started
    }

    // ----- actuators ------------------------------------------------------

    /// Current P-state of `s`.
    pub fn pstate(&self, s: ServerId) -> PState {
        self.pstate[s.index()]
    }

    /// Writes the P-state of `s`. Multiple writes within the same tick are
    /// last-writer-wins; differing repeat writes are counted as conflicts.
    pub fn set_pstate(&mut self, s: ServerId, p: PState) {
        let i = s.index();
        let p = PState(p.index().min(self.models[i].num_pstates() - 1));
        if self.pstate_written_this_tick[i] && self.pstate[i] != p {
            self.pstate_conflicts += 1;
            self.events
                .record(self.tick, Event::PStateConflict { server: s });
        }
        self.pstate_written_this_tick[i] = true;
        self.pstate[i] = p;
    }

    /// Whether `s` is powered on and has not tripped thermal failover.
    pub fn is_on(&self, s: ServerId) -> bool {
        let i = s.index();
        self.on[i]
            && self
                .thermal
                .as_ref()
                .map(|t| !t.is_failed(i))
                .unwrap_or(true)
    }

    /// Powers `s` off. Fails if VMs are still placed on it — the VMC must
    /// consolidate away first.
    pub fn power_off(&mut self, s: ServerId) -> Result<()> {
        self.topo.check_server(s)?;
        let vms = self.residents[s.index()].len();
        if vms > 0 {
            return Err(SimError::ServerNotEmpty { server: s, vms });
        }
        if self.on[s.index()] {
            self.events
                .record(self.tick, Event::PoweredOff { server: s });
        }
        self.on[s.index()] = false;
        Ok(())
    }

    /// Powers `s` on at P0. With a configured boot delay the server burns
    /// idle power for `boot_delay_ticks` before delivering work.
    pub fn power_on(&mut self, s: ServerId) -> Result<()> {
        self.topo.check_server(s)?;
        if !self.on[s.index()] {
            self.boot_until[s.index()] = self.tick + self.cfg.boot_delay_ticks;
            self.events
                .record(self.tick, Event::PoweredOn { server: s });
        }
        self.on[s.index()] = true;
        self.pstate[s.index()] = PState::P0;
        Ok(())
    }

    /// Migrates `vm` to server `to`, starting the `α_M` penalty window.
    /// The destination must be powered on.
    pub fn migrate(&mut self, vm: VmId, to: ServerId) -> Result<()> {
        if vm.index() >= self.num_vms() {
            return Err(SimError::UnknownVm(vm));
        }
        self.topo.check_server(to)?;
        if !self.is_on(to) {
            return Err(SimError::ServerOff(to));
        }
        let from = self.placement.host_of(vm);
        if from == to {
            return Ok(());
        }
        self.residents[from.index()].retain(|&v| v != vm);
        self.residents[to.index()].push(vm);
        self.placement.assign(vm, to);
        self.mig_until[vm.index()] = self.tick + self.cfg.migration_ticks;
        self.migrations_started += 1;
        self.events
            .record(self.tick, Event::MigrationStarted { vm, from, to });
        Ok(())
    }

    /// The structured event log (migrations, power transitions, races,
    /// failovers) — the audit trail a production deployment would keep.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    // ----- rack sharding --------------------------------------------------

    /// Carves the simulator for a parallel controller epoch: one
    /// [`ActuatorShard`] per range (exclusive write access to that
    /// range's P-states and write flags) plus a shared [`SimEpochView`]
    /// of everything epoch workers only read. `ranges` must be an
    /// ascending, dense partition of the server range
    /// ([`Topology::shard_ranges`]).
    ///
    /// Conflict counts and conflict events are buffered per shard;
    /// after the barrier, feed the shards' [`ActuatorShard::
    /// into_effects`] outputs to [`Simulation::absorb_shard_effects`]
    /// *in shard order* to reproduce the sequential event stream.
    pub fn epoch_shards(
        &mut self,
        ranges: &[Range<usize>],
    ) -> (SimEpochView<'_>, Vec<ActuatorShard<'_>>) {
        let mut shards = Vec::with_capacity(ranges.len());
        let mut pstate = self.pstate.as_mut_slice();
        let mut written = self.pstate_written_this_tick.as_mut_slice();
        let mut cursor = 0usize;
        for range in ranges {
            assert_eq!(range.start, cursor, "shards must be dense and ascending");
            let len = range.len();
            let (p, rest) = pstate.split_at_mut(len);
            pstate = rest;
            let (w, rest) = written.split_at_mut(len);
            written = rest;
            shards.push(ActuatorShard {
                lo: range.start,
                tick: self.tick,
                table: &self.table,
                pstate: p,
                written: w,
                conflicts: 0,
                events: Vec::new(),
            });
            cursor = range.end;
        }
        assert_eq!(
            cursor,
            self.topo.num_servers(),
            "shards must cover the fleet"
        );
        let view = SimEpochView {
            on: &self.on,
            thermal: self.thermal.as_ref(),
            util: &self.util,
            cum_power: &self.cum_power,
            cum_enc_power: &self.cum_enc_power,
            cum_util: &self.cum_util,
            tick: self.tick,
        };
        (view, shards)
    }

    /// A read-only [`SimEpochView`] over the current state, for parallel
    /// phases that only read sensors (e.g. the GM's window fan-out) and
    /// need no actuator shards.
    pub fn epoch_view(&self) -> SimEpochView<'_> {
        SimEpochView {
            on: &self.on,
            thermal: self.thermal.as_ref(),
            util: &self.util,
            cum_power: &self.cum_power,
            cum_enc_power: &self.cum_enc_power,
            cum_util: &self.cum_util,
            tick: self.tick,
        }
    }

    /// A read-only per-VM view for parallel phases that accumulate VM
    /// utilization (the runner's per-tick VMC accumulators). Mirrors
    /// [`Simulation::real_vm_utilization`] and
    /// [`Simulation::apparent_vm_utilization`] exactly.
    pub fn vm_view(&self) -> VmView<'_> {
        VmView {
            obs: &self.vm_obs,
            placement: &self.placement,
            on: &self.on,
            thermal: self.thermal.as_ref(),
            pstate: &self.pstate,
            table: &self.table,
        }
    }

    /// Merges the per-shard actuation effects (conflict counts and
    /// buffered conflict events) back into the simulator. Call with the
    /// shards' effects in ascending shard order so the event log matches
    /// a sequential epoch's emission order exactly.
    pub fn absorb_shard_effects(&mut self, effects: impl IntoIterator<Item = ShardEffects>) {
        for eff in effects {
            self.pstate_conflicts += eff.conflicts;
            for (tick, event) in eff.events {
                self.events.record(tick, event);
            }
        }
    }

    // ----- thermal --------------------------------------------------------

    /// The thermal state, if thermal tracking is enabled.
    pub fn thermal(&self) -> Option<&ThermalState> {
        self.thermal.as_ref()
    }

    /// Temperature of `s` in °C (ambient if thermal tracking is off).
    pub fn temperature_c(&self, s: ServerId) -> f64 {
        self.thermal
            .as_ref()
            .map(|t| t.temperature_c(s.index()))
            .unwrap_or(25.0)
    }

    /// Total thermal failover events so far.
    pub fn failover_events(&self) -> usize {
        self.thermal
            .as_ref()
            .map(|t| t.failover_events())
            .unwrap_or(0)
    }

    // ----- checkpointing --------------------------------------------------

    /// Captures the simulator's full dynamic state for checkpointing.
    ///
    /// Static structure (topology, models, traces, config) is *not*
    /// captured — a restore target is rebuilt from the same experiment
    /// configuration first. Float vectors are bit-packed so the JSON
    /// roundtrip is exact; `residents` is serialized verbatim because
    /// per-server VM insertion order determines float summation order in
    /// the hot loop, which bit-exactness depends on.
    pub fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            placement: self.placement.clone(),
            residents: self
                .residents
                .iter()
                .map(|r| r.iter().map(|vm| vm.index()).collect())
                .collect(),
            on: self.on.clone(),
            pstate: self.pstate.iter().map(|p| p.index()).collect(),
            mig_until: self.mig_until.clone(),
            boot_until: self.boot_until.clone(),
            tick: self.tick,
            util_bits: pack_bits(&self.util),
            power_bits: pack_bits(&self.power),
            vm_obs_bits: self
                .vm_obs
                .iter()
                .flat_map(|o| {
                    [
                        o.demand.to_bits(),
                        o.granted.to_bits(),
                        o.delivered.to_bits(),
                    ]
                })
                .collect(),
            cum_power_bits: pack_bits(&self.cum_power),
            cum_enc_power_bits: pack_bits(&self.cum_enc_power),
            cum_util_bits: pack_bits(&self.cum_util),
            cum_granted_bits: pack_bits(&self.cum_granted),
            cum_delivered_bits: pack_bits(&self.cum_delivered),
            cum_demand_bits: pack_bits(&self.cum_demand),
            pstate_written_this_tick: self.pstate_written_this_tick.clone(),
            pstate_conflicts: self.pstate_conflicts,
            migrations_started: self.migrations_started,
            thermal: self.thermal.clone(),
            events: self.events.clone(),
        }
    }

    /// Restores state captured by [`Simulation::snapshot`]. The target
    /// must have been built from the same topology, models, traces, and
    /// config.
    pub fn restore(&mut self, snap: &SimSnapshot) {
        self.placement = snap.placement.clone();
        self.residents = snap
            .residents
            .iter()
            .map(|r| r.iter().map(|&vm| VmId(vm)).collect())
            .collect();
        self.on = snap.on.clone();
        self.pstate = snap.pstate.iter().map(|&p| PState(p)).collect();
        self.mig_until = snap.mig_until.clone();
        self.boot_until = snap.boot_until.clone();
        self.tick = snap.tick;
        self.util = unpack_bits(&snap.util_bits);
        self.power = unpack_bits(&snap.power_bits);
        self.vm_obs = snap
            .vm_obs_bits
            .chunks_exact(3)
            .map(|c| VmObservation {
                demand: f64::from_bits(c[0]),
                granted: f64::from_bits(c[1]),
                delivered: f64::from_bits(c[2]),
            })
            .collect();
        self.cum_power = unpack_bits(&snap.cum_power_bits);
        self.cum_enc_power = unpack_bits(&snap.cum_enc_power_bits);
        self.cum_util = unpack_bits(&snap.cum_util_bits);
        self.cum_granted = unpack_bits(&snap.cum_granted_bits);
        self.cum_delivered = unpack_bits(&snap.cum_delivered_bits);
        self.cum_demand = unpack_bits(&snap.cum_demand_bits);
        self.pstate_written_this_tick = snap.pstate_written_this_tick.clone();
        self.pstate_conflicts = snap.pstate_conflicts;
        self.migrations_started = snap.migrations_started;
        self.thermal = snap.thermal.clone();
        self.events = snap.events.clone();
    }
}

/// Read-only facts shared with every worker during a parallel
/// controller epoch. Borrowed from the simulator by
/// [`Simulation::epoch_shards`]; all slices are indexed by global
/// server id.
#[derive(Debug, Clone, Copy)]
pub struct SimEpochView<'a> {
    on: &'a [bool],
    thermal: Option<&'a ThermalState>,
    util: &'a [f64],
    cum_power: &'a [f64],
    cum_enc_power: &'a [f64],
    cum_util: &'a [f64],
    tick: u64,
}

impl SimEpochView<'_> {
    /// Same as [`Simulation::is_on`].
    pub fn is_on(&self, s: ServerId) -> bool {
        let i = s.index();
        self.on[i] && self.thermal.map(|t| !t.is_failed(i)).unwrap_or(true)
    }

    /// Same as [`Simulation::server_utilization`].
    pub fn server_utilization(&self, s: ServerId) -> f64 {
        self.util[s.index()]
    }

    /// Same as [`Simulation::cumulative_power`].
    pub fn cumulative_power(&self, s: ServerId) -> f64 {
        self.cum_power[s.index()]
    }

    /// Same as [`Simulation::cumulative_enclosure_power`].
    pub fn cumulative_enclosure_power(&self, e: EnclosureId) -> f64 {
        self.cum_enc_power[e.index()]
    }

    /// Same as [`Simulation::cumulative_utilization`].
    pub fn cumulative_utilization(&self, s: ServerId) -> f64 {
        self.cum_util[s.index()]
    }

    /// The current tick ([`Simulation::now`]).
    pub fn now(&self) -> u64 {
        self.tick
    }
}

/// Read-only per-VM facts shared with every worker during the runner's
/// parallel per-tick VMC accumulation. Borrowed from the simulator by
/// [`Simulation::vm_view`]; verdicts are bit-identical to the
/// corresponding [`Simulation`] accessors.
#[derive(Debug, Clone, Copy)]
pub struct VmView<'a> {
    obs: &'a [VmObservation],
    placement: &'a Placement,
    on: &'a [bool],
    thermal: Option<&'a ThermalState>,
    pstate: &'a [PState],
    table: &'a ModelTable,
}

impl VmView<'_> {
    /// Same as [`Simulation::real_vm_utilization`].
    pub fn real_vm_utilization(&self, vm: VmId) -> f64 {
        self.obs[vm.index()].granted
    }

    /// Same as [`Simulation::apparent_vm_utilization`].
    pub fn apparent_vm_utilization(&self, vm: VmId) -> f64 {
        let host = self.placement.host_of(vm);
        let i = host.index();
        let host_on = self.on[i] && self.thermal.map(|t| !t.is_failed(i)).unwrap_or(true);
        let cap = if host_on {
            self.table.capacity(i, self.pstate[i].index())
        } else {
            0.0
        };
        if cap <= 0.0 {
            0.0
        } else {
            (self.obs[vm.index()].granted / cap).min(1.0)
        }
    }
}

/// One worker's exclusive slice of the simulator's actuation state
/// (P-states and same-tick write flags) during a parallel epoch.
/// Indices are global server ids; conflict accounting is buffered
/// locally and merged in shard order afterwards.
#[derive(Debug)]
pub struct ActuatorShard<'a> {
    /// First global server id of this shard.
    lo: usize,
    tick: u64,
    table: &'a ModelTable,
    pstate: &'a mut [PState],
    written: &'a mut [bool],
    conflicts: u64,
    events: Vec<(u64, Event)>,
}

impl ActuatorShard<'_> {
    /// Current P-state of `s` (must lie in this shard) — same as
    /// [`Simulation::pstate`].
    pub fn pstate(&self, s: ServerId) -> PState {
        self.pstate[s.index() - self.lo]
    }

    /// Writes the P-state of `s` — the exact semantics of
    /// [`Simulation::set_pstate`] (clamp to the model's deepest state,
    /// last-writer-wins, conflicting repeat writes counted), with the
    /// conflict event buffered locally instead of logged globally.
    pub fn set_pstate(&mut self, s: ServerId, p: PState) {
        let k = s.index() - self.lo;
        let p = PState(p.index().min(self.table.num_pstates(s.index()) - 1));
        if self.written[k] && self.pstate[k] != p {
            self.conflicts += 1;
            self.events
                .push((self.tick, Event::PStateConflict { server: s }));
        }
        self.written[k] = true;
        self.pstate[k] = p;
    }

    /// Consumes the shard, yielding its buffered actuation effects for
    /// [`Simulation::absorb_shard_effects`].
    pub fn into_effects(self) -> ShardEffects {
        ShardEffects {
            conflicts: self.conflicts,
            events: self.events,
        }
    }
}

/// Actuation side effects buffered by one [`ActuatorShard`] during a
/// parallel epoch.
#[derive(Debug)]
pub struct ShardEffects {
    conflicts: u64,
    events: Vec<(u64, Event)>,
}

fn pack_bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

fn unpack_bits(bits: &[u64]) -> Vec<f64> {
    bits.iter().map(|&b| f64::from_bits(b)).collect()
}

/// The simulator's full dynamic state (checkpoint section). All floats
/// are stored as IEEE-754 bit patterns so serialization is lossless.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimSnapshot {
    /// The `X` matrix.
    pub placement: Placement,
    /// Per-server resident VM lists, insertion order preserved.
    pub residents: Vec<Vec<usize>>,
    /// Per-server power switch.
    pub on: Vec<bool>,
    /// Per-server P-state indices.
    pub pstate: Vec<usize>,
    /// Per-VM migration-penalty end ticks.
    pub mig_until: Vec<u64>,
    /// Per-server boot-window end ticks.
    pub boot_until: Vec<u64>,
    /// Completed steps.
    pub tick: u64,
    /// Last-tick utilization, bit-packed.
    pub util_bits: Vec<u64>,
    /// Last-tick power, bit-packed.
    pub power_bits: Vec<u64>,
    /// Per-VM observations, three words (demand, granted, delivered) each.
    pub vm_obs_bits: Vec<u64>,
    /// Cumulative server power, bit-packed.
    pub cum_power_bits: Vec<u64>,
    /// Cumulative enclosure power, bit-packed.
    pub cum_enc_power_bits: Vec<u64>,
    /// Cumulative utilization, bit-packed.
    pub cum_util_bits: Vec<u64>,
    /// Cumulative granted work, bit-packed.
    pub cum_granted_bits: Vec<u64>,
    /// Cumulative delivered work, bit-packed.
    pub cum_delivered_bits: Vec<u64>,
    /// Cumulative demand, bit-packed.
    pub cum_demand_bits: Vec<u64>,
    /// Same-tick P-state write flags.
    pub pstate_written_this_tick: Vec<bool>,
    /// Conflicting-write counter.
    pub pstate_conflicts: u64,
    /// Migration counter.
    pub migrations_started: u64,
    /// Thermal state, if tracking is enabled.
    pub thermal: Option<ThermalState>,
    /// The structured event log.
    pub events: EventLog,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thermal::ThermalConfig;

    fn traces(demands: &[f64]) -> Vec<UtilTrace> {
        demands
            .iter()
            .enumerate()
            .map(|(i, &d)| UtilTrace::constant(format!("w{i}"), d, 10).unwrap())
            .collect()
    }

    fn small_sim(demands: &[f64]) -> Simulation {
        let topo = Topology::builder().standalone(demands.len()).build();
        Simulation::new(
            topo,
            ServerModel::blade_a(),
            traces(demands),
            SimConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_inputs() {
        let topo = Topology::builder().standalone(2).build();
        assert!(matches!(
            Simulation::new(
                topo.clone(),
                ServerModel::blade_a(),
                vec![],
                SimConfig::default()
            ),
            Err(SimError::NoWorkloads)
        ));
        let bad_models = Simulation::with_models_and_placement(
            topo.clone(),
            vec![ServerModel::blade_a()],
            traces(&[0.5, 0.5]),
            Placement::one_per_server(2, 2),
            SimConfig::default(),
        );
        assert!(matches!(
            bad_models,
            Err(SimError::ModelCountMismatch { .. })
        ));
        let bad_placement = Simulation::with_models_and_placement(
            topo,
            vec![ServerModel::blade_a(); 2],
            traces(&[0.5, 0.5]),
            Placement::one_per_server(3, 2),
            SimConfig::default(),
        );
        assert!(matches!(
            bad_placement,
            Err(SimError::PlacementSizeMismatch { .. })
        ));
    }

    #[test]
    fn utilization_includes_virtualization_overhead() {
        let mut sim = small_sim(&[0.5]);
        sim.step();
        // At P0 capacity 1.0: util = 0.5 · 1.1 = 0.55.
        assert!((sim.server_utilization(ServerId(0)) - 0.55).abs() < 1e-12);
        assert!((sim.vm(VmId(0)).delivered - 0.5).abs() < 1e-12);
    }

    #[test]
    fn throttled_server_raises_utilization() {
        let mut sim = small_sim(&[0.4]);
        sim.set_pstate(ServerId(0), PState(4)); // capacity 0.533
        sim.step();
        // util = 0.4·1.1 / 0.533 ≈ 0.8255
        assert!((sim.server_utilization(ServerId(0)) - 0.44 / 0.533).abs() < 1e-9);
        // Demand fits: full delivery.
        assert!((sim.vm(VmId(0)).delivered - 0.4).abs() < 1e-12);
    }

    #[test]
    fn saturation_shares_capacity_proportionally() {
        // Two VMs (0.6 and 0.3 demand) on one server at P4 (cap 0.533).
        let topo = Topology::builder().standalone(1).build();
        let mut sim = Simulation::with_models_and_placement(
            topo,
            vec![ServerModel::blade_a()],
            traces(&[0.6, 0.3]),
            Placement::from_hosts(vec![ServerId(0), ServerId(0)]),
            SimConfig::default(),
        )
        .unwrap();
        sim.set_pstate(ServerId(0), PState(4));
        sim.step();
        let load = (0.6 + 0.3) * 1.1;
        let share = 0.533 / load;
        assert!((sim.vm(VmId(0)).delivered - 0.6 * share).abs() < 1e-9);
        assert!((sim.vm(VmId(1)).delivered - 0.3 * share).abs() < 1e-9);
        assert_eq!(sim.server_utilization(ServerId(0)), 1.0);
    }

    #[test]
    fn power_tracks_model() {
        let mut sim = small_sim(&[0.5]);
        sim.step();
        let expected = ServerModel::blade_a().power(0, 0.55);
        assert!((sim.server_power(ServerId(0)) - expected).abs() < 1e-9);
    }

    #[test]
    fn off_server_delivers_nothing_and_draws_off_power() {
        let topo = Topology::builder().standalone(2).build();
        let mut sim = Simulation::with_models_and_placement(
            topo,
            vec![ServerModel::blade_a(); 2],
            traces(&[0.5]),
            Placement::from_hosts(vec![ServerId(0)]),
            SimConfig::default(),
        )
        .unwrap();
        sim.power_off(ServerId(1)).unwrap();
        sim.step();
        assert_eq!(sim.server_power(ServerId(1)), 0.0);
        assert!(sim.server_power(ServerId(0)) > 0.0);
    }

    #[test]
    fn power_off_refuses_populated_server() {
        let mut sim = small_sim(&[0.5]);
        assert!(matches!(
            sim.power_off(ServerId(0)),
            Err(SimError::ServerNotEmpty { vms: 1, .. })
        ));
    }

    #[test]
    fn migration_moves_vm_and_applies_penalty() {
        let topo = Topology::builder().standalone(2).build();
        let cfg = SimConfig {
            migration_ticks: 3,
            ..SimConfig::default()
        };
        let mut sim = Simulation::with_models_and_placement(
            topo,
            vec![ServerModel::blade_a(); 2],
            traces(&[0.5]),
            Placement::from_hosts(vec![ServerId(0)]),
            cfg,
        )
        .unwrap();
        sim.migrate(VmId(0), ServerId(1)).unwrap();
        assert_eq!(sim.placement().host_of(VmId(0)), ServerId(1));
        // Penalty window: 3 ticks at 10% loss.
        sim.step();
        assert!((sim.vm(VmId(0)).delivered - 0.45).abs() < 1e-12);
        sim.step();
        sim.step();
        assert!((sim.vm(VmId(0)).delivered - 0.45).abs() < 1e-12);
        sim.step();
        assert!((sim.vm(VmId(0)).delivered - 0.5).abs() < 1e-12);
        assert_eq!(sim.migrations_started(), 1);
    }

    #[test]
    fn migrate_to_off_server_rejected() {
        let topo = Topology::builder().standalone(2).build();
        let mut sim = Simulation::with_models_and_placement(
            topo,
            vec![ServerModel::blade_a(); 2],
            traces(&[0.5]),
            Placement::from_hosts(vec![ServerId(0)]),
            SimConfig::default(),
        )
        .unwrap();
        sim.power_off(ServerId(1)).unwrap();
        assert!(matches!(
            sim.migrate(VmId(0), ServerId(1)),
            Err(SimError::ServerOff(_))
        ));
    }

    #[test]
    fn same_tick_pstate_conflicts_are_counted() {
        let mut sim = small_sim(&[0.5]);
        sim.set_pstate(ServerId(0), PState(2)); // EC writes
        sim.set_pstate(ServerId(0), PState(4)); // SM overwrites: conflict
        assert_eq!(sim.pstate_conflicts(), 1);
        sim.set_pstate(ServerId(0), PState(4)); // same value: no conflict
        assert_eq!(sim.pstate_conflicts(), 1);
        sim.step();
        sim.set_pstate(ServerId(0), PState(0)); // new tick: no conflict
        assert_eq!(sim.pstate_conflicts(), 1);
        assert_eq!(sim.pstate(ServerId(0)), PState(0));
    }

    #[test]
    fn apparent_vs_real_utilization() {
        let mut sim = small_sim(&[0.4]);
        sim.set_pstate(ServerId(0), PState(4)); // capacity 0.533
        sim.step();
        let real = sim.real_vm_utilization(VmId(0));
        let apparent = sim.apparent_vm_utilization(VmId(0));
        assert!((real - 0.4).abs() < 1e-12);
        assert!((apparent - 0.4 / 0.533).abs() < 1e-9);
        assert!(apparent > real, "throttled host inflates apparent util");
    }

    #[test]
    fn cumulative_accumulators_sum_per_tick_values() {
        let mut sim = small_sim(&[0.5]);
        let mut total_power = 0.0;
        for _ in 0..5 {
            sim.step();
            total_power += sim.server_power(ServerId(0));
        }
        assert!((sim.cumulative_power(ServerId(0)) - total_power).abs() < 1e-9);
        assert!((sim.total_energy() - total_power).abs() < 1e-9);
        assert!((sim.cumulative_demand(VmId(0)) - 2.5).abs() < 1e-12);
        assert!((sim.cumulative_delivered(VmId(0)) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn enclosure_and_group_power_aggregate() {
        let topo = Topology::builder().enclosure(2).standalone(1).build();
        let mut sim = Simulation::with_models_and_placement(
            topo,
            vec![ServerModel::blade_a(); 3],
            traces(&[0.2, 0.2, 0.2]),
            Placement::one_per_server(3, 3),
            SimConfig::default(),
        )
        .unwrap();
        sim.step();
        let enc = sim.enclosure_power(EnclosureId(0));
        let grp = sim.group_power();
        let s: f64 = (0..3).map(|i| sim.server_power(ServerId(i))).sum();
        assert!((grp - s).abs() < 1e-9);
        assert!(
            (enc - (sim.server_power(ServerId(0)) + sim.server_power(ServerId(1)))).abs() < 1e-9
        );
    }

    #[test]
    fn sustained_overload_trips_thermal_failover_and_kills_delivery() {
        let model = ServerModel::blade_a();
        let cap = 0.9 * model.max_power();
        let cfg =
            SimConfig::default().with_thermal(ThermalConfig::for_budget(model.max_power(), cap));
        let topo = Topology::builder().standalone(1).build();
        let traces = vec![UtilTrace::constant("hot", 1.0, 10).unwrap()];
        let mut sim = Simulation::new(topo, model, traces, cfg).unwrap();
        for _ in 0..3_000 {
            sim.step();
        }
        assert_eq!(sim.failover_events(), 1);
        assert!(!sim.is_on(ServerId(0)));
        sim.step();
        assert_eq!(sim.vm(VmId(0)).delivered, 0.0);
        assert_eq!(sim.server_power(ServerId(0)), 0.0);
    }

    #[test]
    fn pstate_out_of_range_clamps_to_deepest() {
        let mut sim = small_sim(&[0.1]);
        sim.set_pstate(ServerId(0), PState(99));
        assert_eq!(sim.pstate(ServerId(0)), PState(4));
    }

    #[test]
    fn snapshot_restore_resumes_bit_exactly() {
        let mut live = small_sim(&[0.3, 0.6, 0.9]);
        for _ in 0..7 {
            live.step();
        }
        live.set_pstate(ServerId(1), PState(3));
        // Serialize mid-run, restore into a freshly built twin, and
        // require bit-identical trajectories from there on.
        let json = serde_json::to_string(&live.snapshot()).unwrap();
        let snap: SimSnapshot = serde_json::from_str(&json).unwrap();
        let mut resumed = small_sim(&[0.3, 0.6, 0.9]);
        resumed.restore(&snap);
        assert_eq!(resumed.now(), live.now());
        for _ in 0..20 {
            live.step();
            resumed.step();
            for i in 0..3 {
                assert_eq!(
                    live.server_power(ServerId(i)).to_bits(),
                    resumed.server_power(ServerId(i)).to_bits()
                );
            }
        }
        assert_eq!(
            live.total_energy().to_bits(),
            resumed.total_energy().to_bits()
        );
    }

    #[test]
    fn parallel_step_is_bit_identical_to_sequential() {
        use crate::par::WorkerPool;
        // Multi-rack topology with a standalone tail, multiple VMs per
        // server, thermal tracking, and mid-run actuation — every code
        // path of the sharded phase.
        let topo = Topology::multi_rack(3, 2, 4, 5);
        let n = topo.num_servers();
        let model = ServerModel::blade_a();
        let cfg = SimConfig::default()
            .with_thermal(ThermalConfig::for_budget(
                model.max_power(),
                0.95 * model.max_power(),
            ))
            .with_boot_delay(2);
        let vm_traces: Vec<UtilTrace> = (0..n + 7)
            .map(|j| {
                UtilTrace::constant(format!("w{j}"), 0.1 + 0.8 * (j as f64 / (n + 7) as f64), 50)
                    .unwrap()
            })
            .collect();
        let placement = Placement::one_per_server(vm_traces.len(), n);
        let mut seq = Simulation::with_models_and_placement(
            topo.clone(),
            vec![model.clone(); n],
            vm_traces.clone(),
            placement.clone(),
            cfg,
        )
        .unwrap();
        let mut par = Simulation::with_models_and_placement(
            topo.clone(),
            vec![model; n],
            vm_traces,
            placement,
            cfg,
        )
        .unwrap();
        let shards = topo.shard_ranges(6);
        for threads in [2usize, 4, 7] {
            let pool = WorkerPool::new(threads);
            for step in 0..40u64 {
                if step == 5 {
                    seq.set_pstate(ServerId(1), PState(3));
                    par.set_pstate(ServerId(1), PState(3));
                }
                if step == 9 {
                    seq.migrate(VmId(0), ServerId(2)).unwrap();
                    par.migrate(VmId(0), ServerId(2)).unwrap();
                }
                seq.step();
                par.step_parallel(&pool, &shards);
                for i in 0..n {
                    let s = ServerId(i);
                    assert_eq!(
                        seq.server_power(s).to_bits(),
                        par.server_power(s).to_bits(),
                        "power diverged at server {i} step {step} ({threads} threads)"
                    );
                    assert_eq!(
                        seq.cumulative_utilization(s).to_bits(),
                        par.cumulative_utilization(s).to_bits()
                    );
                }
                for j in 0..seq.num_vms() {
                    assert_eq!(seq.vm(VmId(j)), par.vm(VmId(j)));
                    assert_eq!(
                        seq.cumulative_delivered(VmId(j)).to_bits(),
                        par.cumulative_delivered(VmId(j)).to_bits()
                    );
                }
            }
            assert_eq!(seq.total_energy().to_bits(), par.total_energy().to_bits());
            assert_eq!(seq.snapshot(), par.snapshot());
        }
    }

    #[test]
    fn deterministic_across_clones() {
        let mut a = small_sim(&[0.3, 0.6]);
        let mut b = a.clone();
        for _ in 0..10 {
            a.step();
            b.step();
        }
        assert_eq!(a.total_energy(), b.total_energy());
        assert_eq!(a.vm(VmId(1)), b.vm(VmId(1)));
    }
}

#[cfg(test)]
mod boot_and_enclosure_tests {
    use super::*;
    use nps_traces::UtilTrace;

    #[test]
    fn booting_server_burns_idle_power_but_delivers_nothing() {
        let topo = Topology::builder().standalone(2).build();
        let cfg = SimConfig::default().with_boot_delay(3);
        let mut sim = Simulation::with_models_and_placement(
            topo,
            vec![ServerModel::blade_a(); 2],
            vec![UtilTrace::constant("w", 0.5, 10).unwrap()],
            Placement::from_hosts(vec![ServerId(0)]),
            cfg,
        )
        .unwrap();
        sim.power_off(ServerId(1)).unwrap();
        sim.step();
        sim.power_on(ServerId(1)).unwrap();
        assert!(sim.is_booting(ServerId(1)));
        sim.migrate(VmId(0), ServerId(1)).unwrap();
        // Boot window: 3 ticks of idle burn, zero delivery.
        for _ in 0..3 {
            sim.step();
            assert_eq!(sim.vm(VmId(0)).delivered, 0.0);
            assert_eq!(
                sim.server_power(ServerId(1)),
                ServerModel::blade_a().idle_power(0)
            );
            assert_eq!(sim.server_utilization(ServerId(1)), 0.0);
        }
        sim.step();
        assert!(!sim.is_booting(ServerId(1)));
        assert!(sim.vm(VmId(0)).delivered > 0.0);
    }

    #[test]
    fn zero_boot_delay_is_instant() {
        let topo = Topology::builder().standalone(1).build();
        let mut sim = Simulation::new(
            topo,
            ServerModel::blade_a(),
            vec![UtilTrace::constant("w", 0.4, 10).unwrap()],
            SimConfig::default(),
        )
        .unwrap();
        assert!(!sim.is_booting(ServerId(0)));
        sim.step();
        assert!(sim.vm(VmId(0)).delivered > 0.0);
    }

    #[test]
    fn enclosure_base_power_counts_at_every_level() {
        let topo = Topology::builder().enclosure(2).standalone(1).build();
        let cfg = SimConfig::default().with_enclosure_base(50.0);
        let mut sim = Simulation::with_models_and_placement(
            topo,
            vec![ServerModel::blade_a(); 3],
            vec![UtilTrace::constant("w", 0.2, 10).unwrap(); 3],
            Placement::one_per_server(3, 3),
            cfg,
        )
        .unwrap();
        sim.step();
        let members = sim.server_power(ServerId(0)) + sim.server_power(ServerId(1));
        assert!((sim.enclosure_power(EnclosureId(0)) - members - 50.0).abs() < 1e-9);
        let servers: f64 = (0..3).map(|i| sim.server_power(ServerId(i))).sum();
        assert!((sim.group_power() - servers - 50.0).abs() < 1e-9);
        sim.step();
        assert!(
            (sim.cumulative_enclosure_power(EnclosureId(0))
                - 2.0 * sim.enclosure_power(EnclosureId(0)))
            .abs()
                < 1e-9
        );
        assert!((sim.total_energy() - 2.0 * sim.group_power()).abs() < 1e-9);
    }
}

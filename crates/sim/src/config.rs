use serde::{Deserialize, Serialize};

use crate::thermal::ThermalConfig;

/// Simulator-wide parameters (paper Figure 5 baselines).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Virtualization overhead `α_V`: extra capacity consumed per unit of
    /// VM demand (paper base: 10% of VM utilization). The paper assumes
    /// the baseline is also virtualized, so this always applies.
    pub alpha_v: f64,
    /// Migration overhead `α_M`: fraction of a VM's work lost while it is
    /// migrating (paper base: 10% performance loss during migration).
    pub alpha_m: f64,
    /// Duration of the migration penalty window, in ticks (models the
    /// pre-copy phase of a VMotion-style migration).
    pub migration_ticks: u64,
    /// Power drawn by a powered-off server, in watts (0 = fully off).
    pub off_power_watts: f64,
    /// Ticks a server takes to boot after power-on: while booting it
    /// draws P0 idle power but delivers no work (0 = instant boot).
    pub boot_delay_ticks: u64,
    /// Fixed overhead per blade enclosure (shared fans/PSU), watts.
    /// Counted in enclosure/group power and energy.
    pub enclosure_base_watts: f64,
    /// Per-server thermal model, or `None` to skip temperature tracking.
    pub thermal: Option<ThermalConfig>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            alpha_v: 0.10,
            alpha_m: 0.10,
            migration_ticks: 20,
            off_power_watts: 0.0,
            boot_delay_ticks: 0,
            enclosure_base_watts: 0.0,
            thermal: None,
        }
    }
}

impl SimConfig {
    /// Returns this config with a different migration overhead `α_M`
    /// (the paper's §5.4 sensitivity studies 20% and 50%).
    pub fn with_alpha_m(mut self, alpha_m: f64) -> Self {
        self.alpha_m = alpha_m;
        self
    }

    /// Returns this config with a different virtualization overhead `α_V`.
    pub fn with_alpha_v(mut self, alpha_v: f64) -> Self {
        self.alpha_v = alpha_v;
        self
    }

    /// Returns this config with thermal tracking enabled.
    pub fn with_thermal(mut self, thermal: ThermalConfig) -> Self {
        self.thermal = Some(thermal);
        self
    }

    /// Returns this config with a server boot delay (ticks of idle burn
    /// before a powered-on server delivers work).
    pub fn with_boot_delay(mut self, ticks: u64) -> Self {
        self.boot_delay_ticks = ticks;
        self
    }

    /// Returns this config with a fixed per-enclosure power overhead.
    pub fn with_enclosure_base(mut self, watts: f64) -> Self {
        self.enclosure_base_watts = watts.max(0.0);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_figure_5() {
        let c = SimConfig::default();
        assert_eq!(c.alpha_v, 0.10);
        assert_eq!(c.alpha_m, 0.10);
        assert!(c.thermal.is_none());
    }

    #[test]
    fn builders_override_fields() {
        let c = SimConfig::default().with_alpha_m(0.5).with_alpha_v(0.2);
        assert_eq!(c.alpha_m, 0.5);
        assert_eq!(c.alpha_v, 0.2);
    }
}

//! Trace-driven data-center simulator.
//!
//! This crate is the evaluation substrate of the ASPLOS'08 paper (§4.2):
//! a *"utilization-based large-scale simulation"* in which real(istic)
//! per-server utilization traces drive high-level power/performance models
//! — the approach of Ranganathan & Leech (CAECW'07) — instead of
//! full-system simulation.
//!
//! The simulator models:
//!
//! * a [`Topology`] of blade **enclosures** and **standalone servers**
//!   forming one **group** (rack/data center) — the paper's `M` matrix;
//! * **virtual machines** whose per-tick CPU demand comes from
//!   [`nps_traces::UtilTrace`]s, placed on servers via a [`Placement`]
//!   (the paper's `X` matrix), with a virtualization overhead `α_V`;
//! * **P-state actuation** with last-writer-wins races (the "power
//!   struggle" of uncoordinated controllers) and server on/off;
//! * **live migration** with an `α_M` performance penalty window;
//! * per-level **power sensors** (server, enclosure, group) with
//!   cumulative accumulators for windowed averaging;
//! * an **RC thermal model** per server that reproduces thermal failover
//!   under sustained power-budget violation (paper §5.1's prototype
//!   observation).
//!
//! The engine is controller-agnostic: controllers (in `nps-control` /
//! `nps-opt`) read sensors and write actuators between calls to
//! [`Simulation::step`]; the orchestration lives in `nps-core`.
//!
//! ```
//! use nps_models::ServerModel;
//! use nps_sim::{SimConfig, Simulation, Topology};
//! use nps_traces::UtilTrace;
//!
//! let topo = Topology::builder().standalone(4).build();
//! let traces = vec![UtilTrace::constant("w", 0.3, 100).unwrap(); 4];
//! let mut sim = Simulation::new(topo, ServerModel::blade_a(), traces,
//!                               SimConfig::default()).unwrap();
//! sim.step();
//! assert!(sim.group_power() > 0.0);
//! ```

// `deny` rather than `forbid`: the `par` module opts back in for one
// documented lifetime erasure; everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
mod config;
pub mod cooling;
mod engine;
mod error;
mod events;
mod faults;
mod ids;
mod par;
mod placement;
pub mod reduce;
mod redundancy;
mod thermal;
mod topology;

pub use bus::{BusConfig, BusEvent, BusSnapshot, ControlBus, GrantMsg, LinkId, RetryConfig};
pub use config::SimConfig;
pub use engine::{
    ActuatorShard, ShardEffects, SimEpochView, SimSnapshot, Simulation, VmObservation, VmView,
};
pub use error::SimError;
pub use events::{Event, EventLog, LoggedEvent};
pub use faults::{
    ActuatorDrawShard, ActuatorFaultSpec, ControllerLayer, FaultInjector, FaultPlan,
    InjectorSnapshot, OutageWindow, Reading, SensorChannel, SensorDrawShard, SensorFaultSpec,
};
pub use ids::{EnclosureId, RackId, ServerId, VmId};
pub use par::WorkerPool;
pub use placement::{Migration, Placement};
pub use reduce::{tree_max, tree_max_by, tree_reduce, tree_reduce_pool, tree_sum, tree_sum_by};
pub use redundancy::{InFlightSync, RedundancyConfig, RedundancyStats, ReplicaState};
pub use thermal::{ThermalConfig, ThermalState};
pub use topology::{Topology, TopologyBuilder};

/// Convenient result alias for simulator operations.
pub type Result<T> = std::result::Result<T, SimError>;

//! Lumped RC thermal model per server.
//!
//! The paper's thermal power budgets rest on the observation that
//! *"thermal failover happens only when the power budget is violated long
//! enough to create enough heat to increase the temperature beyond normal
//! operational ranges"* (§2.1), and §5.1 reports a lab prototype where an
//! uncoordinated EC+SM deployment *"over sustained high loads ... went
//! into thermal failover"*. We reproduce that mechanism with a first-order
//! RC integrator:
//!
//! ```text
//! T(k+1) = T(k) + (pow − k_diss·(T(k) − T_amb)) / heat_capacity
//! ```
//!
//! so the steady-state temperature is `T_amb + pow / k_diss`, and
//! transient budget violations are safe while sustained ones are not.

use serde::{Deserialize, Serialize};

/// Parameters of the per-server RC thermal model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalConfig {
    /// Ambient (inlet) temperature, °C.
    pub ambient_c: f64,
    /// Critical temperature at which the server fails over, °C.
    pub critical_c: f64,
    /// Heat dissipation coefficient, W/°C.
    pub dissipation_w_per_c: f64,
    /// Thermal capacitance, J/°C (per tick): larger means slower heating,
    /// i.e. longer transient violations are tolerated.
    pub heat_capacity: f64,
}

impl ThermalConfig {
    /// Builds a config sized for a server with the given maximum power and
    /// thermal power cap: the steady-state temperature sits *below*
    /// `critical_c` while power stays at or under `cap_watts`, and *above*
    /// it at sustained max power. This is exactly the regime in which a
    /// thermal power capper is meaningful.
    pub fn for_budget(max_power_watts: f64, cap_watts: f64) -> Self {
        let ambient_c = 25.0;
        let critical_c = 70.0;
        // Dissipation tuned so the critical temperature corresponds to the
        // midpoint between the cap and max power.
        let mid = 0.5 * (max_power_watts + cap_watts);
        let dissipation_w_per_c = mid / (critical_c - ambient_c);
        Self {
            ambient_c,
            critical_c,
            dissipation_w_per_c,
            // Time constant ≈ heat_capacity / dissipation ≈ 60 ticks.
            heat_capacity: dissipation_w_per_c * 60.0,
        }
    }

    /// Steady-state temperature at a constant power draw.
    pub fn equilibrium_c(&self, watts: f64) -> f64 {
        self.ambient_c + watts / self.dissipation_w_per_c
    }
}

/// Evolving thermal state for a fleet of servers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalState {
    config: ThermalConfig,
    temps_c: Vec<f64>,
    failed: Vec<bool>,
    failover_events: usize,
}

impl ThermalState {
    /// Starts all `n` servers at ambient temperature.
    pub fn new(config: ThermalConfig, n: usize) -> Self {
        Self {
            config,
            temps_c: vec![config.ambient_c; n],
            failed: vec![false; n],
            failover_events: 0,
        }
    }

    /// The model parameters.
    pub fn config(&self) -> &ThermalConfig {
        &self.config
    }

    /// Advances one tick given each server's power draw. Returns the
    /// indices of servers that *newly* failed over this tick. A failed
    /// server stays failed until [`ThermalState::reset_server`].
    pub fn step(&mut self, power_watts: &[f64]) -> Vec<usize> {
        let mut new_failures = Vec::new();
        for (i, &p) in power_watts.iter().enumerate().take(self.temps_c.len()) {
            let t = self.temps_c[i];
            let dt = (p - self.config.dissipation_w_per_c * (t - self.config.ambient_c))
                / self.config.heat_capacity;
            self.temps_c[i] = (t + dt).max(self.config.ambient_c);
            if !self.failed[i] && self.temps_c[i] >= self.config.critical_c {
                self.failed[i] = true;
                self.failover_events += 1;
                new_failures.push(i);
            }
        }
        new_failures
    }

    /// Current temperature of server `i`, °C.
    pub fn temperature_c(&self, i: usize) -> f64 {
        self.temps_c[i]
    }

    /// Whether server `i` has tripped thermal failover.
    pub fn is_failed(&self, i: usize) -> bool {
        self.failed[i]
    }

    /// Total failover events since construction.
    pub fn failover_events(&self) -> usize {
        self.failover_events
    }

    /// Clears the failure latch and temperature of server `i`
    /// (maintenance restart).
    pub fn reset_server(&mut self, i: usize) {
        self.failed[i] = false;
        self.temps_c[i] = self.config.ambient_c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ThermalConfig {
        ThermalConfig::for_budget(120.0, 108.0)
    }

    #[test]
    fn budget_sizing_brackets_critical_temperature() {
        let c = cfg();
        assert!(c.equilibrium_c(108.0) < c.critical_c);
        assert!(c.equilibrium_c(120.0) > c.critical_c);
    }

    #[test]
    fn sustained_overload_trips_failover() {
        let c = cfg();
        let mut s = ThermalState::new(c, 1);
        let mut tripped = Vec::new();
        for _ in 0..2_000 {
            tripped.extend(s.step(&[120.0]));
        }
        assert_eq!(tripped, vec![0]);
        assert!(s.is_failed(0));
        assert_eq!(s.failover_events(), 1);
    }

    #[test]
    fn capped_power_never_trips() {
        let c = cfg();
        let mut s = ThermalState::new(c, 1);
        for _ in 0..10_000 {
            s.step(&[108.0]);
        }
        assert!(!s.is_failed(0));
        assert!(s.temperature_c(0) < c.critical_c);
    }

    #[test]
    fn transient_violations_are_safe() {
        // Alternate 50 ticks over budget, 200 under: bounded transients
        // must not trip — the leeway the paper's SM exploits.
        let c = cfg();
        let mut s = ThermalState::new(c, 1);
        for cycle in 0..40 {
            let _ = cycle;
            for _ in 0..50 {
                s.step(&[120.0]);
            }
            for _ in 0..200 {
                s.step(&[80.0]);
            }
        }
        assert!(!s.is_failed(0), "temp reached {}", s.temperature_c(0));
    }

    #[test]
    fn temperature_approaches_equilibrium() {
        let c = cfg();
        let mut s = ThermalState::new(c, 1);
        for _ in 0..5_000 {
            s.step(&[90.0]);
        }
        assert!((s.temperature_c(0) - c.equilibrium_c(90.0)).abs() < 0.5);
    }

    #[test]
    fn idle_server_cools_to_ambient_floor() {
        let c = cfg();
        let mut s = ThermalState::new(c, 1);
        for _ in 0..200 {
            s.step(&[120.0]);
        }
        for _ in 0..10_000 {
            s.step(&[0.0]);
        }
        assert!(s.temperature_c(0) >= c.ambient_c);
        assert!(s.temperature_c(0) < c.ambient_c + 0.5);
    }

    #[test]
    fn reset_clears_failure() {
        let c = cfg();
        let mut s = ThermalState::new(c, 1);
        for _ in 0..5_000 {
            s.step(&[120.0]);
        }
        assert!(s.is_failed(0));
        s.reset_server(0);
        assert!(!s.is_failed(0));
        assert_eq!(s.temperature_c(0), c.ambient_c);
    }
}
